#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file produced by --trace-out.

Checks that the file parses as JSON, has the trace-event envelope, and that
every event carries the fields chrome://tracing / Perfetto require (pid,
tid, ts; dur for complete "X" events). Exits 0 on success, 1 with a
diagnostic otherwise.

usage: check_trace.py trace.json [--require-span NAME]...
"""

import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def main(argv):
    if len(argv) < 2:
        return fail("usage: check_trace.py trace.json [--require-span NAME]...")
    path = argv[1]
    required = []
    i = 2
    while i < len(argv):
        if argv[i] == "--require-span" and i + 1 < len(argv):
            required.append(argv[i + 1])
            i += 2
        else:
            return fail(f"unknown argument {argv[i]!r}")

    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"{path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(f"{path}: missing traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail(f"{path}: traceEvents is empty")

    names = set()
    tids = set()
    spans = 0
    for n, event in enumerate(events):
        for field in ("ph", "pid", "tid", "name"):
            if field not in event:
                return fail(f"{path}: event {n} lacks {field!r}: {event}")
        ph = event["ph"]
        if ph == "M":
            continue
        if "ts" not in event:
            return fail(f"{path}: event {n} lacks 'ts': {event}")
        tids.add(event["tid"])
        names.add(event["name"])
        if ph == "X":
            spans += 1
            if "dur" not in event or event["dur"] < 0:
                return fail(f"{path}: X event {n} lacks a valid 'dur': {event}")

    if spans == 0:
        return fail(f"{path}: no complete ('X') span events")
    for name in required:
        if name not in names:
            return fail(
                f"{path}: required span {name!r} absent "
                f"(saw: {', '.join(sorted(names))})"
            )

    print(
        f"check_trace: {path} OK — {len(events)} event(s), {spans} span(s), "
        f"{len(tids)} thread track(s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
