#!/usr/bin/env python3
"""Validates the observability artifacts the REPL can emit.

Three modes, selectable by leading flag (default: Chrome trace):

  check_trace.py trace.json [--require-span NAME]...
      Chrome trace-event JSON from --trace-out: parses, has the
      traceEvents envelope, every event carries pid/tid/ts (dur for
      complete "X" events), and each --require-span name is present.

  check_trace.py --events events.jsonl
      Structured event log from --events-out: every line is a JSON
      object carrying seq / steady_ns / wall_us / type, seq strictly
      increasing, steady_ns monotone non-decreasing.

  check_trace.py --prom metrics.prom
      Prometheus text exposition from --metrics-out: every sample line
      is `name[{labels}] value` with a datacon_-prefixed metric name,
      every metric has a preceding # TYPE, histogram buckets are
      cumulative (monotone in le) and agree with _count at +Inf.

Exits 0 on success, 1 with a diagnostic otherwise.
"""

import json
import math
import re
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def check_chrome_trace(path, required):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        return fail(f"{path}: {e}")

    if not isinstance(doc, dict) or "traceEvents" not in doc:
        return fail(f"{path}: missing traceEvents envelope")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        return fail(f"{path}: traceEvents is empty")

    names = set()
    tids = set()
    spans = 0
    for n, event in enumerate(events):
        for field in ("ph", "pid", "tid", "name"):
            if field not in event:
                return fail(f"{path}: event {n} lacks {field!r}: {event}")
        ph = event["ph"]
        if ph == "M":
            continue
        if "ts" not in event:
            return fail(f"{path}: event {n} lacks 'ts': {event}")
        tids.add(event["tid"])
        names.add(event["name"])
        if ph == "X":
            spans += 1
            if "dur" not in event or event["dur"] < 0:
                return fail(f"{path}: X event {n} lacks a valid 'dur': {event}")

    if spans == 0:
        return fail(f"{path}: no complete ('X') span events")
    for name in required:
        if name not in names:
            return fail(
                f"{path}: required span {name!r} absent "
                f"(saw: {', '.join(sorted(names))})"
            )

    print(
        f"check_trace: {path} OK — {len(events)} event(s), {spans} span(s), "
        f"{len(tids)} thread track(s)"
    )
    return 0


def check_events_jsonl(path):
    """--events-out JSONL: parseable, required keys, ordered timestamps."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"{path}: {e}")
    if not lines:
        return fail(f"{path}: no events recorded")

    prev_seq = None
    prev_steady = None
    types = set()
    for n, line in enumerate(lines, start=1):
        try:
            event = json.loads(line)
        except ValueError as e:
            return fail(f"{path}:{n}: not valid JSON: {e}")
        if not isinstance(event, dict):
            return fail(f"{path}:{n}: line is not a JSON object")
        for key in ("seq", "steady_ns", "wall_us", "type"):
            if key not in event:
                return fail(f"{path}:{n}: event lacks {key!r}: {line}")
        if not isinstance(event["type"], str) or not event["type"]:
            return fail(f"{path}:{n}: 'type' is not a non-empty string")
        for key in ("seq", "steady_ns", "wall_us"):
            if not isinstance(event[key], int):
                return fail(f"{path}:{n}: {key!r} is not an integer")
        if prev_seq is not None and event["seq"] <= prev_seq:
            return fail(
                f"{path}:{n}: seq {event['seq']} not strictly "
                f"increasing (previous {prev_seq})"
            )
        if prev_steady is not None and event["steady_ns"] < prev_steady:
            return fail(
                f"{path}:{n}: steady_ns {event['steady_ns']} went "
                f"backwards (previous {prev_steady})"
            )
        prev_seq = event["seq"]
        prev_steady = event["steady_ns"]
        types.add(event["type"])

    print(
        f"check_trace: {path} OK — {len(lines)} event(s), "
        f"{len(types)} type(s): {', '.join(sorted(types))}"
    )
    return 0


_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>[0-9.eE+\-]+|\+Inf|-Inf|NaN)$"
)


def check_prometheus(path):
    """--metrics-out exposition: TYPE headers, cumulative buckets."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            lines = f.read().splitlines()
    except OSError as e:
        return fail(f"{path}: {e}")
    if not lines:
        return fail(f"{path}: empty exposition")

    typed = {}       # metric family name -> declared type
    samples = 0
    buckets = {}     # family -> list of (le, value) in order
    counts = {}      # family -> _count value
    for n, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "histogram"):
                return fail(f"{path}:{n}: malformed TYPE line: {line}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = _SAMPLE_RE.match(line)
        if not m:
            return fail(f"{path}:{n}: malformed sample line: {line!r}")
        name = m.group("name")
        if not name.startswith("datacon_"):
            return fail(f"{path}:{n}: metric {name!r} lacks datacon_ prefix")
        value = float(m.group("value"))
        samples += 1
        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix):
                family = name[: -len(suffix)]
                break
        declared = typed.get(family) or typed.get(name)
        if declared is None:
            return fail(f"{path}:{n}: sample {name!r} has no # TYPE header")
        if declared == "counter" and not name.endswith("_total"):
            return fail(f"{path}:{n}: counter {name!r} lacks _total suffix")
        if name.endswith("_bucket"):
            labels = m.group("labels") or ""
            le = re.match(r'^le="([^"]*)"$', labels)
            if not le:
                return fail(f"{path}:{n}: bucket lacks an le label: {line}")
            bound = math.inf if le.group(1) == "+Inf" else float(le.group(1))
            buckets.setdefault(family, []).append((bound, value))
        elif name.endswith("_count"):
            counts[family] = value

    for family, series in buckets.items():
        bounds = [b for b, _ in series]
        values = [v for _, v in series]
        if bounds != sorted(bounds):
            return fail(f"{path}: {family} bucket bounds not sorted")
        if values != sorted(values):
            return fail(f"{path}: {family} buckets not cumulative: {values}")
        if not bounds or bounds[-1] != math.inf:
            return fail(f"{path}: {family} lacks a +Inf bucket")
        if family not in counts:
            return fail(f"{path}: {family} lacks a _count sample")
        if counts[family] != values[-1]:
            return fail(
                f"{path}: {family} _count {counts[family]} disagrees "
                f"with +Inf bucket {values[-1]}"
            )

    if samples == 0:
        return fail(f"{path}: no sample lines")
    print(
        f"check_trace: {path} OK — {samples} sample(s), "
        f"{len(typed)} metric familie(s), {len(buckets)} histogram(s)"
    )
    return 0


def main(argv):
    if len(argv) >= 3 and argv[1] == "--events":
        if len(argv) != 3:
            return fail("usage: check_trace.py --events events.jsonl")
        return check_events_jsonl(argv[2])
    if len(argv) >= 3 and argv[1] == "--prom":
        if len(argv) != 3:
            return fail("usage: check_trace.py --prom metrics.prom")
        return check_prometheus(argv[2])
    if len(argv) < 2:
        return fail(
            "usage: check_trace.py trace.json [--require-span NAME]... | "
            "--events events.jsonl | --prom metrics.prom"
        )
    path = argv[1]
    required = []
    i = 2
    while i < len(argv):
        if argv[i] == "--require-span" and i + 1 < len(argv):
            required.append(argv[i + 1])
            i += 2
        else:
            return fail(f"unknown argument {argv[i]!r}")
    return check_chrome_trace(path, required)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
