#!/usr/bin/env bash
# Optional static-analysis pass: runs clang-tidy (config in .clang-tidy)
# over the library, tool, and example sources against the compile commands
# of a normal build. Not part of tier-1 — advisory output only, but the
# exit status is clang-tidy's, so CI jobs may opt in to enforcing it.
#
# Usage: scripts/tidy.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found; skipping (install it to run this pass)" >&2
  exit 0
fi

build_dir="${1:-build}"
cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Sources only — headers are covered through HeaderFilterRegex.
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tools/*.cc' \
  'examples/*.cpp')

clang-tidy -p "$build_dir" "${sources[@]}"
