#!/usr/bin/env bash
# Optional static-analysis pass: runs clang-tidy (config in .clang-tidy)
# over the library, tool, and example sources against the compile commands
# of a normal build. Not part of tier-1 — advisory output only, but the
# exit status is clang-tidy's, so CI jobs may opt in to enforcing it.
#
# Usage: scripts/tidy.sh [build-dir] [path-prefix...]
#   build-dir      compile-commands directory (default: build)
#   path-prefix... restrict the pass to sources under these prefixes, e.g.
#                  `scripts/tidy.sh build src/analysis src/core` — the CI
#                  tidy job scopes itself to the analysis and core layers.
set -euo pipefail
cd "$(dirname "$0")/.."

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "clang-tidy not found; skipping (install it to run this pass)" >&2
  exit 0
fi

build_dir="${1:-build}"
if [ "$#" -gt 0 ]; then shift; fi
cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

# Sources only — headers are covered through HeaderFilterRegex.
mapfile -t sources < <(git ls-files 'src/**/*.cc' 'tools/*.cc' \
  'examples/*.cpp')

# Path filters: keep only sources under one of the given prefixes.
if [ "$#" -gt 0 ]; then
  filtered=()
  for src in "${sources[@]}"; do
    for prefix in "$@"; do
      case "$src" in
        "$prefix"/*) filtered+=("$src"); break ;;
      esac
    done
  done
  if [ "${#filtered[@]}" -eq 0 ]; then
    echo "tidy.sh: no sources match the given path filters: $*" >&2
    exit 2
  fi
  sources=("${filtered[@]}")
fi

# The likely-bug and performance check groups are enforced (a finding
# fails the run); the naming checks stay advisory.
clang-tidy -p "$build_dir" \
  --warnings-as-errors='bugprone-*,performance-*' \
  "${sources[@]}"
