#!/usr/bin/env bash
# Tier-1 verification: plain build + full test suite, then a ThreadSanitizer
# build running the concurrency-sensitive tests (thread pool + parallel
# fixpoint execution). TSan proves race-freedom via happens-before tracking,
# so it is meaningful even on a single-core host.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

echo "== lint: example corpus =="
# Every shipped example must be clean even with warnings promoted (the
# lint_example_* ctest entries check the same thing file by file),
# adornment findings included.
./build/tools/datacon-lint --werror --adorn examples/dbpl/*.dbpl

echo "== bench: parallel + specialize (smoke, --json artifacts) =="
# Quick single-repetition passes over the two engine-level benchmarks; the
# runs double as correctness smoke tests (bench bodies abort on evaluation
# errors) and leave BENCH_parallel.json / BENCH_specialize.json behind as
# the EXPERIMENTS.md artifacts.
./build/bench/bench_parallel --json --benchmark_min_time=0.01
./build/bench/bench_specialize --json --benchmark_min_time=0.01

echo "== tsan: build =="
cmake -B build-tsan -S . -DDATACON_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  common_thread_pool_test core_fixpoint_parallel_test

echo "== tsan: parallel tests =="
./build-tsan/tests/common_thread_pool_test
./build-tsan/tests/core_fixpoint_parallel_test

echo "All checks passed."
