#!/usr/bin/env bash
# Tier-1 verification: plain build + full test suite, then a ThreadSanitizer
# build running the concurrency-sensitive tests (thread pool + parallel
# fixpoint execution). TSan proves race-freedom via happens-before tracking,
# so it is meaningful even on a single-core host.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j

echo "== tier-1: ctest =="
(cd build && ctest --output-on-failure -j)

echo "== lint: example corpus =="
# Every shipped example must be clean even with warnings promoted (the
# lint_example_* ctest entries check the same thing file by file),
# adornment, constraint data-flow, and type-inference findings included.
# The glob skips examples/dbpl/bad/ — those fixtures are *supposed* to be
# flagged, and the second line insists the type checker actually does.
./build/tools/datacon-lint --werror --adorn --constraints --types \
  examples/dbpl/*.dbpl
(./build/tools/datacon-lint --types examples/dbpl/bad/ill_typed.dbpl || true) \
  | grep -q "E130"

echo "== bench: parallel + specialize + cache + typed + observe (smoke, --json) =="
# Quick single-repetition passes over the engine-level benchmarks; the
# runs double as correctness smoke tests (bench bodies abort on evaluation
# errors) and leave BENCH_parallel.json / BENCH_specialize.json /
# BENCH_cache.json / BENCH_typed.json / BENCH_observe.json behind as the
# EXPERIMENTS.md artifacts.
./build/bench/bench_parallel --json --benchmark_min_time=0.01
./build/bench/bench_specialize --json --benchmark_min_time=0.01
./build/bench/bench_cache --json --benchmark_min_time=0.01
./build/bench/bench_constraints --json --benchmark_min_time=0.01
./build/bench/bench_typed --json --benchmark_min_time=0.01
./build/bench/bench_observe --json --benchmark_min_time=0.01

echo "== trace: end-to-end trace-out + events-out + metrics-out =="
# Drive a same-generation query (recursive but not closure-shaped, so the
# general semi-naive fixpoint runs — capture rules would shortcut a plain
# closure) over a 63-node binary tree through the REPL's --trace-out path
# at PRAGMA THREADS = 4, then validate the artifact is well-formed Chrome
# trace-event JSON carrying the span taxonomy the observability layer
# promises: per-round fixpoint spans and parallel chunk fan-out on
# distinct worker tracks. The same run exercises the telemetry plane:
# --events-out leaves a structured JSONL event stream and --metrics-out a
# Prometheus exposition of the database's registry, both validated below.
{
  echo "PRAGMA THREADS = 4;"
  echo "PRAGMA EVENTS = ON;"
  echo "TYPE pairrel = RELATION OF RECORD front, back: INTEGER END;"
  echo "VAR Par: pairrel;"
  echo "VAR Seed: pairrel;"
  echo "CONSTRUCTOR sg FOR Rel: pairrel (Par: pairrel): pairrel;"
  echo "BEGIN EACH r IN Rel: TRUE,"
  echo "      <a.front, b.front> OF EACH a IN Par, EACH b IN Par,"
  echo "      EACH s IN Rel {sg(Par)}: a.back = s.front AND s.back = b.back"
  echo "END sg;"
  printf "INSERT INTO Par "
  for i in $(seq 2 63); do
    printf "<%d, %d>" "$i" $((i / 2))
    [ "$i" -lt 63 ] && printf ", "
  done
  echo ";"
  echo "INSERT INTO Seed <1, 1>;"
  echo "QUERY Seed {sg(Par)};"
} | ./build/examples/dbpl_repl --trace-out=trace.json \
      --events-out=events.jsonl --metrics-out=metrics.prom >/dev/null
python3 scripts/check_trace.py trace.json \
  --require-span parse --require-span evaluate --require-span round \
  --require-span fanout --require-span chunk
python3 scripts/check_trace.py --events events.jsonl
python3 scripts/check_trace.py --prom metrics.prom

echo "== thread-safety: clang annotation analysis =="
# Clang's -Wthread-safety checks the GUARDED_BY/REQUIRES annotations
# (common/thread_annotations.h) statically; CMakeLists.txt promotes it to
# an error whenever the compiler is clang. GCC-only hosts skip the pass —
# CI runs it under clang.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ >/dev/null
  cmake --build build-tsa -j --target datacon_common datacon_core
else
  echo "clang++ not found; skipping (annotations are no-ops under GCC)"
fi

echo "== tsan: build =="
cmake -B build-tsan -S . -DDATACON_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target \
  common_thread_pool_test common_trace_test core_fixpoint_parallel_test \
  core_observability_test common_metrics_test core_matcache_test \
  integration_cache_semantics_test common_eventlog_test

echo "== tsan: parallel + cache + telemetry tests =="
./build-tsan/tests/common_thread_pool_test
./build-tsan/tests/common_trace_test
./build-tsan/tests/core_fixpoint_parallel_test
./build-tsan/tests/core_observability_test
./build-tsan/tests/common_metrics_test
./build-tsan/tests/core_matcache_test
./build-tsan/tests/integration_cache_semantics_test
./build-tsan/tests/common_eventlog_test

echo "All checks passed."
