// datacon-lint: standalone lint driver for DBPL programs.
//
//   datacon-lint [--json] [--werror] [--adorn] [--constraints] [--types]
//                [--codes] file.dbpl...
//
// Each file is parsed and run through the static-analysis pipeline
// (analysis/script_lint.h) without executing anything. Diagnostics print as
// `file:line:col: severity CODE: message`; with --json, one JSON object per
// file in the metrics conventions. --adorn additionally runs the adornment/
// relevance analysis (analysis/adorn.h) over every query expression and
// reports W220/W221/W222 where an adorned constructor application cannot be
// specialized. --constraints additionally audits declared integrity
// constraints against the script's own data flow: W231 when the facts the
// script inserts already refute a constraint, W232 when no statement of the
// script can ever change one of the constraint's input relations. --types
// additionally runs whole-program type inference (analysis/typecheck.h) and
// reports E130/E131/E132/W240/W241/W242 for type conflicts, ill-typed
// operations, non-binary capture shapes, statically constant comparisons,
// unconstrained derived attributes, and union name mismatches. Exit
// status: 0 when no file has errors (under --werror, when no file has any
// diagnostic at all), 1 otherwise, 2 on usage or I/O failure.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/script_lint.h"
#include "common/build_info.h"
#include "common/string_util.h"
#include "lang/parser.h"

namespace {

int Usage() {
  std::cerr << "usage: datacon-lint [--json] [--werror] [--adorn] "
               "[--constraints] [--types] [--codes] file.dbpl...\n";
  return 2;
}

void PrintHelp() {
  std::cout
      << "usage: datacon-lint [options] file.dbpl...\n"
         "\n"
         "Statically analyzes DBPL programs without executing them.\n"
         "\n"
         "options:\n"
         "  --json     one JSON report object per file\n"
         "  --werror   any diagnostic (not just errors) fails the run\n"
         "  --adorn    run the adornment/relevance analysis and report\n"
         "             W220/W221/W222 for unspecializable adorned queries\n"
         "  --constraints\n"
         "             audit integrity constraints against the script's\n"
         "             data flow: W231 when the script's own facts refute a\n"
         "             constraint, W232 when no statement can ever change\n"
         "             one of its input relations\n"
         "  --types    run whole-program type inference and report\n"
         "             E130/E131/E132 type errors and W240/W241/W242\n"
         "             type warnings\n"
         "  --codes    list every diagnostic code with its meaning and exit\n"
         "  --version  print version and build info and exit\n"
         "  --help     show this help and exit\n"
         "\n"
         "exit status:\n"
         "  0  no file has errors (with --werror: no diagnostics at all)\n"
         "  1  at least one file has errors (or, with --werror, any\n"
         "     diagnostic)\n"
         "  2  usage error or unreadable input file\n";
}

void PrintVersion() {
  std::cout << "datacon-lint " << datacon::kDataconVersion << "\n"
            << "build: " << datacon::BuildInfoString() << "\n"
            << "diagnostic codes: " << datacon::AllDiagnosticCodes().size()
            << "\n";
}

void PrintCodes() {
  for (std::string_view code : datacon::AllDiagnosticCodes()) {
    std::cout << code << "  " << datacon::DiagnosticCodeMeaning(code) << "\n";
  }
}

/// Lints one source file; parse failures become a single E100 report.
datacon::LintReport LintFile(const std::string& source,
                             const datacon::LintOptions& options) {
  datacon::Result<datacon::Script> script = datacon::ParseScript(source);
  datacon::LintReport report;
  if (!script.ok()) {
    report.Append(datacon::DiagnosticFromStatus(script.status()));
    return report;
  }
  return datacon::LintScript(script.value(), options);
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  datacon::LintOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--adorn") {
      options.adorn = true;
    } else if (arg == "--constraints") {
      options.constraints = true;
    } else if (arg == "--types") {
      options.types = true;
    } else if (arg == "--codes") {
      PrintCodes();
      return 0;
    } else if (arg == "--version") {
      PrintVersion();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      PrintHelp();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "datacon-lint: unknown option '" << arg << "'\n";
      return Usage();
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) return Usage();

  bool failed = false;
  bool first = true;
  if (json) std::cout << "{\"files\":[";
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "datacon-lint: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    datacon::LintReport report = LintFile(buffer.str(), options);
    if (report.HasErrors() || (werror && !report.empty())) failed = true;

    if (json) {
      if (!first) std::cout << ",";
      first = false;
      // The path comes from the command line — quote it properly rather
      // than trusting it to contain no JSON metacharacters.
      std::cout << "{\"file\":" << datacon::JsonEscape(path)
                << ",\"report\":" << report.ToJson() << "}";
    } else {
      for (const datacon::Diagnostic& d : report.diagnostics) {
        std::cout << path << ":" << d.ToString() << "\n";
      }
    }
  }
  if (json) {
    std::cout << "],\"ok\":" << (failed ? "false" : "true") << "}\n";
  }
  return failed ? 1 : 0;
}
