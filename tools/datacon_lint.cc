// datacon-lint: standalone lint driver for DBPL programs.
//
//   datacon-lint [--json] [--werror] [--codes] file.dbpl...
//
// Each file is parsed and run through the static-analysis pipeline
// (analysis/script_lint.h) without executing anything. Diagnostics print as
// `file:line:col: severity CODE: message`; with --json, one JSON object per
// file in the metrics conventions. Exit status: 0 when no file has errors
// (under --werror, when no file has any diagnostic at all), 1 otherwise,
// 2 on usage or I/O failure.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/script_lint.h"
#include "lang/parser.h"

namespace {

int Usage() {
  std::cerr << "usage: datacon-lint [--json] [--werror] [--codes] "
               "file.dbpl...\n";
  return 2;
}

void PrintCodes() {
  for (std::string_view code : datacon::AllDiagnosticCodes()) {
    std::cout << code << "  " << datacon::DiagnosticCodeMeaning(code) << "\n";
  }
}

/// Lints one source file; parse failures become a single E100 report.
datacon::LintReport LintFile(const std::string& source) {
  datacon::Result<datacon::Script> script = datacon::ParseScript(source);
  datacon::LintReport report;
  if (!script.ok()) {
    report.Append(datacon::DiagnosticFromStatus(script.status()));
    return report;
  }
  return datacon::LintScript(script.value());
}

}  // namespace

int main(int argc, char** argv) {
  bool json = false;
  bool werror = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--json") {
      json = true;
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--codes") {
      PrintCodes();
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "datacon-lint: unknown option '" << arg << "'\n";
      return Usage();
    } else {
      files.push_back(std::move(arg));
    }
  }
  if (files.empty()) return Usage();

  bool failed = false;
  bool first = true;
  if (json) std::cout << "{\"files\":[";
  for (const std::string& path : files) {
    std::ifstream in(path);
    if (!in) {
      std::cerr << "datacon-lint: cannot read '" << path << "'\n";
      return 2;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    datacon::LintReport report = LintFile(buffer.str());
    if (report.HasErrors() || (werror && !report.empty())) failed = true;

    if (json) {
      if (!first) std::cout << ",";
      first = false;
      std::cout << "{\"file\":\"" << path
                << "\",\"report\":" << report.ToJson() << "}";
    } else {
      for (const datacon::Diagnostic& d : report.diagnostics) {
        std::cout << path << ":" << d.ToString() << "\n";
      }
    }
  }
  if (json) {
    std::cout << "],\"ok\":" << (failed ? "false" : "true") << "}\n";
  }
  return failed ? 1 : 0;
}
