#include "analysis/adorn.h"

#include <algorithm>
#include <map>
#include <set>
#include <utility>

#include "core/positivity.h"
#include "ra/analysis.h"

namespace datacon {

namespace {

/// A binding of a scanned branch, pre-resolved against the graph: the
/// application node of its range head (or -1 for constructor-free ranges)
/// and the schema of the full range.
struct BindingInfo {
  int node = -1;
  const Schema* schema = nullptr;
  bool ctor_free = true;
};

/// One branch of a node body (or of the query expression) with its bindings
/// resolved, its predicate flattened, and its predicate-level constructor
/// references collected with their NOT/ALL parity.
struct BranchScan {
  const Branch* branch = nullptr;
  std::vector<BindingInfo> bindings;
  std::vector<PredPtr> conjuncts;
  std::vector<std::pair<int, int>> pred_refs;  // (node, parity)
};

/// One use site of an application node. `owner` is the node whose body
/// contains the site, or -1 for the query expression itself. Binding sites
/// carry the equality constraints discovered statically; predicate-range
/// sites never constrain (`unconstrained`).
struct Site {
  int target = -1;
  int owner = -1;
  int branch_index = -1;
  size_t binding = 0;
  bool unconstrained = false;
  bool negated = false;
  std::map<int, std::vector<AdornSeed>> static_attrs;
};

/// The schema a range denotes, resolved through declarations only — no
/// term-level checks, so ranges carrying prepared-query placeholders still
/// resolve (the level-1 checker has already validated them).
Result<const Schema*> LooseRangeSchema(const Range& range,
                                       const Catalog& catalog) {
  DATACON_ASSIGN_OR_RETURN(const std::string* type_name,
                           catalog.LookupRelationTypeName(range.relation()));
  DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                           catalog.LookupRelationType(*type_name));
  for (const RangeApp& app : range.apps()) {
    if (app.kind != RangeApp::Kind::kConstructor) continue;
    DATACON_ASSIGN_OR_RETURN(const ConstructorDecl* ctor,
                             catalog.LookupConstructor(app.name));
    DATACON_ASSIGN_OR_RETURN(
        schema, catalog.LookupRelationType(ctor->result_type_name()));
  }
  return schema;
}

void AddSeed(std::map<int, std::vector<AdornSeed>>* attrs, int attr,
             AdornSeed seed) {
  seed.attr = attr;
  (*attrs)[attr].push_back(std::move(seed));
}

/// Constraints implied by the trailing selector applications of a use-site
/// range: a selector conjunct `v.f = <param>` whose actual argument is a
/// constant (or a prepared-query placeholder), or `v.f = literal` directly,
/// binds result attribute f. Selector applications are schema-preserving,
/// so `schema` is the node's result schema throughout.
void SelectorConstraints(const std::vector<RangeApp>& trailing,
                         const Schema& schema, const Catalog& catalog,
                         std::map<int, std::vector<AdornSeed>>* out) {
  for (const RangeApp& app : trailing) {
    if (app.kind != RangeApp::Kind::kSelector) continue;
    Result<const SelectorDecl*> sel = catalog.LookupSelector(app.name);
    if (!sel.ok()) continue;
    for (const PredPtr& c : FlattenConjuncts((*sel)->pred())) {
      if (c->kind() != Pred::Kind::kCompare) continue;
      const auto& cmp = static_cast<const ComparePred&>(*c);
      if (cmp.op() != CompareOp::kEq) continue;
      for (bool flip : {false, true}) {
        const Term& lhs = flip ? *cmp.rhs() : *cmp.lhs();
        const Term& rhs = flip ? *cmp.lhs() : *cmp.rhs();
        if (lhs.kind() != Term::Kind::kFieldRef) continue;
        const auto& field_ref = static_cast<const FieldRefTerm&>(lhs);
        if (field_ref.var() != (*sel)->var()) continue;
        std::optional<int> attr = schema.FieldIndex(field_ref.field());
        if (!attr.has_value()) continue;
        if (rhs.kind() == Term::Kind::kLiteral) {
          AdornSeed seed;
          seed.literal = static_cast<const LiteralTerm&>(rhs).value();
          AddSeed(out, *attr, std::move(seed));
        } else if (rhs.kind() == Term::Kind::kParamRef) {
          const std::string& formal =
              static_cast<const ParamRefTerm&>(rhs).name();
          const auto& params = (*sel)->params();
          for (size_t i = 0; i < params.size(); ++i) {
            if (params[i].name != formal || i >= app.term_args.size()) continue;
            const Term& arg = *app.term_args[i];
            if (arg.kind() == Term::Kind::kLiteral) {
              AdornSeed seed;
              seed.literal = static_cast<const LiteralTerm&>(arg).value();
              AddSeed(out, *attr, std::move(seed));
            } else if (arg.kind() == Term::Kind::kParamRef) {
              AdornSeed seed;
              seed.param = static_cast<const ParamRefTerm&>(arg).name();
              AddSeed(out, *attr, std::move(seed));
            }
            break;
          }
        }
      }
    }
  }
}

/// Constraints implied by top-level conjuncts `var.f = literal|parameter`.
void ConjunctConstraints(const std::vector<PredPtr>& conjuncts,
                         const std::string& var, const Schema& schema,
                         std::map<int, std::vector<AdornSeed>>* out) {
  for (const PredPtr& c : conjuncts) {
    if (c->kind() != Pred::Kind::kCompare) continue;
    const auto& cmp = static_cast<const ComparePred&>(*c);
    if (cmp.op() != CompareOp::kEq) continue;
    for (bool flip : {false, true}) {
      const Term& lhs = flip ? *cmp.rhs() : *cmp.lhs();
      const Term& rhs = flip ? *cmp.lhs() : *cmp.rhs();
      if (lhs.kind() != Term::Kind::kFieldRef) continue;
      const auto& field_ref = static_cast<const FieldRefTerm&>(lhs);
      if (field_ref.var() != var) continue;
      std::optional<int> attr = schema.FieldIndex(field_ref.field());
      if (!attr.has_value()) continue;
      if (rhs.kind() == Term::Kind::kLiteral) {
        AdornSeed seed;
        seed.literal = static_cast<const LiteralTerm&>(rhs).value();
        AddSeed(out, *attr, std::move(seed));
      } else if (rhs.kind() == Term::Kind::kParamRef) {
        AdornSeed seed;
        seed.param = static_cast<const ParamRefTerm&>(rhs).name();
        AddSeed(out, *attr, std::move(seed));
      }
    }
  }
}

Result<BranchScan> ScanBranch(const Branch& branch,
                              const ApplicationGraph& graph,
                              const Catalog& catalog) {
  BranchScan scan;
  scan.branch = &branch;
  for (const Binding& b : branch.bindings()) {
    BindingInfo info;
    DATACON_ASSIGN_OR_RETURN(info.schema, LooseRangeSchema(*b.range, catalog));
    info.ctor_free = !b.range->ContainsConstructor();
    if (!info.ctor_free) {
      RangeSplit split = SplitAtLastConstructor(*b.range);
      DATACON_ASSIGN_OR_RETURN(info.node, graph.FindNode(**split.ctor_head));
    }
    scan.bindings.push_back(std::move(info));
  }
  scan.conjuncts = FlattenConjuncts(branch.pred());
  ForEachRangeWithParity(*branch.pred(), 0,
                         [&](const Range& range, int parity) {
                           if (!range.ContainsConstructor()) return;
                           RangeSplit split = SplitAtLastConstructor(range);
                           Result<int> node =
                               graph.FindNode(**split.ctor_head);
                           if (node.ok()) {
                             scan.pred_refs.emplace_back(*node, parity);
                           }
                         });
  return scan;
}

std::string SeedToString(const AdornSeed& seed) {
  if (seed.literal.has_value()) return seed.literal->ToString();
  if (seed.param.has_value()) return "$" + *seed.param;
  return "?";
}

}  // namespace

std::string AdornNode::AdornmentString() const {
  if (bound.empty()) return "-";
  std::string out;
  out.reserve(bound.size());
  for (bool b : bound) out.push_back(b ? 'b' : 'f');
  return out;
}

std::string AdornmentAnalysis::ToText(const ApplicationGraph& graph) const {
  std::string out;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const AdornNode& node = nodes[i];
    out += "  [" + graph.nodes()[i].key + "] adornment: " +
           node.AdornmentString();
    if (node.bound_attr >= 0) {
      out += " (drives on '" +
             graph.nodes()[i].result_schema.field(node.bound_attr).name + "')";
    }
    out += "\n";
    if (!node.seeds.empty()) {
      out += "    seeds:";
      for (const AdornSeed& seed : node.seeds) {
        out += " " + SeedToString(seed);
      }
      out += "\n";
    }
    for (size_t bi = 0; bi < node.branches.size(); ++bi) {
      out += "    branch " + std::to_string(bi + 1) + ": " +
             node.branches[bi].detail + "\n";
    }
    out += node.specializable ? "    -> specialized (magic-seed fixpoint)\n"
                              : "    -> full evaluation\n";
  }
  return out;
}

Result<AdornmentAnalysis> AnalyzeAdornment(const CalcExpr& expr,
                                           const ApplicationGraph& graph,
                                           const Catalog& catalog) {
  AdornmentAnalysis out;
  const std::vector<ApplicationGraph::Node>& nodes = graph.nodes();
  const size_t n = nodes.size();
  out.nodes.resize(n);
  for (size_t t = 0; t < n; ++t) {
    out.nodes[t].bound.assign(
        static_cast<size_t>(nodes[t].result_schema.arity()), false);
  }
  if (n == 0) return out;

  DATACON_ASSIGN_OR_RETURN(SccDecomposition scc, graph.Stratify());

  // --- Scan every branch of every node body, plus the query expression. ---
  std::vector<std::vector<BranchScan>> scans(n);
  std::vector<BranchScan> query_scans;
  for (size_t u = 0; u < n; ++u) {
    for (const BranchPtr& branch : nodes[u].body->branches()) {
      DATACON_ASSIGN_OR_RETURN(BranchScan scan,
                               ScanBranch(*branch, graph, catalog));
      scans[u].push_back(std::move(scan));
    }
  }
  for (const BranchPtr& branch : expr.branches()) {
    DATACON_ASSIGN_OR_RETURN(BranchScan scan,
                             ScanBranch(*branch, graph, catalog));
    query_scans.push_back(std::move(scan));
  }

  // --- Enumerate use sites. ---
  std::vector<Site> sites;
  auto collect_sites = [&](int owner, const std::vector<BranchScan>& bscans) {
    for (size_t bi = 0; bi < bscans.size(); ++bi) {
      const BranchScan& scan = bscans[bi];
      for (size_t j = 0; j < scan.bindings.size(); ++j) {
        if (scan.bindings[j].node < 0) continue;
        Site site;
        site.target = scan.bindings[j].node;
        site.owner = owner;
        site.branch_index = static_cast<int>(bi);
        site.binding = j;
        const Binding& binding = scan.branch->bindings()[j];
        const Schema& result_schema =
            nodes[static_cast<size_t>(site.target)].result_schema;
        RangeSplit split = SplitAtLastConstructor(*binding.range);
        SelectorConstraints(split.trailing_selectors, result_schema, catalog,
                            &site.static_attrs);
        ConjunctConstraints(scan.conjuncts, binding.var, result_schema,
                            &site.static_attrs);
        sites.push_back(std::move(site));
      }
      for (const auto& [node, parity] : scan.pred_refs) {
        Site site;
        site.target = node;
        site.owner = owner;
        site.branch_index = static_cast<int>(bi);
        site.unconstrained = true;
        site.negated = (parity % 2) == 1;
        sites.push_back(std::move(site));
      }
    }
  };
  collect_sites(-1, query_scans);
  for (size_t u = 0; u < n; ++u) collect_sites(static_cast<int>(u), scans[u]);

  // --- Target resolution: which (binding, field) feeds a result attr. ---
  auto target_source = [](const BranchScan& scan, int attr)
      -> std::optional<std::pair<size_t, int>> {
    const Branch& branch = *scan.branch;
    if (!branch.targets().has_value()) {
      if (branch.bindings().size() != 1) return std::nullopt;
      if (attr >= scan.bindings[0].schema->arity()) return std::nullopt;
      return std::make_pair(size_t{0}, attr);
    }
    if (attr >= static_cast<int>(branch.targets()->size())) {
      return std::nullopt;
    }
    const Term& term = *(*branch.targets())[static_cast<size_t>(attr)];
    if (term.kind() != Term::Kind::kFieldRef) return std::nullopt;
    const auto& field_ref = static_cast<const FieldRefTerm&>(term);
    for (size_t j = 0; j < branch.bindings().size(); ++j) {
      if (branch.bindings()[j].var != field_ref.var()) continue;
      std::optional<int> idx =
          scan.bindings[j].schema->FieldIndex(field_ref.field());
      if (!idx.has_value()) return std::nullopt;
      return std::make_pair(j, *idx);
    }
    return std::nullopt;
  };

  auto target_literal = [](const BranchScan& scan,
                           int attr) -> const Value* {
    const Branch& branch = *scan.branch;
    if (!branch.targets().has_value()) return nullptr;
    if (attr >= static_cast<int>(branch.targets()->size())) return nullptr;
    const Term& term = *(*branch.targets())[static_cast<size_t>(attr)];
    if (term.kind() != Term::Kind::kLiteral) return nullptr;
    return &static_cast<const LiteralTerm&>(term).value();
  };

  // The attributes of a binding site's target that become bound when the
  // owner's result attribute `owner_attr` is bound: the copied field when
  // the target term reads this binding directly, or the joined fields when
  // it reads another (constructor-free) binding the site equi-joins with.
  auto dynamic_attrs = [&](const Site& site, int owner_attr) -> std::set<int> {
    std::set<int> result;
    const BranchScan& scan =
        scans[static_cast<size_t>(site.owner)]
             [static_cast<size_t>(site.branch_index)];
    std::optional<std::pair<size_t, int>> src =
        target_source(scan, owner_attr);
    if (!src.has_value()) return result;
    const auto& [source_binding, source_field] = *src;
    if (source_binding == site.binding) {
      result.insert(source_field);
      return result;
    }
    if (!scan.bindings[source_binding].ctor_free) return result;
    const std::string& site_var = scan.branch->bindings()[site.binding].var;
    const std::string& source_var =
        scan.branch->bindings()[source_binding].var;
    for (const PredPtr& c : scan.conjuncts) {
      if (c->kind() != Pred::Kind::kCompare) continue;
      const auto& cmp = static_cast<const ComparePred&>(*c);
      if (cmp.op() != CompareOp::kEq) continue;
      for (bool flip : {false, true}) {
        const Term& lhs = flip ? *cmp.rhs() : *cmp.lhs();
        const Term& rhs = flip ? *cmp.lhs() : *cmp.rhs();
        if (lhs.kind() != Term::Kind::kFieldRef ||
            rhs.kind() != Term::Kind::kFieldRef) {
          continue;
        }
        const auto& left = static_cast<const FieldRefTerm&>(lhs);
        const auto& right = static_cast<const FieldRefTerm&>(rhs);
        if (left.var() != site_var || right.var() != source_var) continue;
        std::optional<int> attr =
            scan.bindings[site.binding].schema->FieldIndex(left.field());
        if (attr.has_value()) result.insert(*attr);
      }
    }
    return result;
  };

  // --- Candidate bound sets: greatest fixpoint of the must-intersection
  // over all use sites (an attribute stays bound only when EVERY site
  // constrains it, statically or through its owner's own adornment). ---
  std::vector<std::set<int>> candidates(n);
  std::vector<bool> has_site(n, false);
  for (const Site& site : sites) {
    has_site[static_cast<size_t>(site.target)] = true;
  }
  for (size_t t = 0; t < n; ++t) {
    if (!has_site[t]) continue;  // unreachable: stays unadorned
    for (int a = 0; a < nodes[t].result_schema.arity(); ++a) {
      candidates[t].insert(a);
    }
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t t = 0; t < n; ++t) {
      std::set<int> acc = candidates[t];
      for (const Site& site : sites) {
        if (site.target != static_cast<int>(t)) continue;
        std::set<int> site_attrs;
        if (!site.unconstrained) {
          for (const auto& [attr, seeds] : site.static_attrs) {
            site_attrs.insert(attr);
          }
          if (site.owner >= 0) {
            for (int a : candidates[static_cast<size_t>(site.owner)]) {
              std::set<int> d = dynamic_attrs(site, a);
              site_attrs.insert(d.begin(), d.end());
            }
          }
        }
        std::set<int> next;
        std::set_intersection(acc.begin(), acc.end(), site_attrs.begin(),
                              site_attrs.end(),
                              std::inserter(next, next.begin()));
        acc = std::move(next);
      }
      if (acc != candidates[t]) {
        candidates[t] = std::move(acc);
        changed = true;
      }
    }
  }

  // --- Driving attribute: one bound attribute per node, validated so that
  // every site justifies the specific choice (not just some candidate). ---
  std::vector<int> driving(n, -1);
  for (size_t t = 0; t < n; ++t) {
    if (!candidates[t].empty()) driving[t] = *candidates[t].begin();
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const Site& site : sites) {
      const size_t t = static_cast<size_t>(site.target);
      if (driving[t] < 0) continue;
      bool covered = site.static_attrs.count(driving[t]) > 0;
      if (!covered && !site.unconstrained && site.owner >= 0 &&
          driving[static_cast<size_t>(site.owner)] >= 0) {
        covered = dynamic_attrs(
                      site, driving[static_cast<size_t>(site.owner)])
                      .count(driving[t]) > 0;
      }
      if (site.unconstrained) covered = false;
      if (!covered) {
        driving[t] = -1;
        changed = true;
      }
    }
  }

  for (size_t t = 0; t < n; ++t) {
    for (int a : candidates[t]) {
      out.nodes[t].bound[static_cast<size_t>(a)] = true;
    }
    out.nodes[t].bound_attr = driving[t];
  }

  auto same_component = [&](int x, int y) {
    return scc.component_of[static_cast<size_t>(x)] ==
           scc.component_of[static_cast<size_t>(y)];
  };

  // --- Per-branch classification for adorned nodes. ---
  for (size_t t = 0; t < n; ++t) {
    if (driving[t] < 0) continue;
    AdornNode& adorned = out.nodes[t];
    const int a = driving[t];
    for (size_t bi = 0; bi < scans[t].size(); ++bi) {
      const BranchScan& scan = scans[t][bi];
      AdornBranch ab;
      bool pred_recursive = false;
      for (const auto& [node, parity] : scan.pred_refs) {
        if (same_component(node, static_cast<int>(t))) pred_recursive = true;
      }
      std::vector<size_t> recursive;
      for (size_t j = 0; j < scan.bindings.size(); ++j) {
        if (scan.bindings[j].node >= 0 &&
            same_component(scan.bindings[j].node, static_cast<int>(t))) {
          recursive.push_back(j);
        }
      }
      // Finds a conjunct that carries the bound value into the recursive
      // binding: a literal/parameter equality on its driving field (a
      // static seed) or an equi-join hop through the filtered source
      // binding. Returns false when boundness is dropped (W221).
      auto constrain_recursive =
          [&](size_t rec_j,
              std::optional<std::pair<size_t, int>> src) -> bool {
        const int rec_node = scan.bindings[rec_j].node;
        const int rec_driving = driving[static_cast<size_t>(rec_node)];
        if (rec_driving < 0) return false;
        const std::string& rec_var = scan.branch->bindings()[rec_j].var;
        for (const PredPtr& c : scan.conjuncts) {
          if (c->kind() != Pred::Kind::kCompare) continue;
          const auto& cmp = static_cast<const ComparePred&>(*c);
          if (cmp.op() != CompareOp::kEq) continue;
          for (bool flip : {false, true}) {
            const Term& lhs = flip ? *cmp.rhs() : *cmp.lhs();
            const Term& rhs = flip ? *cmp.lhs() : *cmp.rhs();
            if (lhs.kind() != Term::Kind::kFieldRef) continue;
            const auto& left = static_cast<const FieldRefTerm&>(lhs);
            if (left.var() != rec_var) continue;
            std::optional<int> attr =
                scan.bindings[rec_j].schema->FieldIndex(left.field());
            if (!attr.has_value() || *attr != rec_driving) continue;
            if (rhs.kind() == Term::Kind::kLiteral) {
              AdornSeed seed;
              seed.attr = rec_driving;
              seed.literal = static_cast<const LiteralTerm&>(rhs).value();
              ab.seeds.push_back(seed);
              out.nodes[static_cast<size_t>(rec_node)].seeds.push_back(seed);
              ab.filters.push_back({rec_j, rec_driving, rec_node});
              return true;
            }
            if (rhs.kind() == Term::Kind::kParamRef) {
              AdornSeed seed;
              seed.attr = rec_driving;
              seed.param = static_cast<const ParamRefTerm&>(rhs).name();
              ab.seeds.push_back(seed);
              out.nodes[static_cast<size_t>(rec_node)].seeds.push_back(seed);
              ab.filters.push_back({rec_j, rec_driving, rec_node});
              return true;
            }
            if (rhs.kind() == Term::Kind::kFieldRef && src.has_value()) {
              const auto& right = static_cast<const FieldRefTerm&>(rhs);
              const auto& [source_binding, source_field] = *src;
              if (source_binding == rec_j) continue;
              if (right.var() !=
                  scan.branch->bindings()[source_binding].var) {
                continue;
              }
              if (!scan.bindings[source_binding].ctor_free) continue;
              std::optional<int> to_field =
                  scan.bindings[source_binding].schema->FieldIndex(
                      right.field());
              if (!to_field.has_value()) continue;
              AdornBranch::Transfer step;
              step.target_node = rec_node;
              step.via_base = scan.branch->bindings()[source_binding].range;
              step.from_field = source_field;
              step.to_field = *to_field;
              ab.transfers.push_back(std::move(step));
              ab.filters.push_back({rec_j, rec_driving, rec_node});
              return true;
            }
          }
        }
        return false;
      };

      if (pred_recursive) {
        ab.kind = AdornBranch::Kind::kLost;
        ab.lost_code = std::string(kDiagAdornmentNegation);
        ab.detail =
            "lost (W222): a recursive reference occurs inside the branch "
            "predicate; relevance cannot be restricted";
      } else if (recursive.size() >= 2) {
        ab.kind = AdornBranch::Kind::kLost;
        ab.lost_code = std::string(kDiagAdornmentNonLinear);
        ab.detail = "lost (W220): the adornment is lost across a non-linear "
                    "branch (" +
                    std::to_string(recursive.size()) +
                    " recursive bindings)";
      } else {
        std::optional<std::pair<size_t, int>> src = target_source(scan, a);
        const Value* literal = target_literal(scan, a);
        const std::string bound_field =
            nodes[t].result_schema.field(a).name;
        if (src.has_value() && !recursive.empty() &&
            src->first == recursive[0]) {
          // The bound attribute is copied out of the recursive binding
          // itself: the relevant values propagate verbatim.
          const int rec_node = scan.bindings[src->first].node;
          if (driving[static_cast<size_t>(rec_node)] == src->second) {
            ab.kind = AdornBranch::Kind::kPropagating;
            ab.filters.push_back({src->first, src->second, rec_node});
            AdornBranch::Transfer step;
            step.target_node = rec_node;
            ab.transfers.push_back(std::move(step));
            ab.detail = "propagating: '" + bound_field +
                        "' flows verbatim through recursive binding '" +
                        scan.branch->bindings()[src->first].var + "'";
          } else {
            ab.kind = AdornBranch::Kind::kLost;
            ab.lost_code = std::string(kDiagAdornmentFreeJoin);
            ab.detail = "lost (W221): the bound attribute does not align "
                        "with the recursive occurrence's adornment";
          }
        } else if (src.has_value()) {
          const auto& [source_binding, source_field] = *src;
          ab.filters.push_back(
              {source_binding, source_field, static_cast<int>(t)});
          const int source_node = scan.bindings[source_binding].node;
          if (source_node >= 0 &&
              !same_component(source_node, static_cast<int>(t))) {
            AdornBranch::Transfer step;
            step.target_node = source_node;
            ab.transfers.push_back(std::move(step));
          }
          if (recursive.empty()) {
            ab.kind = AdornBranch::Kind::kPushable;
            ab.detail = "pushable: restrict binding '" +
                        scan.branch->bindings()[source_binding].var +
                        "' on field '" +
                        scan.bindings[source_binding]
                            .schema->field(source_field)
                            .name +
                        "'";
          } else if (constrain_recursive(recursive[0], src)) {
            ab.kind = AdornBranch::Kind::kPropagating;
            ab.detail = "propagating: magic step carries '" + bound_field +
                        "' into recursive binding '" +
                        scan.branch->bindings()[recursive[0]].var + "'";
          } else {
            ab.kind = AdornBranch::Kind::kLost;
            ab.lost_code = std::string(kDiagAdornmentFreeJoin);
            ab.detail = "lost (W221): no equality conjunct carries the "
                        "bound value into recursive binding '" +
                        scan.branch->bindings()[recursive[0]].var + "'";
          }
        } else if (literal != nullptr && recursive.empty()) {
          ab.kind = AdornBranch::Kind::kPushable;
          ab.detail = "pushable: '" + bound_field +
                      "' is constant-valued (" + literal->ToString() + ")";
        } else if (literal != nullptr &&
                   constrain_recursive(recursive[0], std::nullopt)) {
          ab.kind = AdornBranch::Kind::kPropagating;
          ab.detail = "propagating: constant '" + bound_field +
                      "' branch with seeded recursive binding";
        } else if (recursive.empty()) {
          ab.kind = AdornBranch::Kind::kPushable;
          ab.detail = "pushable: '" + bound_field +
                      "' is computed (no range restriction)";
        } else {
          ab.kind = AdornBranch::Kind::kLost;
          ab.lost_code = std::string(kDiagAdornmentFreeJoin);
          ab.detail = "lost (W221): the bound attribute is not a direct "
                      "field copy; the binding is dropped by a free-variable "
                      "join";
        }
      }
      if (ab.kind == AdornBranch::Kind::kLost) {
        ab.filters.clear();
        ab.transfers.clear();
        ab.seeds.clear();
      }
      adorned.branches.push_back(std::move(ab));
    }
  }

  // --- Component eligibility: every member adorned, every branch usable.
  std::vector<bool> component_ok(
      static_cast<size_t>(scc.component_count()), true);
  for (size_t t = 0; t < n; ++t) {
    const size_t comp = static_cast<size_t>(scc.component_of[t]);
    if (driving[t] < 0) {
      component_ok[comp] = false;
      continue;
    }
    for (const AdornBranch& ab : out.nodes[t].branches) {
      if (ab.kind == AdornBranch::Kind::kLost) component_ok[comp] = false;
    }
  }

  // --- Coverage: a node may only be restricted when every use site's
  // demand reaches its magic set — through a static seed, or through a
  // transfer recorded by an active owner. Deactivation cascades. ---
  std::vector<bool> active(n, false);
  for (size_t t = 0; t < n; ++t) {
    active[t] = driving[t] >= 0 &&
                component_ok[static_cast<size_t>(scc.component_of[t])];
  }
  changed = true;
  while (changed) {
    changed = false;
    for (const Site& site : sites) {
      const size_t t = static_cast<size_t>(site.target);
      if (!active[t]) continue;
      bool covered = site.static_attrs.count(driving[t]) > 0;
      if (!covered && site.owner >= 0 &&
          active[static_cast<size_t>(site.owner)]) {
        const AdornBranch& ab =
            out.nodes[static_cast<size_t>(site.owner)]
                .branches[static_cast<size_t>(site.branch_index)];
        for (const AdornBranch::Transfer& step : ab.transfers) {
          if (step.target_node == site.target) {
            covered = true;
            break;
          }
        }
      }
      if (!covered) {
        const int comp = scc.component_of[t];
        for (size_t m = 0; m < n; ++m) {
          if (scc.component_of[m] == comp && active[m]) {
            active[m] = false;
            changed = true;
          }
        }
      }
    }
  }
  for (size_t t = 0; t < n; ++t) {
    out.nodes[t].specializable = active[t];
    if (active[t]) out.any_specializable = true;
  }

  // --- Root seeds: every static equality on an active node's driving
  // attribute feeds the relevant-value closure (extra values are sound). ---
  for (const Site& site : sites) {
    const size_t t = static_cast<size_t>(site.target);
    if (!active[t]) continue;
    auto it = site.static_attrs.find(driving[t]);
    if (it == site.static_attrs.end()) continue;
    for (const AdornSeed& seed : it->second) {
      out.nodes[t].seeds.push_back(seed);
    }
  }

  // --- Diagnostics: only for applications someone actually tried to bind
  // (a static equality exists) that are provably unspecializable. ---
  std::vector<bool> requested(n, false);
  for (const Site& site : sites) {
    if (!site.static_attrs.empty()) {
      requested[static_cast<size_t>(site.target)] = true;
    }
  }
  std::vector<bool> component_reported(
      static_cast<size_t>(scc.component_count()), false);
  for (size_t t = 0; t < n; ++t) {
    if (!requested[t] || active[t]) continue;
    const size_t comp = static_cast<size_t>(scc.component_of[t]);
    if (component_reported[comp]) continue;
    component_reported[comp] = true;
    bool emitted = false;
    for (const Site& site : sites) {
      if (site.target == static_cast<int>(t) && site.negated) {
        out.diagnostics.push_back(MakeDiagnostic(
            kDiagAdornmentNegation,
            "application '" + nodes[t].key +
                "': relevance propagation is blocked by a reference under "
                "negation; evaluated unspecialized"));
        emitted = true;
        break;
      }
    }
    if (!emitted) {
      for (size_t m = 0; m < n && !emitted; ++m) {
        if (scc.component_of[m] != static_cast<int>(comp)) continue;
        for (const AdornBranch& ab : out.nodes[m].branches) {
          if (ab.kind != AdornBranch::Kind::kLost) continue;
          out.diagnostics.push_back(MakeDiagnostic(
              ab.lost_code, "application '" + nodes[m].key + "': " +
                                ab.detail + "; evaluated unspecialized"));
          emitted = true;
          break;
        }
      }
    }
    if (!emitted) {
      out.diagnostics.push_back(MakeDiagnostic(
          kDiagAdornmentFreeJoin,
          "application '" + nodes[t].key +
              "': the bound attribute is not constrained at every use site; "
              "evaluated unspecialized"));
    }
  }

  return out;
}

}  // namespace datacon
