// Definitions of the Database lint entry points declared in core/database.h.
// They live in datacon_analysis (not datacon_core) so that core does not
// depend on the analysis library; only callers of Database::Lint link it.

#include <string>
#include <vector>

#include "analysis/lint.h"
#include "core/database.h"

namespace datacon {

namespace {

LintOptions OptionsOf(const DatabaseOptions& db_options) {
  LintOptions options;
  options.allow_stratified_negation = db_options.allow_stratified_negation;
  options.types = db_options.typecheck;
  return options;
}

}  // namespace

LintReport Database::Lint() const {
  return LintCatalogDecls(catalog_, OptionsOf(options_));
}

Result<LintReport> Database::Lint(const std::string& name) const {
  LintReport report;
  Result<const SelectorDecl*> selector = catalog_.LookupSelector(name);
  if (selector.ok()) {
    report.Append(LintSelector(*selector.value(), catalog_));
  } else {
    auto it = catalog_.constructors().find(name);
    if (it == catalog_.constructors().end()) {
      return Status::NotFound("no selector or constructor named '" + name +
                              "'");
    }
    // The group API so recursion classification sees the whole catalog.
    report.Append(
        LintConstructorGroup({it->second}, catalog_, OptionsOf(options_)));
  }
  report.SortBySpan();
  return report;
}

}  // namespace datacon
