#include "analysis/lint.h"

#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "analysis/constraint.h"
#include "analysis/fold.h"
#include "analysis/typecheck.h"
#include "ast/printer.h"
#include "core/positivity.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "ra/analysis.h"

namespace datacon {

namespace {

// --- Walkers ---------------------------------------------------------------

/// Visits `range` and, recursively, every constructor-argument range nested
/// inside its application chain (all at the same position in the source).
void ForEachRangeDeep(const Range& range,
                      const std::function<void(const Range&)>& fn) {
  fn(range);
  for (const RangeApp& app : range.apps()) {
    for (const RangePtr& arg : app.range_args) ForEachRangeDeep(*arg, fn);
  }
}

void CollectParamRefs(const Term& term, std::set<std::string>* out) {
  switch (term.kind()) {
    case Term::Kind::kParamRef:
      out->insert(static_cast<const ParamRefTerm&>(term).name());
      break;
    case Term::Kind::kArith: {
      const auto& arith = static_cast<const ArithTerm&>(term);
      CollectParamRefs(*arith.lhs(), out);
      CollectParamRefs(*arith.rhs(), out);
      break;
    }
    case Term::Kind::kFieldRef:
    case Term::Kind::kLiteral:
      break;
  }
}

void CollectParamRefs(const Range& range, std::set<std::string>* out) {
  ForEachRangeDeep(range, [out](const Range& r) {
    for (const RangeApp& app : r.apps()) {
      for (const TermPtr& t : app.term_args) CollectParamRefs(*t, out);
    }
  });
}

void CollectParamRefs(const Pred& pred, std::set<std::string>* out) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      break;
    case Pred::Kind::kCompare: {
      const auto& cmp = static_cast<const ComparePred&>(pred);
      CollectParamRefs(*cmp.lhs(), out);
      CollectParamRefs(*cmp.rhs(), out);
      break;
    }
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        CollectParamRefs(*op, out);
      }
      break;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        CollectParamRefs(*op, out);
      }
      break;
    case Pred::Kind::kNot:
      CollectParamRefs(*static_cast<const NotPred&>(pred).operand(), out);
      break;
    case Pred::Kind::kQuant: {
      const auto& quant = static_cast<const QuantPred&>(pred);
      CollectParamRefs(*quant.range(), out);
      CollectParamRefs(*quant.body(), out);
      break;
    }
    case Pred::Kind::kIn: {
      const auto& in = static_cast<const InPred&>(pred);
      for (const TermPtr& t : in.tuple()) CollectParamRefs(*t, out);
      CollectParamRefs(*in.range(), out);
      break;
    }
  }
}

/// Tuple variables referenced by a range's selector arguments (a correlated
/// range such as `Rel [near(r.pos)]`).
void CollectRangeFreeVars(const Range& range, std::set<std::string>* out) {
  ForEachRangeDeep(range, [out](const Range& r) {
    for (const RangeApp& app : r.apps()) {
      for (const TermPtr& t : app.term_args) CollectFreeVars(*t, out);
    }
  });
}

/// Constructor names applied anywhere inside `range` (deep).
void CollectCtorNames(const Range& range, std::set<std::string>* out) {
  ForEachRangeDeep(range, [out](const Range& r) {
    for (const RangeApp& app : r.apps()) {
      if (app.kind == RangeApp::Kind::kConstructor) out->insert(app.name);
    }
  });
}

bool RangeMentionsCtor(const Range& range, const std::set<std::string>& names) {
  bool found = false;
  ForEachRangeDeep(range, [&](const Range& r) {
    if (found) return;
    for (const RangeApp& app : r.apps()) {
      if (app.kind == RangeApp::Kind::kConstructor && names.count(app.name)) {
        found = true;
        return;
      }
    }
  });
  return found;
}

/// Every range occurring in a predicate (quantifier and membership ranges).
void ForEachPredRange(const Pred& pred,
                      const std::function<void(const Range&)>& fn) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
    case Pred::Kind::kCompare:
      break;
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        ForEachPredRange(*op, fn);
      }
      break;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        ForEachPredRange(*op, fn);
      }
      break;
    case Pred::Kind::kNot:
      ForEachPredRange(*static_cast<const NotPred&>(pred).operand(), fn);
      break;
    case Pred::Kind::kQuant: {
      const auto& quant = static_cast<const QuantPred&>(pred);
      fn(*quant.range());
      ForEachPredRange(*quant.body(), fn);
      break;
    }
    case Pred::Kind::kIn:
      fn(*static_cast<const InPred&>(pred).range());
      break;
  }
}

// --- Name resolution -------------------------------------------------------

/// Resolution context of one declaration body: the catalog plus the formal
/// names the declaration introduces and any not-yet-registered constructors
/// of the same definition group.
struct NameEnv {
  const Catalog* catalog = nullptr;
  std::set<std::string> relation_params;
  std::set<std::string> scalar_params;
  std::set<std::string> pending_ctors;

  bool KnownRelation(const std::string& name) const {
    return relation_params.count(name) > 0 ||
           catalog->LookupRelation(name).ok();
  }
  bool KnownSelector(const std::string& name) const {
    return catalog->LookupSelector(name).ok();
  }
  bool KnownConstructor(const std::string& name) const {
    return pending_ctors.count(name) > 0 ||
           catalog->LookupConstructor(name).ok();
  }
};

/// E101 for every unresolvable name in `range` (deep). `loc` is the nearest
/// enclosing source position (ranges carry none of their own).
void CheckRangeNames(const Range& range, const NameEnv& env, SourceLoc loc,
                     std::vector<Diagnostic>* out) {
  ForEachRangeDeep(range, [&](const Range& r) {
    if (!env.KnownRelation(r.relation())) {
      out->push_back(MakeDiagnostic(
          kDiagUnknownName, "unknown relation '" + r.relation() + "'", loc));
    }
    for (const RangeApp& app : r.apps()) {
      if (app.kind == RangeApp::Kind::kSelector) {
        if (!env.KnownSelector(app.name)) {
          out->push_back(MakeDiagnostic(
              kDiagUnknownName, "unknown selector '" + app.name + "'", loc));
        }
      } else if (!env.KnownConstructor(app.name)) {
        out->push_back(MakeDiagnostic(
            kDiagUnknownName, "unknown constructor '" + app.name + "'", loc));
      }
    }
  });
}

/// Resolves names and reports W203 shadowing through a predicate, tracking
/// the tuple variables in scope.
void WalkPred(const Pred& pred, const NameEnv& env,
              std::set<std::string>* bound, SourceLoc enclosing_loc,
              std::vector<Diagnostic>* out) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
    case Pred::Kind::kCompare:
      break;
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        WalkPred(*op, env, bound, enclosing_loc, out);
      }
      break;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        WalkPred(*op, env, bound, enclosing_loc, out);
      }
      break;
    case Pred::Kind::kNot:
      WalkPred(*static_cast<const NotPred&>(pred).operand(), env, bound,
               enclosing_loc, out);
      break;
    case Pred::Kind::kQuant: {
      const auto& quant = static_cast<const QuantPred&>(pred);
      SourceLoc loc = quant.loc().valid() ? quant.loc() : enclosing_loc;
      CheckRangeNames(*quant.range(), env, loc, out);
      if (env.scalar_params.count(quant.var())) {
        out->push_back(MakeDiagnostic(
            kDiagShadowedName, "quantifier variable '" + quant.var() +
                                   "' shadows scalar parameter '" +
                                   quant.var() + "'",
            loc));
      } else if (bound->count(quant.var())) {
        out->push_back(MakeDiagnostic(
            kDiagShadowedName, "quantifier variable '" + quant.var() +
                                   "' shadows an enclosing variable",
            loc));
      }
      bool inserted = bound->insert(quant.var()).second;
      WalkPred(*quant.body(), env, bound, loc, out);
      if (inserted) bound->erase(quant.var());
      break;
    }
    case Pred::Kind::kIn:
      CheckRangeNames(*static_cast<const InPred&>(pred).range(), env,
                      enclosing_loc, out);
      break;
  }
}

// --- Branch passes ---------------------------------------------------------

/// Connectivity over a branch's binding variables (W204).
class UnionFind {
 public:
  void Add(const std::string& x) { parent_.emplace(x, x); }
  bool Contains(const std::string& x) const { return parent_.count(x) > 0; }
  const std::string& Find(const std::string& x) {
    const std::string* cur = &x;
    while (parent_.at(*cur) != *cur) cur = &parent_.at(*cur);
    return *cur;
  }
  void Union(const std::string& a, const std::string& b) {
    std::string ra = Find(a);
    std::string rb = Find(b);
    if (ra != rb) parent_[ra] = rb;
  }
  size_t ComponentCount() {
    std::set<std::string> roots;
    for (const auto& [node, parent] : parent_) roots.insert(Find(node));
    return roots.size();
  }

 private:
  std::map<std::string, std::string> parent_;
};

/// The passes shared by constructor branches and query branches: E101 name
/// resolution, E110 unsafe variables, W201 unused bindings, W203 shadowing,
/// W204 cross products, W205 dead branches, W206 constant conjuncts.
void LintBranch(const Branch& branch, const NameEnv& env,
                std::vector<Diagnostic>* out) {
  const SourceLoc branch_loc = branch.loc();
  std::set<std::string> binding_vars;
  for (const Binding& b : branch.bindings()) {
    SourceLoc loc = b.loc.valid() ? b.loc : branch_loc;
    CheckRangeNames(*b.range, env, loc, out);
    if (env.scalar_params.count(b.var)) {
      out->push_back(MakeDiagnostic(
          kDiagShadowedName,
          "tuple variable '" + b.var + "' shadows scalar parameter '" + b.var +
              "'",
          loc));
    }
    if (!binding_vars.insert(b.var).second) {
      out->push_back(MakeDiagnostic(
          kDiagShadowedName,
          "tuple variable '" + b.var +
              "' rebinds an earlier binding of the same branch",
          loc));
    }
  }

  std::set<std::string> in_scope = binding_vars;
  WalkPred(*branch.pred(), env, &in_scope, branch_loc, out);

  // E110: a free variable of the predicate or target list that no binding
  // introduces ranges over nothing — the declaration is unsafe.
  std::set<std::string> free = FreeVars(*branch.pred());
  if (branch.targets().has_value()) {
    for (const TermPtr& t : *branch.targets()) CollectFreeVars(*t, &free);
  }
  for (const std::string& v : free) {
    if (binding_vars.count(v) == 0) {
      out->push_back(MakeDiagnostic(
          kDiagUnsafeVariable,
          "variable '" + v + "' is not bound by any range", branch_loc));
    }
  }

  // W201: a binding no conjunct and no target mentions contributes nothing
  // but a cardinality factor. Identity branches use their single binding as
  // the implicit target.
  std::set<std::string> used = FreeVars(*branch.pred());
  for (const Binding& b : branch.bindings()) {
    CollectRangeFreeVars(*b.range, &used);
  }
  if (branch.targets().has_value()) {
    for (const TermPtr& t : *branch.targets()) CollectFreeVars(*t, &used);
    for (const Binding& b : branch.bindings()) {
      if (used.count(b.var) == 0) {
        out->push_back(MakeDiagnostic(
            kDiagUnusedBinding,
            "tuple variable '" + b.var +
                "' is bound but used neither in the predicate nor in the "
                "target list",
            b.loc.valid() ? b.loc : branch_loc));
      }
    }
  }

  // W204: with several bindings, every binding variable should be linked to
  // the others through some conjunct (or a correlated range); otherwise the
  // branch enumerates a cross product.
  if (binding_vars.size() >= 2) {
    UnionFind uf;
    for (const std::string& v : binding_vars) uf.Add(v);
    auto link = [&](const std::set<std::string>& vars) {
      const std::string* first = nullptr;
      for (const std::string& v : vars) {
        if (binding_vars.count(v) == 0) continue;
        if (first == nullptr) {
          first = &v;
        } else {
          uf.Union(*first, v);
        }
      }
    };
    for (const PredPtr& conjunct : FlattenConjuncts(branch.pred())) {
      link(FreeVars(*conjunct));
    }
    for (const Binding& b : branch.bindings()) {
      std::set<std::string> corr;
      CollectRangeFreeVars(*b.range, &corr);
      corr.insert(b.var);
      link(corr);
    }
    size_t groups = uf.ComponentCount();
    if (groups > 1) {
      out->push_back(MakeDiagnostic(
          kDiagCrossProduct,
          "the " + std::to_string(binding_vars.size()) +
              " bindings fall into " + std::to_string(groups) +
              " groups not linked by any conjunct; the branch enumerates a "
              "cross product",
          branch_loc));
    }
  }

  // W205 / W206 via constant folding.
  FoldOutcome whole = FoldPred(*branch.pred());
  if (whole == FoldOutcome::kFalse) {
    out->push_back(MakeDiagnostic(
        kDiagAlwaysFalseBranch,
        "the predicate folds to FALSE; the branch never produces tuples",
        branch_loc));
  } else if (branch.pred()->kind() == Pred::Kind::kAnd) {
    for (const PredPtr& op :
         static_cast<const AndPred&>(*branch.pred()).operands()) {
      if (FoldPred(*op) == FoldOutcome::kTrue) {
        out->push_back(MakeDiagnostic(
            kDiagConstantConjunct,
            "conjunct '" + ToString(*op) +
                "' folds to TRUE and never restricts the branch",
            branch_loc));
      }
    }
  } else if (whole == FoldOutcome::kTrue &&
             branch.pred()->kind() != Pred::Kind::kBool) {
    // A literal TRUE is the idiomatic copy branch (`EACH r IN Rel: TRUE`);
    // anything else that folds to TRUE is an accident.
    out->push_back(MakeDiagnostic(
        kDiagConstantConjunct,
        "predicate '" + ToString(*branch.pred()) +
            "' folds to TRUE and never restricts the branch",
        branch_loc));
  }
}

/// W207 over the branches of one body.
void LintDuplicateBranches(const CalcExpr& body,
                           std::vector<Diagnostic>* out) {
  std::map<std::string, size_t> seen;
  for (size_t i = 0; i < body.branches().size(); ++i) {
    const Branch& branch = *body.branches()[i];
    auto [it, inserted] = seen.emplace(ToString(branch), i + 1);
    if (!inserted) {
      out->push_back(MakeDiagnostic(
          kDiagDuplicateBranch,
          "branch " + std::to_string(i + 1) + " repeats branch " +
              std::to_string(it->second) + " verbatim",
          branch.loc()));
    }
  }
}

// --- Recursion classification ----------------------------------------------

/// Constructor names referenced anywhere in `decl`'s body (bindings,
/// quantifier ranges, membership ranges; deep through constructor args).
std::set<std::string> ReferencedCtors(const ConstructorDecl& decl) {
  std::set<std::string> out;
  for (const BranchPtr& branch : decl.body()->branches()) {
    for (const Binding& b : branch->bindings()) CollectCtorNames(*b.range, &out);
    ForEachPredRange(*branch->pred(),
                     [&](const Range& r) { CollectCtorNames(r, &out); });
  }
  return out;
}

/// Per-SCC recursion classification over `all` (catalog constructors plus a
/// pending group), reporting only for the names in `targets`: W210
/// non-differentiable branches, W211 non-linear recursion, and the parity
/// report E103/W212 for constructed ranges under odd NOT/ALL nesting.
void ClassifyRecursion(
    const std::vector<std::pair<std::string, const ConstructorDecl*>>& all,
    const std::set<std::string>& targets, const LintOptions& options,
    std::vector<Diagnostic>* out) {
  std::map<std::string, int> index;
  for (size_t i = 0; i < all.size(); ++i) {
    index.emplace(all[i].first, static_cast<int>(i));
  }
  Digraph graph(static_cast<int>(all.size()));
  for (size_t i = 0; i < all.size(); ++i) {
    for (const std::string& ref : ReferencedCtors(*all[i].second)) {
      auto it = index.find(ref);
      if (it != index.end()) graph.AddEdge(static_cast<int>(i), it->second);
    }
  }
  SccDecomposition scc = ComputeScc(graph);

  for (size_t i = 0; i < all.size(); ++i) {
    const auto& [name, decl] = all[i];
    if (targets.count(name) == 0) continue;
    int comp = scc.component_of[i];
    std::set<std::string> in_component;
    if (scc.cyclic[static_cast<size_t>(comp)]) {
      for (int node : scc.components[static_cast<size_t>(comp)]) {
        in_component.insert(all[static_cast<size_t>(node)].first);
      }
    }

    for (const BranchPtr& branch : decl->body()->branches()) {
      const SourceLoc loc = branch->loc();
      if (!in_component.empty()) {
        int recursive_bindings = 0;
        for (const Binding& b : branch->bindings()) {
          if (RangeMentionsCtor(*b.range, in_component)) ++recursive_bindings;
        }
        bool recursive_pred = false;
        ForEachPredRange(*branch->pred(), [&](const Range& r) {
          if (RangeMentionsCtor(r, in_component)) recursive_pred = true;
        });
        if (recursive_pred) {
          out->push_back(MakeDiagnostic(
              kDiagNonDifferentiable,
              "the branch predicate references the recursive component of '" +
                  name +
                  "'; semi-naive evaluation falls back to full "
                  "re-evaluation for this branch",
              loc));
        }
        if (recursive_bindings >= 2) {
          out->push_back(MakeDiagnostic(
              kDiagNonLinearRecursion,
              "the branch binds " + std::to_string(recursive_bindings) +
                  " recursive ranges (non-linear recursion); each fixpoint "
                  "round is quadratic in the new tuples",
              loc));
        }
      }

      // Parity report: constructed ranges under odd NOT/ALL nesting are
      // either outright non-stratifiable (recursive with themselves) or
      // stratified negation (accepted only with allow_stratified_negation).
      ForEachRangeWithParity(*branch, [&](const Range& range, int parity) {
        if (parity % 2 == 0) return;
        std::set<std::string> ctors;
        CollectCtorNames(range, &ctors);
        for (const std::string& ctor : ctors) {
          if (in_component.count(ctor) > 0) {
            out->push_back(MakeDiagnostic(
                kDiagNonStratifiable,
                "constructed range '{" + ctor +
                    "}' occurs under an odd number of NOTs/ALLs inside its "
                    "own recursive component",
                loc));
          } else if (options.allow_stratified_negation) {
            out->push_back(MakeDiagnostic(
                kDiagStratifiedNegation,
                "constructed range '{" + ctor +
                    "}' occurs under an odd number of NOTs/ALLs; accepted "
                    "as stratified negation",
                loc));
          } else {
            out->push_back(MakeDiagnostic(
                kDiagNonStratifiable,
                "constructed range '{" + ctor +
                    "}' occurs under an odd number of NOTs/ALLs (the "
                    "positivity constraint of section 3.3)",
                loc));
          }
        }
      });
    }
  }
}

}  // namespace

// --- Entry points ----------------------------------------------------------

std::vector<Diagnostic> LintSelector(const SelectorDecl& decl,
                                     const Catalog& catalog) {
  std::vector<Diagnostic> out;
  const SourceLoc decl_loc = decl.loc();

  Result<const SelectorDecl*> existing = catalog.LookupSelector(decl.name());
  if (existing.ok() && existing.value() != &decl) {
    out.push_back(MakeDiagnostic(
        kDiagRedefinition, "selector '" + decl.name() + "' is already defined",
        decl_loc));
  }

  NameEnv env;
  env.catalog = &catalog;
  env.relation_params.insert(decl.base().name);
  for (const FormalScalar& p : decl.params()) env.scalar_params.insert(p.name);

  if (env.scalar_params.count(decl.var()) > 0) {
    out.push_back(MakeDiagnostic(
        kDiagShadowedName, "tuple variable '" + decl.var() +
                               "' shadows scalar parameter '" + decl.var() +
                               "'",
        decl_loc));
  }

  std::set<std::string> in_scope = {decl.var()};
  WalkPred(*decl.pred(), env, &in_scope, decl_loc, &out);

  for (const std::string& v : FreeVars(*decl.pred())) {
    if (v != decl.var()) {
      out.push_back(MakeDiagnostic(
          kDiagUnsafeVariable,
          "variable '" + v + "' is not bound by any range", decl_loc));
    }
  }

  std::set<std::string> used_params;
  CollectParamRefs(*decl.pred(), &used_params);
  for (const FormalScalar& p : decl.params()) {
    if (used_params.count(p.name) == 0) {
      out.push_back(MakeDiagnostic(
          kDiagUnusedParameter,
          "scalar parameter '" + p.name + "' is never referenced", decl_loc));
    }
  }

  FoldOutcome whole = FoldPred(*decl.pred());
  if (whole == FoldOutcome::kFalse) {
    out.push_back(MakeDiagnostic(
        kDiagAlwaysFalseBranch,
        "the predicate folds to FALSE; the selector selects nothing",
        decl_loc));
  } else if (decl.pred()->kind() == Pred::Kind::kAnd) {
    for (const PredPtr& op :
         static_cast<const AndPred&>(*decl.pred()).operands()) {
      if (FoldPred(*op) == FoldOutcome::kTrue) {
        out.push_back(MakeDiagnostic(
            kDiagConstantConjunct,
            "conjunct '" + ToString(*op) +
                "' folds to TRUE and never restricts the selection",
            decl_loc));
      }
    }
  } else if (whole == FoldOutcome::kTrue &&
             decl.pred()->kind() != Pred::Kind::kBool) {
    out.push_back(MakeDiagnostic(
        kDiagConstantConjunct,
        "predicate '" + ToString(*decl.pred()) +
            "' folds to TRUE; the selector never filters",
        decl_loc));
  }
  return out;
}

std::vector<Diagnostic> LintConstructorGroup(
    const std::vector<ConstructorDeclPtr>& group, const Catalog& catalog,
    const LintOptions& options) {
  std::vector<Diagnostic> out;
  std::set<std::string> group_names;
  for (const ConstructorDeclPtr& decl : group) group_names.insert(decl->name());

  std::set<std::string> earlier_in_group;
  for (const ConstructorDeclPtr& decl : group) {
    const SourceLoc decl_loc = decl->loc();
    Result<const ConstructorDecl*> existing =
        catalog.LookupConstructor(decl->name());
    if ((existing.ok() && existing.value() != decl.get()) ||
        !earlier_in_group.insert(decl->name()).second) {
      out.push_back(MakeDiagnostic(
          kDiagRedefinition,
          "constructor '" + decl->name() + "' is already defined", decl_loc));
    }

    NameEnv env;
    env.catalog = &catalog;
    env.pending_ctors = group_names;
    env.relation_params.insert(decl->base().name);
    for (const FormalRelation& p : decl->rel_params()) {
      env.relation_params.insert(p.name);
    }
    for (const FormalScalar& p : decl->scalar_params()) {
      env.scalar_params.insert(p.name);
    }

    for (const BranchPtr& branch : decl->body()->branches()) {
      LintBranch(*branch, env, &out);
    }
    LintDuplicateBranches(*decl->body(), &out);

    // W202: formal parameters the body never mentions.
    std::set<std::string> used_params;
    std::set<std::string> used_relations;
    for (const BranchPtr& branch : decl->body()->branches()) {
      CollectParamRefs(*branch->pred(), &used_params);
      if (branch->targets().has_value()) {
        for (const TermPtr& t : *branch->targets()) {
          CollectParamRefs(*t, &used_params);
        }
      }
      auto note_relations = [&](const Range& r) {
        ForEachRangeDeep(r, [&](const Range& inner) {
          used_relations.insert(inner.relation());
        });
        CollectParamRefs(r, &used_params);
      };
      for (const Binding& b : branch->bindings()) note_relations(*b.range);
      ForEachPredRange(*branch->pred(), note_relations);
    }
    for (const FormalScalar& p : decl->scalar_params()) {
      if (used_params.count(p.name) == 0) {
        out.push_back(MakeDiagnostic(
            kDiagUnusedParameter,
            "scalar parameter '" + p.name + "' is never referenced",
            decl_loc));
      }
    }
    for (const FormalRelation& p : decl->rel_params()) {
      if (used_relations.count(p.name) == 0) {
        out.push_back(MakeDiagnostic(
            kDiagUnusedParameter,
            "relation parameter '" + p.name + "' is never used as a range",
            decl_loc));
      }
    }
    if (used_relations.count(decl->base().name) == 0) {
      out.push_back(MakeDiagnostic(
          kDiagUnusedParameter,
          "base relation parameter '" + decl->base().name +
              "' is never used as a range",
          decl_loc));
    }
  }

  // Recursion classification sees the whole constructor universe: the
  // catalog plus the pending group (the group wins on a name clash, so a
  // redefinition is classified by its new body).
  std::vector<std::pair<std::string, const ConstructorDecl*>> all;
  for (const auto& [name, decl] : catalog.constructors()) {
    if (group_names.count(name) == 0) all.emplace_back(name, decl.get());
  }
  for (const ConstructorDeclPtr& decl : group) {
    all.emplace_back(decl->name(), decl.get());
  }
  ClassifyRecursion(all, group_names, options, &out);
  return out;
}

std::vector<Diagnostic> LintConstructor(const ConstructorDecl& decl,
                                        const Catalog& catalog,
                                        const LintOptions& options) {
  // Wrap in a non-owning shared_ptr; the group API wants shared ownership
  // but never stores it beyond the call.
  ConstructorDeclPtr alias(&decl, [](const ConstructorDecl*) {});
  return LintConstructorGroup({alias}, catalog, options);
}

std::vector<Diagnostic> LintQueryExpr(const CalcExpr& expr,
                                      const Catalog& catalog) {
  std::vector<Diagnostic> out;
  NameEnv env;
  env.catalog = &catalog;
  for (const BranchPtr& branch : expr.branches()) {
    LintBranch(*branch, env, &out);
  }
  LintDuplicateBranches(expr, &out);
  return out;
}

std::vector<Diagnostic> LintQueryRange(const Range& range,
                                       const Catalog& catalog) {
  std::vector<Diagnostic> out;
  NameEnv env;
  env.catalog = &catalog;
  CheckRangeNames(range, env, SourceLoc{}, &out);
  return out;
}

LintReport LintCatalogDecls(const Catalog& catalog,
                            const LintOptions& options) {
  LintReport report;
  for (const auto& entry : catalog.selectors()) {
    report.Append(LintSelector(*entry.second, catalog));
  }
  std::vector<ConstructorDeclPtr> all;
  for (const auto& entry : catalog.constructors()) {
    all.push_back(entry.second);
  }
  report.Append(LintConstructorGroup(all, catalog, options));
  for (const auto& entry : catalog.constraints()) {
    report.Append(LintConstraint(*entry.second, catalog));
  }
  if (options.types) {
    report.Append(InferCatalogTypes(catalog).diagnostics);
  }
  report.SortBySpan();
  return report;
}

}  // namespace datacon
