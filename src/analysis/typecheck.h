#ifndef DATACON_ANALYSIS_TYPECHECK_H_
#define DATACON_ANALYSIS_TYPECHECK_H_

#include <map>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/source_loc.h"
#include "core/catalog.h"
#include "types/value.h"

namespace datacon {

/// Whole-program type inference (DESIGN §4.16).
///
/// Computes a static ValueType for every derived-relation attribute by
/// propagating types from branch target lists and identity ranges through
/// constructor recursion, over the SCC condensation of the constructor
/// reference graph. The lattice per attribute is
///
///     unknown  ⊑  INTEGER | STRING | BOOLEAN  ⊑  conflict
///
/// Inference is *bottom-up* — it never seeds from the declared result
/// schemas, so comparing the inferred types against the declarations yields
/// genuine findings: E130 when two contributions (or a contribution and the
/// declaration) disagree, W241 when no branch constrains an attribute at
/// all. A walk over every predicate adds E131 (ill-typed arithmetic or
/// ordered comparison), W240 (equality between statically disjoint types —
/// a constant truth value), and E132 (transitive-closure capture shape over
/// a non-binary relation, promoted from capture.cc's runtime error).
///
/// A catalog whose every definition passes these checks is *typed-proven*:
/// evaluation may run the fast Evaluator variant that replaces per-tuple
/// Value::type() dispatch with debug-only assertions (ra/eval.h).

/// One attribute's inference cell. `loc`/`origin` describe the first
/// contribution that fixed the type; `other_*` the contribution that
/// conflicted with it (valid only in the kConflict state).
struct InferredType {
  enum class State { kUnknown, kKnown, kConflict };

  State state = State::kUnknown;
  ValueType type = ValueType::kInt;
  SourceLoc loc;
  std::string origin;
  ValueType other_type = ValueType::kInt;
  SourceLoc other_loc;
  std::string other_origin;

  static InferredType Unknown() { return InferredType{}; }
  static InferredType Known(ValueType type, SourceLoc loc, std::string origin);

  /// "INTEGER", "?", or "<conflict>".
  std::string ToString() const;
};

/// The inferred full schema (names + types) of one derived relation.
struct InferredSchema {
  std::vector<std::string> names;
  std::vector<InferredType> columns;

  /// "RECORD src: STRING; len: INTEGER END" with "?" for unknown columns.
  std::string ToString() const;
};

/// The outcome of inference over a whole catalog.
struct TypeInference {
  /// Constructor name -> inferred result schema.
  std::map<std::string, InferredSchema> constructors;
  std::vector<Diagnostic> diagnostics;

  bool HasErrors() const;
};

/// Runs inference and checking over every selector and constructor in the
/// catalog. Constructors are processed as one group, so mutual recursion
/// across existing definitions is typed precisely.
TypeInference InferCatalogTypes(const Catalog& catalog);

/// Type-checks one constructor group (the unit of mutual recursion) against
/// `catalog`. Members of `group` are resolved from the group itself, so the
/// pass works whether or not they are registered in the catalog yet — the
/// define path calls it before committing, the lint path after provisional
/// registration.
std::vector<Diagnostic> TypecheckConstructorGroup(
    const std::vector<ConstructorDeclPtr>& group, const Catalog& catalog);

/// Type-checks a selector body (E131/W240 findings; the binding structure
/// itself is level-1's job).
std::vector<Diagnostic> TypecheckSelector(const SelectorDecl& decl,
                                          const Catalog& catalog);

/// Type-checks a query expression: per-branch predicate/term findings plus
/// W242 when the union's branches disagree on a result field name.
std::vector<Diagnostic> TypecheckQueryExpr(
    const CalcExpr& expr, const Catalog& catalog,
    const std::map<std::string, ValueType>& placeholders = {});

}  // namespace datacon

#endif  // DATACON_ANALYSIS_TYPECHECK_H_
