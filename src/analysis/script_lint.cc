#include "analysis/script_lint.h"

#include <utility>
#include <variant>
#include <vector>

#include "analysis/adorn.h"
#include "ast/builder.h"
#include "core/catalog.h"
#include "core/instantiate.h"

namespace datacon {

namespace {

/// Stamps `loc` onto every diagnostic that has no span of its own (range
/// expressions carry no positions; the statement's does).
std::vector<Diagnostic> WithLoc(std::vector<Diagnostic> ds, SourceLoc loc) {
  for (Diagnostic& d : ds) {
    if (!d.loc.valid()) d.loc = loc;
  }
  return ds;
}

}  // namespace

LintReport LintScript(const Script& script, const LintOptions& options) {
  LintReport report;
  Catalog catalog;
  std::vector<ConstructorDeclPtr> group;

  auto flush_group = [&] {
    if (group.empty()) return;
    report.Append(LintConstructorGroup(group, catalog, options));
    for (const ConstructorDeclPtr& decl : group) {
      // A duplicate name already produced E104 above; keep the first decl.
      (void)catalog.DefineConstructor(decl);
    }
    group.clear();
  };

  // Adornment pass (--adorn): instantiate the expression's application
  // graph against the scratch catalog and surface the W22x findings. Name
  // or instantiation errors were already reported by the passes above, so
  // failures here are silently skipped.
  auto adorn_expr = [&](const CalcExprPtr& expr, SourceLoc loc) {
    if (!options.adorn || expr == nullptr) return;
    ApplicationGraph graph(&catalog);
    if (!graph.AddRoots(*expr).ok()) return;
    Result<AdornmentAnalysis> adornment =
        AnalyzeAdornment(*expr, graph, catalog);
    if (!adornment.ok()) return;
    report.Append(WithLoc(std::move(adornment.value().diagnostics), loc));
  };

  auto lint_value = [&](const RelationExpr& value, SourceLoc loc) {
    if (value.range != nullptr) {
      report.Append(WithLoc(LintQueryRange(*value.range, catalog), loc));
      adorn_expr(
          build::Union({build::IdentityBranch("__q", value.range,
                                              build::True())}),
          loc);
    }
    if (value.expr != nullptr) {
      report.Append(WithLoc(LintQueryExpr(*value.expr, catalog), loc));
      adorn_expr(value.expr, loc);
    }
  };

  for (const ScriptStmt& stmt : script.stmts) {
    if (!std::holds_alternative<ConstructorStmt>(stmt)) flush_group();

    if (const auto* type_decl = std::get_if<TypeDeclStmt>(&stmt)) {
      if (type_decl->is_relation) {
        Status s =
            catalog.DefineRelationType(type_decl->name, type_decl->schema);
        if (!s.ok()) report.Append(DiagnosticFromStatus(s));
      }
    } else if (const auto* var_decl = std::get_if<VarDeclStmt>(&stmt)) {
      Status s = catalog.CreateRelation(var_decl->name, var_decl->type_name);
      if (!s.ok()) report.Append(DiagnosticFromStatus(s));
    } else if (const auto* selector = std::get_if<SelectorStmt>(&stmt)) {
      report.Append(LintSelector(*selector->decl, catalog));
      (void)catalog.DefineSelector(selector->decl);
    } else if (const auto* ctor = std::get_if<ConstructorStmt>(&stmt)) {
      group.push_back(ctor->decl);
    } else if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
      if (!catalog.LookupRelation(insert->relation).ok()) {
        report.Append(MakeDiagnostic(
            kDiagUnknownName, "unknown relation '" + insert->relation + "'",
            insert->loc));
      }
    } else if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
      if (!catalog.LookupRelation(assign->relation).ok()) {
        report.Append(MakeDiagnostic(
            kDiagUnknownName, "unknown relation '" + assign->relation + "'",
            assign->loc));
      }
      if (assign->selector.has_value() &&
          !catalog.LookupSelector(*assign->selector).ok()) {
        report.Append(MakeDiagnostic(
            kDiagUnknownName, "unknown selector '" + *assign->selector + "'",
            assign->loc));
      }
      lint_value(assign->value, assign->loc);
    } else if (const auto* query = std::get_if<QueryStmt>(&stmt)) {
      lint_value(query->value, query->loc);
    } else if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
      report.Append(
          WithLoc(LintQueryRange(*explain->range, catalog), explain->loc));
      adorn_expr(
          build::Union({build::IdentityBranch("__q", explain->range,
                                              build::True())}),
          explain->loc);
    }
    // CheckStmt and PragmaStmt introduce no names and need no lint.
  }
  flush_group();
  report.SortBySpan();
  return report;
}

}  // namespace datacon
