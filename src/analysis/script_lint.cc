#include "analysis/script_lint.h"

#include <set>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "analysis/adorn.h"
#include "analysis/constraint.h"
#include "analysis/typecheck.h"
#include "ast/builder.h"
#include "core/catalog.h"
#include "core/database.h"
#include "core/instantiate.h"

namespace datacon {

namespace {

/// Stamps `loc` onto every diagnostic that has no span of its own (range
/// expressions carry no positions; the statement's does).
std::vector<Diagnostic> WithLoc(std::vector<Diagnostic> ds, SourceLoc loc) {
  for (Diagnostic& d : ds) {
    if (!d.loc.valid()) d.loc = loc;
  }
  return ds;
}

}  // namespace

namespace {

/// Replays the script's definitions and inserted facts into a scratch
/// database so declared constraints can be evaluated against the script's
/// own data (the W231 pass). Constructor statements are grouped exactly as
/// the main lint walk groups them; assignments are evaluated for real.
/// Returns false when any statement failed to replay — the earlier passes
/// already reported why, and the facts can no longer be trusted.
bool ReplayScript(const Script& script, Database* scratch) {
  bool ok = true;
  std::vector<ConstructorDeclPtr> group;
  auto flush_group = [&] {
    if (group.empty()) return;
    if (!scratch->DefineConstructorGroup(group).ok()) ok = false;
    group.clear();
  };
  for (const ScriptStmt& stmt : script.stmts) {
    if (!std::holds_alternative<ConstructorStmt>(stmt)) flush_group();
    Status s;
    if (const auto* type_decl = std::get_if<TypeDeclStmt>(&stmt)) {
      if (type_decl->is_relation) {
        s = scratch->DefineRelationType(type_decl->name, type_decl->schema);
      }
    } else if (const auto* var_decl = std::get_if<VarDeclStmt>(&stmt)) {
      s = scratch->CreateRelation(var_decl->name, var_decl->type_name);
    } else if (const auto* selector = std::get_if<SelectorStmt>(&stmt)) {
      s = scratch->DefineSelector(selector->decl);
    } else if (const auto* ctor = std::get_if<ConstructorStmt>(&stmt)) {
      group.push_back(ctor->decl);
    } else if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
      s = scratch->InsertAll(insert->relation, insert->tuples);
    } else if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
      Result<Relation> value = assign->value.range != nullptr
                                   ? scratch->EvalRange(assign->value.range)
                                   : scratch->EvalQuery(assign->value.expr);
      if (!value.ok()) {
        ok = false;
        continue;
      }
      s = assign->selector.has_value()
              ? scratch->AssignThroughSelector(assign->relation,
                                               *assign->selector,
                                               assign->selector_args,
                                               value.value())
              : scratch->Assign(assign->relation, value.value());
    }
    if (!s.ok()) ok = false;
  }
  flush_group();
  return ok;
}

}  // namespace

LintReport LintScript(const Script& script, const LintOptions& options) {
  LintReport report;
  Catalog catalog;
  std::vector<ConstructorDeclPtr> group;
  std::set<std::string> mutated;
  std::vector<ConstraintDeclPtr> constraint_decls;

  auto flush_group = [&] {
    if (group.empty()) return;
    report.Append(LintConstructorGroup(group, catalog, options));
    if (options.types) {
      report.Append(TypecheckConstructorGroup(group, catalog));
    }
    for (const ConstructorDeclPtr& decl : group) {
      // A duplicate name already produced E104 above; keep the first decl.
      (void)catalog.DefineConstructor(decl);
    }
    group.clear();
  };

  // Adornment pass (--adorn): instantiate the expression's application
  // graph against the scratch catalog and surface the W22x findings. Name
  // or instantiation errors were already reported by the passes above, so
  // failures here are silently skipped.
  auto adorn_expr = [&](const CalcExprPtr& expr, SourceLoc loc) {
    if (!options.adorn || expr == nullptr) return;
    ApplicationGraph graph(&catalog);
    if (!graph.AddRoots(*expr).ok()) return;
    Result<AdornmentAnalysis> adornment =
        AnalyzeAdornment(*expr, graph, catalog);
    if (!adornment.ok()) return;
    report.Append(WithLoc(std::move(adornment.value().diagnostics), loc));
  };

  auto lint_value = [&](const RelationExpr& value, SourceLoc loc) {
    if (value.range != nullptr) {
      report.Append(WithLoc(LintQueryRange(*value.range, catalog), loc));
      adorn_expr(
          build::Union({build::IdentityBranch("__q", value.range,
                                              build::True())}),
          loc);
    }
    if (value.expr != nullptr) {
      report.Append(WithLoc(LintQueryExpr(*value.expr, catalog), loc));
      if (options.types) {
        report.Append(WithLoc(TypecheckQueryExpr(*value.expr, catalog), loc));
      }
      adorn_expr(value.expr, loc);
    }
  };

  for (const ScriptStmt& stmt : script.stmts) {
    if (!std::holds_alternative<ConstructorStmt>(stmt)) flush_group();

    if (const auto* type_decl = std::get_if<TypeDeclStmt>(&stmt)) {
      if (type_decl->is_relation) {
        Status s =
            catalog.DefineRelationType(type_decl->name, type_decl->schema);
        if (!s.ok()) report.Append(DiagnosticFromStatus(s));
      }
    } else if (const auto* var_decl = std::get_if<VarDeclStmt>(&stmt)) {
      Status s = catalog.CreateRelation(var_decl->name, var_decl->type_name);
      if (!s.ok()) report.Append(DiagnosticFromStatus(s));
    } else if (const auto* selector = std::get_if<SelectorStmt>(&stmt)) {
      report.Append(LintSelector(*selector->decl, catalog));
      if (options.types) {
        report.Append(WithLoc(TypecheckSelector(*selector->decl, catalog),
                              selector->decl->loc()));
      }
      (void)catalog.DefineSelector(selector->decl);
    } else if (const auto* ctor = std::get_if<ConstructorStmt>(&stmt)) {
      group.push_back(ctor->decl);
    } else if (const auto* constraint = std::get_if<ConstraintStmt>(&stmt)) {
      report.Append(WithLoc(LintConstraint(*constraint->decl, catalog),
                            constraint->decl->loc()));
      Status s = catalog.DefineConstraint(constraint->decl);
      if (!s.ok()) {
        report.Append(DiagnosticFromStatus(s));
      } else {
        constraint_decls.push_back(constraint->decl);
      }
    } else if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
      mutated.insert(insert->relation);
      if (!catalog.LookupRelation(insert->relation).ok()) {
        report.Append(MakeDiagnostic(
            kDiagUnknownName, "unknown relation '" + insert->relation + "'",
            insert->loc));
      }
    } else if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
      mutated.insert(assign->relation);
      if (!catalog.LookupRelation(assign->relation).ok()) {
        report.Append(MakeDiagnostic(
            kDiagUnknownName, "unknown relation '" + assign->relation + "'",
            assign->loc));
      }
      if (assign->selector.has_value() &&
          !catalog.LookupSelector(*assign->selector).ok()) {
        report.Append(MakeDiagnostic(
            kDiagUnknownName, "unknown selector '" + *assign->selector + "'",
            assign->loc));
      }
      lint_value(assign->value, assign->loc);
    } else if (const auto* query = std::get_if<QueryStmt>(&stmt)) {
      lint_value(query->value, query->loc);
    } else if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
      report.Append(
          WithLoc(LintQueryRange(*explain->range, catalog), explain->loc));
      adorn_expr(
          build::Union({build::IdentityBranch("__q", explain->range,
                                              build::True())}),
          explain->loc);
    }
    // CheckStmt, PragmaStmt, and ShowStmt introduce no names and need no
    // lint.
  }
  flush_group();

  // Constraint data-flow audit (--constraints): W232 when no statement of
  // the script can change any input relation of a constraint (the check
  // would never fire), W231 when the facts the script itself establishes
  // already refute a constraint.
  if (options.constraints && !constraint_decls.empty()) {
    DatabaseOptions scratch_options;
    scratch_options.constraints = false;  // report refutations, not reject
    scratch_options.cache = false;
    scratch_options.allow_stratified_negation =
        options.allow_stratified_negation;
    Database scratch(scratch_options);
    bool replay_ok = ReplayScript(script, &scratch);
    for (const ConstraintDeclPtr& decl : constraint_decls) {
      ConstraintAnalysis analysis = AnalyzeConstraint(*decl, catalog);
      if (analysis.HasErrors()) continue;  // E12x already reported above
      bool reachable = false;
      for (const std::string& input : analysis.inputs) {
        if (mutated.count(input) != 0) {
          reachable = true;
          break;
        }
      }
      if (!reachable) {
        report.Append(MakeDiagnostic(
            kDiagConstraintUnreachable,
            "constraint '" + decl->name() +
                "' is never re-checked: no statement of this script inserts "
                "into or assigns any of its input relations",
            decl->loc()));
      }
      if (!replay_ok) continue;  // the scratch facts can't be trusted
      Result<CalcExprPtr> denial = DenialQuery(analysis.body,
                                               scratch.catalog());
      if (!denial.ok()) continue;
      Result<Relation> witnesses = scratch.EvalQuery(denial.value());
      if (witnesses.ok() && witnesses.value().size() > 0) {
        report.Append(MakeDiagnostic(
            kDiagConstraintRefuted,
            "constraint '" + decl->name() +
                "' is refuted by the script's own facts: witness " +
                witnesses.value().SortedTuples().front().ToString(),
            decl->loc()));
      }
    }
  }

  report.SortBySpan();
  return report;
}

}  // namespace datacon
