#ifndef DATACON_ANALYSIS_DIAGNOSTIC_H_
#define DATACON_ANALYSIS_DIAGNOSTIC_H_

#include <string>
#include <string_view>
#include <vector>

#include "ast/source_loc.h"
#include "common/status.h"

namespace datacon {

/// Severity of a lint finding. Errors make a program invalid (they mirror
/// what the level-1 compiler rejects); warnings flag code that is legal but
/// suspicious, dead, or needlessly expensive.
enum class Severity {
  kWarning,
  kError,
};

/// "warning" or "error".
std::string_view SeverityName(Severity severity);

/// Stable diagnostic codes. Errors are E1xx, warnings W2xx; the numeric
/// values never change once released, so scripts and CI gates can match on
/// them. The full code -> meaning table lives in DESIGN.md §"Static
/// analysis & diagnostics" and is queryable via DiagnosticCodeMeaning.
inline constexpr std::string_view kDiagParseError = "E100";
inline constexpr std::string_view kDiagUnknownName = "E101";
inline constexpr std::string_view kDiagTypeError = "E102";
inline constexpr std::string_view kDiagNonStratifiable = "E103";
inline constexpr std::string_view kDiagRedefinition = "E104";
inline constexpr std::string_view kDiagUnsafeVariable = "E110";
inline constexpr std::string_view kDiagUnsafeConstraint = "E120";
inline constexpr std::string_view kDiagConstraintUnknownRelation = "E121";
inline constexpr std::string_view kDiagTypeConflict = "E130";
inline constexpr std::string_view kDiagIllTypedOperation = "E131";
inline constexpr std::string_view kDiagCaptureNonBinary = "E132";
inline constexpr std::string_view kDiagUnusedBinding = "W201";
inline constexpr std::string_view kDiagUnusedParameter = "W202";
inline constexpr std::string_view kDiagShadowedName = "W203";
inline constexpr std::string_view kDiagCrossProduct = "W204";
inline constexpr std::string_view kDiagAlwaysFalseBranch = "W205";
inline constexpr std::string_view kDiagConstantConjunct = "W206";
inline constexpr std::string_view kDiagDuplicateBranch = "W207";
inline constexpr std::string_view kDiagNonDifferentiable = "W210";
inline constexpr std::string_view kDiagNonLinearRecursion = "W211";
inline constexpr std::string_view kDiagStratifiedNegation = "W212";
inline constexpr std::string_view kDiagAdornmentNonLinear = "W220";
inline constexpr std::string_view kDiagAdornmentFreeJoin = "W221";
inline constexpr std::string_view kDiagAdornmentNegation = "W222";
inline constexpr std::string_view kDiagConstraintTrivial = "W230";
inline constexpr std::string_view kDiagConstraintRefuted = "W231";
inline constexpr std::string_view kDiagConstraintUnreachable = "W232";
inline constexpr std::string_view kDiagDisjointComparison = "W240";
inline constexpr std::string_view kDiagUnconstrainedAttribute = "W241";
inline constexpr std::string_view kDiagUnionNameMismatch = "W242";

/// One-line meaning of a diagnostic code, or empty for an unknown code.
std::string_view DiagnosticCodeMeaning(std::string_view code);

/// Every registered code, errors first, in numeric order.
std::vector<std::string_view> AllDiagnosticCodes();

/// One structured lint finding: a stable code, its severity, a
/// human-readable message, and the source span it points at (invalid when
/// the construct was built programmatically, without source).
struct Diagnostic {
  std::string code;
  Severity severity = Severity::kWarning;
  std::string message;
  SourceLoc loc;

  /// "<line>:<col>: <severity> <code>: <message>" (span omitted when
  /// unknown).
  std::string ToString() const;

  /// {"code":..,"severity":..,"line":..,"column":..,"message":..} — the
  /// metrics JSON conventions: no whitespace, stable key order.
  std::string ToJson() const;
};

/// Constructs a diagnostic, deriving the severity from the code's leading
/// letter ('E' -> error, anything else -> warning).
Diagnostic MakeDiagnostic(std::string_view code, std::string message,
                          SourceLoc loc = {});

/// Maps a failed Status from the level-1 checks onto a diagnostic: parse
/// errors (with their "line L, column C" span recovered from the message)
/// to E100, name lookups to E101, positivity violations to E103,
/// redefinitions to E104, everything else to E102.
Diagnostic DiagnosticFromStatus(const Status& status);

/// The outcome of a lint run: every finding, in source order per pass.
struct LintReport {
  std::vector<Diagnostic> diagnostics;

  bool empty() const { return diagnostics.empty(); }
  bool HasErrors() const;
  size_t error_count() const;
  size_t warning_count() const;

  void Append(Diagnostic d) { diagnostics.push_back(std::move(d)); }
  void Append(std::vector<Diagnostic> ds);

  /// Orders findings by source span (unknown spans last), then by code —
  /// the presentation order of every renderer.
  void SortBySpan();

  /// One finding per line (Diagnostic::ToString), plus a trailing summary
  /// line "N error(s), M warning(s)" when any finding exists.
  std::string ToText() const;

  /// {"diagnostics":[..],"errors":N,"warnings":M}.
  std::string ToJson() const;
};

}  // namespace datacon

#endif  // DATACON_ANALYSIS_DIAGNOSTIC_H_
