#include "analysis/fold.h"

namespace datacon {

namespace {

/// Syntactic equality of two terms — conservative: only literals, parameter
/// references, field references, and arithmetic over equal operands compare
/// equal.
bool SameTerm(const Term& a, const Term& b) {
  if (a.kind() != b.kind()) return false;
  switch (a.kind()) {
    case Term::Kind::kLiteral:
      return static_cast<const LiteralTerm&>(a).value() ==
             static_cast<const LiteralTerm&>(b).value();
    case Term::Kind::kParamRef:
      return static_cast<const ParamRefTerm&>(a).name() ==
             static_cast<const ParamRefTerm&>(b).name();
    case Term::Kind::kFieldRef: {
      const auto& fa = static_cast<const FieldRefTerm&>(a);
      const auto& fb = static_cast<const FieldRefTerm&>(b);
      return fa.var() == fb.var() && fa.field() == fb.field();
    }
    case Term::Kind::kArith: {
      const auto& aa = static_cast<const ArithTerm&>(a);
      const auto& ab = static_cast<const ArithTerm&>(b);
      return aa.op() == ab.op() && SameTerm(*aa.lhs(), *ab.lhs()) &&
             SameTerm(*aa.rhs(), *ab.rhs());
    }
  }
  return false;
}

FoldOutcome FromBool(bool b) {
  return b ? FoldOutcome::kTrue : FoldOutcome::kFalse;
}

FoldOutcome Negate(FoldOutcome o) {
  switch (o) {
    case FoldOutcome::kTrue:
      return FoldOutcome::kFalse;
    case FoldOutcome::kFalse:
      return FoldOutcome::kTrue;
    case FoldOutcome::kUnknown:
      return FoldOutcome::kUnknown;
  }
  return FoldOutcome::kUnknown;
}

}  // namespace

std::optional<Value> FoldTerm(const Term& term) {
  switch (term.kind()) {
    case Term::Kind::kLiteral:
      return static_cast<const LiteralTerm&>(term).value();
    case Term::Kind::kFieldRef:
    case Term::Kind::kParamRef:
      return std::nullopt;
    case Term::Kind::kArith: {
      const auto& arith = static_cast<const ArithTerm&>(term);
      std::optional<Value> lhs = FoldTerm(*arith.lhs());
      std::optional<Value> rhs = FoldTerm(*arith.rhs());
      if (!lhs || !rhs) return std::nullopt;
      // Arithmetic is defined on integers only; a non-integer operand is a
      // type error for the checker to report, not for the folder to crash on.
      if (lhs->type() != ValueType::kInt || rhs->type() != ValueType::kInt) {
        return std::nullopt;
      }
      int64_t a = lhs->AsInt();
      int64_t b = rhs->AsInt();
      switch (arith.op()) {
        case ArithOp::kAdd:
          return Value::Int(a + b);
        case ArithOp::kSub:
          return Value::Int(a - b);
        case ArithOp::kMul:
          return Value::Int(a * b);
        case ArithOp::kDiv:
          if (b == 0) return std::nullopt;
          return Value::Int(a / b);
        case ArithOp::kMod:
          if (b == 0) return std::nullopt;
          return Value::Int(a % b);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

FoldOutcome FoldPred(const Pred& pred) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      return FromBool(static_cast<const BoolPred&>(pred).value());
    case Pred::Kind::kCompare: {
      const auto& cmp = static_cast<const ComparePred&>(pred);
      std::optional<Value> lhs = FoldTerm(*cmp.lhs());
      std::optional<Value> rhs = FoldTerm(*cmp.rhs());
      if (lhs && rhs) {
        // Value::Compare requires matching types; a mismatch is the type
        // checker's problem (E102), never decided here.
        if (lhs->type() != rhs->type()) return FoldOutcome::kUnknown;
        int c = lhs->Compare(*rhs);
        switch (cmp.op()) {
          case CompareOp::kEq:
            return FromBool(c == 0);
          case CompareOp::kNe:
            return FromBool(c != 0);
          case CompareOp::kLt:
            return FromBool(c < 0);
          case CompareOp::kLe:
            return FromBool(c <= 0);
          case CompareOp::kGt:
            return FromBool(c > 0);
          case CompareOp::kGe:
            return FromBool(c >= 0);
        }
        return FoldOutcome::kUnknown;
      }
      // `t = t` holds and `t # t` fails for any deterministic term, even an
      // unfoldable one. Ordered comparisons need the type to decide <=/>=,
      // so only the reflexive =/# cases fold.
      if (SameTerm(*cmp.lhs(), *cmp.rhs())) {
        switch (cmp.op()) {
          case CompareOp::kEq:
          case CompareOp::kLe:
          case CompareOp::kGe:
            return FoldOutcome::kTrue;
          case CompareOp::kNe:
          case CompareOp::kLt:
          case CompareOp::kGt:
            return FoldOutcome::kFalse;
        }
      }
      return FoldOutcome::kUnknown;
    }
    case Pred::Kind::kAnd: {
      bool any_unknown = false;
      for (const PredPtr& op :
           static_cast<const AndPred&>(pred).operands()) {
        switch (FoldPred(*op)) {
          case FoldOutcome::kFalse:
            return FoldOutcome::kFalse;
          case FoldOutcome::kUnknown:
            any_unknown = true;
            break;
          case FoldOutcome::kTrue:
            break;
        }
      }
      return any_unknown ? FoldOutcome::kUnknown : FoldOutcome::kTrue;
    }
    case Pred::Kind::kOr: {
      bool any_unknown = false;
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        switch (FoldPred(*op)) {
          case FoldOutcome::kTrue:
            return FoldOutcome::kTrue;
          case FoldOutcome::kUnknown:
            any_unknown = true;
            break;
          case FoldOutcome::kFalse:
            break;
        }
      }
      return any_unknown ? FoldOutcome::kUnknown : FoldOutcome::kFalse;
    }
    case Pred::Kind::kNot:
      return Negate(FoldPred(*static_cast<const NotPred&>(pred).operand()));
    case Pred::Kind::kQuant: {
      const auto& quant = static_cast<const QuantPred&>(pred);
      FoldOutcome body = FoldPred(*quant.body());
      // Over a possibly-empty range only one direction is safe per
      // quantifier: SOME with a FALSE body finds nothing; ALL with a TRUE
      // body is vacuously satisfied.
      if (quant.quantifier() == Quantifier::kSome &&
          body == FoldOutcome::kFalse) {
        return FoldOutcome::kFalse;
      }
      if (quant.quantifier() == Quantifier::kAll &&
          body == FoldOutcome::kTrue) {
        return FoldOutcome::kTrue;
      }
      return FoldOutcome::kUnknown;
    }
    case Pred::Kind::kIn:
      return FoldOutcome::kUnknown;
  }
  return FoldOutcome::kUnknown;
}

}  // namespace datacon
