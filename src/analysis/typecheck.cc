#include "analysis/typecheck.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "ast/pred.h"
#include "ast/printer.h"
#include "ast/range.h"
#include "ast/term.h"
#include "core/capture.h"
#include "graph/digraph.h"
#include "graph/scc.h"
#include "types/schema.h"

namespace datacon {

namespace {

/// " (at L:C)" when the span is known, empty otherwise — used to name the
/// *secondary* span of a two-span finding inside the message (the primary
/// span is the diagnostic's own loc).
std::string At(const SourceLoc& loc) {
  return loc.valid() ? " (at " + loc.ToString() + ")" : "";
}

std::string Describe(const InferredType& cell) {
  std::string out(ValueTypeName(cell.type));
  if (!cell.origin.empty()) out += " from " + cell.origin;
  return out;
}

/// A relation-valued inference row: attribute names plus one cell each.
struct Row {
  std::vector<std::string> names;
  std::vector<InferredType> cells;

  std::optional<size_t> IndexOf(const std::string& name) const {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] == name) return i;
    }
    return std::nullopt;
  }
};

Row KnownRow(const Schema& schema, SourceLoc loc, const std::string& origin) {
  Row row;
  for (const Field& f : schema.fields()) {
    row.names.push_back(f.name);
    row.cells.push_back(InferredType::Known(f.type, loc, origin));
  }
  return row;
}

/// Scope of one declaration walk: formal relation parameters, scalar
/// parameters, and the rows of bound tuple variables.
struct Scope {
  std::map<std::string, std::string> relation_formals;
  std::map<std::string, ValueType> scalar_params;
  std::map<std::string, Row> vars;
};

/// Joins `contrib` into `cell` per the lattice (unknown ⊑ type ⊑ conflict).
/// Conflicted contributions join as unknown — the conflict is reported at
/// its own source, not cascaded. Returns true when `cell` changed.
bool JoinInto(InferredType* cell, const InferredType& contrib) {
  if (contrib.state != InferredType::State::kKnown) return false;
  switch (cell->state) {
    case InferredType::State::kUnknown:
      *cell = contrib;
      return true;
    case InferredType::State::kKnown:
      if (cell->type == contrib.type) return false;
      cell->state = InferredType::State::kConflict;
      cell->other_type = contrib.type;
      cell->other_loc = contrib.loc;
      cell->other_origin = contrib.origin;
      return true;
    case InferredType::State::kConflict:
      return false;
  }
  return false;
}

/// The inference engine: fixpoint over one constructor group's cells, then
/// a reporting walk over every construct.
class Inferencer {
 public:
  explicit Inferencer(const Catalog& catalog) : catalog_(catalog) {}

  void AddGroup(const std::vector<ConstructorDeclPtr>& group) {
    for (const ConstructorDeclPtr& decl : group) {
      if (decl == nullptr) continue;
      group_.push_back(decl.get());
      auto result = catalog_.LookupRelationType(decl->result_type_name());
      Row row;
      if (result.ok()) {
        // Arity and names come from the declared result type; the cell
        // types are inferred from scratch (never seeded from it).
        for (const Field& f : result.value()->fields()) {
          row.names.push_back(f.name);
          row.cells.push_back(InferredType::Unknown());
        }
      }
      cells_.emplace(decl->name(), std::move(row));
    }
  }

  /// Phase 1: propagate contributions to a fixpoint, one SCC of the
  /// constructor reference graph at a time, dependencies first.
  void Run() {
    Digraph graph(static_cast<int>(group_.size()));
    std::map<std::string, int> node_of;
    for (size_t i = 0; i < group_.size(); ++i) {
      node_of.emplace(group_[i]->name(), static_cast<int>(i));
    }
    for (size_t i = 0; i < group_.size(); ++i) {
      for (const BranchPtr& branch : group_[i]->body()->branches()) {
        for (const Binding& b : branch->bindings()) {
          AddRangeEdges(static_cast<int>(i), *b.range, node_of, &graph);
        }
      }
    }
    SccDecomposition scc = ComputeScc(graph);
    for (int comp : scc.topological_order) {
      bool changed = true;
      while (changed) {
        changed = false;
        for (int node : scc.components[static_cast<size_t>(comp)]) {
          changed |= SeedDecl(*group_[static_cast<size_t>(node)]);
        }
      }
    }
  }

  /// Phase 2: compare the fixpoint against the declarations and walk every
  /// predicate, emitting diagnostics.
  void Check() {
    for (const ConstructorDecl* decl : group_) CheckDecl(*decl);
  }

  void CheckSelector(const SelectorDecl& decl) {
    Scope scope;
    scope.relation_formals.emplace(decl.base().name, decl.base().type_name);
    for (const FormalScalar& p : decl.params()) {
      scope.scalar_params.emplace(p.name, p.type);
    }
    auto base = catalog_.LookupRelationType(decl.base().type_name);
    if (base.ok()) {
      scope.vars.emplace(decl.var(), KnownRow(*base.value(), decl.loc(),
                                              "base relation '" +
                                                  decl.base().name + "'"));
    }
    CheckPredDiags(*decl.pred(), &scope, decl.loc());
  }

  /// Infers the query's result cells (joined across branches, E130 on
  /// cross-branch conflicts), checks every predicate, and reports W242 when
  /// branches disagree on a result field name.
  void CheckQuery(const CalcExpr& expr,
                  const std::map<std::string, ValueType>& placeholders) {
    std::vector<InferredType> cells;
    std::vector<std::string> names;  // first branch's candidate names
    bool names_clash = false;
    for (size_t bi = 0; bi < expr.branches().size(); ++bi) {
      const Branch& branch = *expr.branches()[bi];
      Scope scope;
      scope.scalar_params = placeholders;
      if (!BindBranch(branch, &scope)) continue;
      CheckBranchDiags(branch, &scope);

      std::vector<InferredType> contribs;
      std::vector<std::string> branch_names;
      if (branch.targets().has_value()) {
        for (const TermPtr& t : *branch.targets()) {
          contribs.push_back(TermCell(*t, scope, branch.loc()));
          branch_names.push_back(
              t->kind() == Term::Kind::kFieldRef
                  ? static_cast<const FieldRefTerm&>(*t).field()
                  : std::string());
        }
      } else if (branch.bindings().size() == 1) {
        const Row& row = scope.vars[branch.bindings()[0].var];
        contribs = RetagIdentity(row, branch);
        branch_names = row.names;
      } else {
        continue;
      }
      if (cells.empty() && bi == 0) {
        cells.assign(contribs.size(), InferredType::Unknown());
        names = branch_names;
      }
      for (size_t i = 0; i < contribs.size() && i < cells.size(); ++i) {
        JoinInto(&cells[i], contribs[i]);
        if (i < names.size() && !branch_names[i].empty() &&
            !names[i].empty() && branch_names[i] != names[i] &&
            !names_clash) {
          names_clash = true;
          Report(kDiagUnionNameMismatch,
                 "union branches disagree on the result field name at "
                 "position " +
                     std::to_string(i) + " ('" + names[i] + "' vs '" +
                     branch_names[i] + "'); the positional name 'c" +
                     std::to_string(i) + "' is used",
                 branch.loc());
        }
      }
    }
    for (size_t i = 0; i < cells.size(); ++i) {
      if (cells[i].state == InferredType::State::kConflict) {
        Report(kDiagTypeConflict,
               "result position " + std::to_string(i) + " of the query: " +
                   Describe(cells[i]) + At(cells[i].loc) +
                   " conflicts with " + std::string(
                       ValueTypeName(cells[i].other_type)) +
                   " from " + cells[i].other_origin + At(cells[i].other_loc),
               cells[i].other_loc.valid() ? cells[i].other_loc
                                          : cells[i].loc);
      }
    }
  }

  const std::map<std::string, Row>& cells() const { return cells_; }
  std::vector<Diagnostic> TakeDiagnostics() { return std::move(diags_); }

 private:
  void Report(std::string_view code, std::string message, SourceLoc loc) {
    diags_.push_back(MakeDiagnostic(code, std::move(message), loc));
  }

  /// Records dependency edges from `from` to every in-group constructor
  /// referenced anywhere in `range` (including nested range arguments).
  void AddRangeEdges(int from, const Range& range,
                     const std::map<std::string, int>& node_of,
                     Digraph* graph) {
    for (const RangeApp& app : range.apps()) {
      if (app.kind == RangeApp::Kind::kConstructor) {
        auto it = node_of.find(app.name);
        if (it != node_of.end()) graph->AddEdge(from, it->second);
      }
      for (const RangePtr& arg : app.range_args) {
        AddRangeEdges(from, *arg, node_of, graph);
      }
    }
  }

  Scope ScopeFor(const ConstructorDecl& decl) {
    Scope scope;
    scope.relation_formals.emplace(decl.base().name, decl.base().type_name);
    for (const FormalRelation& r : decl.rel_params()) {
      scope.relation_formals.emplace(r.name, r.type_name);
    }
    for (const FormalScalar& p : decl.scalar_params()) {
      scope.scalar_params.emplace(p.name, p.type);
    }
    return scope;
  }

  /// The row `range` denotes under `scope`, or nullopt when a name does not
  /// resolve (level-1's E101 territory — inference just abstains).
  std::optional<Row> RangeRowOf(const Range& range, const Scope& scope,
                                SourceLoc loc) {
    std::optional<Row> row;
    auto formal = scope.relation_formals.find(range.relation());
    const std::string* type_name = nullptr;
    if (formal != scope.relation_formals.end()) {
      type_name = &formal->second;
    } else {
      auto named = catalog_.LookupRelationTypeName(range.relation());
      if (named.ok()) type_name = named.value();
    }
    if (type_name != nullptr) {
      auto schema = catalog_.LookupRelationType(*type_name);
      if (!schema.ok()) return std::nullopt;
      row = KnownRow(*schema.value(), loc,
                     "relation '" + range.relation() + "'");
    } else {
      return std::nullopt;
    }
    for (const RangeApp& app : range.apps()) {
      if (app.kind == RangeApp::Kind::kSelector) continue;  // schema-preserving
      // In-group constructors resolve to their in-progress cells; everything
      // else to its declared result schema.
      auto group_it = cells_.find(app.name);
      if (group_it != cells_.end()) {
        row = group_it->second;
        continue;
      }
      auto ctor = catalog_.LookupConstructor(app.name);
      if (!ctor.ok()) return std::nullopt;
      auto result = catalog_.LookupRelationType(ctor.value()->result_type_name());
      if (!result.ok()) return std::nullopt;
      row = KnownRow(*result.value(), loc,
                     "constructor '" + app.name + "'");
    }
    return row;
  }

  /// The inference cell of a scalar term under `scope`.
  InferredType TermCell(const Term& term, const Scope& scope, SourceLoc loc) {
    switch (term.kind()) {
      case Term::Kind::kLiteral: {
        const auto& t = static_cast<const LiteralTerm&>(term);
        return InferredType::Known(t.value().type(), loc,
                                   "literal " + t.value().ToString());
      }
      case Term::Kind::kParamRef: {
        const auto& t = static_cast<const ParamRefTerm&>(term);
        auto it = scope.scalar_params.find(t.name());
        if (it == scope.scalar_params.end()) return InferredType::Unknown();
        return InferredType::Known(it->second, loc,
                                   "parameter '" + t.name() + "'");
      }
      case Term::Kind::kFieldRef: {
        const auto& t = static_cast<const FieldRefTerm&>(term);
        auto var = scope.vars.find(t.var());
        if (var == scope.vars.end()) return InferredType::Unknown();
        std::optional<size_t> idx = var->second.IndexOf(t.field());
        if (!idx.has_value()) return InferredType::Unknown();
        const InferredType& cell = var->second.cells[*idx];
        if (cell.state != InferredType::State::kKnown) {
          return InferredType::Unknown();
        }
        return InferredType::Known(cell.type, loc,
                                   "'" + t.var() + "." + t.field() + "'");
      }
      case Term::Kind::kArith:
        // Arithmetic always denotes an integer; its operands are checked by
        // the phase-2 walk (E131).
        return InferredType::Known(ValueType::kInt, loc,
                                   "'" + ToString(term) + "'");
    }
    return InferredType::Unknown();
  }

  /// Binds every branch variable's row into `scope`. False when any range
  /// fails to resolve — the branch is skipped by inference.
  bool BindBranch(const Branch& branch, Scope* scope) {
    for (const Binding& b : branch.bindings()) {
      SourceLoc loc = b.loc.valid() ? b.loc : branch.loc();
      std::optional<Row> row = RangeRowOf(*b.range, *scope, loc);
      if (!row.has_value()) return false;
      scope->vars[b.var] = std::move(*row);
    }
    return true;
  }

  /// Identity contributions: the bound row's cells, retagged so conflict
  /// messages point at the identity branch rather than the row's source.
  std::vector<InferredType> RetagIdentity(const Row& row,
                                          const Branch& branch) {
    std::vector<InferredType> out;
    const Binding& b = branch.bindings()[0];
    SourceLoc loc = b.loc.valid() ? b.loc : branch.loc();
    for (const InferredType& cell : row.cells) {
      if (cell.state == InferredType::State::kKnown) {
        out.push_back(InferredType::Known(
            cell.type, loc, "identity branch over '" + ToString(*b.range) +
                                "'"));
      } else {
        out.push_back(InferredType::Unknown());
      }
    }
    return out;
  }

  /// One propagation pass over `decl`'s branches. True when any cell of the
  /// constructor changed.
  bool SeedDecl(const ConstructorDecl& decl) {
    auto cells_it = cells_.find(decl.name());
    if (cells_it == cells_.end() || cells_it->second.cells.empty()) {
      return false;
    }
    Row& out = cells_it->second;
    bool changed = false;
    Scope base_scope = ScopeFor(decl);
    for (const BranchPtr& branch : decl.body()->branches()) {
      Scope scope = base_scope;
      if (!BindBranch(*branch, &scope)) continue;
      if (branch->targets().has_value()) {
        const auto& targets = *branch->targets();
        size_t n = std::min(targets.size(), out.cells.size());
        for (size_t i = 0; i < n; ++i) {
          changed |= JoinInto(&out.cells[i],
                              TermCell(*targets[i], scope, branch->loc()));
        }
      } else if (branch->bindings().size() == 1) {
        const Row& row = scope.vars[branch->bindings()[0].var];
        if (row.cells.size() != out.cells.size()) continue;
        std::vector<InferredType> contribs = RetagIdentity(row, *branch);
        for (size_t i = 0; i < contribs.size(); ++i) {
          changed |= JoinInto(&out.cells[i], contribs[i]);
        }
      }
    }
    return changed;
  }

  void CheckDecl(const ConstructorDecl& decl) {
    // Promoted capture.cc runtime error: the transitive-closure capture
    // shape only evaluates over binary relations.
    if (DetectTransitiveClosure(decl).has_value()) {
      auto base = catalog_.LookupRelationType(decl.base().type_name);
      auto result = catalog_.LookupRelationType(decl.result_type_name());
      if ((base.ok() && base.value()->arity() != 2) ||
          (result.ok() && result.value()->arity() != 2)) {
        Report(kDiagCaptureNonBinary,
               "constructor '" + decl.name() +
                   "' matches the transitive-closure capture shape but its "
                   "base/result relations are not binary; the capture rule "
                   "cannot evaluate it",
               decl.loc());
      }
    }

    // Inferred cells vs the declared result schema.
    auto cells_it = cells_.find(decl.name());
    auto result = catalog_.LookupRelationType(decl.result_type_name());
    if (cells_it != cells_.end() && result.ok()) {
      const Row& row = cells_it->second;
      const Schema& declared = *result.value();
      size_t n = std::min(row.cells.size(),
                          static_cast<size_t>(declared.arity()));
      for (size_t i = 0; i < n; ++i) {
        const InferredType& cell = row.cells[i];
        const Field& field = declared.field(static_cast<int>(i));
        switch (cell.state) {
          case InferredType::State::kConflict:
            Report(kDiagTypeConflict,
                   "attribute '" + field.name + "' of constructor '" +
                       decl.name() + "': " + Describe(cell) + At(cell.loc) +
                       " conflicts with " +
                       std::string(ValueTypeName(cell.other_type)) +
                       " from " + cell.other_origin + At(cell.other_loc),
                   cell.other_loc.valid() ? cell.other_loc : decl.loc());
            break;
          case InferredType::State::kKnown:
            if (cell.type != field.type) {
              Report(kDiagTypeConflict,
                     "attribute '" + field.name + "' of constructor '" +
                         decl.name() + "' is declared " +
                         std::string(ValueTypeName(field.type)) +
                         " but inferred " + Describe(cell) + At(cell.loc),
                     cell.loc.valid() ? cell.loc : decl.loc());
            }
            break;
          case InferredType::State::kUnknown:
            Report(kDiagUnconstrainedAttribute,
                   "attribute '" + field.name + "' of constructor '" +
                       decl.name() +
                       "' is not constrained by any branch; its inferred "
                       "type is unknown",
                   decl.loc());
            break;
        }
      }
    }

    // Predicate/term walk.
    Scope base_scope = ScopeFor(decl);
    for (const BranchPtr& branch : decl.body()->branches()) {
      Scope scope = base_scope;
      if (!BindBranch(*branch, &scope)) continue;
      CheckBranchDiags(*branch, &scope);
    }
  }

  void CheckBranchDiags(const Branch& branch, Scope* scope) {
    for (const Binding& b : branch.bindings()) {
      SourceLoc loc = b.loc.valid() ? b.loc : branch.loc();
      CheckRangeDiags(*b.range, *scope, loc);
    }
    CheckPredDiags(*branch.pred(), scope, branch.loc());
    if (branch.targets().has_value()) {
      for (const TermPtr& t : *branch.targets()) {
        CheckTermDiags(*t, *scope, branch.loc());
      }
    }
  }

  /// Selector/constructor scalar arguments against their declared formal
  /// parameter types (the "parameter substitution" edge of inference).
  void CheckRangeDiags(const Range& range, const Scope& scope,
                       SourceLoc loc) {
    for (const RangeApp& app : range.apps()) {
      const std::vector<FormalScalar>* formals = nullptr;
      std::string what;
      if (app.kind == RangeApp::Kind::kSelector) {
        auto sel = catalog_.LookupSelector(app.name);
        if (sel.ok()) {
          formals = &sel.value()->params();
          what = "selector '" + app.name + "'";
        }
      } else {
        const ConstructorDecl* ctor = nullptr;
        for (const ConstructorDecl* member : group_) {
          if (member->name() == app.name) ctor = member;
        }
        if (ctor == nullptr) {
          auto looked = catalog_.LookupConstructor(app.name);
          if (looked.ok()) ctor = looked.value();
        }
        if (ctor != nullptr) {
          formals = &ctor->scalar_params();
          what = "constructor '" + app.name + "'";
        }
        for (const RangePtr& arg : app.range_args) {
          CheckRangeDiags(*arg, scope, loc);
        }
      }
      if (formals == nullptr) continue;
      size_t n = std::min(app.term_args.size(), formals->size());
      for (size_t i = 0; i < n; ++i) {
        CheckTermDiags(*app.term_args[i], scope, loc);
        InferredType cell = TermCell(*app.term_args[i], scope, loc);
        if (cell.state == InferredType::State::kKnown &&
            cell.type != (*formals)[i].type) {
          Report(kDiagTypeConflict,
                 "argument '" + (*formals)[i].name + "' of " + what +
                     " is declared " +
                     std::string(ValueTypeName((*formals)[i].type)) +
                     " but receives " + Describe(cell),
                 loc);
        }
      }
    }
  }

  void CheckTermDiags(const Term& term, const Scope& scope, SourceLoc loc) {
    if (term.kind() != Term::Kind::kArith) return;
    const auto& t = static_cast<const ArithTerm&>(term);
    for (const TermPtr& operand : {t.lhs(), t.rhs()}) {
      CheckTermDiags(*operand, scope, loc);
      InferredType cell = TermCell(*operand, scope, loc);
      if (cell.state == InferredType::State::kKnown &&
          cell.type != ValueType::kInt) {
        Report(kDiagIllTypedOperation,
               "operand of '" + ArithOpName(t.op()) + "' has type " +
                   Describe(cell) + " in '" + ToString(term) + "'",
               loc);
      }
    }
  }

  void CheckPredDiags(const Pred& pred, Scope* scope, SourceLoc loc) {
    switch (pred.kind()) {
      case Pred::Kind::kBool:
        return;
      case Pred::Kind::kCompare: {
        const auto& p = static_cast<const ComparePred&>(pred);
        CheckTermDiags(*p.lhs(), *scope, loc);
        CheckTermDiags(*p.rhs(), *scope, loc);
        InferredType lhs = TermCell(*p.lhs(), *scope, loc);
        InferredType rhs = TermCell(*p.rhs(), *scope, loc);
        if (lhs.state != InferredType::State::kKnown ||
            rhs.state != InferredType::State::kKnown ||
            lhs.type == rhs.type) {
          return;
        }
        bool ordered = p.op() == CompareOp::kLt || p.op() == CompareOp::kLe ||
                       p.op() == CompareOp::kGt || p.op() == CompareOp::kGe;
        if (ordered) {
          Report(kDiagIllTypedOperation,
                 "ordered comparison mixes " + Describe(lhs) + " and " +
                     Describe(rhs) + " in '" + ToString(pred) + "'",
                 loc);
        } else {
          Report(kDiagDisjointComparison,
                 "'" + ToString(pred) + "' compares disjoint types " +
                     Describe(lhs) + " and " + Describe(rhs) +
                     "; it is statically always " +
                     (p.op() == CompareOp::kEq ? "FALSE" : "TRUE"),
                 loc);
        }
        return;
      }
      case Pred::Kind::kAnd:
        for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
          CheckPredDiags(*op, scope, loc);
        }
        return;
      case Pred::Kind::kOr:
        for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
          CheckPredDiags(*op, scope, loc);
        }
        return;
      case Pred::Kind::kNot:
        CheckPredDiags(*static_cast<const NotPred&>(pred).operand(), scope,
                       loc);
        return;
      case Pred::Kind::kQuant: {
        const auto& p = static_cast<const QuantPred&>(pred);
        SourceLoc qloc = p.loc().valid() ? p.loc() : loc;
        CheckRangeDiags(*p.range(), *scope, qloc);
        std::optional<Row> row = RangeRowOf(*p.range(), *scope, qloc);
        bool bound = false;
        Row saved;
        auto prev = scope->vars.find(p.var());
        if (prev != scope->vars.end()) {
          saved = prev->second;
          bound = true;
        }
        if (row.has_value()) scope->vars[p.var()] = std::move(*row);
        CheckPredDiags(*p.body(), scope, qloc);
        if (bound) {
          scope->vars[p.var()] = std::move(saved);
        } else {
          scope->vars.erase(p.var());
        }
        return;
      }
      case Pred::Kind::kIn: {
        const auto& p = static_cast<const InPred&>(pred);
        CheckRangeDiags(*p.range(), *scope, loc);
        std::optional<Row> row = RangeRowOf(*p.range(), *scope, loc);
        for (size_t i = 0; i < p.tuple().size(); ++i) {
          CheckTermDiags(*p.tuple()[i], *scope, loc);
          if (!row.has_value() || i >= row->cells.size()) continue;
          InferredType term_cell = TermCell(*p.tuple()[i], *scope, loc);
          const InferredType& attr = row->cells[i];
          if (term_cell.state == InferredType::State::kKnown &&
              attr.state == InferredType::State::kKnown &&
              term_cell.type != attr.type) {
            Report(kDiagDisjointComparison,
                   "membership position " + std::to_string(i) +
                       " compares " + Describe(term_cell) + " against " +
                       std::string(ValueTypeName(attr.type)) +
                       " attribute '" + row->names[i] + "' in '" +
                       ToString(pred) + "'; it can never match",
                   loc);
          }
        }
        return;
      }
    }
  }

  const Catalog& catalog_;
  std::vector<const ConstructorDecl*> group_;
  std::map<std::string, Row> cells_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

InferredType InferredType::Known(ValueType type, SourceLoc loc,
                                 std::string origin) {
  InferredType cell;
  cell.state = State::kKnown;
  cell.type = type;
  cell.loc = loc;
  cell.origin = std::move(origin);
  return cell;
}

std::string InferredType::ToString() const {
  switch (state) {
    case State::kKnown:
      return std::string(ValueTypeName(type));
    case State::kUnknown:
      return "?";
    case State::kConflict:
      return "<conflict>";
  }
  return "?";
}

std::string InferredSchema::ToString() const {
  std::string out = "RECORD ";
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += "; ";
    out += (i < names.size() ? names[i] : "c" + std::to_string(i)) + ": " +
           columns[i].ToString();
  }
  out += columns.empty() ? "END" : " END";
  return out;
}

bool TypeInference::HasErrors() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

TypeInference InferCatalogTypes(const Catalog& catalog) {
  std::vector<ConstructorDeclPtr> group;
  for (const auto& [name, decl] : catalog.constructors()) group.push_back(decl);
  Inferencer inf(catalog);
  inf.AddGroup(group);
  inf.Run();
  inf.Check();
  TypeInference result;
  for (const auto& [name, row] : inf.cells()) {
    InferredSchema schema;
    schema.names = row.names;
    schema.columns = row.cells;
    result.constructors.emplace(name, std::move(schema));
  }
  for (const auto& [name, decl] : catalog.selectors()) {
    Inferencer sel_inf(catalog);
    sel_inf.CheckSelector(*decl);
    for (Diagnostic& d : sel_inf.TakeDiagnostics()) {
      result.diagnostics.push_back(std::move(d));
    }
  }
  for (Diagnostic& d : inf.TakeDiagnostics()) {
    result.diagnostics.push_back(std::move(d));
  }
  return result;
}

std::vector<Diagnostic> TypecheckConstructorGroup(
    const std::vector<ConstructorDeclPtr>& group, const Catalog& catalog) {
  Inferencer inf(catalog);
  inf.AddGroup(group);
  inf.Run();
  inf.Check();
  return inf.TakeDiagnostics();
}

std::vector<Diagnostic> TypecheckSelector(const SelectorDecl& decl,
                                          const Catalog& catalog) {
  Inferencer inf(catalog);
  inf.CheckSelector(decl);
  return inf.TakeDiagnostics();
}

std::vector<Diagnostic> TypecheckQueryExpr(
    const CalcExpr& expr, const Catalog& catalog,
    const std::map<std::string, ValueType>& placeholders) {
  Inferencer inf(catalog);
  inf.CheckQuery(expr, placeholders);
  return inf.TakeDiagnostics();
}

}  // namespace datacon
