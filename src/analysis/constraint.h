#ifndef DATACON_ANALYSIS_CONSTRAINT_H_
#define DATACON_ANALYSIS_CONSTRAINT_H_

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/branch.h"
#include "ast/decl.h"
#include "common/result.h"
#include "core/catalog.h"
#include "types/value.h"

namespace datacon {

/// Compile-time audit and simplification of declarative integrity
/// constraints (the Nicolas/Decker line of work, adapted to the paper's
/// three-level framework):
///
///  * level 1 (define time): the constraint is desugared to denial form,
///    name-resolved and type-checked (E120/E121), and folded (W230);
///  * level 2 (define time): for every input relation the analysis decides
///    how an INSERT into it must be re-checked — not at all (the relation
///    occurs only at odd NOT/ALL parity, so new tuples can only destroy
///    witnesses), by a *simplified* residue check (every even-parity
///    occurrence is a direct plain binding, so a new witness must bind the
///    inserted tuple at one of them), or by full re-evaluation;
///  * level 3 (commit time, core/database.cc): the residues run as prepared
///    queries seeded with the delta tuple's attribute values, which the
///    adornment analysis then specializes exactly like any other
///    parameter-bound query.

/// A constraint in denial form: the constraint is VIOLATED iff some
/// assignment of the bindings satisfies the predicate.
struct ConstraintBody {
  std::vector<Binding> bindings;
  PredPtr pred;
};

/// How an INSERT into one input relation must be re-checked.
enum class ConstraintCheckMode {
  /// Every occurrence of the relation is at odd NOT/ALL parity: inserting
  /// can only remove witnesses, never create one.
  kSkip,
  /// Every even-parity occurrence is a direct plain binding of the denial:
  /// a new witness must bind the inserted tuple there, so checking the
  /// per-binding residues over the delta is complete.
  kSimplified,
  /// The relation reaches the denial through a derived range, a selector
  /// predicate, or an even-parity quantifier — only re-evaluating the whole
  /// denial is sound.
  kFull,
};

/// "skip", "simplified", or "full".
std::string_view ConstraintCheckModeName(ConstraintCheckMode mode);

/// The compile-time plan for INSERTs into one input relation.
struct ConstraintEvent {
  std::string relation;
  ConstraintCheckMode insert_mode = ConstraintCheckMode::kFull;
  /// Indices into ConstraintBody::bindings of the direct plain bindings
  /// over `relation`; one residue per index when kSimplified.
  std::vector<size_t> residue_bindings;
};

/// One simplified check: the denial with binding `binding_index`
/// instantiated by the inserted tuple. Every reference `v.f` to the delta
/// binding is replaced by the parameter carrying delta attribute f, so the
/// residue is an ordinary parameter-bound prepared query (and thus eligible
/// for magic-seed specialization).
struct ConstraintResidue {
  size_t binding_index = 0;
  /// Single-branch query; non-empty result = violation witness.
  CalcExprPtr expr;
  /// Parameter name per delta attribute, aligned with the input relation's
  /// schema fields ("delta_<field>").
  std::vector<std::string> param_fields;
  /// Placeholder types for Database::Prepare.
  std::map<std::string, ValueType> placeholders;
};

/// The define-time analysis result. When `diagnostics` contains an error
/// the remaining members are unspecified and the definition must be
/// rejected.
struct ConstraintAnalysis {
  ConstraintBody body;
  /// Every base relation the denial reads (directly or through applied
  /// selectors/constructors).
  std::set<std::string> inputs;
  /// One entry per input relation, sorted by name.
  std::vector<ConstraintEvent> events;
  std::vector<Diagnostic> diagnostics;

  bool HasErrors() const;
};

/// Lowers the surface form to denial form. KEY <f...> ON Rel becomes the
/// two-variable agreement denial; FOREIGN f OF lhs REFERENCES g OF rhs
/// becomes the unmatched-tuple denial. Denial constraints pass through.
/// Fails with kNotFound for unknown relations and kTypeError for unknown
/// fields (mapped to E121/E120 by LintConstraint).
Result<ConstraintBody> DesugarConstraint(const ConstraintDecl& decl,
                                         const Catalog& catalog);

/// Define-time diagnostics: E121 (unknown relation/selector/constructor),
/// E120 (the desugared denial is unsafe or ill-typed, or references a
/// parameter — constraints take none), W230 (the denial folds to FALSE and
/// can never be violated).
std::vector<Diagnostic> LintConstraint(const ConstraintDecl& decl,
                                       const Catalog& catalog);

/// Full define-time analysis: LintConstraint plus the per-input event
/// classification. Events are computed only when the lint found no errors.
ConstraintAnalysis AnalyzeConstraint(const ConstraintDecl& decl,
                                     const Catalog& catalog);

/// The full denial as a query expression: one branch over all bindings,
/// projecting every bound attribute (the violation witness).
Result<CalcExprPtr> DenialQuery(const ConstraintBody& body,
                                const Catalog& catalog);

/// Builds the simplified residue for INSERTs binding `binding_index`
/// (which must name a direct plain binding). The delta binding is removed
/// and its field references replaced by parameters; when it was the only
/// binding, it is kept and pinned to the delta tuple by parameter
/// equalities instead (a branch needs at least one binding).
Result<ConstraintResidue> BuildResidue(const ConstraintBody& body,
                                       size_t binding_index,
                                       const Catalog& catalog);

}  // namespace datacon

#endif  // DATACON_ANALYSIS_CONSTRAINT_H_
