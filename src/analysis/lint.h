#ifndef DATACON_ANALYSIS_LINT_H_
#define DATACON_ANALYSIS_LINT_H_

#include <vector>

#include "analysis/diagnostic.h"
#include "ast/branch.h"
#include "ast/decl.h"
#include "core/catalog.h"

namespace datacon {

/// Knobs of the lint pipeline.
struct LintOptions {
  /// Mirrors DatabaseOptions::allow_stratified_negation: when set, an
  /// odd-parity constructed range over a *different* recursion component is
  /// reported as W212 (informative) instead of E103.
  bool allow_stratified_negation = false;
  /// Run the adornment/relevance analysis (analysis/adorn.h) over every
  /// query/assignment/EXPLAIN expression and report W220/W221/W222 where an
  /// adorned constructor application cannot be specialized. Off by default —
  /// the findings only matter when PRAGMA SPECIALIZE performance is wanted.
  /// The `datacon-lint --adorn` flag turns it on.
  bool adorn = false;
  /// Audit declared constraints against the script's own data flow: W231
  /// when a constraint is refuted by the facts the script inserts, W232
  /// when no statement of the script can ever change one of the
  /// constraint's input relations. Off by default — both checks replay the
  /// script's definitions/inserts into a scratch database. The
  /// `datacon-lint --constraints` flag turns it on.
  bool constraints = false;
  /// Run whole-program type inference (analysis/typecheck.h) over every
  /// selector, constructor group, and query expression and report
  /// E130/E131/E132/W240/W241/W242. Off by default; the `datacon-lint
  /// --types` flag and `DatabaseOptions::typecheck` (CHECK SCRIPT) turn it
  /// on.
  bool types = false;
};

/// Lints one selector declaration against `catalog` (which supplies the
/// relations and selectors/constructors its predicate may reference).
/// Reports E101 unknown names, E110 unsafe variables, W202 unused
/// parameters, W203 shadowing, W205 always-false predicate, and W206
/// constant conjuncts.
std::vector<Diagnostic> LintSelector(const SelectorDecl& decl,
                                     const Catalog& catalog);

/// Lints a set of (possibly mutually recursive) constructors. Group members
/// may reference each other and themselves even when not yet registered in
/// `catalog` — the pre-definition path of `PRAGMA LINT = ON`. On top of the
/// branch-level passes this classifies recursion per strongly connected
/// component: W210 non-differentiable branches, W211 non-linear recursion,
/// and E103/W212 for constructed ranges under odd NOT/ALL parity.
std::vector<Diagnostic> LintConstructorGroup(
    const std::vector<ConstructorDeclPtr>& group, const Catalog& catalog,
    const LintOptions& options = {});

/// LintConstructorGroup for a single constructor.
std::vector<Diagnostic> LintConstructor(const ConstructorDecl& decl,
                                        const Catalog& catalog,
                                        const LintOptions& options = {});

/// Lints a free-standing query expression (the branch-level passes only —
/// a query cannot introduce recursion).
std::vector<Diagnostic> LintQueryExpr(const CalcExpr& expr,
                                      const Catalog& catalog);

/// Lints a query range expression: E101 for unknown relation/selector/
/// constructor names.
std::vector<Diagnostic> LintQueryRange(const Range& range,
                                       const Catalog& catalog);

/// Lints every selector and constructor registered in `catalog`, sorted by
/// source span. The whole-database entry point behind `Database::Lint` and
/// `CHECK SCRIPT;`.
LintReport LintCatalogDecls(const Catalog& catalog,
                            const LintOptions& options = {});

}  // namespace datacon

#endif  // DATACON_ANALYSIS_LINT_H_
