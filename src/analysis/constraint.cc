#include "analysis/constraint.h"

#include <algorithm>
#include <utility>

#include "analysis/fold.h"
#include "ast/builder.h"
#include "core/matcache.h"
#include "core/positivity.h"
#include "core/semantics.h"
#include "core/subst.h"

namespace datacon {

namespace {

/// SubstituteFields (core/subst.h) stops at range boundaries: quantifier and
/// binding ranges are shared untouched. Residue instantiation must reach
/// *into* ranges too — a correlated selector argument `[sel(v.f)]` of a
/// remaining binding still references the removed delta variable. These
/// helpers rebuild ranges and predicates with every term rewritten.
RangePtr SubstituteFieldsInRange(const RangePtr& range,
                                 const FieldSubstitution& subst) {
  std::vector<RangeApp> apps;
  apps.reserve(range->apps().size());
  for (const RangeApp& app : range->apps()) {
    RangeApp copy;
    copy.kind = app.kind;
    copy.name = app.name;
    for (const TermPtr& t : app.term_args) {
      copy.term_args.push_back(SubstituteFields(t, subst));
    }
    for (const RangePtr& r : app.range_args) {
      copy.range_args.push_back(SubstituteFieldsInRange(r, subst));
    }
    apps.push_back(std::move(copy));
  }
  return std::make_shared<Range>(range->relation(), std::move(apps));
}

PredPtr SubstituteFieldsDeep(const PredPtr& pred,
                             const FieldSubstitution& subst) {
  switch (pred->kind()) {
    case Pred::Kind::kBool:
      return pred;
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(*pred);
      return std::make_shared<ComparePred>(p.op(),
                                           SubstituteFields(p.lhs(), subst),
                                           SubstituteFields(p.rhs(), subst));
    }
    case Pred::Kind::kAnd: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const AndPred&>(*pred).operands()) {
        ops.push_back(SubstituteFieldsDeep(op, subst));
      }
      return std::make_shared<AndPred>(std::move(ops));
    }
    case Pred::Kind::kOr: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const OrPred&>(*pred).operands()) {
        ops.push_back(SubstituteFieldsDeep(op, subst));
      }
      return std::make_shared<OrPred>(std::move(ops));
    }
    case Pred::Kind::kNot: {
      const auto& p = static_cast<const NotPred&>(*pred);
      return std::make_shared<NotPred>(
          SubstituteFieldsDeep(p.operand(), subst));
    }
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(*pred);
      return std::make_shared<QuantPred>(
          p.quantifier(), p.var(), SubstituteFieldsInRange(p.range(), subst),
          SubstituteFieldsDeep(p.body(), subst), p.loc());
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(*pred);
      std::vector<TermPtr> tuple;
      for (const TermPtr& t : p.tuple()) {
        tuple.push_back(SubstituteFields(t, subst));
      }
      return std::make_shared<InPred>(std::move(tuple),
                                      SubstituteFieldsInRange(p.range(), subst));
    }
  }
  return pred;
}

/// Reports E121 for every undeclared relation, selector, or constructor
/// referenced by `range` (recursively through constructor arguments), at
/// most once per name.
void CheckRangeNames(const Range& range, const Catalog& catalog, SourceLoc loc,
                     std::set<std::string>* reported,
                     std::vector<Diagnostic>* out) {
  if (!catalog.LookupRelation(range.relation()).ok() &&
      reported->insert(range.relation()).second) {
    out->push_back(MakeDiagnostic(
        kDiagConstraintUnknownRelation,
        "constraint references undeclared relation '" + range.relation() + "'",
        loc));
  }
  for (const RangeApp& app : range.apps()) {
    if (app.kind == RangeApp::Kind::kSelector) {
      if (!catalog.LookupSelector(app.name).ok() &&
          reported->insert(app.name).second) {
        out->push_back(MakeDiagnostic(
            kDiagConstraintUnknownRelation,
            "constraint references undeclared selector '" + app.name + "'",
            loc));
      }
    } else {
      if (!catalog.LookupConstructor(app.name).ok() &&
          reported->insert(app.name).second) {
        out->push_back(MakeDiagnostic(
            kDiagConstraintUnknownRelation,
            "constraint references undeclared constructor '" + app.name + "'",
            loc));
      }
      for (const RangePtr& arg : app.range_args) {
        CheckRangeNames(*arg, catalog, loc, reported, out);
      }
    }
  }
}

bool HasErrorDiagnostic(const std::vector<Diagnostic>& diags) {
  return std::any_of(diags.begin(), diags.end(), [](const Diagnostic& d) {
    return d.severity == Severity::kError;
  });
}

}  // namespace

bool ConstraintAnalysis::HasErrors() const {
  return HasErrorDiagnostic(diagnostics);
}

std::string_view ConstraintCheckModeName(ConstraintCheckMode mode) {
  switch (mode) {
    case ConstraintCheckMode::kSkip:
      return "skip";
    case ConstraintCheckMode::kSimplified:
      return "simplified";
    case ConstraintCheckMode::kFull:
      return "full";
  }
  return "full";
}

Result<ConstraintBody> DesugarConstraint(const ConstraintDecl& decl,
                                         const Catalog& catalog) {
  using namespace build;  // NOLINT(build/namespaces)
  switch (decl.kind()) {
    case ConstraintDecl::Kind::kDenial:
      return ConstraintBody{decl.bindings(), decl.pred()};

    case ConstraintDecl::Kind::kKey: {
      // KEY <f...> ON Rel: deny two tuples agreeing on every key field but
      // differing on some other field.
      DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                               catalog.LookupRelation(decl.relation()));
      const Schema& schema = rel->schema();
      std::set<std::string> key_set;
      std::vector<PredPtr> agree;
      for (const std::string& f : decl.key_fields()) {
        if (!schema.FieldIndex(f).has_value()) {
          return Status::TypeError("key field '" + f +
                                   "' is not a field of relation '" +
                                   decl.relation() + "'");
        }
        if (!key_set.insert(f).second) {
          return Status::TypeError("key field '" + f + "' listed twice");
        }
        agree.push_back(Eq(FieldRef("a", f), FieldRef("b", f)));
      }
      std::vector<PredPtr> differ;
      for (const Field& f : schema.fields()) {
        if (key_set.count(f.name) > 0) continue;
        differ.push_back(Ne(FieldRef("a", f.name), FieldRef("b", f.name)));
      }
      // A key covering every field is plain set semantics: the disjunction
      // is empty, the denial folds to FALSE, and the lint reports W230.
      PredPtr differs = differ.empty()     ? False()
                        : differ.size() == 1 ? differ[0]
                                             : Or(std::move(differ));
      agree.push_back(std::move(differs));
      ConstraintBody body;
      body.bindings.push_back(Each("a", Rel(decl.relation())));
      body.bindings.push_back(Each("b", Rel(decl.relation())));
      body.pred = agree.size() == 1 ? agree[0] : And(std::move(agree));
      return body;
    }

    case ConstraintDecl::Kind::kForeign: {
      // FOREIGN f OF lhs REFERENCES g OF rhs: deny an lhs tuple whose
      // f-value matches no rhs g-value.
      AnalysisScope scope;
      scope.catalog = &catalog;
      DATACON_ASSIGN_OR_RETURN(const Schema* lhs,
                               RangeSchemaOf(*decl.fk_range(), scope));
      if (!lhs->FieldIndex(decl.fk_field()).has_value()) {
        return Status::TypeError("foreign field '" + decl.fk_field() +
                                 "' is not a field of the referencing range");
      }
      DATACON_ASSIGN_OR_RETURN(const Schema* rhs,
                               RangeSchemaOf(*decl.ref_range(), scope));
      if (!rhs->FieldIndex(decl.ref_field()).has_value()) {
        return Status::TypeError("referenced field '" + decl.ref_field() +
                                 "' is not a field of the referenced range");
      }
      ConstraintBody body;
      body.bindings.push_back(Each("fk", decl.fk_range()));
      body.pred = Not(Some("ref", decl.ref_range(),
                           Eq(FieldRef("ref", decl.ref_field()),
                              FieldRef("fk", decl.fk_field()))));
      return body;
    }
  }
  return Status::Internal("unhandled constraint kind");
}

std::vector<Diagnostic> LintConstraint(const ConstraintDecl& decl,
                                       const Catalog& catalog) {
  std::vector<Diagnostic> out;
  std::set<std::string> reported;
  const SourceLoc loc = decl.loc();

  switch (decl.kind()) {
    case ConstraintDecl::Kind::kDenial:
      for (const Binding& b : decl.bindings()) {
        CheckRangeNames(*b.range, catalog, loc, &reported, &out);
      }
      ForEachRangeWithParity(*decl.pred(), 0,
                             [&](const Range& r, int /*parity*/) {
                               CheckRangeNames(r, catalog, loc, &reported,
                                               &out);
                             });
      break;
    case ConstraintDecl::Kind::kKey:
      if (!catalog.LookupRelation(decl.relation()).ok()) {
        out.push_back(MakeDiagnostic(
            kDiagConstraintUnknownRelation,
            "constraint references undeclared relation '" + decl.relation() +
                "'",
            loc));
      }
      break;
    case ConstraintDecl::Kind::kForeign:
      CheckRangeNames(*decl.fk_range(), catalog, loc, &reported, &out);
      CheckRangeNames(*decl.ref_range(), catalog, loc, &reported, &out);
      break;
  }
  if (HasErrorDiagnostic(out)) return out;

  Result<ConstraintBody> body_or = DesugarConstraint(decl, catalog);
  if (!body_or.ok()) {
    std::string_view code = body_or.status().code() == StatusCode::kNotFound
                                ? kDiagConstraintUnknownRelation
                                : kDiagUnsafeConstraint;
    out.push_back(MakeDiagnostic(code, body_or.status().message(), loc));
    return out;
  }
  const ConstraintBody& body = body_or.value();

  AnalysisScope scope;
  scope.catalog = &catalog;
  for (const Binding& b : body.bindings) {
    if (scope.vars.count(b.var) > 0) {
      out.push_back(MakeDiagnostic(
          kDiagUnsafeConstraint,
          "duplicate binding variable '" + b.var + "' in constraint", loc));
      return out;
    }
    Result<const Schema*> schema = RangeSchemaOf(*b.range, scope);
    if (!schema.ok()) {
      out.push_back(MakeDiagnostic(kDiagUnsafeConstraint,
                                   schema.status().message(), loc));
      return out;
    }
    scope.vars[b.var] = schema.value();
  }
  // Constraints take no parameters, so an unresolved name inside the
  // predicate (a free variable or a $-style placeholder) fails right here.
  Status pred_ok = CheckPred(*body.pred, &scope);
  if (!pred_ok.ok()) {
    out.push_back(
        MakeDiagnostic(kDiagUnsafeConstraint, pred_ok.message(), loc));
    return out;
  }

  if (FoldPred(*body.pred) == FoldOutcome::kFalse) {
    out.push_back(MakeDiagnostic(
        kDiagConstraintTrivial,
        "constraint '" + decl.name() +
            "' is trivially satisfied: its denial folds to FALSE",
        loc));
  }
  return out;
}

ConstraintAnalysis AnalyzeConstraint(const ConstraintDecl& decl,
                                     const Catalog& catalog) {
  ConstraintAnalysis analysis;
  analysis.diagnostics = LintConstraint(decl, catalog);
  if (analysis.HasErrors()) return analysis;

  Result<ConstraintBody> body_or = DesugarConstraint(decl, catalog);
  if (!body_or.ok()) {
    analysis.diagnostics.push_back(MakeDiagnostic(
        kDiagUnsafeConstraint, body_or.status().message(), decl.loc()));
    return analysis;
  }
  analysis.body = std::move(body_or).value();

  // Per input relation: the direct plain bindings (candidate residues) and
  // whether any occurrence could create a witness in a way a residue does
  // not cover. Merely *appearing* in the map makes a relation an input —
  // odd-parity-only occurrences classify as kSkip but still force a full
  // recheck when their delta log rebases (an erase there can create
  // witnesses).
  struct RelInfo {
    std::vector<size_t> direct;
    bool complex_even = false;
  };
  std::map<std::string, RelInfo> info;
  auto mark_all_inputs = [&](const Range& r, int parity) {
    InputScan scan;
    ScanRangeInputs(r, catalog, parity, &scan);
    // Conservative regardless of the outer parity: a derived range can
    // create witnesses through selector predicates or constructor bodies
    // whose internal parity differs from the occurrence's.
    for (const std::string& name : scan.inputs) {
      info[name].complex_even = true;
    }
  };

  const std::vector<Binding>& bindings = analysis.body.bindings;
  for (size_t i = 0; i < bindings.size(); ++i) {
    const Range& r = *bindings[i].range;
    if (r.IsPlain()) {
      info[r.relation()].direct.push_back(i);
    } else {
      mark_all_inputs(r, 0);
    }
  }
  ForEachRangeWithParity(*analysis.body.pred, 0,
                         [&](const Range& r, int parity) {
                           if (r.IsPlain()) {
                             if (parity % 2 == 0) {
                               // An even-parity quantifier/membership range:
                               // a new witness can bind the inserted tuple
                               // there, outside any residue.
                               info[r.relation()].complex_even = true;
                             } else {
                               info[r.relation()];
                             }
                           } else {
                             mark_all_inputs(r, parity);
                           }
                         });

  for (const auto& [relation, rel_info] : info) {
    analysis.inputs.insert(relation);
    ConstraintEvent event;
    event.relation = relation;
    if (rel_info.complex_even) {
      event.insert_mode = ConstraintCheckMode::kFull;
    } else if (!rel_info.direct.empty()) {
      event.insert_mode = ConstraintCheckMode::kSimplified;
      event.residue_bindings = rel_info.direct;
    } else {
      event.insert_mode = ConstraintCheckMode::kSkip;
    }
    analysis.events.push_back(std::move(event));
  }
  return analysis;
}

Result<CalcExprPtr> DenialQuery(const ConstraintBody& body,
                                const Catalog& catalog) {
  AnalysisScope scope;
  scope.catalog = &catalog;
  std::vector<TermPtr> targets;
  for (const Binding& b : body.bindings) {
    DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                             RangeSchemaOf(*b.range, scope));
    scope.vars[b.var] = schema;
    for (const Field& f : schema->fields()) {
      targets.push_back(build::FieldRef(b.var, f.name));
    }
  }
  return build::Union(
      {build::MakeBranch(std::move(targets), body.bindings, body.pred)});
}

Result<ConstraintResidue> BuildResidue(const ConstraintBody& body,
                                       size_t binding_index,
                                       const Catalog& catalog) {
  using namespace build;  // NOLINT(build/namespaces)
  if (binding_index >= body.bindings.size()) {
    return Status::InvalidArgument("residue binding index out of range");
  }
  const Binding& delta = body.bindings[binding_index];
  if (!delta.range->IsPlain()) {
    return Status::InvalidArgument(
        "residue binding must range over a plain base relation");
  }
  DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                           catalog.LookupRelation(delta.range->relation()));
  const Schema& schema = rel->schema();

  ConstraintResidue residue;
  residue.binding_index = binding_index;
  FieldSubstitution subst;
  for (const Field& f : schema.fields()) {
    std::string param = "delta_" + f.name;
    subst[{delta.var, f.name}] = Param(param);
    residue.param_fields.push_back(param);
    residue.placeholders.emplace(std::move(param), f.type);
  }

  std::vector<Binding> rest;
  for (size_t j = 0; j < body.bindings.size(); ++j) {
    if (j == binding_index) continue;
    const Binding& b = body.bindings[j];
    rest.push_back(
        Binding{b.var, SubstituteFieldsInRange(b.range, subst), b.loc});
  }

  std::vector<TermPtr> targets;
  PredPtr pred;
  if (rest.empty()) {
    // Single-binding denial: a branch needs a binding, so keep the delta
    // variable and pin it to the inserted tuple (already present in the
    // relation when the check runs) by parameter equalities.
    std::vector<PredPtr> conjuncts;
    for (const Field& f : schema.fields()) {
      conjuncts.push_back(
          Eq(FieldRef(delta.var, f.name), Param("delta_" + f.name)));
      targets.push_back(FieldRef(delta.var, f.name));
    }
    conjuncts.push_back(body.pred);
    rest.push_back(delta);
    pred = And(std::move(conjuncts));
  } else {
    pred = SubstituteFieldsDeep(body.pred, subst);
    AnalysisScope scope;
    scope.catalog = &catalog;
    scope.scalar_params.insert(residue.placeholders.begin(),
                               residue.placeholders.end());
    for (const Binding& b : rest) {
      DATACON_ASSIGN_OR_RETURN(const Schema* s, RangeSchemaOf(*b.range, scope));
      scope.vars[b.var] = s;
      for (const Field& f : s->fields()) {
        targets.push_back(FieldRef(b.var, f.name));
      }
    }
  }
  residue.expr = Union({MakeBranch(std::move(targets), std::move(rest), pred)});
  return residue;
}

}  // namespace datacon
