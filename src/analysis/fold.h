#ifndef DATACON_ANALYSIS_FOLD_H_
#define DATACON_ANALYSIS_FOLD_H_

#include <optional>

#include "ast/pred.h"
#include "ast/term.h"
#include "types/value.h"

namespace datacon {

/// Outcome of folding a predicate without data: provably TRUE, provably
/// FALSE, or dependent on bindings/relation contents.
enum class FoldOutcome {
  kTrue,
  kFalse,
  kUnknown,
};

/// Evaluates `term` when it is constant: literals fold to themselves,
/// integer arithmetic over foldable operands is computed (DIV/MOD by zero
/// stays unfoldable), field and parameter references do not fold.
std::optional<Value> FoldTerm(const Term& term);

/// Folds `pred` without consulting any relation:
///
///  * TRUE/FALSE literals;
///  * comparisons of two foldable terms of the same type;
///  * comparisons of a term with itself (`x.a = x.a` is TRUE, `x.a # x.a`
///    is FALSE) — detected syntactically on field references;
///  * AND/OR/NOT by three-valued logic;
///  * `SOME v IN r (FALSE)` is FALSE and `ALL v IN r (TRUE)` is TRUE
///    regardless of the range's contents.
///
/// Membership tests and all other quantifiers are kUnknown.
FoldOutcome FoldPred(const Pred& pred);

}  // namespace datacon

#endif  // DATACON_ANALYSIS_FOLD_H_
