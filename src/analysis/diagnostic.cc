#include "analysis/diagnostic.h"

#include <algorithm>
#include <array>
#include <cctype>
#include <utility>

#include "common/string_util.h"

namespace datacon {

namespace {

struct CodeEntry {
  std::string_view code;
  std::string_view meaning;
};

/// The registry behind DiagnosticCodeMeaning/AllDiagnosticCodes. Order is
/// errors first, numerically — the order DESIGN.md documents them in.
constexpr std::array<CodeEntry, 30> kCodeTable = {{
    {kDiagParseError, "the source fragment failed to parse"},
    {kDiagUnknownName,
     "a relation, selector, constructor, or parameter name is not declared"},
    {kDiagTypeError, "the declaration failed the level-1 type checker"},
    {kDiagNonStratifiable,
     "a constructed range occurs under an odd number of NOTs/ALLs inside its "
     "own recursive component (no stratification can evaluate it)"},
    {kDiagRedefinition, "the name is already defined"},
    {kDiagUnsafeVariable,
     "a target or predicate variable is not bound by any range"},
    {kDiagUnsafeConstraint,
     "the constraint body is unsafe: a variable is unbound, a parameter "
     "placeholder occurs (constraints take no parameters), or the denial "
     "fails the type checker"},
    {kDiagConstraintUnknownRelation,
     "the constraint references a relation, selector, or constructor that "
     "is not declared"},
    {kDiagTypeConflict,
     "whole-program type inference found two contributions that assign "
     "incompatible types to the same attribute, parameter, or term (both "
     "contributing spans are named in the message)"},
    {kDiagIllTypedOperation,
     "an arithmetic operator is applied to a non-integer operand, or an "
     "ordered comparison (<, <=, >, >=) mixes operands of different types"},
    {kDiagCaptureNonBinary,
     "the constructor matches the transitive-closure capture shape but its "
     "base or result relation is not binary; the capture rule would fail at "
     "evaluation time"},
    {kDiagUnusedBinding,
     "a tuple variable is bound by EACH but used neither in the predicate "
     "nor in the target list"},
    {kDiagUnusedParameter,
     "a declared scalar or relation parameter is never referenced"},
    {kDiagShadowedName,
     "a tuple or quantifier variable shadows a scalar parameter or an "
     "enclosing variable"},
    {kDiagCrossProduct,
     "a branch's bindings are not connected by any shared conjunct; the "
     "branch enumerates a cross product"},
    {kDiagAlwaysFalseBranch,
     "the branch predicate folds to FALSE; the branch never produces tuples"},
    {kDiagConstantConjunct,
     "a conjunct folds to TRUE and never restricts the branch"},
    {kDiagDuplicateBranch, "the branch repeats an earlier branch verbatim"},
    {kDiagNonDifferentiable,
     "a recursive reference occurs inside the branch predicate; semi-naive "
     "evaluation falls back to full re-evaluation for this branch"},
    {kDiagNonLinearRecursion,
     "the branch binds two or more recursive ranges (non-linear recursion); "
     "each fixpoint round is quadratic in the new tuples"},
    {kDiagStratifiedNegation,
     "a constructed range of a lower stratum occurs under an odd number of "
     "NOTs/ALLs; accepted only with allow_stratified_negation"},
    {kDiagAdornmentNonLinear,
     "a bound attribute cannot be specialized: the adornment is lost across "
     "a non-linear branch (two or more recursive bindings)"},
    {kDiagAdornmentFreeJoin,
     "a bound attribute cannot be specialized: the binding is dropped by a "
     "free-variable join (no equality conjunct carries the bound value into "
     "the recursive binding)"},
    {kDiagAdornmentNegation,
     "a bound attribute cannot be specialized: relevance propagation is "
     "blocked by a recursive reference under negation or inside a branch "
     "predicate"},
    {kDiagConstraintTrivial,
     "the constraint's denial folds to FALSE; no database state can ever "
     "violate it"},
    {kDiagConstraintRefuted,
     "the constraint is refuted by existing facts: the denial already has a "
     "witness in the current database state"},
    {kDiagConstraintUnreachable,
     "no INSERT or assignment in the script touches any input relation of "
     "the constraint; its support can never change"},
    {kDiagDisjointComparison,
     "an equality or inequality compares operands of statically disjoint "
     "types; the comparison has a constant truth value"},
    {kDiagUnconstrainedAttribute,
     "no branch constrains the type of this derived-relation attribute; "
     "inference leaves it unknown"},
    {kDiagUnionNameMismatch,
     "the union's branches disagree on a result field name; a positional "
     "name is used instead of the first branch's"},
}};

}  // namespace

std::string_view SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string_view DiagnosticCodeMeaning(std::string_view code) {
  for (const CodeEntry& entry : kCodeTable) {
    if (entry.code == code) return entry.meaning;
  }
  return {};
}

std::vector<std::string_view> AllDiagnosticCodes() {
  std::vector<std::string_view> out;
  out.reserve(kCodeTable.size());
  for (const CodeEntry& entry : kCodeTable) out.push_back(entry.code);
  return out;
}

std::string Diagnostic::ToString() const {
  std::string out;
  if (loc.valid()) out += loc.ToString() + ": ";
  out += SeverityName(severity);
  out += " ";
  out += code;
  out += ": ";
  out += message;
  return out;
}

std::string Diagnostic::ToJson() const {
  std::string out = "{\"code\":";
  AppendJsonEscaped(&out, code);
  out += ",\"severity\":";
  AppendJsonEscaped(&out, SeverityName(severity));
  out += ",\"line\":" + std::to_string(loc.line);
  out += ",\"column\":" + std::to_string(loc.column);
  out += ",\"message\":";
  AppendJsonEscaped(&out, message);
  out += "}";
  return out;
}

Diagnostic MakeDiagnostic(std::string_view code, std::string message,
                          SourceLoc loc) {
  Diagnostic d;
  d.code = std::string(code);
  d.severity = !code.empty() && code[0] == 'E' ? Severity::kError
                                               : Severity::kWarning;
  d.message = std::move(message);
  d.loc = loc;
  return d;
}

Diagnostic DiagnosticFromStatus(const Status& status) {
  std::string_view code;
  switch (status.code()) {
    case StatusCode::kParseError:
      code = kDiagParseError;
      break;
    case StatusCode::kNotFound:
      code = kDiagUnknownName;
      break;
    case StatusCode::kAlreadyExists:
      code = kDiagRedefinition;
      break;
    case StatusCode::kPositivityViolation:
      code = kDiagNonStratifiable;
      break;
    default:
      code = kDiagTypeError;
      break;
  }
  // Parser and lexer errors embed "at line L, column C"; recover the span so
  // E100 points at the offending token.
  SourceLoc loc;
  const std::string& msg = status.message();
  size_t at = msg.rfind("at line ");
  if (at != std::string::npos) {
    int line = 0, column = 0;
    size_t p = at + 8;
    while (p < msg.size() && std::isdigit(static_cast<unsigned char>(msg[p]))) {
      line = line * 10 + (msg[p++] - '0');
    }
    size_t col = msg.find("column ", p);
    if (col != std::string::npos) {
      p = col + 7;
      while (p < msg.size() &&
             std::isdigit(static_cast<unsigned char>(msg[p]))) {
        column = column * 10 + (msg[p++] - '0');
      }
    }
    loc = SourceLoc{line, column};
  }
  return MakeDiagnostic(code, status.message(), loc);
}

bool LintReport::HasErrors() const { return error_count() > 0; }

size_t LintReport::error_count() const {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

size_t LintReport::warning_count() const {
  return diagnostics.size() - error_count();
}

void LintReport::Append(std::vector<Diagnostic> ds) {
  for (Diagnostic& d : ds) diagnostics.push_back(std::move(d));
}

void LintReport::SortBySpan() {
  std::stable_sort(diagnostics.begin(), diagnostics.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     if (a.loc.valid() != b.loc.valid()) return a.loc.valid();
                     if (a.loc.line != b.loc.line) return a.loc.line < b.loc.line;
                     if (a.loc.column != b.loc.column) {
                       return a.loc.column < b.loc.column;
                     }
                     return a.code < b.code;
                   });
}

std::string LintReport::ToText() const {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  if (!diagnostics.empty()) {
    out += std::to_string(error_count()) + " error(s), " +
           std::to_string(warning_count()) + " warning(s)\n";
  }
  return out;
}

std::string LintReport::ToJson() const {
  std::string out = "{\"diagnostics\":[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    if (i > 0) out += ",";
    out += diagnostics[i].ToJson();
  }
  out += "],\"errors\":" + std::to_string(error_count());
  out += ",\"warnings\":" + std::to_string(warning_count());
  out += "}";
  return out;
}

}  // namespace datacon
