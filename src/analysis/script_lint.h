#ifndef DATACON_ANALYSIS_SCRIPT_LINT_H_
#define DATACON_ANALYSIS_SCRIPT_LINT_H_

#include "analysis/diagnostic.h"
#include "analysis/lint.h"
#include "lang/script.h"

namespace datacon {

/// Lints a whole parsed program without executing it: declarations are
/// registered into a scratch catalog in statement order (consecutive
/// CONSTRUCTOR statements form one mutually recursive group, mirroring the
/// interpreter), every declaration runs the definition passes, and
/// QUERY/EXPLAIN/assignment expressions run the query passes. INSERT and
/// PRAGMA statements only have their names resolved — no data is touched.
/// The backend of `CHECK SCRIPT;` and the datacon-lint CLI.
LintReport LintScript(const Script& script, const LintOptions& options = {});

}  // namespace datacon

#endif  // DATACON_ANALYSIS_SCRIPT_LINT_H_
