#ifndef DATACON_ANALYSIS_ADORN_H_
#define DATACON_ANALYSIS_ADORN_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/diagnostic.h"
#include "ast/branch.h"
#include "ast/range.h"
#include "common/result.h"
#include "core/catalog.h"
#include "core/instantiate.h"
#include "types/value.h"

namespace datacon {

/// Compile-time adornment and relevance analysis over an instantiated
/// application graph (level 2 of the paper's framework, following the
/// magic-sets tradition of LDL++ / Souffle).
///
/// An application-site equality on a result attribute — a trailing selector
/// whose predicate pins an attribute to a constant, or a query conjunct
/// `v.attr = <literal|parameter>` on a constructed binding — makes that
/// attribute *bound* ('b'); everything else stays *free* ('f'). Boundness is
/// propagated interprocedurally, consumer to producer, over the SCC
/// condensation of the constructor dependency graph: an attribute of a node
/// is bound only when EVERY use site of the node constrains it (restricting
/// the node must not starve any consumer). Per constructive branch the
/// analysis then decides whether the bound attribute can be pushed into the
/// branch's ranges (a compile-time restriction plus, for recursive
/// bindings, a magic transfer that seeds the relevant-value closure), and
/// emits W220/W221/W222 diagnostics when an adorned application is provably
/// unspecializable.

/// One equality constraint discovered at a use site: result attribute
/// `attr` must equal a literal or a prepared-query parameter.
struct AdornSeed {
  int attr = -1;
  std::optional<Value> literal;
  std::optional<std::string> param;
};

/// Classification of one constructive branch of an adorned node.
struct AdornBranch {
  enum class Kind {
    /// Every needed restriction maps onto non-recursive bindings; the bound
    /// value pushes straight into their ranges (exit/seed branches).
    kPushable,
    /// The bound value flows through the (single) recursive binding —
    /// verbatim or across one equi-join hop — giving the step of the
    /// magic-seed iteration.
    kPropagating,
    /// Boundness is lost; the branch (and thus its component) cannot be
    /// restricted. `lost_code` carries the W22x cause.
    kLost,
  };

  /// A compile-time range restriction: binding `binding` of the branch may
  /// be filtered to tuples whose field `field` is relevant for node
  /// `magic_node`.
  struct Filter {
    size_t binding = 0;
    int field = -1;
    int magic_node = -1;
  };

  /// A magic edge: values relevant for the owner induce values relevant for
  /// `target_node` — verbatim when `via_base` is null, otherwise one hop
  /// through the constructor-free range `via_base` (each base tuple t with
  /// t[from_field] relevant makes t[to_field] relevant for the target).
  struct Transfer {
    int target_node = -1;
    RangePtr via_base;
    int from_field = -1;
    int to_field = -1;
  };

  Kind kind = Kind::kLost;
  /// W220/W221/W222 when kLost, empty otherwise.
  std::string lost_code;
  /// One-line human rendering for the EXPLAIN adornment table.
  std::string detail;
  std::vector<Filter> filters;
  std::vector<Transfer> transfers;
  /// Static seeds contributed by this branch (literal equalities on a
  /// recursive binding's bound attribute).
  std::vector<AdornSeed> seeds;
};

/// Adornment of one application-graph node.
struct AdornNode {
  /// Adornment pattern over the result attributes (true = bound).
  std::vector<bool> bound;
  /// The driving bound attribute specialization keys on; -1 when unadorned.
  int bound_attr = -1;
  /// True when the node's whole component can be restricted: every branch
  /// of every member is kPushable or kPropagating.
  bool specializable = false;
  /// Aligned with the node body's branch list (empty when bound_attr < 0).
  std::vector<AdornBranch> branches;
  /// Root constants feeding the magic-value closure (query-site equalities).
  std::vector<AdornSeed> seeds;

  /// "bf"-style pattern string; "-" per attribute when unadorned.
  std::string AdornmentString() const;
};

/// The analysis result: per-node adornment plus structured W22x findings.
struct AdornmentAnalysis {
  std::vector<AdornNode> nodes;  // indexed by application-graph node id
  std::vector<Diagnostic> diagnostics;
  bool any_specializable = false;

  /// The EXPLAIN adornment table: one block per node with its pattern and
  /// per-branch classification.
  std::string ToText(const ApplicationGraph& graph) const;
};

/// Runs the adornment/relevance analysis for a query expression over its
/// instantiated application graph. `graph` must already contain every node
/// reachable from `expr` (ApplicationGraph::AddRoots).
Result<AdornmentAnalysis> AnalyzeAdornment(const CalcExpr& expr,
                                           const ApplicationGraph& graph,
                                           const Catalog& catalog);

}  // namespace datacon

#endif  // DATACON_ANALYSIS_ADORN_H_
