#include "ra/branch_plan.h"

#include <set>

#include "ast/printer.h"
#include "ra/analysis.h"

namespace datacon {

namespace {

const FieldRefTerm* AsFieldRefOf(const Term& term, const std::string& var) {
  if (term.kind() != Term::Kind::kFieldRef) return nullptr;
  const auto& f = static_cast<const FieldRefTerm&>(term);
  return f.var() == var ? &f : nullptr;
}

}  // namespace

Result<std::vector<BranchLevelPlan>> PlanBranchLevels(
    const Branch& branch, const std::vector<BindingSchema>& bindings,
    const BranchExecOptions& options) {
  const size_t n = bindings.size();
  std::vector<BranchLevelPlan> levels(n);
  std::set<std::string> bound;

  std::vector<PredPtr> conjuncts = FlattenConjuncts(branch.pred());
  std::vector<bool> assigned(conjuncts.size(), false);

  for (size_t i = 0; i < n; ++i) {
    const std::string& var = bindings[i].var;
    const Schema& schema = *bindings[i].schema;
    for (size_t c = 0; c < conjuncts.size(); ++c) {
      if (assigned[c]) continue;
      std::set<std::string> fv = FreeVars(*conjuncts[c]);
      bool ready = true;
      for (const std::string& v : fv) {
        if (v != var && bound.count(v) == 0) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      assigned[c] = true;
      // Probe-able only at inner levels: at level 0 an index build would
      // cost as much as the scan it replaces.
      bool probed = false;
      if (options.use_hash_joins && i > 0 &&
          conjuncts[c]->kind() == Pred::Kind::kCompare) {
        const auto& cmp = static_cast<const ComparePred&>(*conjuncts[c]);
        if (cmp.op() == CompareOp::kEq) {
          for (bool flip : {false, true}) {
            const TermPtr& a = flip ? cmp.rhs() : cmp.lhs();
            const TermPtr& b = flip ? cmp.lhs() : cmp.rhs();
            const FieldRefTerm* inner = AsFieldRefOf(*a, var);
            if (inner == nullptr) continue;
            std::set<std::string> outer_vars;
            CollectFreeVars(*b, &outer_vars);
            if (outer_vars.count(var) > 0) continue;
            std::optional<int> idx = schema.FieldIndex(inner->field());
            if (!idx.has_value()) {
              return Status::NotFound("no field '" + inner->field() +
                                      "' in range of '" + var + "'");
            }
            levels[i].keys.push_back(
                BranchLevelPlan::KeyEquality{*idx, b});
            probed = true;
            break;
          }
        }
      }
      if (!probed) levels[i].filters.push_back(conjuncts[c]);
    }
    bound.insert(var);
  }
  for (size_t c = 0; c < conjuncts.size(); ++c) {
    if (!assigned[c]) {
      return Status::Internal("conjunct references unbound variable: " +
                              ToString(*conjuncts[c]));
    }
  }
  return levels;
}

Result<std::string> ExplainBranchPlan(const Branch& branch,
                                      const std::vector<BindingSchema>& bindings,
                                      const BranchExecOptions& options) {
  DATACON_ASSIGN_OR_RETURN(std::vector<BranchLevelPlan> levels,
                           PlanBranchLevels(branch, bindings, options));
  std::string out;
  for (size_t i = 0; i < bindings.size(); ++i) {
    if (i > 0) out += " -> ";
    const Binding& b = branch.bindings()[i];
    const BranchLevelPlan& level = levels[i];
    if (!level.keys.empty()) {
      out += "probe(" + b.var + " IN " + ToString(*b.range) + " on ";
      for (size_t k = 0; k < level.keys.size(); ++k) {
        if (k > 0) out += ", ";
        out += bindings[i].schema->field(level.keys[k].inner_field_index).name +
               " = " + ToString(*level.keys[k].outer);
      }
      out += ")";
    } else {
      out += "scan(" + b.var + " IN " + ToString(*b.range) + ")";
    }
    for (const PredPtr& f : level.filters) {
      out += " -> filter(" + ToString(*f) + ")";
    }
  }
  out += " -> project";
  if (branch.targets().has_value()) {
    out += "<";
    for (size_t i = 0; i < branch.targets()->size(); ++i) {
      if (i > 0) out += ", ";
      out += ToString(*(*branch.targets())[i]);
    }
    out += ">";
  } else {
    out += "<" + branch.bindings()[0].var + ">";
  }
  return out;
}

}  // namespace datacon
