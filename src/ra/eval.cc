#include "ra/eval.h"

#include "ast/printer.h"
#include "common/check.h"

namespace datacon {

// The walk is compiled twice (Proven = false/true). The checked variant
// tests operand types and constructs kTypeError on mismatch; the proven
// variant reduces those tests to DATACON_DCHECKs, which vanish in release
// builds — the type checker already discharged them (DESIGN §4.16).
// Division/MOD by zero stays a checked runtime error in both variants: no
// static analysis here proves divisors non-zero.

template <bool Proven>
Result<Value> Evaluator::EvalTermImpl(const Term& term,
                                      const Environment& env) const {
  switch (term.kind()) {
    case Term::Kind::kLiteral:
      return static_cast<const LiteralTerm&>(term).value();
    case Term::Kind::kParamRef: {
      const auto& t = static_cast<const ParamRefTerm&>(term);
      const Value* v = env.LookupParam(t.name());
      if (v == nullptr) {
        return Status::NotFound("unbound parameter '" + t.name() + "'");
      }
      return *v;
    }
    case Term::Kind::kFieldRef: {
      const auto& t = static_cast<const FieldRefTerm&>(term);
      const Environment::TupleBinding* b = env.Lookup(t.var());
      if (b == nullptr) {
        return Status::NotFound("unbound tuple variable '" + t.var() + "'");
      }
      std::optional<int> idx = b->schema->FieldIndex(t.field());
      if (!idx.has_value()) {
        return Status::NotFound("no field '" + t.field() + "' in " +
                                b->schema->ToString());
      }
      return b->tuple->value(*idx);
    }
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(term);
      DATACON_ASSIGN_OR_RETURN(Value lhs, EvalTermImpl<Proven>(*t.lhs(), env));
      DATACON_ASSIGN_OR_RETURN(Value rhs, EvalTermImpl<Proven>(*t.rhs(), env));
      if constexpr (Proven) {
        DATACON_DCHECK(
            lhs.type() == ValueType::kInt && rhs.type() == ValueType::kInt,
            "typed-proven arithmetic over non-integers in " + ToString(term));
      } else {
        if (lhs.type() != ValueType::kInt || rhs.type() != ValueType::kInt) {
          return Status::TypeError("arithmetic over non-integers in " +
                                   ToString(term));
        }
      }
      int64_t a = lhs.AsInt(), b = rhs.AsInt();
      switch (t.op()) {
        case ArithOp::kAdd:
          return Value::Int(a + b);
        case ArithOp::kSub:
          return Value::Int(a - b);
        case ArithOp::kMul:
          return Value::Int(a * b);
        case ArithOp::kDiv:
          if (b == 0) return Status::InvalidArgument("division by zero");
          return Value::Int(a / b);
        case ArithOp::kMod:
          if (b == 0) return Status::InvalidArgument("MOD by zero");
          return Value::Int(a % b);
      }
      DATACON_UNREACHABLE("arith op");
    }
  }
  DATACON_UNREACHABLE("term kind");
}

template <bool Proven>
Result<bool> Evaluator::EvalPredImpl(const Pred& pred,
                                     const Environment& env) const {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      return static_cast<const BoolPred&>(pred).value();
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(pred);
      DATACON_ASSIGN_OR_RETURN(Value lhs, EvalTermImpl<Proven>(*p.lhs(), env));
      DATACON_ASSIGN_OR_RETURN(Value rhs, EvalTermImpl<Proven>(*p.rhs(), env));
      if constexpr (Proven) {
        DATACON_DCHECK(lhs.type() == rhs.type(),
                       "typed-proven comparison across types in " +
                           ToString(pred));
      } else {
        if (lhs.type() != rhs.type()) {
          return Status::TypeError("comparison across types in " +
                                   ToString(pred));
        }
      }
      int c = lhs.Compare(rhs);
      switch (p.op()) {
        case CompareOp::kEq:
          return c == 0;
        case CompareOp::kNe:
          return c != 0;
        case CompareOp::kLt:
          return c < 0;
        case CompareOp::kLe:
          return c <= 0;
        case CompareOp::kGt:
          return c > 0;
        case CompareOp::kGe:
          return c >= 0;
      }
      DATACON_UNREACHABLE("compare op");
    }
    case Pred::Kind::kAnd: {
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        DATACON_ASSIGN_OR_RETURN(bool v, EvalPredImpl<Proven>(*op, env));
        if (!v) return false;
      }
      return true;
    }
    case Pred::Kind::kOr: {
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        DATACON_ASSIGN_OR_RETURN(bool v, EvalPredImpl<Proven>(*op, env));
        if (v) return true;
      }
      return false;
    }
    case Pred::Kind::kNot: {
      DATACON_ASSIGN_OR_RETURN(
          bool v, EvalPredImpl<Proven>(
                      *static_cast<const NotPred&>(pred).operand(), env));
      return !v;
    }
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      if (resolver_ == nullptr) {
        return Status::Internal("quantifier range without a resolver: " +
                                ToString(pred));
      }
      DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                               resolver_->Resolve(*p.range()));
      // SOME: exists an element making the body true.
      // ALL: every element makes the body true (vacuously true when empty).
      Environment inner = env;
      for (const Tuple& t : rel->tuples()) {
        inner.Bind(p.var(), &t, &rel->schema());
        DATACON_ASSIGN_OR_RETURN(bool v, EvalPredImpl<Proven>(*p.body(), inner));
        if (p.quantifier() == Quantifier::kSome && v) return true;
        if (p.quantifier() == Quantifier::kAll && !v) return false;
      }
      return p.quantifier() == Quantifier::kAll;
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(pred);
      if (resolver_ == nullptr) {
        return Status::Internal("membership range without a resolver: " +
                                ToString(pred));
      }
      DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                               resolver_->Resolve(*p.range()));
      std::vector<Value> values;
      values.reserve(p.tuple().size());
      for (const TermPtr& t : p.tuple()) {
        DATACON_ASSIGN_OR_RETURN(Value v, EvalTermImpl<Proven>(*t, env));
        values.push_back(std::move(v));
      }
      return rel->Contains(Tuple(std::move(values)));
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

Result<Value> Evaluator::EvalTerm(const Term& term,
                                  const Environment& env) const {
  return typed_proven_ ? EvalTermImpl<true>(term, env)
                       : EvalTermImpl<false>(term, env);
}

Result<bool> Evaluator::EvalPred(const Pred& pred,
                                 const Environment& env) const {
  return typed_proven_ ? EvalPredImpl<true>(pred, env)
                       : EvalPredImpl<false>(pred, env);
}

}  // namespace datacon
