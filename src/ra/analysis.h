#ifndef DATACON_RA_ANALYSIS_H_
#define DATACON_RA_ANALYSIS_H_

#include <set>
#include <string>
#include <vector>

#include "ast/pred.h"
#include "ast/term.h"

namespace datacon {

/// Adds the tuple variables occurring free in `term` to `out`.
void CollectFreeVars(const Term& term, std::set<std::string>* out);

/// Adds the tuple variables occurring free in `pred` to `out`. Quantifier
/// variables are bound in their body and therefore excluded.
void CollectFreeVars(const Pred& pred, std::set<std::string>* out);

/// The free tuple variables of `pred`.
std::set<std::string> FreeVars(const Pred& pred);

/// Splits `pred` into its top-level conjuncts: an AndPred flattens
/// (recursively through nested ANDs); anything else is a single conjunct.
/// A literal TRUE produces no conjuncts.
std::vector<PredPtr> FlattenConjuncts(const PredPtr& pred);

/// Rebuilds a predicate from conjuncts: empty -> TRUE, singleton -> itself,
/// otherwise an AndPred.
PredPtr ConjunctsToPred(std::vector<PredPtr> conjuncts);

}  // namespace datacon

#endif  // DATACON_RA_ANALYSIS_H_
