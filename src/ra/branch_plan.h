#ifndef DATACON_RA_BRANCH_PLAN_H_
#define DATACON_RA_BRANCH_PLAN_H_

#include <string>
#include <vector>

#include "ast/branch.h"
#include "common/result.h"
#include "types/schema.h"

namespace datacon {

class ThreadPool;

/// Per-binding compiled form of a branch: which equality conjuncts become
/// hash-probe keys at this binding's level and which conjuncts run as
/// filters once the level's variable is bound.
struct BranchLevelPlan {
  /// One hash-key component: `inner_field_index` of this level's relation
  /// equals `outer` (a term over earlier levels only).
  struct KeyEquality {
    int inner_field_index;
    TermPtr outer;
  };
  std::vector<KeyEquality> keys;
  std::vector<PredPtr> filters;
};

/// The schema each binding ranges over, in branch order.
struct BindingSchema {
  std::string var;
  const Schema* schema;
};

/// Options controlling physical branch execution.
struct BranchExecOptions {
  /// When false, equality conjuncts are never turned into hash probes —
  /// every join runs as a filtered nested loop. Exists for the ablation
  /// benchmarks; always leave on in real use.
  bool use_hash_joins = true;
  /// Worker threads for the outermost scan of a branch: 1 = serial (the
  /// default, exactly the historical behavior), 0 = hardware concurrency,
  /// N = exactly N threads. See DESIGN.md §4.7 for the threading model.
  size_t num_threads = 1;
  /// Outer relations smaller than this run serially even when num_threads
  /// allows a fan-out — chunking overhead would dominate the work.
  size_t min_parallel_tuples = 32;
  /// Optional engine-owned worker pool reused across calls (the fixpoint
  /// engine installs one so per-round fan-outs do not respawn threads).
  /// When null and the resolved thread count exceeds 1, ExecuteBranch
  /// spins up a transient pool for the single call.
  ThreadPool* pool = nullptr;
};

/// Assigns every top-level conjunct of `branch` to the earliest level where
/// its variables are bound, turning probe-able equalities (at inner levels,
/// when `options.use_hash_joins`) into hash keys. Fails when a conjunct
/// references a variable no binding provides.
Result<std::vector<BranchLevelPlan>> PlanBranchLevels(
    const Branch& branch, const std::vector<BindingSchema>& bindings,
    const BranchExecOptions& options = {});

/// Renders the physical plan of one branch, e.g.
///   `scan(f IN g_E) -> probe(b IN g_E {g_tc} on dst = f.src) ->
///    filter(...) -> project<f.src, b.dst>`.
/// Used by Database::Explain.
Result<std::string> ExplainBranchPlan(
    const Branch& branch, const std::vector<BindingSchema>& bindings,
    const BranchExecOptions& options = {});

}  // namespace datacon

#endif  // DATACON_RA_BRANCH_PLAN_H_
