#ifndef DATACON_RA_RESOLVER_H_
#define DATACON_RA_RESOLVER_H_

#include "ast/range.h"
#include "common/result.h"
#include "storage/relation.h"

namespace datacon {

/// Maps range expressions to materialized relations at evaluation time.
///
/// The physical layer (`ra`) never interprets selectors or constructors
/// itself; the core engine provides a resolver that has already materialized
/// (or is in the middle of fixpoint-iterating) every range the expression
/// can mention. Quantifier and membership ranges inside predicates resolve
/// through the same interface.
class RelationResolver {
 public:
  virtual ~RelationResolver() = default;

  /// The relation `range` currently denotes. The pointer stays valid for the
  /// duration of the evaluation step it was requested for.
  virtual Result<const Relation*> Resolve(const Range& range) const = 0;
};

}  // namespace datacon

#endif  // DATACON_RA_RESOLVER_H_
