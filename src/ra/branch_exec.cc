#include "ra/branch_exec.h"

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "ast/printer.h"
#include "common/check.h"
#include "common/thread_pool.h"
#include "common/trace.h"
#include "ra/branch_plan.h"
#include "storage/index.h"

namespace datacon {

namespace {

/// Collects the range of every quantifier and membership predicate in
/// `pred`, recursively. These are the only ranges the evaluator can ask a
/// resolver for during branch execution; materializing them up front makes
/// the per-tuple pipeline resolver-free and therefore safe to fan out.
void CollectPredRanges(const Pred& pred, std::vector<const Range*>* out) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
    case Pred::Kind::kCompare:
      return;
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        CollectPredRanges(*op, out);
      }
      return;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        CollectPredRanges(*op, out);
      }
      return;
    case Pred::Kind::kNot:
      CollectPredRanges(*static_cast<const NotPred&>(pred).operand(), out);
      return;
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      out->push_back(p.range().get());
      CollectPredRanges(*p.body(), out);
      return;
    }
    case Pred::Kind::kIn:
      out->push_back(static_cast<const InPred&>(pred).range().get());
      return;
  }
  DATACON_UNREACHABLE("pred kind");
}

/// A read-only resolver over ranges materialized before a parallel fan-out.
///
/// SystemEvaluator::Resolve mutates its selector-chain caches, so worker
/// threads must never call it; Prewarm resolves every range the branch
/// predicate can mention once, on the calling thread, and workers resolve
/// by pointer lookup only. The snapshotted relations stay valid for the
/// duration of the ExecuteBranch call (the underlying resolver's contract).
class SnapshotResolver : public RelationResolver {
 public:
  /// Resolves all quantifier/membership ranges of `pred` through `base`.
  Status Prewarm(const Pred& pred, const RelationResolver* base) {
    std::vector<const Range*> ranges;
    CollectPredRanges(pred, &ranges);
    if (ranges.empty()) return Status::OK();
    if (base == nullptr) {
      return Status::Internal("predicate ranges without a resolver: " +
                              ToString(pred));
    }
    for (const Range* r : ranges) {
      if (cache_.count(r) > 0) continue;
      DATACON_ASSIGN_OR_RETURN(const Relation* rel, base->Resolve(*r));
      cache_[r] = rel;
    }
    return Status::OK();
  }

  Result<const Relation*> Resolve(const Range& range) const override {
    auto it = cache_.find(&range);
    if (it == cache_.end()) {
      return Status::Internal("range not pre-materialized before fan-out: " +
                              ToString(range));
    }
    return it->second;
  }

 private:
  /// Keyed by AST node identity: the evaluator always resolves the exact
  /// Range objects reachable from the branch predicate.
  std::map<const Range*, const Relation*> cache_;
};

/// The compiled, read-only execution state of one branch: shared without
/// synchronization by every worker of a fan-out. All mutable state (the
/// environment, the output relation, the counters) is passed through the
/// call chain and owned per worker.
struct BranchPipeline {
  const Branch* branch;
  const std::vector<ResolvedBinding>* bindings;
  const std::vector<BranchLevelPlan>* levels;
  const std::vector<std::unique_ptr<HashIndex>>* indexes;
  size_t n;

  /// Binds `t` at `level`, applies the level's filters, and descends.
  Status TryTuple(size_t level, const Tuple& t, const Evaluator& eval,
                  Environment& env, Relation* out,
                  BranchExecStats* stats) const {
    if (level == 0) ++stats->outer_tuples;
    const ResolvedBinding& b = (*bindings)[level];
    env.Bind(b.var, &t, &b.relation->schema());
    for (const PredPtr& f : (*levels)[level].filters) {
      DATACON_ASSIGN_OR_RETURN(bool ok, eval.EvalPred(*f, env));
      if (!ok) return Status::OK();
    }
    return Descend(level + 1, eval, env, out, stats);
  }

  /// Runs levels [level, n) of the pipeline under the bindings already in
  /// `env`; at the innermost level, projects and inserts into `out`.
  Status Descend(size_t level, const Evaluator& eval, Environment& env,
                 Relation* out, BranchExecStats* stats) const {
    if (level == n) {
      ++stats->env_count;
      Tuple result;
      if (branch->targets().has_value()) {
        std::vector<Value> values;
        values.reserve(branch->targets()->size());
        for (const TermPtr& t : *branch->targets()) {
          DATACON_ASSIGN_OR_RETURN(Value v, eval.EvalTerm(*t, env));
          values.push_back(std::move(v));
        }
        result = Tuple(std::move(values));
      } else {
        result = *env.Lookup((*bindings)[0].var)->tuple;
      }
      DATACON_ASSIGN_OR_RETURN(bool grew, eval.typed_proven()
                                              ? out->InsertProven(result)
                                              : out->Insert(result));
      if (grew) ++stats->inserted;
      return Status::OK();
    }

    const Relation& rel = *(*bindings)[level].relation;
    const BranchLevelPlan& lv = (*levels)[level];

    if ((*indexes)[level] != nullptr) {
      // Hash-join probe: evaluate the outer sides of the key equalities,
      // fetch exactly the matching tuples. A stale index (its relation grew
      // after the build) would silently miss the new tuples, so it is a
      // hard error — callers must never mutate a bound relation mid-branch.
      if (!(*indexes)[level]->InSync()) {
        return Status::Internal(
            "hash index over binding '" + (*bindings)[level].var +
            "' is stale: the relation grew after the index was built");
      }
      std::vector<Value> key_values;
      key_values.reserve(lv.keys.size());
      for (const BranchLevelPlan::KeyEquality& k : lv.keys) {
        DATACON_ASSIGN_OR_RETURN(Value v, eval.EvalTerm(*k.outer, env));
        key_values.push_back(std::move(v));
      }
      ++stats->index_probes;
      for (const Tuple* t :
           (*indexes)[level]->Probe(Tuple(std::move(key_values)))) {
        DATACON_RETURN_IF_ERROR(TryTuple(level, *t, eval, env, out, stats));
      }
    } else {
      for (const Tuple& t : rel.tuples()) {
        DATACON_RETURN_IF_ERROR(TryTuple(level, t, eval, env, out, stats));
      }
    }
    env.Unbind((*bindings)[level].var);
    return Status::OK();
  }
};

}  // namespace

Status ExecuteBranch(const Branch& branch,
                     const std::vector<ResolvedBinding>& bindings,
                     const Evaluator& eval, const Environment& base_env,
                     Relation* out, BranchExecStats* stats,
                     const BranchExecOptions& options) {
  const size_t n = bindings.size();
  if (n != branch.bindings().size()) {
    return Status::Internal("resolved bindings do not match branch arity");
  }
  if (!branch.targets().has_value() && n != 1) {
    return Status::TypeError(
        "a branch without a target list must bind exactly one variable: " +
        ToString(branch));
  }

  std::vector<BindingSchema> schemas;
  schemas.reserve(n);
  for (const ResolvedBinding& b : bindings) {
    schemas.push_back(BindingSchema{b.var, &b.relation->schema()});
  }
  DATACON_ASSIGN_OR_RETURN(std::vector<BranchLevelPlan> levels,
                           PlanBranchLevels(branch, schemas, options));

  // The pipeline inserts into `out` while scanning and probing the bound
  // relations, so the output must not alias any of them: a probe against an
  // index built before the insert would silently miss tuples, and growing
  // an unordered_set mid-scan invalidates the scan. No engine code path
  // aliases; reject rather than miscompute if one ever does.
  for (size_t i = 0; i < n; ++i) {
    if (bindings[i].relation == out) {
      return Status::Internal(
          "branch output aliases binding '" + bindings[i].var +
          "': inserts during execution would bypass the hash index");
    }
  }

  // Build hash indexes for inner levels with key equalities. Shared
  // read-only by all workers of a fan-out (HashIndex::Probe is const).
  BranchExecStats build_stats;
  std::vector<std::unique_ptr<HashIndex>> indexes(n);
  for (size_t i = 1; i < n; ++i) {
    if (levels[i].keys.empty()) continue;
    TraceSpan build_span("index build");
    if (build_span.active()) {
      build_span.AddArg("binding", bindings[i].var);
      build_span.AddArg("tuples",
                        static_cast<int64_t>(bindings[i].relation->size()));
    }
    std::vector<int> cols;
    cols.reserve(levels[i].keys.size());
    for (const BranchLevelPlan::KeyEquality& k : levels[i].keys) {
      cols.push_back(k.inner_field_index);
    }
    indexes[i] = std::make_unique<HashIndex>(*bindings[i].relation, cols);
    ++build_stats.index_builds;
  }

  BranchPipeline pipeline{&branch, &bindings, &levels, &indexes, n};

  const Relation& outer = *bindings[0].relation;
  size_t num_threads = options.pool != nullptr
                           ? options.pool->size()
                           : ThreadPool::ResolveThreadCount(options.num_threads);
  if (num_threads <= 1 || outer.size() < options.min_parallel_tuples) {
    // Serial path: exactly the historical single-threaded pipeline.
    TraceSpan span("branch");
    if (span.active()) {
      span.AddArg("outer_tuples", static_cast<int64_t>(outer.size()));
    }
    Environment env = base_env;
    BranchExecStats local_stats = build_stats;
    DATACON_RETURN_IF_ERROR(
        pipeline.Descend(0, eval, env, out, &local_stats));
    if (span.active()) {
      span.AddArg("inserted", static_cast<int64_t>(local_stats.inserted));
    }
    if (stats != nullptr) *stats = local_stats;
    return Status::OK();
  }

  // Parallel path: materialize every range the predicate can mention, so
  // workers never touch the (cache-mutating) engine resolver, then chunk
  // the outermost scan across the pool. Each chunk runs the remaining
  // pipeline into its own output relation; the chunks are merged under set
  // semantics (and key enforcement) at the end.
  TraceSpan fanout_span("fanout");
  if (fanout_span.active()) {
    fanout_span.AddArg("outer_tuples", static_cast<int64_t>(outer.size()));
    fanout_span.AddArg("threads", static_cast<int64_t>(num_threads));
  }
  SnapshotResolver snapshot;
  DATACON_RETURN_IF_ERROR(snapshot.Prewarm(*branch.pred(), eval.resolver()));
  Evaluator worker_eval(&snapshot, eval.typed_proven());

  std::vector<const Tuple*> outer_tuples;
  outer_tuples.reserve(outer.size());
  for (const Tuple& t : outer.tuples()) outer_tuples.push_back(&t);

  // A few chunks per worker so the shared queue evens out skew (some outer
  // tuples probe into far larger inner fans than others).
  size_t chunk_count = num_threads * 4;
  if (chunk_count > outer_tuples.size()) chunk_count = outer_tuples.size();

  std::unique_ptr<ThreadPool> transient_pool;
  ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    transient_pool = std::make_unique<ThreadPool>(num_threads);
    pool = transient_pool.get();
  }

  std::vector<Relation> chunk_outs;
  std::vector<BranchExecStats> chunk_stats(chunk_count);
  std::vector<Status> chunk_status(chunk_count);
  chunk_outs.reserve(chunk_count);
  for (size_t c = 0; c < chunk_count; ++c) {
    chunk_outs.emplace_back(out->schema());
  }

  // A runtime error in any chunk makes the whole fan-out moot: `failed` is
  // a cooperative abort flag so the remaining chunks stop scanning instead
  // of burning the pool on a doomed branch. It never influences the result
  // or the counters of a successful execution (it is only set on error).
  std::atomic<bool> failed{false};

  const size_t total = outer_tuples.size();
  for (size_t c = 0; c < chunk_count; ++c) {
    const size_t begin = total * c / chunk_count;
    const size_t end = total * (c + 1) / chunk_count;
    pool->Submit([&, c, begin, end] {
      // The chunk span is recorded on the worker's own thread, so each
      // worker shows up as its own track in the trace viewer.
      TraceSpan chunk_span("chunk");
      if (chunk_span.active()) {
        chunk_span.AddArg("chunk", static_cast<int64_t>(c));
        chunk_span.AddArg("tuples", static_cast<int64_t>(end - begin));
      }
      Environment env = base_env;
      Relation* chunk_out = &chunk_outs[c];
      BranchExecStats* cs = &chunk_stats[c];
      Status status = Status::OK();
      for (size_t i = begin;
           i < end && status.ok() && !failed.load(std::memory_order_relaxed);
           ++i) {
        status = pipeline.TryTuple(0, *outer_tuples[i], worker_eval, env,
                                   chunk_out, cs);
      }
      if (chunk_span.active()) {
        chunk_span.AddArg("derived", static_cast<int64_t>(chunk_out->size()));
      }
      if (!status.ok()) failed.store(true, std::memory_order_relaxed);
      chunk_status[c] = std::move(status);
    });
  }
  pool->Wait();

  // Error determinism: which chunk fails first depends on worker timing
  // (the abort flag may have stopped a low chunk before it reached its own
  // error), so on any failure the error to surface is recomputed by a
  // serial scan in tuple order — the same first-by-tuple-order error the
  // THREADS=1 path reports, at the cost of one extra scan on the (already
  // doomed) error path only.
  bool any_failed = false;
  for (size_t c = 0; c < chunk_count && !any_failed; ++c) {
    any_failed = !chunk_status[c].ok();
  }
  if (any_failed) {
    Environment env = base_env;
    Relation scratch(out->schema());
    BranchExecStats discard;
    Status serial = Status::OK();
    for (size_t i = 0; i < total && serial.ok(); ++i) {
      serial = pipeline.TryTuple(0, *outer_tuples[i], worker_eval, env,
                                 &scratch, &discard);
    }
    if (!serial.ok()) return serial;
    // The serial re-scan did not reproduce the failure (it cannot see
    // cross-chunk effects); fall back to the lowest failed chunk.
    for (size_t c = 0; c < chunk_count; ++c) {
      DATACON_RETURN_IF_ERROR(chunk_status[c]);
    }
  }

  // Merge. `inserted` is counted against the shared output, not the chunk
  // outputs: two chunks may both derive a tuple (each locally "new"), but
  // the branch contributed it once.
  const size_t before = out->size();
  BranchExecStats merged = build_stats;
  merged.snapshots = 1;
  merged.chunks = chunk_count;
  for (size_t c = 0; c < chunk_count; ++c) {
    merged.env_count += chunk_stats[c].env_count;
    merged.outer_tuples += chunk_stats[c].outer_tuples;
    merged.index_probes += chunk_stats[c].index_probes;
    DATACON_RETURN_IF_ERROR(out->InsertAll(chunk_outs[c]));
  }
  merged.inserted = out->size() - before;
  if (fanout_span.active()) {
    fanout_span.AddArg("chunks", static_cast<int64_t>(chunk_count));
    fanout_span.AddArg("inserted", static_cast<int64_t>(merged.inserted));
  }
  if (stats != nullptr) *stats = merged;
  return Status::OK();
}

}  // namespace datacon
