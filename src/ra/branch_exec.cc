#include "ra/branch_exec.h"

#include <functional>
#include <memory>

#include "ast/printer.h"
#include "common/check.h"
#include "ra/branch_plan.h"
#include "storage/index.h"

namespace datacon {

Status ExecuteBranch(const Branch& branch,
                     const std::vector<ResolvedBinding>& bindings,
                     const Evaluator& eval, const Environment& base_env,
                     Relation* out, BranchExecStats* stats,
                     const BranchExecOptions& options) {
  const size_t n = bindings.size();
  if (n != branch.bindings().size()) {
    return Status::Internal("resolved bindings do not match branch arity");
  }
  if (!branch.targets().has_value() && n != 1) {
    return Status::TypeError(
        "a branch without a target list must bind exactly one variable: " +
        ToString(branch));
  }

  std::vector<BindingSchema> schemas;
  schemas.reserve(n);
  for (const ResolvedBinding& b : bindings) {
    schemas.push_back(BindingSchema{b.var, &b.relation->schema()});
  }
  DATACON_ASSIGN_OR_RETURN(std::vector<BranchLevelPlan> levels,
                           PlanBranchLevels(branch, schemas, options));

  // Build hash indexes for inner levels with key equalities.
  std::vector<std::unique_ptr<HashIndex>> indexes(n);
  for (size_t i = 1; i < n; ++i) {
    if (levels[i].keys.empty()) continue;
    std::vector<int> cols;
    cols.reserve(levels[i].keys.size());
    for (const BranchLevelPlan::KeyEquality& k : levels[i].keys) {
      cols.push_back(k.inner_field_index);
    }
    indexes[i] = std::make_unique<HashIndex>(*bindings[i].relation, cols);
  }

  Environment env = base_env;
  BranchExecStats local_stats;

  // Recursive descent over the levels. Kept as an explicit recursive
  // function: depth equals the number of bindings, which is tiny.
  std::function<Status(size_t)> descend = [&](size_t level) -> Status {
    if (level == n) {
      ++local_stats.env_count;
      Tuple result;
      if (branch.targets().has_value()) {
        std::vector<Value> values;
        values.reserve(branch.targets()->size());
        for (const TermPtr& t : *branch.targets()) {
          DATACON_ASSIGN_OR_RETURN(Value v, eval.EvalTerm(*t, env));
          values.push_back(std::move(v));
        }
        result = Tuple(std::move(values));
      } else {
        result = *env.Lookup(bindings[0].var)->tuple;
      }
      DATACON_ASSIGN_OR_RETURN(bool grew, out->Insert(result));
      if (grew) ++local_stats.inserted;
      return Status::OK();
    }

    const Relation& rel = *bindings[level].relation;
    const std::string& var = bindings[level].var;
    const BranchLevelPlan& lv = levels[level];

    auto try_tuple = [&](const Tuple& t) -> Status {
      env.Bind(var, &t, &rel.schema());
      for (const PredPtr& f : lv.filters) {
        DATACON_ASSIGN_OR_RETURN(bool ok, eval.EvalPred(*f, env));
        if (!ok) return Status::OK();
      }
      return descend(level + 1);
    };

    if (indexes[level] != nullptr) {
      // Hash-join probe: evaluate the outer sides of the key equalities,
      // fetch exactly the matching tuples.
      std::vector<Value> key_values;
      key_values.reserve(lv.keys.size());
      for (const BranchLevelPlan::KeyEquality& k : lv.keys) {
        DATACON_ASSIGN_OR_RETURN(Value v, eval.EvalTerm(*k.outer, env));
        key_values.push_back(std::move(v));
      }
      for (const Tuple* t :
           indexes[level]->Probe(Tuple(std::move(key_values)))) {
        DATACON_RETURN_IF_ERROR(try_tuple(*t));
      }
    } else {
      for (const Tuple& t : rel.tuples()) {
        DATACON_RETURN_IF_ERROR(try_tuple(t));
      }
    }
    env.Unbind(var);
    return Status::OK();
  };

  DATACON_RETURN_IF_ERROR(descend(0));
  if (stats != nullptr) *stats = local_stats;
  return Status::OK();
}

}  // namespace datacon
