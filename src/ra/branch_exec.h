#ifndef DATACON_RA_BRANCH_EXEC_H_
#define DATACON_RA_BRANCH_EXEC_H_

#include <string>
#include <vector>

#include "ast/branch.h"
#include "common/status.h"
#include "ra/branch_plan.h"
#include "ra/env.h"
#include "ra/eval.h"
#include "storage/relation.h"

namespace datacon {

/// A branch binding whose range has already been materialized by the core
/// engine (selectors applied, constructed relations resolved to the current
/// fixpoint approximation or, in semi-naive rounds, to a delta).
struct ResolvedBinding {
  std::string var;
  const Relation* relation;
};

/// Statistics of one branch execution, reported to benchmarks, EXPLAIN
/// ANALYZE, and the fixpoint profile. All counters except the two marked
/// "execution detail" are deterministic: bit-identical at every thread
/// count, because they count logical work (which tuples were scanned,
/// probed, considered), not how that work was scheduled.
struct BranchExecStats {
  /// Environments reaching the innermost level (tuples considered).
  size_t env_count = 0;
  /// Tuples inserted into the output (new, after deduplication).
  size_t inserted = 0;
  /// Tuples scanned at the outermost level (serial or summed over chunks).
  size_t outer_tuples = 0;
  /// Hash indexes built for inner join levels.
  size_t index_builds = 0;
  /// Probe calls against those indexes (one per key lookup).
  size_t index_probes = 0;
  /// Execution detail: snapshot-resolver materializations before a fan-out.
  /// Varies with the thread count (0 on the serial path).
  size_t snapshots = 0;
  /// Execution detail: chunks dispatched to the worker pool.
  size_t chunks = 0;
};

/// Executes one constructive branch:
///
///   [<targets> OF] EACH v1 IN R1, ..., EACH vn IN Rn : pred
///
/// as a left-deep pipeline of scans and hash joins. Top-level equi-join
/// conjuncts (`vi.f = <expr over earlier variables>`) become hash-index
/// probes; every other conjunct is evaluated as a filter at the earliest
/// level where its variables are bound. Result tuples are appended to `out`
/// with set semantics (and key enforcement, if `out` declares a key).
///
/// `eval` carries the resolver used for quantifier/membership ranges inside
/// the predicate; `base_env` carries scalar parameter bindings.
Status ExecuteBranch(const Branch& branch,
                     const std::vector<ResolvedBinding>& bindings,
                     const Evaluator& eval, const Environment& base_env,
                     Relation* out, BranchExecStats* stats = nullptr,
                     const BranchExecOptions& options = {});

}  // namespace datacon

#endif  // DATACON_RA_BRANCH_EXEC_H_
