#ifndef DATACON_RA_BRANCH_EXEC_H_
#define DATACON_RA_BRANCH_EXEC_H_

#include <string>
#include <vector>

#include "ast/branch.h"
#include "common/status.h"
#include "ra/branch_plan.h"
#include "ra/env.h"
#include "ra/eval.h"
#include "storage/relation.h"

namespace datacon {

/// A branch binding whose range has already been materialized by the core
/// engine (selectors applied, constructed relations resolved to the current
/// fixpoint approximation or, in semi-naive rounds, to a delta).
struct ResolvedBinding {
  std::string var;
  const Relation* relation;
};

/// Statistics of one branch execution, reported to benchmarks and EXPLAIN.
struct BranchExecStats {
  /// Environments reaching the innermost level (tuples considered).
  size_t env_count = 0;
  /// Tuples inserted into the output (new, after deduplication).
  size_t inserted = 0;
};

/// Executes one constructive branch:
///
///   [<targets> OF] EACH v1 IN R1, ..., EACH vn IN Rn : pred
///
/// as a left-deep pipeline of scans and hash joins. Top-level equi-join
/// conjuncts (`vi.f = <expr over earlier variables>`) become hash-index
/// probes; every other conjunct is evaluated as a filter at the earliest
/// level where its variables are bound. Result tuples are appended to `out`
/// with set semantics (and key enforcement, if `out` declares a key).
///
/// `eval` carries the resolver used for quantifier/membership ranges inside
/// the predicate; `base_env` carries scalar parameter bindings.
Status ExecuteBranch(const Branch& branch,
                     const std::vector<ResolvedBinding>& bindings,
                     const Evaluator& eval, const Environment& base_env,
                     Relation* out, BranchExecStats* stats = nullptr,
                     const BranchExecOptions& options = {});

}  // namespace datacon

#endif  // DATACON_RA_BRANCH_EXEC_H_
