#include "ra/analysis.h"

#include "ast/builder.h"
#include "common/check.h"

namespace datacon {

void CollectFreeVars(const Term& term, std::set<std::string>* out) {
  switch (term.kind()) {
    case Term::Kind::kFieldRef:
      out->insert(static_cast<const FieldRefTerm&>(term).var());
      return;
    case Term::Kind::kLiteral:
    case Term::Kind::kParamRef:
      return;
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(term);
      CollectFreeVars(*t.lhs(), out);
      CollectFreeVars(*t.rhs(), out);
      return;
    }
  }
  DATACON_UNREACHABLE("term kind");
}

void CollectFreeVars(const Pred& pred, std::set<std::string>* out) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      return;
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(pred);
      CollectFreeVars(*p.lhs(), out);
      CollectFreeVars(*p.rhs(), out);
      return;
    }
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        CollectFreeVars(*op, out);
      }
      return;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        CollectFreeVars(*op, out);
      }
      return;
    case Pred::Kind::kNot:
      CollectFreeVars(*static_cast<const NotPred&>(pred).operand(), out);
      return;
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      std::set<std::string> inner;
      CollectFreeVars(*p.body(), &inner);
      inner.erase(p.var());
      out->insert(inner.begin(), inner.end());
      // Selector arguments inside the range may reference outer variables.
      for (const RangeApp& app : p.range()->apps()) {
        for (const TermPtr& t : app.term_args) CollectFreeVars(*t, out);
      }
      return;
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(pred);
      for (const TermPtr& t : p.tuple()) CollectFreeVars(*t, out);
      for (const RangeApp& app : p.range()->apps()) {
        for (const TermPtr& t : app.term_args) CollectFreeVars(*t, out);
      }
      return;
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

std::set<std::string> FreeVars(const Pred& pred) {
  std::set<std::string> out;
  CollectFreeVars(pred, &out);
  return out;
}

namespace {
void FlattenInto(const PredPtr& pred, std::vector<PredPtr>* out) {
  if (pred->kind() == Pred::Kind::kAnd) {
    for (const PredPtr& op : static_cast<const AndPred&>(*pred).operands()) {
      FlattenInto(op, out);
    }
    return;
  }
  if (pred->kind() == Pred::Kind::kBool &&
      static_cast<const BoolPred&>(*pred).value()) {
    return;  // TRUE contributes nothing to a conjunction.
  }
  out->push_back(pred);
}
}  // namespace

std::vector<PredPtr> FlattenConjuncts(const PredPtr& pred) {
  std::vector<PredPtr> out;
  FlattenInto(pred, &out);
  return out;
}

PredPtr ConjunctsToPred(std::vector<PredPtr> conjuncts) {
  if (conjuncts.empty()) return build::True();
  if (conjuncts.size() == 1) return conjuncts[0];
  return build::And(std::move(conjuncts));
}

}  // namespace datacon
