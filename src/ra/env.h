#ifndef DATACON_RA_ENV_H_
#define DATACON_RA_ENV_H_

#include <string>
#include <unordered_map>

#include "storage/tuple.h"
#include "types/schema.h"
#include "types/value.h"

namespace datacon {

/// Evaluation environment: the tuple variables currently bound by enclosing
/// `EACH`/quantifier binders, plus the scalar parameter values of the
/// enclosing selector/constructor application.
///
/// Tuples are referenced, not copied — bindings are valid only while the
/// underlying storage is alive and unmodified, which the executors
/// guarantee by construction.
class Environment {
 public:
  struct TupleBinding {
    const Tuple* tuple;
    const Schema* schema;
  };

  /// Binds tuple variable `var`; rebinding shadows the previous binding.
  void Bind(const std::string& var, const Tuple* tuple, const Schema* schema) {
    tuples_[var] = TupleBinding{tuple, schema};
  }

  /// Removes the binding of `var` (no-op if absent).
  void Unbind(const std::string& var) { tuples_.erase(var); }

  /// The binding of `var`, or nullptr when unbound.
  const TupleBinding* Lookup(const std::string& var) const {
    auto it = tuples_.find(var);
    return it == tuples_.end() ? nullptr : &it->second;
  }

  /// Binds scalar parameter `name` to `value`.
  void BindParam(const std::string& name, Value value) {
    params_[name] = std::move(value);
  }

  /// The value of parameter `name`, or nullptr when unbound.
  const Value* LookupParam(const std::string& name) const {
    auto it = params_.find(name);
    return it == params_.end() ? nullptr : &it->second;
  }

  /// Whether any scalar parameter is bound. Parameterized evaluations are
  /// excluded from the materialization cache — parameter values change
  /// results without appearing in the cache key.
  bool HasParams() const { return !params_.empty(); }

 private:
  std::unordered_map<std::string, TupleBinding> tuples_;
  std::unordered_map<std::string, Value> params_;
};

}  // namespace datacon

#endif  // DATACON_RA_ENV_H_
