#ifndef DATACON_RA_EVAL_H_
#define DATACON_RA_EVAL_H_

#include "ast/pred.h"
#include "ast/term.h"
#include "common/result.h"
#include "ra/env.h"
#include "ra/resolver.h"

namespace datacon {

/// Tree-walking evaluator for terms and predicates over an Environment.
///
/// Quantifiers (`SOME`/`ALL`) iterate the relation their range resolves to;
/// membership tests build the probe tuple and use the relation's hash set.
/// All failures (unbound names, type mismatches, division by zero) are
/// reported as Status — for programs that passed semantic analysis the only
/// reachable runtime failure is integer division by zero.
class Evaluator {
 public:
  /// `resolver` must outlive the evaluator; it may be null for predicates
  /// that contain no quantifier or membership ranges.
  explicit Evaluator(const RelationResolver* resolver) : resolver_(resolver) {}

  /// The scalar value of `term` under `env`.
  Result<Value> EvalTerm(const Term& term, const Environment& env) const;

  /// The truth value of `pred` under `env`.
  Result<bool> EvalPred(const Pred& pred, const Environment& env) const;

  /// The resolver quantifier/membership ranges resolve through (may be
  /// null). The branch executor snapshots it before a parallel fan-out.
  const RelationResolver* resolver() const { return resolver_; }

 private:
  const RelationResolver* resolver_;
};

}  // namespace datacon

#endif  // DATACON_RA_EVAL_H_
