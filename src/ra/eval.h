#ifndef DATACON_RA_EVAL_H_
#define DATACON_RA_EVAL_H_

#include "ast/pred.h"
#include "ast/term.h"
#include "common/result.h"
#include "ra/env.h"
#include "ra/resolver.h"

namespace datacon {

/// Tree-walking evaluator for terms and predicates over an Environment.
///
/// Quantifiers (`SOME`/`ALL`) iterate the relation their range resolves to;
/// membership tests build the probe tuple and use the relation's hash set.
/// All failures (unbound names, type mismatches, division by zero) are
/// reported as Status — for programs that passed semantic analysis the only
/// reachable runtime failure is integer division by zero.
///
/// Two walk variants share this interface (DESIGN §4.16). The *checked*
/// interpreter (default) tests Value::type() before every arithmetic and
/// comparison and constructs a kTypeError on mismatch — the fallback for
/// unproven programs and `PRAGMA TYPECHECK = OFF`. The *typed-proven*
/// variant replaces those per-tuple tests with debug-only assertions; it is
/// only sound when the whole-program type checker (analysis/typecheck.h)
/// proved every definition the program can reach, which Database certifies
/// via EvalOptions::typed_proven.
class Evaluator {
 public:
  /// `resolver` must outlive the evaluator; it may be null for predicates
  /// that contain no quantifier or membership ranges. `typed_proven`
  /// selects the fast walk — pass true only under a type-checker proof.
  explicit Evaluator(const RelationResolver* resolver,
                     bool typed_proven = false)
      : resolver_(resolver), typed_proven_(typed_proven) {}

  /// The scalar value of `term` under `env`.
  Result<Value> EvalTerm(const Term& term, const Environment& env) const;

  /// The truth value of `pred` under `env`.
  Result<bool> EvalPred(const Pred& pred, const Environment& env) const;

  /// The resolver quantifier/membership ranges resolve through (may be
  /// null). The branch executor snapshots it before a parallel fan-out.
  const RelationResolver* resolver() const { return resolver_; }

  /// True when this evaluator runs the typed-proven walk. Worker
  /// evaluators built over snapshots must inherit it.
  bool typed_proven() const { return typed_proven_; }

 private:
  template <bool Proven>
  Result<Value> EvalTermImpl(const Term& term, const Environment& env) const;
  template <bool Proven>
  Result<bool> EvalPredImpl(const Pred& pred, const Environment& env) const;

  const RelationResolver* resolver_;
  bool typed_proven_;
};

}  // namespace datacon

#endif  // DATACON_RA_EVAL_H_
