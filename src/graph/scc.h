#ifndef DATACON_GRAPH_SCC_H_
#define DATACON_GRAPH_SCC_H_

#include <vector>

#include "graph/digraph.h"

namespace datacon {

/// The strongly connected components of a digraph, plus the information the
/// fixpoint scheduler needs: a topological order of the condensation and,
/// per node, whether its component is *cyclic* (more than one node, or a
/// self-loop) — cyclic components require fixpoint iteration, acyclic ones
/// evaluate in one pass (section 4, step 3).
struct SccDecomposition {
  /// component_of[node] = component id.
  std::vector<int> component_of;
  /// components[c] = the nodes of component c.
  std::vector<std::vector<int>> components;
  /// Component ids in topological order of the condensation: every edge of
  /// the original graph goes from a component appearing *no later* than the
  /// component of its head, i.e. dependencies first.
  std::vector<int> topological_order;
  /// cyclic[c] is true when component c contains a cycle.
  std::vector<bool> cyclic;

  int component_count() const { return static_cast<int>(components.size()); }
};

/// Computes the SCC decomposition with Tarjan's algorithm (iterative, safe
/// for deep graphs). Edges are interpreted as "depends on": an edge u -> v
/// means u needs v, so v's component precedes u's in `topological_order`.
SccDecomposition ComputeScc(const Digraph& graph);

}  // namespace datacon

#endif  // DATACON_GRAPH_SCC_H_
