#include "graph/scc.h"

#include <algorithm>

#include "common/check.h"

namespace datacon {

bool Digraph::HasEdge(int from, int to) const {
  const std::vector<int>& outs = OutEdges(from);
  return std::find(outs.begin(), outs.end(), to) != outs.end();
}

bool Digraph::Reachable(int from, int to) const {
  if (from == to) return true;
  std::vector<bool> seen(static_cast<size_t>(node_count()), false);
  std::vector<int> stack = {from};
  seen[static_cast<size_t>(from)] = true;
  while (!stack.empty()) {
    int u = stack.back();
    stack.pop_back();
    for (int v : OutEdges(u)) {
      if (v == to) return true;
      if (!seen[static_cast<size_t>(v)]) {
        seen[static_cast<size_t>(v)] = true;
        stack.push_back(v);
      }
    }
  }
  return false;
}

SccDecomposition ComputeScc(const Digraph& graph) {
  const int n = graph.node_count();
  SccDecomposition out;
  out.component_of.assign(static_cast<size_t>(n), -1);

  // Iterative Tarjan. Tarjan emits each component only after every component
  // it can reach, so with edges read as "depends on", emission order is
  // dependencies-first — exactly the order the fixpoint scheduler wants.
  std::vector<int> index(static_cast<size_t>(n), -1);
  std::vector<int> lowlink(static_cast<size_t>(n), 0);
  std::vector<bool> on_stack(static_cast<size_t>(n), false);
  std::vector<int> scc_stack;
  int next_index = 0;

  struct Frame {
    int node;
    size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (int root = 0; root < n; ++root) {
    if (index[static_cast<size_t>(root)] != -1) continue;
    call_stack.push_back({root, 0});
    index[static_cast<size_t>(root)] = lowlink[static_cast<size_t>(root)] =
        next_index++;
    scc_stack.push_back(root);
    on_stack[static_cast<size_t>(root)] = true;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      int u = frame.node;
      const std::vector<int>& outs = graph.OutEdges(u);
      if (frame.edge_pos < outs.size()) {
        int v = outs[frame.edge_pos++];
        if (index[static_cast<size_t>(v)] == -1) {
          index[static_cast<size_t>(v)] = lowlink[static_cast<size_t>(v)] =
              next_index++;
          scc_stack.push_back(v);
          on_stack[static_cast<size_t>(v)] = true;
          call_stack.push_back({v, 0});
        } else if (on_stack[static_cast<size_t>(v)]) {
          lowlink[static_cast<size_t>(u)] = std::min(
              lowlink[static_cast<size_t>(u)], index[static_cast<size_t>(v)]);
        }
      } else {
        if (lowlink[static_cast<size_t>(u)] == index[static_cast<size_t>(u)]) {
          int comp = static_cast<int>(out.components.size());
          out.components.emplace_back();
          while (true) {
            int w = scc_stack.back();
            scc_stack.pop_back();
            on_stack[static_cast<size_t>(w)] = false;
            out.component_of[static_cast<size_t>(w)] = comp;
            out.components.back().push_back(w);
            if (w == u) break;
          }
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          int parent = call_stack.back().node;
          lowlink[static_cast<size_t>(parent)] =
              std::min(lowlink[static_cast<size_t>(parent)],
                       lowlink[static_cast<size_t>(u)]);
        }
      }
    }
  }

  // Emission order is already dependencies-first.
  out.topological_order.resize(out.components.size());
  for (size_t c = 0; c < out.components.size(); ++c) {
    out.topological_order[c] = static_cast<int>(c);
  }

  out.cyclic.assign(out.components.size(), false);
  for (size_t c = 0; c < out.components.size(); ++c) {
    if (out.components[c].size() > 1) {
      out.cyclic[c] = true;
      continue;
    }
    int node = out.components[c][0];
    if (graph.HasEdge(node, node)) out.cyclic[c] = true;
  }
  return out;
}

}  // namespace datacon
