#ifndef DATACON_GRAPH_DIGRAPH_H_
#define DATACON_GRAPH_DIGRAPH_H_

#include <cstddef>
#include <vector>

namespace datacon {

/// A simple directed graph over integer node ids 0..n-1, with adjacency
/// lists. The substrate for the paper's dependency analyses: the
/// constructor-application graph (clause interconnectivity graph, [Sick 76])
/// and the level-1 partitioning of constructor definitions.
class Digraph {
 public:
  /// A graph with `node_count` isolated nodes.
  explicit Digraph(int node_count = 0)
      : out_edges_(static_cast<size_t>(node_count)) {}

  /// Appends a fresh isolated node, returning its id.
  int AddNode() {
    out_edges_.emplace_back();
    return static_cast<int>(out_edges_.size()) - 1;
  }

  /// Adds the directed edge `from -> to` (parallel edges allowed).
  void AddEdge(int from, int to) {
    out_edges_[static_cast<size_t>(from)].push_back(to);
  }

  int node_count() const { return static_cast<int>(out_edges_.size()); }

  const std::vector<int>& OutEdges(int node) const {
    return out_edges_[static_cast<size_t>(node)];
  }

  /// True iff an edge `from -> to` exists.
  bool HasEdge(int from, int to) const;

  /// True iff `to` is reachable from `from` following edges (a node is
  /// always reachable from itself).
  bool Reachable(int from, int to) const;

 private:
  std::vector<std::vector<int>> out_edges_;
};

}  // namespace datacon

#endif  // DATACON_GRAPH_DIGRAPH_H_
