#ifndef DATACON_AST_DECL_H_
#define DATACON_AST_DECL_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/branch.h"
#include "ast/pred.h"
#include "ast/source_loc.h"
#include "types/value.h"

namespace datacon {

/// A scalar formal parameter (`Obj: parttype` in `hidden_by`).
struct FormalScalar {
  std::string name;
  ValueType type;
};

/// A relation-valued formal parameter. `type_name` names a declared
/// relation type (resolved against the catalog).
struct FormalRelation {
  std::string name;
  std::string type_name;
};

/// SELECTOR declaration (section 2.3, Fig. 1):
///
///   SELECTOR name (params) FOR Rel: reltype;
///   BEGIN EACH var IN Rel: pred END name
///
/// A selector denotes the subrelation of its base containing exactly the
/// elements satisfying `pred`.
class SelectorDecl {
 public:
  SelectorDecl(std::string name, FormalRelation base,
               std::vector<FormalScalar> params, std::string var, PredPtr pred,
               SourceLoc loc = {})
      : name_(std::move(name)),
        base_(std::move(base)),
        params_(std::move(params)),
        var_(std::move(var)),
        pred_(std::move(pred)),
        loc_(loc) {}

  const std::string& name() const { return name_; }
  const FormalRelation& base() const { return base_; }
  const std::vector<FormalScalar>& params() const { return params_; }
  /// The element variable bound over the base relation.
  const std::string& var() const { return var_; }
  const PredPtr& pred() const { return pred_; }
  /// Position of the SELECTOR keyword (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  std::string name_;
  FormalRelation base_;
  std::vector<FormalScalar> params_;
  std::string var_;
  PredPtr pred_;
  SourceLoc loc_;
};

using SelectorDeclPtr = std::shared_ptr<const SelectorDecl>;

/// CONSTRUCTOR declaration (section 3, Fig. 2):
///
///   CONSTRUCTOR name FOR Rel: reltype (R1: t1; ...): resulttype;
///   BEGIN branch1, branch2, ... END name
///
/// Applied to an actual base relation, the constructor denotes the least
/// fixpoint of its body (section 3.2). Relation parameters enable the
/// paper's mutual recursion (`ahead(Ontop)` / `above(Infront)`); scalar
/// parameters generalize the selector parameter mechanism to constructors.
class ConstructorDecl {
 public:
  ConstructorDecl(std::string name, FormalRelation base,
                  std::vector<FormalRelation> rel_params,
                  std::vector<FormalScalar> scalar_params,
                  std::string result_type_name, CalcExprPtr body,
                  SourceLoc loc = {})
      : name_(std::move(name)),
        base_(std::move(base)),
        rel_params_(std::move(rel_params)),
        scalar_params_(std::move(scalar_params)),
        result_type_name_(std::move(result_type_name)),
        body_(std::move(body)),
        loc_(loc) {}

  const std::string& name() const { return name_; }
  const FormalRelation& base() const { return base_; }
  const std::vector<FormalRelation>& rel_params() const { return rel_params_; }
  const std::vector<FormalScalar>& scalar_params() const {
    return scalar_params_;
  }
  const std::string& result_type_name() const { return result_type_name_; }
  const CalcExprPtr& body() const { return body_; }
  /// Position of the CONSTRUCTOR keyword (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  std::string name_;
  FormalRelation base_;
  std::vector<FormalRelation> rel_params_;
  std::vector<FormalScalar> scalar_params_;
  std::string result_type_name_;
  CalcExprPtr body_;
  SourceLoc loc_;
};

using ConstructorDeclPtr = std::shared_ptr<const ConstructorDecl>;

/// CONSTRAINT declaration — an integrity constraint in denial form (the
/// deductive-database convention: the constraint is *violated* iff the
/// denial's bindings admit a witness satisfying the predicate):
///
///   CONSTRAINT name DENY EACH v1 IN range1, ...: pred;
///
/// Two sugar forms cover the common relational cases and desugar to denials
/// at analysis time (the desugaring needs the catalog's schemas, so the AST
/// keeps the surface form):
///
///   CONSTRAINT name KEY <f1, ...> ON Rel;
///       two tuples agreeing on the key fields must not differ elsewhere
///   CONSTRAINT name FOREIGN f OF <lhs range> REFERENCES g OF <rhs range>;
///       every lhs f-value must occur as some rhs g-value (inclusion;
///       either side may be selected/constructed)
class ConstraintDecl {
 public:
  enum class Kind { kDenial, kKey, kForeign };

  /// Denial form.
  ConstraintDecl(std::string name, std::vector<Binding> bindings, PredPtr pred,
                 SourceLoc loc = {})
      : name_(std::move(name)),
        kind_(Kind::kDenial),
        bindings_(std::move(bindings)),
        pred_(std::move(pred)),
        loc_(loc) {}

  /// KEY sugar.
  ConstraintDecl(std::string name, std::vector<std::string> key_fields,
                 std::string relation, SourceLoc loc = {})
      : name_(std::move(name)),
        kind_(Kind::kKey),
        key_fields_(std::move(key_fields)),
        relation_(std::move(relation)),
        loc_(loc) {}

  /// FOREIGN sugar.
  ConstraintDecl(std::string name, std::string fk_field, RangePtr fk_range,
                 std::string ref_field, RangePtr ref_range, SourceLoc loc = {})
      : name_(std::move(name)),
        kind_(Kind::kForeign),
        fk_field_(std::move(fk_field)),
        fk_range_(std::move(fk_range)),
        ref_field_(std::move(ref_field)),
        ref_range_(std::move(ref_range)),
        loc_(loc) {}

  const std::string& name() const { return name_; }
  Kind kind() const { return kind_; }
  /// Denial form only.
  const std::vector<Binding>& bindings() const { return bindings_; }
  const PredPtr& pred() const { return pred_; }
  /// KEY form only.
  const std::vector<std::string>& key_fields() const { return key_fields_; }
  const std::string& relation() const { return relation_; }
  /// FOREIGN form only.
  const std::string& fk_field() const { return fk_field_; }
  const RangePtr& fk_range() const { return fk_range_; }
  const std::string& ref_field() const { return ref_field_; }
  const RangePtr& ref_range() const { return ref_range_; }
  /// Position of the CONSTRAINT keyword (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  std::string name_;
  Kind kind_;
  std::vector<Binding> bindings_;
  PredPtr pred_;
  std::vector<std::string> key_fields_;
  std::string relation_;
  std::string fk_field_;
  RangePtr fk_range_;
  std::string ref_field_;
  RangePtr ref_range_;
  SourceLoc loc_;
};

using ConstraintDeclPtr = std::shared_ptr<const ConstraintDecl>;

}  // namespace datacon

#endif  // DATACON_AST_DECL_H_
