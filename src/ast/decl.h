#ifndef DATACON_AST_DECL_H_
#define DATACON_AST_DECL_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/branch.h"
#include "ast/pred.h"
#include "ast/source_loc.h"
#include "types/value.h"

namespace datacon {

/// A scalar formal parameter (`Obj: parttype` in `hidden_by`).
struct FormalScalar {
  std::string name;
  ValueType type;
};

/// A relation-valued formal parameter. `type_name` names a declared
/// relation type (resolved against the catalog).
struct FormalRelation {
  std::string name;
  std::string type_name;
};

/// SELECTOR declaration (section 2.3, Fig. 1):
///
///   SELECTOR name (params) FOR Rel: reltype;
///   BEGIN EACH var IN Rel: pred END name
///
/// A selector denotes the subrelation of its base containing exactly the
/// elements satisfying `pred`.
class SelectorDecl {
 public:
  SelectorDecl(std::string name, FormalRelation base,
               std::vector<FormalScalar> params, std::string var, PredPtr pred,
               SourceLoc loc = {})
      : name_(std::move(name)),
        base_(std::move(base)),
        params_(std::move(params)),
        var_(std::move(var)),
        pred_(std::move(pred)),
        loc_(loc) {}

  const std::string& name() const { return name_; }
  const FormalRelation& base() const { return base_; }
  const std::vector<FormalScalar>& params() const { return params_; }
  /// The element variable bound over the base relation.
  const std::string& var() const { return var_; }
  const PredPtr& pred() const { return pred_; }
  /// Position of the SELECTOR keyword (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  std::string name_;
  FormalRelation base_;
  std::vector<FormalScalar> params_;
  std::string var_;
  PredPtr pred_;
  SourceLoc loc_;
};

using SelectorDeclPtr = std::shared_ptr<const SelectorDecl>;

/// CONSTRUCTOR declaration (section 3, Fig. 2):
///
///   CONSTRUCTOR name FOR Rel: reltype (R1: t1; ...): resulttype;
///   BEGIN branch1, branch2, ... END name
///
/// Applied to an actual base relation, the constructor denotes the least
/// fixpoint of its body (section 3.2). Relation parameters enable the
/// paper's mutual recursion (`ahead(Ontop)` / `above(Infront)`); scalar
/// parameters generalize the selector parameter mechanism to constructors.
class ConstructorDecl {
 public:
  ConstructorDecl(std::string name, FormalRelation base,
                  std::vector<FormalRelation> rel_params,
                  std::vector<FormalScalar> scalar_params,
                  std::string result_type_name, CalcExprPtr body,
                  SourceLoc loc = {})
      : name_(std::move(name)),
        base_(std::move(base)),
        rel_params_(std::move(rel_params)),
        scalar_params_(std::move(scalar_params)),
        result_type_name_(std::move(result_type_name)),
        body_(std::move(body)),
        loc_(loc) {}

  const std::string& name() const { return name_; }
  const FormalRelation& base() const { return base_; }
  const std::vector<FormalRelation>& rel_params() const { return rel_params_; }
  const std::vector<FormalScalar>& scalar_params() const {
    return scalar_params_;
  }
  const std::string& result_type_name() const { return result_type_name_; }
  const CalcExprPtr& body() const { return body_; }
  /// Position of the CONSTRUCTOR keyword (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  std::string name_;
  FormalRelation base_;
  std::vector<FormalRelation> rel_params_;
  std::vector<FormalScalar> scalar_params_;
  std::string result_type_name_;
  CalcExprPtr body_;
  SourceLoc loc_;
};

using ConstructorDeclPtr = std::shared_ptr<const ConstructorDecl>;

}  // namespace datacon

#endif  // DATACON_AST_DECL_H_
