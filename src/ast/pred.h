#ifndef DATACON_AST_PRED_H_
#define DATACON_AST_PRED_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/range.h"
#include "ast/source_loc.h"
#include "ast/term.h"

namespace datacon {

class Pred;
using PredPtr = std::shared_ptr<const Pred>;

/// Comparison operators (`#` is DBPL's inequality).
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

/// Canonical spelling of a comparison operator ("=", "#", "<=", ...).
std::string CompareOpName(CompareOp op);

/// Quantifier kinds of the tuple relational calculus.
enum class Quantifier { kSome, kAll };

/// A boolean-valued expression over bound tuple variables: the predicate
/// part of selectors, constructive branches, and queries.
class Pred {
 public:
  enum class Kind { kBool, kCompare, kAnd, kOr, kNot, kQuant, kIn };

  virtual ~Pred() = default;
  Pred(const Pred&) = delete;
  Pred& operator=(const Pred&) = delete;

  Kind kind() const { return kind_; }

 protected:
  explicit Pred(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// TRUE or FALSE.
class BoolPred : public Pred {
 public:
  explicit BoolPred(bool value) : Pred(Kind::kBool), value_(value) {}
  bool value() const { return value_; }

 private:
  bool value_;
};

/// `lhs op rhs` over scalar terms.
class ComparePred : public Pred {
 public:
  ComparePred(CompareOp op, TermPtr lhs, TermPtr rhs)
      : Pred(Kind::kCompare), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  CompareOp op() const { return op_; }
  const TermPtr& lhs() const { return lhs_; }
  const TermPtr& rhs() const { return rhs_; }

 private:
  CompareOp op_;
  TermPtr lhs_;
  TermPtr rhs_;
};

/// N-ary conjunction.
class AndPred : public Pred {
 public:
  explicit AndPred(std::vector<PredPtr> operands)
      : Pred(Kind::kAnd), operands_(std::move(operands)) {}
  const std::vector<PredPtr>& operands() const { return operands_; }

 private:
  std::vector<PredPtr> operands_;
};

/// N-ary disjunction.
class OrPred : public Pred {
 public:
  explicit OrPred(std::vector<PredPtr> operands)
      : Pred(Kind::kOr), operands_(std::move(operands)) {}
  const std::vector<PredPtr>& operands() const { return operands_; }

 private:
  std::vector<PredPtr> operands_;
};

/// Negation. Together with ALL, NOT contributes to the parity counted by
/// the positivity constraint of section 3.3.
class NotPred : public Pred {
 public:
  explicit NotPred(PredPtr operand)
      : Pred(Kind::kNot), operand_(std::move(operand)) {}
  const PredPtr& operand() const { return operand_; }

 private:
  PredPtr operand_;
};

/// `SOME v IN range (pred)` or `ALL v IN range (pred)`. Per the paper's
/// definition, a relation name occurring in `range` counts as appearing
/// under the ALL, while names occurring only in `pred` do not.
class QuantPred : public Pred {
 public:
  QuantPred(Quantifier quantifier, std::string var, RangePtr range,
            PredPtr body, SourceLoc loc = {})
      : Pred(Kind::kQuant),
        quantifier_(quantifier),
        var_(std::move(var)),
        range_(std::move(range)),
        body_(std::move(body)),
        loc_(loc) {}

  Quantifier quantifier() const { return quantifier_; }
  const std::string& var() const { return var_; }
  const RangePtr& range() const { return range_; }
  const PredPtr& body() const { return body_; }
  /// Position of the SOME/ALL keyword (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  Quantifier quantifier_;
  std::string var_;
  RangePtr range_;
  PredPtr body_;
  SourceLoc loc_;
};

/// Membership test `<t1, ..., tk> IN range` (a single term denotes the whole
/// tuple of a variable when it is a bare field-less reference is not
/// supported; spell out the fields).
class InPred : public Pred {
 public:
  InPred(std::vector<TermPtr> tuple, RangePtr range)
      : Pred(Kind::kIn), tuple_(std::move(tuple)), range_(std::move(range)) {}

  const std::vector<TermPtr>& tuple() const { return tuple_; }
  const RangePtr& range() const { return range_; }

 private:
  std::vector<TermPtr> tuple_;
  RangePtr range_;
};

}  // namespace datacon

#endif  // DATACON_AST_PRED_H_
