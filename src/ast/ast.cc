#include <memory>

#include "ast/builder.h"
#include "ast/pred.h"
#include "ast/range.h"
#include "ast/term.h"

namespace datacon {

std::string ArithOpName(ArithOp op) {
  switch (op) {
    case ArithOp::kAdd:
      return "+";
    case ArithOp::kSub:
      return "-";
    case ArithOp::kMul:
      return "*";
    case ArithOp::kDiv:
      return "DIV";
    case ArithOp::kMod:
      return "MOD";
  }
  return "?";
}

std::string CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "#";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool Range::ContainsConstructor() const {
  for (const RangeApp& app : apps_) {
    if (app.kind == RangeApp::Kind::kConstructor) return true;
    for (const RangePtr& arg : app.range_args) {
      if (arg->ContainsConstructor()) return true;
    }
  }
  return false;
}

namespace build {

RangePtr Selected(const RangePtr& base, std::string name,
                  std::vector<TermPtr> args) {
  std::vector<RangeApp> apps = base->apps();
  RangeApp app;
  app.kind = RangeApp::Kind::kSelector;
  app.name = std::move(name);
  app.term_args = std::move(args);
  apps.push_back(std::move(app));
  return std::make_shared<Range>(base->relation(), std::move(apps));
}

RangePtr Constructed(const RangePtr& base, std::string name,
                     std::vector<RangePtr> args,
                     std::vector<TermPtr> scalar_args) {
  std::vector<RangeApp> apps = base->apps();
  RangeApp app;
  app.kind = RangeApp::Kind::kConstructor;
  app.name = std::move(name);
  app.range_args = std::move(args);
  app.term_args = std::move(scalar_args);
  apps.push_back(std::move(app));
  return std::make_shared<Range>(base->relation(), std::move(apps));
}

}  // namespace build
}  // namespace datacon
