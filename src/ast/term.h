#ifndef DATACON_AST_TERM_H_
#define DATACON_AST_TERM_H_

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace datacon {

class Term;
/// Terms are immutable trees shared freely across expressions.
using TermPtr = std::shared_ptr<const Term>;

/// Arithmetic operators of the DBPL expression fragment (needed e.g. for the
/// paper's `strange` constructor: `r.number = s.number + 1`).
enum class ArithOp { kAdd, kSub, kMul, kDiv, kMod };

/// Canonical spelling of an arithmetic operator ("+", "MOD", ...).
std::string ArithOpName(ArithOp op);

/// A scalar-valued expression: a field of a bound tuple variable, a literal,
/// a reference to a selector/constructor parameter, or an arithmetic
/// combination thereof.
class Term {
 public:
  enum class Kind { kFieldRef, kLiteral, kParamRef, kArith };

  virtual ~Term() = default;
  Term(const Term&) = delete;
  Term& operator=(const Term&) = delete;

  Kind kind() const { return kind_; }

 protected:
  explicit Term(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

/// `r.front` — the field `field` of the tuple bound to variable `var`.
class FieldRefTerm : public Term {
 public:
  FieldRefTerm(std::string var, std::string field)
      : Term(Kind::kFieldRef), var_(std::move(var)), field_(std::move(field)) {}

  const std::string& var() const { return var_; }
  const std::string& field() const { return field_; }

 private:
  std::string var_;
  std::string field_;
};

/// A scalar constant.
class LiteralTerm : public Term {
 public:
  explicit LiteralTerm(Value value)
      : Term(Kind::kLiteral), value_(std::move(value)) {}

  const Value& value() const { return value_; }

 private:
  Value value_;
};

/// A reference to a scalar formal parameter of the enclosing selector or
/// constructor (e.g. `Obj` in the paper's `hidden_by(Obj: parttype)`).
class ParamRefTerm : public Term {
 public:
  explicit ParamRefTerm(std::string name)
      : Term(Kind::kParamRef), name_(std::move(name)) {}

  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

/// `lhs op rhs` over integers.
class ArithTerm : public Term {
 public:
  ArithTerm(ArithOp op, TermPtr lhs, TermPtr rhs)
      : Term(Kind::kArith), op_(op), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  ArithOp op() const { return op_; }
  const TermPtr& lhs() const { return lhs_; }
  const TermPtr& rhs() const { return rhs_; }

 private:
  ArithOp op_;
  TermPtr lhs_;
  TermPtr rhs_;
};

}  // namespace datacon

#endif  // DATACON_AST_TERM_H_
