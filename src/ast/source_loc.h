#ifndef DATACON_AST_SOURCE_LOC_H_
#define DATACON_AST_SOURCE_LOC_H_

#include <string>

namespace datacon {

/// A source position (1-based line/column) carried from lexer tokens into
/// AST nodes, so diagnostics can point at the offending branch or binding
/// rather than at the enclosing statement. Programmatically built ASTs
/// (tests, the build:: helpers) leave it invalid; every consumer must
/// tolerate that.
struct SourceLoc {
  int line = 0;
  int column = 0;

  bool valid() const { return line > 0; }

  /// Renders "line:column", or "?" when the location is unknown.
  std::string ToString() const {
    if (!valid()) return "?";
    return std::to_string(line) + ":" + std::to_string(column);
  }

  friend bool operator==(const SourceLoc& a, const SourceLoc& b) {
    return a.line == b.line && a.column == b.column;
  }
  friend bool operator!=(const SourceLoc& a, const SourceLoc& b) {
    return !(a == b);
  }
};

}  // namespace datacon

#endif  // DATACON_AST_SOURCE_LOC_H_
