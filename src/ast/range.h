#ifndef DATACON_AST_RANGE_H_
#define DATACON_AST_RANGE_H_

#include <memory>
#include <string>
#include <vector>

#include "ast/term.h"

namespace datacon {

class Range;
using RangePtr = std::shared_ptr<const Range>;

/// One application in a range's suffix chain: either a selector application
/// `[sel(t1, ..., tk)]` (scalar term arguments) or a constructor application
/// `{ctor(R1, ..., Rm)}` (relation-valued range arguments) — the paper's
/// `Infront [hidden_by("table")] {ahead(Ontop)}`.
struct RangeApp {
  enum class Kind { kSelector, kConstructor };

  Kind kind;
  std::string name;
  /// Scalar arguments of a selector application.
  std::vector<TermPtr> term_args;
  /// Relation arguments of a constructor application; each is itself a
  /// range expression (a name, possibly with its own suffixes).
  std::vector<RangePtr> range_args;
};

/// A range expression: the set of tuples a tuple variable iterates over.
///
/// The base is a relation name — a database relation variable or, inside a
/// selector/constructor body, a formal relation parameter such as `Rel`.
/// Zero or more selector/constructor applications refine or expand it,
/// applied left to right.
class Range {
 public:
  explicit Range(std::string relation, std::vector<RangeApp> apps = {})
      : relation_(std::move(relation)), apps_(std::move(apps)) {}

  const std::string& relation() const { return relation_; }
  const std::vector<RangeApp>& apps() const { return apps_; }

  /// True iff the range has no suffixes — it is a plain relation reference.
  bool IsPlain() const { return apps_.empty(); }

  /// True iff any suffix (recursively through constructor arguments) is a
  /// constructor application.
  bool ContainsConstructor() const;

 private:
  std::string relation_;
  std::vector<RangeApp> apps_;
};

}  // namespace datacon

#endif  // DATACON_AST_RANGE_H_
