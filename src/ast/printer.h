#ifndef DATACON_AST_PRINTER_H_
#define DATACON_AST_PRINTER_H_

#include <string>

#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/pred.h"
#include "ast/range.h"
#include "ast/term.h"

namespace datacon {

/// Renders AST nodes back to the paper's DBPL-flavoured concrete syntax.
/// Used by `Database::Explain`, by error messages, and by tests that pin the
/// shape of rewritten expressions.
std::string ToString(const Term& term);
std::string ToString(const Range& range);
std::string ToString(const Pred& pred);
std::string ToString(const Branch& branch);
std::string ToString(const CalcExpr& expr);
std::string ToString(const SelectorDecl& decl);
std::string ToString(const ConstructorDecl& decl);
std::string ToString(const ConstraintDecl& decl);

}  // namespace datacon

#endif  // DATACON_AST_PRINTER_H_
