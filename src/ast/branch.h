#ifndef DATACON_AST_BRANCH_H_
#define DATACON_AST_BRANCH_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/pred.h"
#include "ast/range.h"
#include "ast/source_loc.h"
#include "ast/term.h"

namespace datacon {

/// `EACH v IN range` — binds tuple variable `v` to each element of `range`.
struct Binding {
  std::string var;
  RangePtr range;
  /// Position of the binding's EACH keyword (invalid for built ASTs).
  SourceLoc loc;
};

class Branch;
using BranchPtr = std::shared_ptr<const Branch>;

/// One constructive branch of a relational expression:
///
///   [<t1, ..., tk> OF] EACH v1 IN R1, ..., EACH vn IN Rn : pred
///
/// Without a target list the branch copies the (single) bound variable's
/// tuple unchanged — the paper's `EACH r IN Rel: TRUE`.
class Branch {
 public:
  Branch(std::vector<Binding> bindings, PredPtr pred,
         std::optional<std::vector<TermPtr>> targets = std::nullopt,
         SourceLoc loc = {})
      : bindings_(std::move(bindings)),
        pred_(std::move(pred)),
        targets_(std::move(targets)),
        loc_(loc) {}

  const std::vector<Binding>& bindings() const { return bindings_; }
  const PredPtr& pred() const { return pred_; }

  /// Target list, if declared; absent means identity projection of the
  /// single bound variable.
  const std::optional<std::vector<TermPtr>>& targets() const {
    return targets_;
  }

  /// Position where the branch starts (invalid for built ASTs).
  const SourceLoc& loc() const { return loc_; }

 private:
  std::vector<Binding> bindings_;
  PredPtr pred_;
  std::optional<std::vector<TermPtr>> targets_;
  SourceLoc loc_;
};

class CalcExpr;
using CalcExprPtr = std::shared_ptr<const CalcExpr>;

/// A relational calculus expression: the union of its constructive
/// branches — `{branch1, branch2, ...}` in the paper's notation.
class CalcExpr {
 public:
  explicit CalcExpr(std::vector<BranchPtr> branches)
      : branches_(std::move(branches)) {}

  const std::vector<BranchPtr>& branches() const { return branches_; }

 private:
  std::vector<BranchPtr> branches_;
};

}  // namespace datacon

#endif  // DATACON_AST_BRANCH_H_
