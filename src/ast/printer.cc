#include "ast/printer.h"

#include "common/check.h"
#include "types/value.h"

namespace datacon {

namespace {

/// Parenthesization is kept simple and unambiguous: AND/OR operands that are
/// themselves AND/OR are parenthesized, NOT and quantifier bodies always are.
std::string PredToString(const Pred& pred, bool parenthesize_compound);

std::string TermToString(const Term& term) {
  switch (term.kind()) {
    case Term::Kind::kFieldRef: {
      const auto& t = static_cast<const FieldRefTerm&>(term);
      return t.var() + "." + t.field();
    }
    case Term::Kind::kLiteral: {
      const auto& t = static_cast<const LiteralTerm&>(term);
      return t.value().ToString();
    }
    case Term::Kind::kParamRef: {
      const auto& t = static_cast<const ParamRefTerm&>(term);
      return t.name();
    }
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(term);
      return "(" + TermToString(*t.lhs()) + " " + ArithOpName(t.op()) + " " +
             TermToString(*t.rhs()) + ")";
    }
  }
  DATACON_UNREACHABLE("term kind");
}

std::string RangeToString(const Range& range) {
  std::string out = range.relation();
  for (const RangeApp& app : range.apps()) {
    if (app.kind == RangeApp::Kind::kSelector) {
      out += " [" + app.name;
      if (!app.term_args.empty()) {
        out += "(";
        for (size_t i = 0; i < app.term_args.size(); ++i) {
          if (i > 0) out += ", ";
          out += TermToString(*app.term_args[i]);
        }
        out += ")";
      }
      out += "]";
    } else {
      out += " {" + app.name;
      if (!app.range_args.empty() || !app.term_args.empty()) {
        out += "(";
        bool first = true;
        for (const RangePtr& arg : app.range_args) {
          if (!first) out += ", ";
          first = false;
          out += RangeToString(*arg);
        }
        for (const TermPtr& arg : app.term_args) {
          if (!first) out += ", ";
          first = false;
          out += TermToString(*arg);
        }
        out += ")";
      }
      out += "}";
    }
  }
  return out;
}

std::string PredToString(const Pred& pred, bool parenthesize_compound) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      return static_cast<const BoolPred&>(pred).value() ? "TRUE" : "FALSE";
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(pred);
      return TermToString(*p.lhs()) + " " + CompareOpName(p.op()) + " " +
             TermToString(*p.rhs());
    }
    case Pred::Kind::kAnd: {
      const auto& p = static_cast<const AndPred&>(pred);
      if (p.operands().empty()) return "TRUE";
      std::string out;
      for (size_t i = 0; i < p.operands().size(); ++i) {
        if (i > 0) out += " AND ";
        out += PredToString(*p.operands()[i], /*parenthesize_compound=*/true);
      }
      if (parenthesize_compound && p.operands().size() > 1) {
        return "(" + out + ")";
      }
      return out;
    }
    case Pred::Kind::kOr: {
      const auto& p = static_cast<const OrPred&>(pred);
      if (p.operands().empty()) return "FALSE";
      std::string out;
      for (size_t i = 0; i < p.operands().size(); ++i) {
        if (i > 0) out += " OR ";
        out += PredToString(*p.operands()[i], /*parenthesize_compound=*/true);
      }
      if (parenthesize_compound && p.operands().size() > 1) {
        return "(" + out + ")";
      }
      return out;
    }
    case Pred::Kind::kNot: {
      const auto& p = static_cast<const NotPred&>(pred);
      return "NOT (" +
             PredToString(*p.operand(), /*parenthesize_compound=*/false) + ")";
    }
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      std::string q = p.quantifier() == Quantifier::kSome ? "SOME" : "ALL";
      return q + " " + p.var() + " IN " + RangeToString(*p.range()) + " (" +
             PredToString(*p.body(), /*parenthesize_compound=*/false) + ")";
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(pred);
      std::string out = "<";
      for (size_t i = 0; i < p.tuple().size(); ++i) {
        if (i > 0) out += ", ";
        out += TermToString(*p.tuple()[i]);
      }
      out += "> IN " + RangeToString(*p.range());
      return out;
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

}  // namespace

std::string ToString(const Term& term) { return TermToString(term); }
std::string ToString(const Range& range) { return RangeToString(range); }
std::string ToString(const Pred& pred) {
  return PredToString(pred, /*parenthesize_compound=*/false);
}

std::string ToString(const Branch& branch) {
  std::string out;
  if (branch.targets().has_value()) {
    out += "<";
    const auto& ts = *branch.targets();
    for (size_t i = 0; i < ts.size(); ++i) {
      if (i > 0) out += ", ";
      out += TermToString(*ts[i]);
    }
    out += "> OF ";
  }
  for (size_t i = 0; i < branch.bindings().size(); ++i) {
    if (i > 0) out += ", ";
    const Binding& b = branch.bindings()[i];
    out += "EACH " + b.var + " IN " + RangeToString(*b.range);
  }
  out += ": " + ToString(*branch.pred());
  return out;
}

std::string ToString(const CalcExpr& expr) {
  std::string out = "{";
  for (size_t i = 0; i < expr.branches().size(); ++i) {
    if (i > 0) out += ",\n ";
    out += ToString(*expr.branches()[i]);
  }
  out += "}";
  return out;
}

std::string ToString(const SelectorDecl& decl) {
  std::string out = "SELECTOR " + decl.name();
  if (!decl.params().empty()) {
    out += " (";
    for (size_t i = 0; i < decl.params().size(); ++i) {
      if (i > 0) out += "; ";
      out += decl.params()[i].name;
      out += ": ";
      out += ValueTypeName(decl.params()[i].type);
    }
    out += ")";
  }
  out += " FOR " + decl.base().name + ": " + decl.base().type_name + ";\n";
  out += "BEGIN EACH " + decl.var() + " IN " + decl.base().name + ": " +
         ToString(*decl.pred()) + "\nEND " + decl.name();
  return out;
}

std::string ToString(const ConstructorDecl& decl) {
  std::string out = "CONSTRUCTOR " + decl.name() + " FOR " + decl.base().name +
                    ": " + decl.base().type_name;
  if (!decl.rel_params().empty() || !decl.scalar_params().empty()) {
    out += " (";
    bool first = true;
    for (const FormalRelation& r : decl.rel_params()) {
      if (!first) out += "; ";
      first = false;
      out += r.name + ": " + r.type_name;
    }
    for (const FormalScalar& s : decl.scalar_params()) {
      if (!first) out += "; ";
      first = false;
      out += s.name + ": " + std::string(ValueTypeName(s.type));
    }
    out += ")";
  }
  out += ": " + decl.result_type_name() + ";\nBEGIN ";
  for (size_t i = 0; i < decl.body()->branches().size(); ++i) {
    if (i > 0) out += ",\n      ";
    out += ToString(*decl.body()->branches()[i]);
  }
  out += "\nEND " + decl.name();
  return out;
}

std::string ToString(const ConstraintDecl& decl) {
  std::string out = "CONSTRAINT " + decl.name() + " ";
  switch (decl.kind()) {
    case ConstraintDecl::Kind::kDenial: {
      out += "DENY ";
      for (size_t i = 0; i < decl.bindings().size(); ++i) {
        if (i > 0) out += ", ";
        const Binding& b = decl.bindings()[i];
        out += "EACH " + b.var + " IN " + ToString(*b.range);
      }
      out += ": " + ToString(*decl.pred());
      break;
    }
    case ConstraintDecl::Kind::kKey: {
      out += "KEY <";
      for (size_t i = 0; i < decl.key_fields().size(); ++i) {
        if (i > 0) out += ", ";
        out += decl.key_fields()[i];
      }
      out += "> ON " + decl.relation();
      break;
    }
    case ConstraintDecl::Kind::kForeign: {
      out += "FOREIGN " + decl.fk_field() + " OF " + ToString(*decl.fk_range()) +
             " REFERENCES " + decl.ref_field() + " OF " +
             ToString(*decl.ref_range());
      break;
    }
  }
  return out;
}

}  // namespace datacon
