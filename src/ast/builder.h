#ifndef DATACON_AST_BUILDER_H_
#define DATACON_AST_BUILDER_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/pred.h"
#include "ast/range.h"
#include "ast/term.h"

namespace datacon::build {

/// Terse factory functions for assembling ASTs programmatically — the
/// programmatic face of the DBPL fragment, used throughout tests, examples,
/// and the parser.

// --- Terms ---

inline TermPtr FieldRef(std::string var, std::string field) {
  return std::make_shared<FieldRefTerm>(std::move(var), std::move(field));
}
inline TermPtr Int(int64_t v) {
  return std::make_shared<LiteralTerm>(Value::Int(v));
}
inline TermPtr Str(std::string v) {
  return std::make_shared<LiteralTerm>(Value::String(std::move(v)));
}
inline TermPtr BoolLit(bool v) {
  return std::make_shared<LiteralTerm>(Value::Bool(v));
}
inline TermPtr Param(std::string name) {
  return std::make_shared<ParamRefTerm>(std::move(name));
}
inline TermPtr Arith(ArithOp op, TermPtr l, TermPtr r) {
  return std::make_shared<ArithTerm>(op, std::move(l), std::move(r));
}
inline TermPtr Add(TermPtr l, TermPtr r) {
  return Arith(ArithOp::kAdd, std::move(l), std::move(r));
}
inline TermPtr Sub(TermPtr l, TermPtr r) {
  return Arith(ArithOp::kSub, std::move(l), std::move(r));
}

// --- Ranges ---

/// A plain relation reference.
inline RangePtr Rel(std::string name) {
  return std::make_shared<Range>(std::move(name));
}

/// `base [name(args)]` — appends a selector application.
RangePtr Selected(const RangePtr& base, std::string name,
                  std::vector<TermPtr> args = {});

/// `base {name(args)}` — appends a constructor application. `scalar_args`
/// supplies the constructor's scalar parameters (after the relation
/// arguments, as in the surface syntax).
RangePtr Constructed(const RangePtr& base, std::string name,
                     std::vector<RangePtr> args = {},
                     std::vector<TermPtr> scalar_args = {});

// --- Predicates ---

inline PredPtr True() { return std::make_shared<BoolPred>(true); }
inline PredPtr False() { return std::make_shared<BoolPred>(false); }
inline PredPtr Cmp(CompareOp op, TermPtr l, TermPtr r) {
  return std::make_shared<ComparePred>(op, std::move(l), std::move(r));
}
inline PredPtr Eq(TermPtr l, TermPtr r) {
  return Cmp(CompareOp::kEq, std::move(l), std::move(r));
}
inline PredPtr Ne(TermPtr l, TermPtr r) {
  return Cmp(CompareOp::kNe, std::move(l), std::move(r));
}
inline PredPtr Lt(TermPtr l, TermPtr r) {
  return Cmp(CompareOp::kLt, std::move(l), std::move(r));
}
inline PredPtr Le(TermPtr l, TermPtr r) {
  return Cmp(CompareOp::kLe, std::move(l), std::move(r));
}
inline PredPtr And(std::vector<PredPtr> ops) {
  return std::make_shared<AndPred>(std::move(ops));
}
inline PredPtr Or(std::vector<PredPtr> ops) {
  return std::make_shared<OrPred>(std::move(ops));
}
inline PredPtr Not(PredPtr p) { return std::make_shared<NotPred>(std::move(p)); }
inline PredPtr Some(std::string var, RangePtr range, PredPtr body) {
  return std::make_shared<QuantPred>(Quantifier::kSome, std::move(var),
                                     std::move(range), std::move(body));
}
inline PredPtr All(std::string var, RangePtr range, PredPtr body) {
  return std::make_shared<QuantPred>(Quantifier::kAll, std::move(var),
                                     std::move(range), std::move(body));
}
inline PredPtr In(std::vector<TermPtr> tuple, RangePtr range) {
  return std::make_shared<InPred>(std::move(tuple), std::move(range));
}

// --- Branches and expressions ---

inline Binding Each(std::string var, RangePtr range) {
  return Binding{std::move(var), std::move(range), SourceLoc{}};
}

/// A branch with an explicit target list.
inline BranchPtr MakeBranch(std::vector<TermPtr> targets,
                            std::vector<Binding> bindings, PredPtr pred) {
  return std::make_shared<Branch>(std::move(bindings), std::move(pred),
                                  std::move(targets));
}

/// An identity branch (`EACH v IN R: pred`, no target list).
inline BranchPtr IdentityBranch(std::string var, RangePtr range, PredPtr pred) {
  std::vector<Binding> bs;
  bs.push_back(Each(std::move(var), std::move(range)));
  return std::make_shared<Branch>(std::move(bs), std::move(pred));
}

inline CalcExprPtr Union(std::vector<BranchPtr> branches) {
  return std::make_shared<CalcExpr>(std::move(branches));
}

}  // namespace datacon::build

#endif  // DATACON_AST_BUILDER_H_
