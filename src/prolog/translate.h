#ifndef DATACON_PROLOG_TRANSLATE_H_
#define DATACON_PROLOG_TRANSLATE_H_

#include "common/result.h"
#include "core/catalog.h"
#include "core/instantiate.h"
#include "prolog/horn.h"

namespace datacon {

/// Translates an instantiated constructor-application system into Horn
/// clauses — the constructive direction of the section 3.4 lemma ("the
/// constructor mechanism is as powerful as function-free PROLOG without
/// cut, fail, and negation"), used to feed the proof-oriented baseline.
///
/// Predicate names: application nodes use their canonical key; base
/// relations use their catalog name. Each constructive branch becomes one
/// clause: bindings become body atoms, equality conjuncts are compiled
/// into shared variables/constants (unification at translation time),
/// other comparisons become builtins, SOME quantifiers over plain or
/// constructed ranges become additional body atoms, membership predicates
/// likewise. NOT, ALL, OR, and arithmetic are outside the Horn fragment
/// and yield kUnsupported — exactly the boundary the paper draws.
Result<HornProgram> TranslateApplicationGraph(const ApplicationGraph& graph,
                                              const Catalog& catalog);

}  // namespace datacon

#endif  // DATACON_PROLOG_TRANSLATE_H_
