#include "prolog/translate.h"

#include <map>
#include <optional>

#include "ast/printer.h"
#include "common/check.h"

namespace datacon {

namespace {

/// Union-find over logic variable names, with at most one constant per
/// class. Translation-time unification: equality conjuncts merge classes;
/// a literal binds the class to a constant; conflicting constants make the
/// clause unsatisfiable (it is simply dropped).
class VarUnifier {
 public:
  std::string Find(const std::string& name) {
    auto it = parent_.find(name);
    if (it == parent_.end()) {
      parent_[name] = name;
      return name;
    }
    if (it->second == name) return name;
    std::string root = Find(it->second);
    parent_[name] = root;
    return root;
  }

  /// Merges the classes of `a` and `b`; returns false when their constants
  /// conflict (clause unsatisfiable).
  bool Merge(const std::string& a, const std::string& b) {
    std::string ra = Find(a), rb = Find(b);
    if (ra == rb) return true;
    auto ca = constants_.find(ra);
    auto cb = constants_.find(rb);
    if (ca != constants_.end() && cb != constants_.end() &&
        !(ca->second == cb->second)) {
      return false;
    }
    parent_[rb] = ra;
    if (ca == constants_.end() && cb != constants_.end()) {
      constants_[ra] = cb->second;
    }
    return true;
  }

  /// Binds the class of `name` to constant `v`; returns false on conflict.
  bool BindConst(const std::string& name, const Value& v) {
    std::string root = Find(name);
    auto it = constants_.find(root);
    if (it != constants_.end()) return it->second == v;
    constants_[root] = v;
    return true;
  }

  /// The final Horn term for variable `name`.
  PrologTerm Resolve(const std::string& name) {
    std::string root = Find(name);
    auto it = constants_.find(root);
    if (it != constants_.end()) return PrologTerm::MakeConst(it->second);
    return PrologTerm::MakeVar(root);
  }

 private:
  std::map<std::string, std::string> parent_;
  std::map<std::string, Value> constants_;
};

std::string VarName(const std::string& var, const std::string& field) {
  return "V_" + var + "_" + field;
}

/// Translator for one branch; accumulates atoms/builtins, then resolves
/// variable classes.
class BranchTranslator {
 public:
  BranchTranslator(const ApplicationGraph* graph, const Catalog* catalog)
      : graph_(graph), catalog_(catalog) {}

  /// Adds `EACH v IN range` as a body atom; returns the range's schema.
  Result<const Schema*> AddBindingAtom(const std::string& var,
                                       const Range& range) {
    RangeSplit split = SplitAtLastConstructor(range);
    if (!split.trailing_selectors.empty()) {
      return Status::Unsupported(
          "selector applications have no Horn-clause counterpart: " +
          ToString(range));
    }
    Atom atom;
    const Schema* schema = nullptr;
    if (split.ctor_head.has_value()) {
      DATACON_ASSIGN_OR_RETURN(int node, graph_->FindNode(**split.ctor_head));
      atom.predicate = graph_->nodes()[static_cast<size_t>(node)].key;
      schema = &graph_->nodes()[static_cast<size_t>(node)].result_schema;
    } else {
      atom.predicate = split.base_relation;
      DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                               catalog_->LookupRelation(split.base_relation));
      schema = &rel->schema();
    }
    for (const Field& f : schema->fields()) {
      atom.args.push_back(PrologTerm::MakeVar(VarName(var, f.name)));
    }
    atoms_.push_back(std::move(atom));
    var_schemas_[var] = schema;
    return schema;
  }

  /// Translates a term into (variable-name, constant) form.
  Result<PrologTerm> TranslateTerm(const Term& term) {
    switch (term.kind()) {
      case Term::Kind::kFieldRef: {
        const auto& t = static_cast<const FieldRefTerm&>(term);
        return PrologTerm::MakeVar(VarName(t.var(), t.field()));
      }
      case Term::Kind::kLiteral:
        return PrologTerm::MakeConst(
            static_cast<const LiteralTerm&>(term).value());
      case Term::Kind::kParamRef:
      case Term::Kind::kArith:
        return Status::Unsupported(
            "term has no function-free Horn counterpart: " + ToString(term));
    }
    DATACON_UNREACHABLE("term kind");
  }

  /// Folds one equality side pair into the unifier.
  Status AddEquality(const PrologTerm& a, const PrologTerm& b) {
    if (a.kind == PrologTerm::Kind::kVar && b.kind == PrologTerm::Kind::kVar) {
      if (!unifier_.Merge(a.var, b.var)) unsatisfiable_ = true;
    } else if (a.kind == PrologTerm::Kind::kVar) {
      if (!unifier_.BindConst(a.var, b.constant)) unsatisfiable_ = true;
    } else if (b.kind == PrologTerm::Kind::kVar) {
      if (!unifier_.BindConst(b.var, a.constant)) unsatisfiable_ = true;
    } else if (!(a.constant == b.constant)) {
      unsatisfiable_ = true;
    }
    return Status::OK();
  }

  Status AddPred(const Pred& pred) {
    switch (pred.kind()) {
      case Pred::Kind::kBool:
        if (!static_cast<const BoolPred&>(pred).value()) unsatisfiable_ = true;
        return Status::OK();
      case Pred::Kind::kAnd:
        for (const PredPtr& op :
             static_cast<const AndPred&>(pred).operands()) {
          DATACON_RETURN_IF_ERROR(AddPred(*op));
        }
        return Status::OK();
      case Pred::Kind::kCompare: {
        const auto& p = static_cast<const ComparePred&>(pred);
        DATACON_ASSIGN_OR_RETURN(PrologTerm lhs, TranslateTerm(*p.lhs()));
        DATACON_ASSIGN_OR_RETURN(PrologTerm rhs, TranslateTerm(*p.rhs()));
        if (p.op() == CompareOp::kEq) return AddEquality(lhs, rhs);
        builtins_.push_back(BuiltinComparison{p.op(), lhs, rhs});
        return Status::OK();
      }
      case Pred::Kind::kQuant: {
        const auto& p = static_cast<const QuantPred&>(pred);
        if (p.quantifier() == Quantifier::kAll) {
          return Status::Unsupported(
              "universal quantification is outside the Horn fragment");
        }
        // Existential quantification is just another body atom.
        DATACON_RETURN_IF_ERROR(
            AddBindingAtom(p.var(), *p.range()).status());
        return AddPred(*p.body());
      }
      case Pred::Kind::kIn: {
        const auto& p = static_cast<const InPred&>(pred);
        RangeSplit split = SplitAtLastConstructor(*p.range());
        if (!split.trailing_selectors.empty()) {
          return Status::Unsupported(
              "selector applications have no Horn-clause counterpart");
        }
        Atom atom;
        if (split.ctor_head.has_value()) {
          DATACON_ASSIGN_OR_RETURN(int node,
                                   graph_->FindNode(**split.ctor_head));
          atom.predicate = graph_->nodes()[static_cast<size_t>(node)].key;
        } else {
          atom.predicate = split.base_relation;
        }
        for (const TermPtr& t : p.tuple()) {
          DATACON_ASSIGN_OR_RETURN(PrologTerm term, TranslateTerm(*t));
          atom.args.push_back(std::move(term));
        }
        atoms_.push_back(std::move(atom));
        return Status::OK();
      }
      case Pred::Kind::kNot:
        return Status::Unsupported(
            "negation is outside the positive Horn fragment (section 3.4)");
      case Pred::Kind::kOr:
        return Status::Unsupported(
            "disjunction within a branch predicate is outside the Horn "
            "fragment; split the branch instead");
    }
    DATACON_UNREACHABLE("pred kind");
  }

  /// Finishes the clause for `head_predicate` with the given target terms
  /// (nullopt => identity over the branch's single binding variable).
  Result<std::optional<Clause>> Finish(
      const std::string& head_predicate, const Branch& branch,
      const Schema& result_schema) {
    Clause clause;
    clause.head.predicate = head_predicate;
    if (branch.targets().has_value()) {
      for (const TermPtr& t : *branch.targets()) {
        DATACON_ASSIGN_OR_RETURN(PrologTerm term, TranslateTerm(*t));
        clause.head.args.push_back(std::move(term));
      }
    } else {
      const std::string& var = branch.bindings()[0].var;
      const Schema* schema = var_schemas_.at(var);
      (void)result_schema;
      for (const Field& f : schema->fields()) {
        clause.head.args.push_back(
            PrologTerm::MakeVar(VarName(var, f.name)));
      }
    }
    if (unsatisfiable_) return std::optional<Clause>();

    auto resolve = [&](PrologTerm& t) {
      if (t.kind == PrologTerm::Kind::kVar) t = unifier_.Resolve(t.var);
    };
    for (PrologTerm& t : clause.head.args) resolve(t);
    for (Atom& a : atoms_) {
      for (PrologTerm& t : a.args) resolve(t);
    }
    for (BuiltinComparison& b : builtins_) {
      resolve(b.lhs);
      resolve(b.rhs);
    }
    clause.body = std::move(atoms_);
    clause.builtins = std::move(builtins_);
    return std::optional<Clause>(std::move(clause));
  }

 private:
  const ApplicationGraph* graph_;
  const Catalog* catalog_;
  std::vector<Atom> atoms_;
  std::vector<BuiltinComparison> builtins_;
  std::map<std::string, const Schema*> var_schemas_;
  VarUnifier unifier_;
  bool unsatisfiable_ = false;
};

}  // namespace

Result<HornProgram> TranslateApplicationGraph(const ApplicationGraph& graph,
                                              const Catalog& catalog) {
  HornProgram program;
  for (const ApplicationGraph::Node& node : graph.nodes()) {
    for (const BranchPtr& branch : node.body->branches()) {
      BranchTranslator translator(&graph, &catalog);
      for (const Binding& b : branch->bindings()) {
        DATACON_RETURN_IF_ERROR(
            translator.AddBindingAtom(b.var, *b.range).status());
      }
      DATACON_RETURN_IF_ERROR(translator.AddPred(*branch->pred()));
      DATACON_ASSIGN_OR_RETURN(
          std::optional<Clause> clause,
          translator.Finish(node.key, *branch, node.result_schema));
      if (clause.has_value()) program.clauses.push_back(std::move(*clause));
    }
  }
  return program;
}

}  // namespace datacon
