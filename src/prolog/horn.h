#ifndef DATACON_PROLOG_HORN_H_
#define DATACON_PROLOG_HORN_H_

#include <string>
#include <vector>

#include "ast/pred.h"
#include "types/value.h"

namespace datacon {

/// A term of the Horn-clause fragment: a logic variable or a constant.
/// Function symbols are deliberately absent — section 3.4 compares
/// constructors against *function-free* PROLOG (i.e. Datalog).
struct PrologTerm {
  enum class Kind { kVar, kConst };
  Kind kind;
  std::string var;  // when kVar
  Value constant;   // when kConst

  static PrologTerm MakeVar(std::string name) {
    return PrologTerm{Kind::kVar, std::move(name), Value()};
  }
  static PrologTerm MakeConst(Value v) {
    return PrologTerm{Kind::kConst, "", std::move(v)};
  }

  std::string ToString() const {
    return kind == Kind::kVar ? var : constant.ToString();
  }
};

/// `predicate(arg1, ..., argk)`. Extensional predicates name base relations
/// of the catalog; intensional predicates name instantiated constructor
/// applications.
struct Atom {
  std::string predicate;
  std::vector<PrologTerm> args;

  std::string ToString() const;
};

/// A comparison evaluated once both sides are ground (translated from
/// non-equality comparisons; equalities are compiled away by unification
/// at translation time).
struct BuiltinComparison {
  CompareOp op;
  PrologTerm lhs;
  PrologTerm rhs;
};

/// `head :- body1, ..., bodyn, builtins.` A fact is a clause with an empty
/// body and ground head.
struct Clause {
  Atom head;
  std::vector<Atom> body;
  std::vector<BuiltinComparison> builtins;

  std::string ToString() const;
};

/// The intensional program: clauses grouped by head predicate. Extensional
/// facts stay in the catalog's relations and are resolved by the engine.
struct HornProgram {
  std::vector<Clause> clauses;

  /// All clauses whose head predicate is `predicate`.
  std::vector<const Clause*> ClausesFor(const std::string& predicate) const;

  std::string ToString() const;
};

}  // namespace datacon

#endif  // DATACON_PROLOG_HORN_H_
