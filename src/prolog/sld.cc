#include "prolog/sld.h"

#include <functional>

#include "common/check.h"
#include "common/trace.h"
#include "core/instantiate.h"
#include "prolog/translate.h"

namespace datacon {

PrologTerm SldEngine::Deref(PrologTerm t) const {
  while (t.kind == PrologTerm::Kind::kVar) {
    auto it = bindings_.find(t.var);
    if (it == bindings_.end()) return t;
    t = it->second;
  }
  return t;
}

void SldEngine::Bind(const std::string& var, PrologTerm term) {
  bindings_[var] = std::move(term);
  trail_.push_back(var);
}

void SldEngine::UndoTo(size_t mark) {
  while (trail_.size() > mark) {
    bindings_.erase(trail_.back());
    trail_.pop_back();
  }
}

bool SldEngine::Unify(const PrologTerm& a, const PrologTerm& b) {
  PrologTerm x = Deref(a);
  PrologTerm y = Deref(b);
  if (x.kind == PrologTerm::Kind::kVar) {
    if (y.kind == PrologTerm::Kind::kVar && x.var == y.var) return true;
    Bind(x.var, y);
    return true;
  }
  if (y.kind == PrologTerm::Kind::kVar) {
    Bind(y.var, x);
    return true;
  }
  return x.constant == y.constant;
}

Clause SldEngine::Rename(const Clause& clause) {
  std::string suffix = "#" + std::to_string(rename_counter_++);
  Clause out = clause;
  auto rename = [&suffix](PrologTerm& t) {
    if (t.kind == PrologTerm::Kind::kVar) t.var += suffix;
  };
  for (PrologTerm& t : out.head.args) rename(t);
  for (Atom& a : out.body) {
    for (PrologTerm& t : a.args) rename(t);
  }
  for (BuiltinComparison& b : out.builtins) {
    rename(b.lhs);
    rename(b.rhs);
  }
  return out;
}

Result<bool> SldEngine::CheckBuiltins(
    const std::vector<BuiltinComparison>& builtins) {
  for (const BuiltinComparison& b : builtins) {
    PrologTerm lhs = Deref(b.lhs);
    PrologTerm rhs = Deref(b.rhs);
    if (lhs.kind != PrologTerm::Kind::kConst ||
        rhs.kind != PrologTerm::Kind::kConst) {
      return Status::Unsupported(
          "builtin comparison over unbound variables (program is not "
          "range-restricted)");
    }
    if (lhs.constant.type() != rhs.constant.type()) return false;
    int c = lhs.constant.Compare(rhs.constant);
    bool ok = false;
    switch (b.op) {
      case CompareOp::kEq:
        ok = c == 0;
        break;
      case CompareOp::kNe:
        ok = c != 0;
        break;
      case CompareOp::kLt:
        ok = c < 0;
        break;
      case CompareOp::kLe:
        ok = c <= 0;
        break;
      case CompareOp::kGt:
        ok = c > 0;
        break;
      case CompareOp::kGe:
        ok = c >= 0;
        break;
    }
    if (!ok) return false;
  }
  return true;
}

Status SldEngine::SolveAtoms(const std::vector<Atom>& atoms, size_t index,
                             size_t depth, const Continuation& next) {
  if (index == atoms.size()) return next();
  return SolveAtom(atoms[index], depth, [&]() {
    return SolveAtoms(atoms, index + 1, depth, next);
  });
}

Status SldEngine::SolveAtom(const Atom& goal, size_t depth,
                            const Continuation& next) {
  if (options_.max_steps != 0 &&
      stats_.resolution_steps > options_.max_steps) {
    return Status::Divergence("SLD resolution exceeded its step budget of " +
                              std::to_string(options_.max_steps));
  }

  // Extensional predicate: scan the stored relation tuple-at-a-time.
  Result<const Relation*> rel =
      static_cast<const Catalog*>(catalog_)->LookupRelation(goal.predicate);
  if (rel.ok()) {
    const Relation& relation = *rel.value();
    if (goal.args.size() != static_cast<size_t>(relation.schema().arity())) {
      return Status::TypeError("atom " + goal.ToString() +
                               " does not match relation arity");
    }
    for (const Tuple& t : relation.tuples()) {
      ++stats_.facts_scanned;
      size_t mark = trail_.size();
      bool ok = true;
      for (size_t i = 0; i < goal.args.size(); ++i) {
        if (!Unify(goal.args[i],
                   PrologTerm::MakeConst(t.value(static_cast<int>(i))))) {
          ok = false;
          break;
        }
      }
      if (ok) DATACON_RETURN_IF_ERROR(next());
      UndoTo(mark);
    }
    return Status::OK();
  }

  // Intensional predicate.
  std::vector<const Clause*> clauses = program_->ClausesFor(goal.predicate);
  if (clauses.empty()) {
    return Status::NotFound("no clauses or relation for predicate '" +
                            goal.predicate + "'");
  }

  // Call-variant key: the predicate plus the ground-argument pattern of
  // this call. Distinct binding patterns are tabled separately (OLDT-style
  // subgoal tables), so a bound recursive call like tc(8, Z) is solved in
  // its own right rather than starved by the table of tc(7, Z).
  std::string call_key = goal.predicate + "|";
  for (const PrologTerm& arg : goal.args) {
    PrologTerm g = Deref(arg);
    call_key += g.kind == PrologTerm::Kind::kConst
                    ? g.constant.ToString()
                    : std::string("_");
    call_key += ",";
  }

  if (options_.tabling && ancestors_.count(call_key) > 0) {
    // Recursive variant call: consume the answer table instead of
    // recursing. The snapshot bound keeps this pass finite; later
    // saturation passes pick up answers added meanwhile.
    std::vector<std::vector<Value>>& answers = tables_[call_key];
    size_t bound = answers.size();
    for (size_t a = 0; a < bound; ++a) {
      size_t mark = trail_.size();
      bool ok = true;
      for (size_t i = 0; i < goal.args.size(); ++i) {
        if (!Unify(goal.args[i], PrologTerm::MakeConst(answers[a][i]))) {
          ok = false;
          break;
        }
      }
      if (ok) DATACON_RETURN_IF_ERROR(next());
      UndoTo(mark);
    }
    return Status::OK();
  }

  if (!options_.tabling && depth >= options_.max_depth) {
    return Status::Divergence(
        "SLD resolution exceeded depth " + std::to_string(options_.max_depth) +
        " — pure depth-first SLD does not terminate on cyclic data");
  }

  if (options_.tabling) ancestors_.insert(call_key);
  Status status = Status::OK();
  for (const Clause* clause : clauses) {
    ++stats_.resolution_steps;
    Clause instance = Rename(*clause);
    size_t mark = trail_.size();
    bool head_ok = true;
    for (size_t i = 0; i < goal.args.size(); ++i) {
      if (!Unify(goal.args[i], instance.head.args[i])) {
        head_ok = false;
        break;
      }
    }
    if (head_ok) {
      status = SolveAtoms(instance.body, 0, depth + 1, [&]() -> Status {
        DATACON_ASSIGN_OR_RETURN(bool builtins_ok,
                                 CheckBuiltins(instance.builtins));
        if (!builtins_ok) return Status::OK();
        if (options_.tabling) {
          // Record the (ground) derived head in the answer table.
          std::vector<Value> answer;
          answer.reserve(instance.head.args.size());
          for (const PrologTerm& t : instance.head.args) {
            PrologTerm g = Deref(t);
            if (g.kind != PrologTerm::Kind::kConst) {
              return Status::Unsupported(
                  "derived a non-ground head; the program is not "
                  "range-restricted: " + instance.head.ToString());
            }
            answer.push_back(g.constant);
          }
          if (table_index_[call_key].insert(answer).second) {
            tables_[call_key].push_back(std::move(answer));
          }
        }
        return next();
      });
    }
    UndoTo(mark);
    if (!status.ok()) break;
  }
  if (options_.tabling) ancestors_.erase(call_key);
  return status;
}

Result<Relation> SldEngine::Solve(
    const std::string& predicate,
    const std::vector<std::optional<Value>>& bound_args,
    const Schema& result_schema) {
  Relation result(Schema(result_schema.fields()));

  Atom query;
  query.predicate = predicate;
  for (size_t i = 0; i < static_cast<size_t>(result_schema.arity()); ++i) {
    if (i < bound_args.size() && bound_args[i].has_value()) {
      query.args.push_back(PrologTerm::MakeConst(*bound_args[i]));
    } else {
      query.args.push_back(PrologTerm::MakeVar("Q" + std::to_string(i)));
    }
  }

  // Tabling mode: repeat top-down passes until the tables saturate.
  // Pure SLD: a single (possibly diverging) pass.
  TraceSpan solve_span("sld solve");
  if (solve_span.active()) solve_span.AddArg("predicate", predicate);
  while (true) {
    ++stats_.passes;
    TraceSpan pass_span("sld pass");
    if (pass_span.active()) {
      pass_span.AddArg("pass", static_cast<int64_t>(stats_.passes));
    }
    size_t answers_before = result.size();
    size_t tables_before = 0;
    for (const auto& [p, answers] : tables_) {
      (void)p;
      tables_before += answers.size();
    }

    Status status = SolveAtom(query, 0, [&]() -> Status {
      std::vector<Value> values;
      values.reserve(query.args.size());
      for (const PrologTerm& t : query.args) {
        PrologTerm g = Deref(t);
        if (g.kind != PrologTerm::Kind::kConst) {
          return Status::Unsupported("non-ground query answer");
        }
        values.push_back(g.constant);
      }
      DATACON_ASSIGN_OR_RETURN(bool grew, result.Insert(Tuple(values)));
      (void)grew;
      return Status::OK();
    });
    DATACON_RETURN_IF_ERROR(status);

    if (pass_span.active()) {
      pass_span.AddArg("answers", static_cast<int64_t>(result.size()));
    }
    if (!options_.tabling) break;
    size_t tables_after = 0;
    for (const auto& [p, answers] : tables_) {
      (void)p;
      tables_after += answers.size();
    }
    if (result.size() == answers_before && tables_after == tables_before) {
      break;
    }
  }
  if (solve_span.active()) {
    solve_span.AddArg("answers", static_cast<int64_t>(result.size()));
    solve_span.AddArg("passes", static_cast<int64_t>(stats_.passes));
  }
  return result;
}

Result<Relation> EvaluateRangeTopDown(
    const Catalog& catalog, const RangePtr& range, const SldOptions& options,
    const std::vector<std::optional<Value>>& bound_args, SldStats* stats) {
  ApplicationGraph graph(&catalog);
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));
  if (root < 0) {
    return Status::InvalidArgument(
        "top-down evaluation requires a constructed range");
  }
  RangeSplit split = SplitAtLastConstructor(*range);
  if (!split.trailing_selectors.empty()) {
    return Status::Unsupported(
        "trailing selectors are not supported in top-down evaluation");
  }
  DATACON_ASSIGN_OR_RETURN(HornProgram program,
                           TranslateApplicationGraph(graph, catalog));
  SldEngine engine(&program, &catalog, options);
  Result<Relation> result =
      engine.Solve(graph.nodes()[static_cast<size_t>(root)].key, bound_args,
                   graph.nodes()[static_cast<size_t>(root)].result_schema);
  if (stats != nullptr) *stats = engine.stats();
  return result;
}

}  // namespace datacon
