#ifndef DATACON_PROLOG_SLD_H_
#define DATACON_PROLOG_SLD_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/catalog.h"
#include "prolog/horn.h"
#include "storage/relation.h"

namespace datacon {

/// Options of the proof-oriented engine.
struct SldOptions {
  /// With tabling (OLDT-style): recursive subgoals whose predicate is
  /// already on the resolution stack consume the answer table instead of
  /// recursing, and top-level resolution passes repeat until the tables
  /// saturate — sound and complete on cyclic data, still strictly
  /// tuple-at-a-time. Without tabling: textbook depth-first SLD, which
  /// diverges on cyclic data (bounded by max_depth / max_steps).
  bool tabling = true;
  /// Maximum intensional resolution depth (pure SLD only; tabling bounds
  /// depth by construction). Exceeding it yields kDivergence.
  size_t max_depth = 4096;
  /// Optional budget on resolution steps; 0 = unbounded. Exceeding it
  /// yields kDivergence.
  size_t max_steps = 0;
};

/// Work counters, used by the benchmarks to report proof effort.
struct SldStats {
  /// Clause-resolution attempts.
  size_t resolution_steps = 0;
  /// Extensional tuples scanned during unification attempts.
  size_t facts_scanned = 0;
  /// Saturation passes (tabling mode).
  size_t passes = 0;
};

/// Depth-first SLD resolution over a Horn program, with extensional
/// predicates backed by the catalog's relations. This is the paper's
/// comparison point: tuple-oriented theorem proving, versus the
/// set-oriented constructive evaluation of the DataCon core (section 4's
/// closing remark).
class SldEngine {
 public:
  /// `program` and `catalog` must outlive the engine.
  SldEngine(const HornProgram* program, const Catalog* catalog,
            SldOptions options)
      : program_(program), catalog_(catalog), options_(options) {}

  /// Enumerates every answer of `?- predicate(a1, ..., ak)` where
  /// `bound_args[i]`, if set, fixes argument i (the single-source query
  /// form). The answers are returned as a relation over `result_schema`.
  Result<Relation> Solve(const std::string& predicate,
                         const std::vector<std::optional<Value>>& bound_args,
                         const Schema& result_schema);

  const SldStats& stats() const { return stats_; }

 private:
  PrologTerm Deref(PrologTerm t) const;
  void Bind(const std::string& var, PrologTerm term);
  void UndoTo(size_t mark);
  bool Unify(const PrologTerm& a, const PrologTerm& b);

  /// Instantiates `clause` with fresh variable names.
  Clause Rename(const Clause& clause);

  using Continuation = std::function<Status()>;

  Status SolveAtom(const Atom& goal, size_t depth, const Continuation& next);
  Status SolveAtoms(const std::vector<Atom>& atoms, size_t index, size_t depth,
                    const Continuation& next);
  Result<bool> CheckBuiltins(const std::vector<BuiltinComparison>& builtins);

  const HornProgram* program_;
  const Catalog* catalog_;
  SldOptions options_;

  std::map<std::string, PrologTerm> bindings_;
  std::vector<std::string> trail_;
  std::set<std::string> ancestors_;
  /// Answer tables, per intensional predicate (tabling mode).
  std::map<std::string, std::vector<std::vector<Value>>> tables_;
  std::map<std::string, std::set<std::vector<Value>>> table_index_;
  size_t rename_counter_ = 0;
  SldStats stats_;
};

/// Convenience wrapper: evaluates a constructed range top-down. `range`
/// must end in a constructor application (no trailing selectors);
/// `bound_args` optionally fixes result attributes (single-source form).
Result<Relation> EvaluateRangeTopDown(
    const Catalog& catalog, const RangePtr& range, const SldOptions& options,
    const std::vector<std::optional<Value>>& bound_args = {},
    SldStats* stats = nullptr);

}  // namespace datacon

#endif  // DATACON_PROLOG_SLD_H_
