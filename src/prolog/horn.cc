#include "prolog/horn.h"

namespace datacon {

std::string Atom::ToString() const {
  std::string out = predicate + "(";
  for (size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out += ", ";
    out += args[i].ToString();
  }
  out += ")";
  return out;
}

std::string Clause::ToString() const {
  std::string out = head.ToString();
  if (body.empty() && builtins.empty()) return out + ".";
  out += " :- ";
  bool first = true;
  for (const Atom& a : body) {
    if (!first) out += ", ";
    first = false;
    out += a.ToString();
  }
  for (const BuiltinComparison& b : builtins) {
    if (!first) out += ", ";
    first = false;
    out += b.lhs.ToString() + " " + CompareOpName(b.op) + " " +
           b.rhs.ToString();
  }
  return out + ".";
}

std::vector<const Clause*> HornProgram::ClausesFor(
    const std::string& predicate) const {
  std::vector<const Clause*> out;
  for (const Clause& c : clauses) {
    if (c.head.predicate == predicate) out.push_back(&c);
  }
  return out;
}

std::string HornProgram::ToString() const {
  std::string out;
  for (const Clause& c : clauses) {
    out += c.ToString();
    out += "\n";
  }
  return out;
}

}  // namespace datacon
