#ifndef DATACON_COMMON_THREAD_POOL_H_
#define DATACON_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace datacon {

/// A fixed-size thread pool with a single shared FIFO queue (no work
/// stealing): workers block on the queue, tasks run in submission order
/// modulo scheduling. Built for the branch executor's fan-out, where a
/// handful of coarse chunks per round is the unit of work and a central
/// queue load-balances them without per-worker deques.
///
/// Thread-safety contract: Submit and Wait may be called from any thread,
/// but Wait only waits for tasks submitted *before* it was entered; the
/// usual pattern is one producer submitting a batch and then calling Wait.
/// While waiting, the caller helps drain the queue, so the pool makes
/// progress even if worker startup was truncated by OS resource limits.
/// Tasks must not themselves call Submit or Wait on the same pool (the
/// executor never nests fan-outs).
class ThreadPool {
 public:
  /// Hard ceiling on the worker count, applied by ResolveThreadCount.
  /// Guards against a runaway `num_threads` knob (e.g. PRAGMA THREADS =
  /// 99999) exhausting the process's thread limit.
  static constexpr size_t kMaxThreads = 256;

  /// Spawns `ResolveThreadCount(num_threads)` workers; if thread creation
  /// fails partway, keeps the workers that did start.
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task` for execution on some worker.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  /// Number of worker threads.
  size_t size() const { return workers_.size(); }

  /// Maps the user-facing `num_threads` knob to a worker count: 0 means
  /// "use the hardware's concurrency", anything else is taken literally
  /// (minimum 1); the result is clamped to kMaxThreads.
  static size_t ResolveThreadCount(size_t requested);

 private:
  void WorkerLoop(size_t index);

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  size_t in_flight_ = 0;  // queued + currently executing
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace datacon

#endif  // DATACON_COMMON_THREAD_POOL_H_
