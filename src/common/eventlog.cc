#include "common/eventlog.h"

#include <chrono>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"

namespace datacon {

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.resize(capacity_);
}

void EventLog::Emit(std::string type, std::vector<EventField> fields) {
  if (!enabled()) return;
  int64_t wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count();
  std::lock_guard<std::mutex> lock(mu_);
  Event& slot = ring_[next_seq_ % capacity_];
  slot.seq = next_seq_++;
  // Stamped under the lock so steady order matches sequence order.
  slot.steady_ns = TraceRecorder::Global().NowNs();
  slot.wall_us = wall_us;
  slot.type = std::move(type);
  slot.fields = std::move(fields);
  if (size_ < capacity_) ++size_;
}

std::vector<Event> EventLog::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Event> out;
  out.reserve(size_);
  uint64_t oldest = next_seq_ - size_;
  for (uint64_t s = oldest; s < next_seq_; ++s) {
    out.push_back(ring_[s % capacity_]);
  }
  return out;
}

uint64_t EventLog::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_ - size_;
}

void EventLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Event& e : ring_) e = Event{};
  size_ = 0;
  // next_seq_ keeps counting: sequences stay unique across a Clear.
}

namespace {

void AppendFieldJson(std::string* out, const EventField& f) {
  AppendJsonEscaped(out, f.key);
  out->push_back(':');
  if (f.is_int) {
    *out += std::to_string(f.int_value);
  } else {
    AppendJsonEscaped(out, f.str_value);
  }
}

}  // namespace

std::string EventLog::ToJsonl() const {
  std::string out;
  for (const Event& e : Events()) {
    out += "{\"seq\":" + std::to_string(e.seq) +
           ",\"steady_ns\":" + std::to_string(e.steady_ns) +
           ",\"wall_us\":" + std::to_string(e.wall_us) + ",\"type\":";
    AppendJsonEscaped(&out, e.type);
    for (const EventField& f : e.fields) {
      out.push_back(',');
      AppendFieldJson(&out, f);
    }
    out += "}\n";
  }
  return out;
}

std::string EventLog::ToText() const {
  std::vector<Event> events = Events();
  uint64_t lost = dropped();
  if (events.empty() && lost == 0) return "(no events recorded)\n";
  std::string out;
  for (const Event& e : events) {
    out += "#" + std::to_string(e.seq) + "  " + FormatWallTimeUs(e.wall_us) +
           "  " + e.type;
    for (const EventField& f : e.fields) {
      out += "  " + f.key + "=";
      out += f.is_int ? std::to_string(f.int_value) : f.str_value;
    }
    out += "\n";
  }
  if (lost > 0) {
    out += "(" + std::to_string(lost) + " older event(s) dropped)\n";
  }
  return out;
}

}  // namespace datacon
