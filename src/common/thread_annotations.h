#ifndef DATACON_COMMON_THREAD_ANNOTATIONS_H_
#define DATACON_COMMON_THREAD_ANNOTATIONS_H_

// Clang thread-safety annotations (-Wthread-safety), compiled to no-ops on
// every other toolchain. The macros follow the standard capability model:
// a mutex is a capability, GUARDED_BY ties data to it, REQUIRES marks
// functions that must be called with it held, EXCLUDES marks functions
// that acquire it themselves. scripts/check.sh promotes the analysis to an
// error under clang; GCC builds see plain declarations.
//
// Only the subset this codebase uses is defined — add macros as needed
// rather than importing the full attribute list.

#if defined(__clang__) && (!defined(SWIG))
#define DATACON_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DATACON_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op
#endif

/// Documents that a field is protected by the given mutex: reads and
/// writes outside a critical section on it are flagged.
#define DATACON_GUARDED_BY(x) \
  DATACON_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

/// Documents that the *pointee* of a pointer field is protected by the
/// given mutex (the pointer itself is not).
#define DATACON_PT_GUARDED_BY(x) \
  DATACON_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

/// Declares that callers must hold the given mutex(es) when calling.
#define DATACON_REQUIRES(...) \
  DATACON_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Declares that the function acquires the mutex itself — callers must
/// NOT already hold it (flags self-deadlock on non-recursive mutexes).
#define DATACON_EXCLUDES(...) \
  DATACON_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Declares a type as a lockable capability (std::mutex already is one in
/// libc++/libstdc++ under clang; needed for wrapper types only).
#define DATACON_CAPABILITY(x) \
  DATACON_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

/// Escape hatch: turns the analysis off for one function whose locking is
/// correct but inexpressible (e.g. locks handed across functions).
#define DATACON_NO_THREAD_SAFETY_ANALYSIS \
  DATACON_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // DATACON_COMMON_THREAD_ANNOTATIONS_H_
