#include "common/trace.h"

#include <algorithm>
#include <cstdio>

#include "common/metrics.h"
#include "common/string_util.h"

namespace datacon {

std::atomic<bool> TraceRecorder::enabled_{false};

/// Per-thread recorder state. The buffer pointer is registered lazily (first
/// recorded event); the destructor retires the buffer so exited worker
/// threads do not accumulate registry slots.
struct TraceThreadState {
  TraceRecorder::ThreadBuffer* buffer = nullptr;
  std::string pending_name;

  ~TraceThreadState() {
    if (buffer != nullptr) TraceRecorder::Global().RetireBuffer(buffer);
  }
};

namespace {

TraceThreadState& ThreadState() {
  static thread_local TraceThreadState state;
  return state;
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_(std::chrono::steady_clock::now()) {}

TraceRecorder& TraceRecorder::Global() {
  // Intentionally leaked: worker thread_local destructors (RetireBuffer)
  // may run after static destruction would have torn a normal singleton
  // down.
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

void TraceRecorder::Enable(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

int64_t TraceRecorder::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void TraceRecorder::SetCurrentThreadName(std::string name) {
  TraceThreadState& state = ThreadState();
  if (state.buffer == nullptr) {
    state.pending_name = std::move(name);
    return;
  }
  std::lock_guard<std::mutex> lock(state.buffer->mu);
  state.buffer->name = std::move(name);
}

TraceRecorder::ThreadBuffer* TraceRecorder::CurrentBuffer() {
  TraceThreadState& state = ThreadState();
  if (state.buffer != nullptr) return state.buffer;
  auto buffer = std::make_unique<ThreadBuffer>();
  buffer->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  buffer->name = state.pending_name.empty()
                     ? "thread-" + std::to_string(buffer->tid)
                     : state.pending_name;
  state.buffer = buffer.get();
  std::lock_guard<std::mutex> lock(mu_);
  buffers_.push_back(std::move(buffer));
  return state.buffer;
}

void TraceRecorder::RetireBuffer(ThreadBuffer* buffer) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < buffers_.size(); ++i) {
    if (buffers_[i].get() != buffer) continue;
    if (!buffer->events.empty()) {
      retired_threads_.emplace_back(buffer->tid, buffer->name);
      retired_events_.insert(retired_events_.end(),
                             std::make_move_iterator(buffer->events.begin()),
                             std::make_move_iterator(buffer->events.end()));
    }
    buffers_.erase(buffers_.begin() + static_cast<ptrdiff_t>(i));
    return;
  }
}

void TraceRecorder::RecordComplete(std::string name, int64_t start_ns,
                                   int64_t dur_ns,
                                   std::vector<TraceArg> args) {
  if (!Enabled()) return;
  ThreadBuffer* buffer = CurrentBuffer();
  TraceEvent event;
  event.phase = TraceEvent::Phase::kComplete;
  event.name = std::move(name);
  event.start_ns = start_ns;
  event.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  event.tid = buffer->tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::RecordInstant(std::string name,
                                  std::vector<TraceArg> args) {
  if (!Enabled()) return;
  ThreadBuffer* buffer = CurrentBuffer();
  TraceEvent event;
  event.phase = TraceEvent::Phase::kInstant;
  event.name = std::move(name);
  event.start_ns = NowNs();
  event.tid = buffer->tid;
  event.args = std::move(args);
  std::lock_guard<std::mutex> lock(buffer->mu);
  buffer->events.push_back(std::move(event));
}

void TraceRecorder::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    buffer->events.clear();
  }
  retired_events_.clear();
  retired_threads_.clear();
}

size_t TraceRecorder::EventCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = retired_events_.size();
  for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
    std::lock_guard<std::mutex> buffer_lock(buffer->mu);
    count += buffer->events.size();
  }
  return count;
}

TraceRecorder::SnapshotResult TraceRecorder::Snapshot() const {
  SnapshotResult out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.events = retired_events_;
    out.threads = retired_threads_;
    for (const std::unique_ptr<ThreadBuffer>& buffer : buffers_) {
      std::lock_guard<std::mutex> buffer_lock(buffer->mu);
      out.events.insert(out.events.end(), buffer->events.begin(),
                        buffer->events.end());
      if (!buffer->events.empty()) {
        out.threads.emplace_back(buffer->tid, buffer->name);
      }
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_ns < b.start_ns;
                   });
  std::sort(out.threads.begin(), out.threads.end());
  return out;
}

namespace {

void AppendMicros(std::string* out, int64_t ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e3);
  *out += buf;
}

void AppendArgsObject(std::string* out, const std::vector<TraceArg>& args) {
  out->push_back('{');
  bool first = true;
  for (const TraceArg& arg : args) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonEscaped(out, arg.key);
    out->push_back(':');
    if (arg.is_int) {
      *out += std::to_string(arg.int_value);
    } else {
      AppendJsonEscaped(out, arg.str_value);
    }
  }
  out->push_back('}');
}

}  // namespace

std::string TraceRecorder::ToChromeJson() const {
  SnapshotResult snap = Snapshot();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [tid, name] : snap.threads) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":" + std::to_string(tid) +
           ",\"name\":\"thread_name\",\"args\":{\"name\":";
    AppendJsonEscaped(&out, name);
    out += "}}";
  }
  for (const TraceEvent& event : snap.events) {
    if (!first) out.push_back(',');
    first = false;
    out += "{\"ph\":\"";
    out += event.phase == TraceEvent::Phase::kComplete ? 'X' : 'i';
    out += "\",\"pid\":1,\"tid\":" + std::to_string(event.tid) +
           ",\"cat\":\"datacon\",\"name\":";
    AppendJsonEscaped(&out, event.name);
    out += ",\"ts\":";
    AppendMicros(&out, event.start_ns);
    if (event.phase == TraceEvent::Phase::kComplete) {
      out += ",\"dur\":";
      AppendMicros(&out, event.dur_ns);
    } else {
      out += ",\"s\":\"t\"";
    }
    out += ",\"args\":";
    AppendArgsObject(&out, event.args);
    out += "}";
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::ToText() const {
  SnapshotResult snap = Snapshot();
  std::string out;
  size_t i = 0;
  for (const auto& [tid, name] : snap.threads) {
    out += "[tid " + std::to_string(tid) + " " + name + "]\n";
    // Events are sorted by start time within the tid; nesting depth is
    // recovered from interval containment (a span is a child while it
    // starts before the enclosing span's end).
    std::vector<int64_t> open_ends;
    for (; i < snap.events.size() && snap.events[i].tid == tid; ++i) {
      const TraceEvent& event = snap.events[i];
      while (!open_ends.empty() && event.start_ns >= open_ends.back()) {
        open_ends.pop_back();
      }
      out.append(2 * (open_ends.size() + 1), ' ');
      out += event.name;
      for (const TraceArg& arg : event.args) {
        out += "  " + arg.key + "=" +
               (arg.is_int ? std::to_string(arg.int_value) : arg.str_value);
      }
      if (event.phase == TraceEvent::Phase::kComplete) {
        out += "  (" + FormatDurationNs(event.dur_ns) + ")";
        open_ends.push_back(event.start_ns + event.dur_ns);
      } else {
        out += "  [instant]";
      }
      out.push_back('\n');
    }
  }
  return out;
}

}  // namespace datacon
