#ifndef DATACON_COMMON_EVENTLOG_H_
#define DATACON_COMMON_EVENTLOG_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace datacon {

/// One key/value field attached to a structured event. Values are either
/// integers or strings — the two shapes the emission sites need; the JSONL
/// serialization emits integers unquoted.
struct EventField {
  std::string key;
  bool is_int = true;
  int64_t int_value = 0;
  std::string str_value;

  static EventField Int(std::string key, int64_t value) {
    EventField f;
    f.key = std::move(key);
    f.int_value = value;
    return f;
  }
  static EventField Str(std::string key, std::string value) {
    EventField f;
    f.key = std::move(key);
    f.is_int = false;
    f.str_value = std::move(value);
    return f;
  }
};

/// One recorded event: an admission sequence number, a steady/wall clock
/// pair captured at emission (the steady stamp shares the TraceRecorder
/// epoch so events correlate with --trace-out spans; the wall stamp places
/// them in calendar time), a dotted type name ("query.finish",
/// "cache.hit", ...), and typed detail fields.
struct Event {
  uint64_t seq = 0;
  int64_t steady_ns = 0;
  int64_t wall_us = 0;
  std::string type;
  std::vector<EventField> fields;
};

/// A bounded ring of structured events — the machine-readable counterpart
/// of the trace recorder, scoped per Database rather than process-wide.
/// Event types: query.start / query.finish (latency + EvalStats digest +
/// resource attribution), cache.hit / cache.delta / cache.invalidate,
/// constraint.violation, specialize.fallback, slowlog.admit.
///
/// Cost model, mirroring TraceRecorder:
///  - Disabled (the default), the only work on an instrumented path is one
///    relaxed atomic load (`enabled()`); no allocation, no locking, no
///    clock read. Callers must guard field construction behind it.
///  - Enabled, emission takes the ring mutex. Events are per-query-rare
///    (never per-tuple), so the lock is uncontended in practice; the ring
///    is bounded, so an abandoned enabled log cannot grow without bound —
///    once full, each emission overwrites the oldest event and `dropped()`
///    counts the loss.
///
/// Emission never feeds logical counters: EvalStats stays bit-identical
/// with events ON or OFF (pinned by the corpus neutrality test).
class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 1024;

  explicit EventLog(size_t capacity = kDefaultCapacity);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// The instrumentation guard: one relaxed atomic load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Turns emission on/off. Enabling does not clear retained events.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Records one event, stamping seq and both clocks under the ring lock —
  /// so sequence order and steady-timestamp order always agree (the JSONL
  /// monotonicity the validator checks). No-op when disabled.
  void Emit(std::string type, std::vector<EventField> fields);

  /// Retained events, oldest first.
  std::vector<Event> Events() const;

  /// Events overwritten since construction (ring wrap).
  uint64_t dropped() const;

  void Clear();

  /// One JSON object per line, oldest first:
  /// {"seq":N,"steady_ns":N,"wall_us":N,"type":"...",<fields...>}.
  std::string ToJsonl() const;

  /// The `SHOW EVENTS;` rendering: one "#seq  <wall time>  type  k=v" line
  /// per event, oldest first, with a trailing drop note when the ring
  /// wrapped.
  std::string ToText() const;

 private:
  std::atomic<bool> enabled_{false};
  const size_t capacity_;
  mutable std::mutex mu_;
  /// Ring storage: event with sequence s lives in slot s % capacity_.
  std::vector<Event> ring_ DATACON_GUARDED_BY(mu_);
  uint64_t next_seq_ DATACON_GUARDED_BY(mu_) = 0;
  size_t size_ DATACON_GUARDED_BY(mu_) = 0;
};

}  // namespace datacon

#endif  // DATACON_COMMON_EVENTLOG_H_
