#include "common/string_util.h"

#include <cctype>

namespace datacon {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

std::string AsciiToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string AsciiToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\b':
        *out += "\\b";
        break;
      case '\f':
        *out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          *out += "\\u00";
          out->push_back(kHex[(static_cast<unsigned char>(c) >> 4) & 0xf]);
          out->push_back(kHex[static_cast<unsigned char>(c) & 0xf]);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  AppendJsonEscaped(&out, text);
  return out;
}

}  // namespace datacon
