#include "common/status.h"

namespace datacon {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kTypeError:
      return "TYPE_ERROR";
    case StatusCode::kPositivityViolation:
      return "POSITIVITY_VIOLATION";
    case StatusCode::kKeyViolation:
      return "KEY_VIOLATION";
    case StatusCode::kConstraintViolation:
      return "CONSTRAINT_VIOLATION";
    case StatusCode::kDivergence:
      return "DIVERGENCE";
    case StatusCode::kParseError:
      return "PARSE_ERROR";
    case StatusCode::kUnsupported:
      return "UNSUPPORTED";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace datacon
