#ifndef DATACON_COMMON_STATUS_H_
#define DATACON_COMMON_STATUS_H_

#include <string>
#include <string_view>

namespace datacon {

/// Classifies the failure reported by a `Status`.
///
/// DataCon follows the no-exceptions discipline: every fallible operation
/// returns a `Status` (or a `Result<T>`, see result.h). The codes mirror the
/// failure classes the paper's DBPL compiler and runtime distinguish: static
/// errors found at definition time (type errors, positivity violations),
/// dynamic errors found at evaluation time (key violations, divergence), and
/// plain lookup failures.
enum class StatusCode {
  kOk = 0,
  /// A named entity (type, relation, selector, constructor, field, variable)
  /// is not known in the current catalog or scope.
  kNotFound,
  /// An entity with the same name already exists.
  kAlreadyExists,
  /// A static semantic error: ill-typed expression, arity mismatch,
  /// schema incompatibility.
  kTypeError,
  /// The positivity constraint of section 3.3 is violated: a recursive
  /// relation reference appears under an odd total number of NOTs and ALLs.
  kPositivityViolation,
  /// The key constraint of section 2.2 is violated: two tuples agree on the
  /// key attributes but differ elsewhere.
  kKeyViolation,
  /// A declared integrity constraint (CONSTRAINT ... DENY ...) would be
  /// violated by the attempted update; the statement is rejected and the
  /// database state is unchanged.
  kConstraintViolation,
  /// A fixpoint iteration exceeded its bound without converging (only
  /// reachable in unchecked mode; checked constructors always converge).
  kDivergence,
  /// Malformed surface syntax (lexer/parser errors).
  kParseError,
  /// A request that is syntactically valid but not supported by the
  /// engine or the chosen evaluation mode.
  kUnsupported,
  /// An argument value is outside the accepted domain.
  kInvalidArgument,
  /// An internal invariant was broken; indicates a bug in DataCon itself.
  kInternal,
};

/// Returns the canonical spelling of `code`, e.g. "TYPE_ERROR".
std::string_view StatusCodeName(StatusCode code);

/// Carrier for success-or-error outcomes, in the style of the error models
/// used by production storage engines.
///
/// A `Status` is cheap to construct in the success case and carries a code
/// plus a human-readable message in the failure case. It must be inspected
/// (`ok()`) before results depending on the operation are used.
class Status {
 public:
  /// Constructs a success status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Named constructors, one per failure class.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status PositivityViolation(std::string msg) {
    return Status(StatusCode::kPositivityViolation, std::move(msg));
  }
  static Status KeyViolation(std::string msg) {
    return Status(StatusCode::kKeyViolation, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status Divergence(std::string msg) {
    return Status(StatusCode::kDivergence, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The failure class (kOk on success).
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty on success).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace datacon

/// Propagates a non-OK status out of the enclosing function.
#define DATACON_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::datacon::Status _datacon_status = (expr);      \
    if (!_datacon_status.ok()) return _datacon_status; \
  } while (0)

#endif  // DATACON_COMMON_STATUS_H_
