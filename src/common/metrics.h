#ifndef DATACON_COMMON_METRICS_H_
#define DATACON_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace datacon {

/// A monotonic wall-clock timer. Construction starts it; ElapsedNs reads it
/// without stopping. Backed by steady_clock, so it is immune to NTP jumps —
/// the right clock for profiling, the wrong one for timestamps.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Renders a nanosecond duration human-readably ("412 ns", "3.21 ms",
/// "1.05 s") with three significant digits.
std::string FormatDurationNs(int64_t ns);

/// Renders a system-clock timestamp (microseconds since the Unix epoch) as
/// ISO 8601 UTC with microsecond precision: "2026-08-09T12:34:56.789012Z".
std::string FormatWallTimeUs(int64_t us);

/// An insertion-ordered registry of named integer counters. Insertion order
/// is preserved so serialized output is stable across runs — a requirement
/// for the profile-determinism regression test. Lookup is linear; counter
/// sets are small (a dozen names) and hot-path increments go through a
/// pointer obtained once, not through the name.
class CounterSet {
 public:
  /// Adds `delta` to `name`, creating the counter at zero first.
  void Add(std::string_view name, int64_t delta);

  /// The counter's value, or 0 if it was never added to.
  int64_t Get(std::string_view name) const;

  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, int64_t>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, int64_t>> entries_;
};

/// One node of an evaluation profile tree (the EXPLAIN ANALYZE payload):
/// a name, elapsed wall time, and two counter sets —
///
///  - `counters`: logical work counters (tuples considered, index probes,
///    fixpoint rounds, delta sizes). These are bit-identical at every
///    thread-count setting; the determinism test diffs them.
///  - `exec`: scheduling-dependent execution detail (chunks dispatched,
///    snapshot materializations). Reported, but excluded from the
///    determinism digest because they legitimately vary with PRAGMA THREADS.
///
/// Serializes to an indented human-readable tree (ToText) and to JSON
/// (ToJson); CounterDigest is the canonical timing-free, exec-free JSON used
/// to assert profile equality across thread counts.
class ProfileNode {
 public:
  explicit ProfileNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends a child and returns it (owned by this node).
  ProfileNode* AddChild(std::string name);

  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  CounterSet& exec() { return exec_; }
  const CounterSet& exec() const { return exec_; }

  void set_elapsed_ns(int64_t ns) { elapsed_ns_ = ns; }
  /// Negative when no timing was recorded for this node.
  int64_t elapsed_ns() const { return elapsed_ns_; }

  const std::vector<std::unique_ptr<ProfileNode>>& children() const {
    return children_;
  }

  /// Depth-first search by node name; nullptr when absent. Test helper.
  const ProfileNode* Find(std::string_view name) const;

  /// Indented tree, one node per line, counters appended as `k=v`; exec
  /// counters are prefixed with `~` to mark them scheduling-dependent.
  std::string ToText() const;

  /// Full JSON: {"name":..,"elapsed_ns":..,"counters":{..},"exec":{..},
  /// "children":[..]}.
  std::string ToJson() const;

  /// JSON with wall times and exec counters stripped: equal strings at
  /// THREADS=1 and THREADS=N is the parallel-determinism contract.
  std::string CounterDigest() const;

 private:
  void AppendText(std::string* out, int depth) const;
  void AppendJson(std::string* out, bool deterministic_only) const;

  std::string name_;
  CounterSet counters_;
  CounterSet exec_;
  int64_t elapsed_ns_ = -1;
  std::vector<std::unique_ptr<ProfileNode>> children_;
};

/// A fixed-bucket log-scale histogram of non-negative integer samples
/// (latencies in ns, round counts, tuple counts). Bucket i >= 1 covers
/// [2^(i-1), 2^i - 1]; bucket 0 holds zeros (and clamps negatives). All
/// counters are relaxed atomics, so concurrent Record calls from worker
/// threads need no lock and never lose a sample; count/sum/bucket reads
/// taken while writers run are individually exact though not mutually
/// atomic (fine for monitoring output).
class Histogram {
 public:
  static constexpr size_t kBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(int64_t value);

  /// Adds every bucket/count/sum of `other` into this histogram and raises
  /// max — the cross-thread merge operation.
  ///
  /// Contract: `other` should be quiescent (no concurrent Record) for an
  /// exact merge. The bucket array and count/sum/max are read as separate
  /// relaxed loads, so merging from a live source can capture a state no
  /// single moment had — e.g. a count that exceeds the sum of the copied
  /// buckets. Such torn merges never corrupt this histogram's own
  /// invariants beyond that same benign skew, and Percentile stays robust
  /// to it (rank is clamped to the observed bucket mass).
  void MergeFrom(const Histogram& other);

  void Reset();

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t max() const { return max_.load(std::memory_order_relaxed); }

  /// The value at quantile `q` in [0, 1]: the upper bound of the first
  /// bucket whose cumulative count reaches ceil(q * count), clamped to the
  /// recorded max (so p100 of a single sample is that sample, not its
  /// bucket's upper bound). 0 when empty. The rank is additionally clamped
  /// to the bucket mass actually observed during the scan, so a torn
  /// MergeFrom (count ahead of the buckets) yields the largest observed
  /// bucket's bound instead of scanning past the last bucket into a
  /// potentially bogus max().
  int64_t Percentile(double q) const;

  /// {"count":..,"sum":..,"max":..,"p50":..,"p95":..,"p99":..}
  std::string ToJson() const;

  /// "count=5 sum=123 p50=32 p95=64 p99=64 max=57"
  std::string ToText() const;

  /// Appends this histogram's Prometheus samples: the cumulative
  /// `<name>_bucket{le="..."}` series with power-of-two upper bounds up to
  /// the highest occupied bucket, then `le="+Inf"`, `<name>_sum`, and
  /// `<name>_count`. The `+Inf` bucket and `_count` always agree even after
  /// a torn MergeFrom (both report max(bucket mass, count)).
  void AppendPrometheus(std::string* out, const std::string& name) const;

 private:
  static size_t BucketIndex(int64_t value);

  /// Test backdoor: lets the torn-merge regression test construct a
  /// histogram whose count disagrees with its bucket totals without racing
  /// real threads. Defined by the test only.
  friend struct HistogramPeer;

  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> max_{0};
};

/// A named monotonic event counter (cache hits, invalidations, ...): the
/// discrete-event counterpart of Histogram. Relaxed atomic increments —
/// safe from any thread, read with value().
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }

  int64_t value() const { return value_.load(std::memory_order_relaxed); }

  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// An insertion-ordered registry of named histograms and counters — the
/// continuous-observability counterpart of the per-query ProfileNode tree.
/// Every `Database` owns one (so concurrent databases never contend or
/// cross-contaminate); the evaluation layer feeds it per query (end-to-end
/// latency, fixpoint rounds, tuples derived, seed tuples pruned) and the
/// cache/constraint subsystems feed their counters. `SHOW METRICS;` reads
/// the owning database's registry; ProcessMetrics() aggregates registries
/// of retired databases for process-wide artifacts. Registration takes a
/// mutex; returned Histogram/Counter pointers are stable for the registry's
/// lifetime, so hot paths record through a pointer without any registry
/// lock.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The histogram named `name`, created empty on first use. Insertion
  /// order is preserved in both exports.
  Histogram* GetHistogram(std::string_view name);

  /// The counter named `name`, created at zero on first use. Insertion
  /// order is preserved in both exports; returned pointers are stable for
  /// the registry's lifetime.
  Counter* GetCounter(std::string_view name);

  /// Resets every histogram's samples and every counter's value (names
  /// stay registered) — REPL-session hygiene.
  void Reset();

  /// Folds every histogram and counter of `other` into this registry,
  /// creating names on first sight (insertion order: existing names keep
  /// their slot, new names append in `other`'s order). `other` should be
  /// quiescent for an exact merge; a live source yields the same benign
  /// torn-merge skew as Histogram::MergeFrom. Never holds both registry
  /// locks at once, so opposing merges cannot deadlock.
  void MergeFrom(const MetricsRegistry& other);

  /// {"histograms":{"query.latency_ns":{...},...},"counters":{"cache.hits":N,...}}
  std::string ToJson() const;

  /// One line per histogram: "name  count=.. p50=.. p95=.. p99=.. max=..";
  /// names ending in "_ns" additionally render the percentiles as
  /// human-readable durations. Counters follow, one "name  count=N" line
  /// each.
  std::string ToText() const;

  /// Prometheus text exposition (format 0.0.4). Metric names are prefixed
  /// `datacon_` with dots mapped to underscores; counters render as
  /// `<name>_total`, histograms as cumulative `<name>_bucket{le="..."}`
  /// series (power-of-two upper bounds) plus `<name>_sum`/`<name>_count`.
  std::string ToPrometheus() const;

 private:
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Histogram>>> entries_
      DATACON_GUARDED_BY(mu_);
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_
      DATACON_GUARDED_BY(mu_);
};

/// The process-level aggregator (never destroyed): the ONLY process-wide
/// metrics state. Databases merge their registry into it on destruction, so
/// benchmark artifacts and end-of-process dumps see the union of all work
/// done, while live accounting stays per-database. Nothing records into it
/// directly — feed it exclusively via MergeFrom.
MetricsRegistry& ProcessMetrics();

/// A bounded log of the slowest statements seen by a Database: at most
/// `capacity` entries, always the slowest-so-far, ordered slowest-first.
/// When full, recording a new slow statement evicts the fastest retained
/// entry; statements under the threshold are never recorded. Thread-safe
/// (one mutex; recording is rare by construction — slow queries only).
class SlowQueryLog {
 public:
  struct Entry {
    std::string statement;
    int64_t elapsed_ns = 0;
    /// Compact evaluation digest: flat stats summary plus, when profiling
    /// was on, the indented profile tree.
    std::string digest;
    /// Monotonic admission number — older entries have smaller sequences,
    /// which breaks latency ties in eviction (oldest evicted first).
    uint64_t sequence = 0;
    /// Capture timestamps, taken inside Record: `steady_ns` is nanoseconds
    /// on the TraceRecorder epoch (correlates with `--trace-out` Chrome
    /// traces); `wall_us` is system-clock microseconds since the Unix epoch
    /// (correlates with the outside world). -1/0 when never recorded.
    int64_t steady_ns = -1;
    int64_t wall_us = 0;
  };

  explicit SlowQueryLog(size_t capacity = 16) : capacity_(capacity) {}

  /// Minimum latency for admission. 0 admits everything (the log still
  /// retains only the N slowest).
  void set_threshold_ns(int64_t ns);
  int64_t threshold_ns() const;

  /// Cheap admission pre-check: true when a Record call with this latency
  /// would retain an entry right now. Lets callers skip building the
  /// statement/digest strings for queries that would be dropped anyway.
  bool WouldRecord(int64_t elapsed_ns) const;

  void Record(std::string statement, int64_t elapsed_ns, std::string digest);

  /// Entries sorted slowest-first (ties: older first).
  std::vector<Entry> Entries() const;

  void Clear();

  /// The `SHOW SLOWLOG;` rendering.
  std::string ToText() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  int64_t threshold_ns_ DATACON_GUARDED_BY(mu_) = 0;
  uint64_t next_sequence_ DATACON_GUARDED_BY(mu_) = 0;
  // Kept sorted slowest-first.
  std::vector<Entry> entries_ DATACON_GUARDED_BY(mu_);
};

}  // namespace datacon

#endif  // DATACON_COMMON_METRICS_H_
