#ifndef DATACON_COMMON_METRICS_H_
#define DATACON_COMMON_METRICS_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace datacon {

/// A monotonic wall-clock timer. Construction starts it; ElapsedNs reads it
/// without stopping. Backed by steady_clock, so it is immune to NTP jumps —
/// the right clock for profiling, the wrong one for timestamps.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNs()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Renders a nanosecond duration human-readably ("412 ns", "3.21 ms",
/// "1.05 s") with three significant digits.
std::string FormatDurationNs(int64_t ns);

/// An insertion-ordered registry of named integer counters. Insertion order
/// is preserved so serialized output is stable across runs — a requirement
/// for the profile-determinism regression test. Lookup is linear; counter
/// sets are small (a dozen names) and hot-path increments go through a
/// pointer obtained once, not through the name.
class CounterSet {
 public:
  /// Adds `delta` to `name`, creating the counter at zero first.
  void Add(std::string_view name, int64_t delta);

  /// The counter's value, or 0 if it was never added to.
  int64_t Get(std::string_view name) const;

  bool empty() const { return entries_.empty(); }

  const std::vector<std::pair<std::string, int64_t>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, int64_t>> entries_;
};

/// One node of an evaluation profile tree (the EXPLAIN ANALYZE payload):
/// a name, elapsed wall time, and two counter sets —
///
///  - `counters`: logical work counters (tuples considered, index probes,
///    fixpoint rounds, delta sizes). These are bit-identical at every
///    thread-count setting; the determinism test diffs them.
///  - `exec`: scheduling-dependent execution detail (chunks dispatched,
///    snapshot materializations). Reported, but excluded from the
///    determinism digest because they legitimately vary with PRAGMA THREADS.
///
/// Serializes to an indented human-readable tree (ToText) and to JSON
/// (ToJson); CounterDigest is the canonical timing-free, exec-free JSON used
/// to assert profile equality across thread counts.
class ProfileNode {
 public:
  explicit ProfileNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Appends a child and returns it (owned by this node).
  ProfileNode* AddChild(std::string name);

  CounterSet& counters() { return counters_; }
  const CounterSet& counters() const { return counters_; }
  CounterSet& exec() { return exec_; }
  const CounterSet& exec() const { return exec_; }

  void set_elapsed_ns(int64_t ns) { elapsed_ns_ = ns; }
  /// Negative when no timing was recorded for this node.
  int64_t elapsed_ns() const { return elapsed_ns_; }

  const std::vector<std::unique_ptr<ProfileNode>>& children() const {
    return children_;
  }

  /// Depth-first search by node name; nullptr when absent. Test helper.
  const ProfileNode* Find(std::string_view name) const;

  /// Indented tree, one node per line, counters appended as `k=v`; exec
  /// counters are prefixed with `~` to mark them scheduling-dependent.
  std::string ToText() const;

  /// Full JSON: {"name":..,"elapsed_ns":..,"counters":{..},"exec":{..},
  /// "children":[..]}.
  std::string ToJson() const;

  /// JSON with wall times and exec counters stripped: equal strings at
  /// THREADS=1 and THREADS=N is the parallel-determinism contract.
  std::string CounterDigest() const;

 private:
  void AppendText(std::string* out, int depth) const;
  void AppendJson(std::string* out, bool deterministic_only) const;

  std::string name_;
  CounterSet counters_;
  CounterSet exec_;
  int64_t elapsed_ns_ = -1;
  std::vector<std::unique_ptr<ProfileNode>> children_;
};

}  // namespace datacon

#endif  // DATACON_COMMON_METRICS_H_
