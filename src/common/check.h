#ifndef DATACON_COMMON_CHECK_H_
#define DATACON_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <string>

namespace datacon::internal_check {

/// Prints a diagnostic and aborts. Out of line so the macro stays small.
[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition,
                                     const std::string& message) {
  std::fprintf(stderr, "DATACON_CHECK failed at %s:%d: %s%s%s\n", file, line,
               condition, message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

}  // namespace datacon::internal_check

/// Aborts with a diagnostic when `cond` is false. For internal invariants
/// only — user-visible failures are reported through Status, never CHECKs.
#define DATACON_CHECK(cond, ...)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::datacon::internal_check::CheckFailed(__FILE__, __LINE__, #cond,     \
                                             ::std::string(__VA_ARGS__));   \
    }                                                                       \
  } while (0)

/// Debug-only DATACON_CHECK. Compiles to nothing under NDEBUG — used on the
/// typed-proven evaluation path, where the type checker has already proved
/// the condition and release builds must not pay for it per tuple.
#ifdef NDEBUG
#define DATACON_DCHECK(cond, ...) \
  do {                            \
  } while (0)
#else
#define DATACON_DCHECK(cond, ...) DATACON_CHECK(cond, ##__VA_ARGS__)
#endif

/// Marks a code path that must be unreachable.
#define DATACON_UNREACHABLE(msg)                                            \
  ::datacon::internal_check::CheckFailed(__FILE__, __LINE__, "unreachable", \
                                         ::std::string(msg))

#endif  // DATACON_COMMON_CHECK_H_
