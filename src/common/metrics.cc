#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <ctime>

#include "common/string_util.h"
#include "common/trace.h"

namespace datacon {

std::string FormatDurationNs(int64_t ns) {
  char buf[32];
  if (ns < 0) return "-";
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " ns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f us",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

std::string FormatWallTimeUs(int64_t us) {
  if (us <= 0) return "-";
  std::time_t seconds = static_cast<std::time_t>(us / 1'000'000);
  int64_t micros = us % 1'000'000;
  std::tm tm{};
  gmtime_r(&seconds, &tm);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%06dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(micros));
  return buf;
}

void CounterSet::Add(std::string_view name, int64_t delta) {
  for (auto& [key, value] : entries_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  entries_.emplace_back(std::string(name), delta);
}

int64_t CounterSet::Get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) return value;
  }
  return 0;
}

ProfileNode* ProfileNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<ProfileNode>(std::move(name)));
  return children_.back().get();
}

const ProfileNode* ProfileNode::Find(std::string_view name) const {
  if (name_ == name) return this;
  for (const auto& child : children_) {
    if (const ProfileNode* hit = child->Find(name)) return hit;
  }
  return nullptr;
}

namespace {

void AppendCounterObject(std::string* out, const CounterSet& set) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : set.entries()) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonEscaped(out, key);
    *out += ':';
    *out += std::to_string(value);
  }
  out->push_back('}');
}

}  // namespace

void ProfileNode::AppendText(std::string* out, int depth) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += name_;
  for (const auto& [key, value] : counters_.entries()) {
    *out += "  " + key + "=" + std::to_string(value);
  }
  for (const auto& [key, value] : exec_.entries()) {
    *out += "  ~" + key + "=" + std::to_string(value);
  }
  if (elapsed_ns_ >= 0) *out += "  (" + FormatDurationNs(elapsed_ns_) + ")";
  out->push_back('\n');
  for (const auto& child : children_) child->AppendText(out, depth + 1);
}

std::string ProfileNode::ToText() const {
  std::string out;
  AppendText(&out, 0);
  return out;
}

void ProfileNode::AppendJson(std::string* out, bool deterministic_only) const {
  *out += "{\"name\":";
  AppendJsonEscaped(out, name_);
  if (!deterministic_only) {
    *out += ",\"elapsed_ns\":" + std::to_string(elapsed_ns_);
  }
  *out += ",\"counters\":";
  AppendCounterObject(out, counters_);
  if (!deterministic_only) {
    *out += ",\"exec\":";
    AppendCounterObject(out, exec_);
  }
  *out += ",\"children\":[";
  bool first = true;
  for (const auto& child : children_) {
    if (!first) out->push_back(',');
    first = false;
    child->AppendJson(out, deterministic_only);
  }
  *out += "]}";
}

std::string ProfileNode::ToJson() const {
  std::string out;
  AppendJson(&out, /*deterministic_only=*/false);
  return out;
}

std::string ProfileNode::CounterDigest() const {
  std::string out;
  AppendJson(&out, /*deterministic_only=*/true);
  return out;
}

size_t Histogram::BucketIndex(int64_t value) {
  if (value <= 0) return 0;
  return static_cast<size_t>(
      std::bit_width(static_cast<uint64_t>(value)));
}

void Histogram::Record(int64_t value) {
  if (value < 0) value = 0;
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  int64_t observed = max_.load(std::memory_order_relaxed);
  while (value > observed &&
         !max_.compare_exchange_weak(observed, value,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::MergeFrom(const Histogram& other) {
  for (size_t i = 0; i < kBuckets; ++i) {
    int64_t n = other.buckets_[i].load(std::memory_order_relaxed);
    if (n != 0) buckets_[i].fetch_add(n, std::memory_order_relaxed);
  }
  count_.fetch_add(other.count(), std::memory_order_relaxed);
  sum_.fetch_add(other.sum(), std::memory_order_relaxed);
  int64_t theirs = other.max();
  int64_t observed = max_.load(std::memory_order_relaxed);
  while (theirs > observed &&
         !max_.compare_exchange_weak(observed, theirs,
                                     std::memory_order_relaxed)) {
  }
}

void Histogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

int64_t Histogram::Percentile(double q) const {
  int64_t total = count();
  if (total <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  int64_t rank = static_cast<int64_t>(std::ceil(q * static_cast<double>(total)));
  if (rank < 1) rank = 1;
  // Snapshot the buckets once; clamp the rank to the mass they actually
  // hold. A torn MergeFrom from a live source can leave count() ahead of
  // the bucket totals, and an unclamped rank would then scan past the last
  // occupied bucket and fall through to a max() the buckets never saw.
  std::array<int64_t, kBuckets> snapshot;
  int64_t mass = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    mass += snapshot[i];
  }
  if (mass <= 0) return 0;
  if (rank > mass) rank = mass;
  int64_t seen = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    seen += snapshot[i];
    if (seen >= rank) {
      // Upper bound of bucket i: 0 for bucket 0, else 2^i - 1.
      int64_t upper =
          i == 0 ? 0 : static_cast<int64_t>((uint64_t{1} << i) - 1);
      return std::min(upper, max());
    }
  }
  return max();
}

std::string Histogram::ToJson() const {
  std::string out = "{\"count\":" + std::to_string(count()) +
                    ",\"sum\":" + std::to_string(sum()) +
                    ",\"max\":" + std::to_string(max()) +
                    ",\"p50\":" + std::to_string(Percentile(0.50)) +
                    ",\"p95\":" + std::to_string(Percentile(0.95)) +
                    ",\"p99\":" + std::to_string(Percentile(0.99)) + "}";
  return out;
}

std::string Histogram::ToText() const {
  return "count=" + std::to_string(count()) + " sum=" + std::to_string(sum()) +
         " p50=" + std::to_string(Percentile(0.50)) +
         " p95=" + std::to_string(Percentile(0.95)) +
         " p99=" + std::to_string(Percentile(0.99)) +
         " max=" + std::to_string(max());
}

void Histogram::AppendPrometheus(std::string* out,
                                 const std::string& name) const {
  std::array<int64_t, kBuckets> snapshot;
  size_t highest = 0;
  int64_t mass = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    snapshot[i] = buckets_[i].load(std::memory_order_relaxed);
    mass += snapshot[i];
    if (snapshot[i] != 0) highest = i;
  }
  int64_t total = std::max(mass, count());
  int64_t cumulative = 0;
  for (size_t i = 0; i <= highest; ++i) {
    cumulative += snapshot[i];
    int64_t upper =
        i == 0 ? 0 : static_cast<int64_t>((uint64_t{1} << i) - 1);
    *out += name + "_bucket{le=\"" + std::to_string(upper) + "\"} " +
            std::to_string(cumulative) + "\n";
  }
  *out += name + "_bucket{le=\"+Inf\"} " + std::to_string(total) + "\n";
  *out += name + "_sum " + std::to_string(sum()) + "\n";
  *out += name + "_count " + std::to_string(total) + "\n";
}

MetricsRegistry& ProcessMetrics() {
  // Leaked for the same reason as TraceRecorder::Global: late threads must
  // always find it alive.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, histogram] : entries_) {
    if (key == name) return histogram.get();
  }
  entries_.emplace_back(std::string(name), std::make_unique<Histogram>());
  return entries_.back().second.get();
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, counter] : counters_) {
    if (key == name) return counter.get();
  }
  counters_.emplace_back(std::string(name), std::make_unique<Counter>());
  return counters_.back().second.get();
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, histogram] : entries_) histogram->Reset();
  for (auto& [key, counter] : counters_) counter->Reset();
}

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  // Snapshot `other`'s name→pointer table under its lock, then merge with
  // both locks released (GetHistogram/GetCounter re-lock this registry one
  // name at a time). Holding both locks at once would deadlock two threads
  // merging in opposite directions. The source pointers stay valid without
  // the lock — registry entries are never removed.
  std::vector<std::pair<std::string, const Histogram*>> histograms;
  std::vector<std::pair<std::string, int64_t>> counters;
  {
    std::lock_guard<std::mutex> lock(other.mu_);
    histograms.reserve(other.entries_.size());
    for (const auto& [key, histogram] : other.entries_) {
      histograms.emplace_back(key, histogram.get());
    }
    counters.reserve(other.counters_.size());
    for (const auto& [key, counter] : other.counters_) {
      counters.emplace_back(key, counter->value());
    }
  }
  for (const auto& [key, histogram] : histograms) {
    GetHistogram(key)->MergeFrom(*histogram);
  }
  for (const auto& [key, value] : counters) {
    GetCounter(key)->Add(value);
  }
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"histograms\":{";
  bool first = true;
  for (const auto& [key, histogram] : entries_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonEscaped(&out, key);
    out.push_back(':');
    out += histogram->ToJson();
  }
  out += "},\"counters\":{";
  first = true;
  for (const auto& [key, counter] : counters_) {
    if (!first) out.push_back(',');
    first = false;
    AppendJsonEscaped(&out, key);
    out.push_back(':');
    out += std::to_string(counter->value());
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, histogram] : entries_) {
    out += key + "  " + histogram->ToText();
    if (key.size() > 3 && key.compare(key.size() - 3, 3, "_ns") == 0 &&
        histogram->count() > 0) {
      out += "  [p50 " + FormatDurationNs(histogram->Percentile(0.50)) +
             ", p95 " + FormatDurationNs(histogram->Percentile(0.95)) +
             ", p99 " + FormatDurationNs(histogram->Percentile(0.99)) + "]";
    }
    out.push_back('\n');
  }
  for (const auto& [key, counter] : counters_) {
    out += key + "  count=" + std::to_string(counter->value()) + "\n";
  }
  if (out.empty()) out = "(no metrics recorded)\n";
  return out;
}

namespace {

/// `datacon_` + the metric name with every character outside
/// [a-zA-Z0-9_] (dots, mostly) mapped to '_'.
std::string PrometheusName(const std::string& key) {
  std::string out = "datacon_";
  for (char c : key) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::ToPrometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [key, histogram] : entries_) {
    std::string name = PrometheusName(key);
    out += "# TYPE " + name + " histogram\n";
    histogram->AppendPrometheus(&out, name);
  }
  for (const auto& [key, counter] : counters_) {
    // Classic exposition format: the _total suffix is part of the metric
    // name, so the TYPE header must carry it too.
    std::string name = PrometheusName(key) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(counter->value()) + "\n";
  }
  return out;
}

void SlowQueryLog::set_threshold_ns(int64_t ns) {
  std::lock_guard<std::mutex> lock(mu_);
  threshold_ns_ = ns < 0 ? 0 : ns;
}

int64_t SlowQueryLog::threshold_ns() const {
  std::lock_guard<std::mutex> lock(mu_);
  return threshold_ns_;
}

bool SlowQueryLog::WouldRecord(int64_t elapsed_ns) const {
  if (capacity_ == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  if (elapsed_ns < threshold_ns_) return false;
  return entries_.size() < capacity_ ||
         elapsed_ns > entries_.back().elapsed_ns;
}

void SlowQueryLog::Record(std::string statement, int64_t elapsed_ns,
                          std::string digest) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (elapsed_ns < threshold_ns_) return;
  if (entries_.size() == capacity_ &&
      elapsed_ns <= entries_.back().elapsed_ns) {
    return;  // faster than (or tied with) everything retained
  }
  Entry entry;
  entry.statement = std::move(statement);
  entry.elapsed_ns = elapsed_ns;
  entry.digest = std::move(digest);
  entry.sequence = next_sequence_++;
  // Capture both clocks at admission: the steady stamp shares the trace
  // recorder's epoch (correlates entries with --trace-out spans), the wall
  // stamp places them in calendar time.
  entry.steady_ns = TraceRecorder::Global().NowNs();
  entry.wall_us = std::chrono::duration_cast<std::chrono::microseconds>(
                      std::chrono::system_clock::now().time_since_epoch())
                      .count();
  // Insert before the first strictly-slower-or-equal run's end so order stays
  // slowest-first with older entries winning ties.
  auto pos = std::find_if(entries_.begin(), entries_.end(),
                          [&](const Entry& e) {
                            return e.elapsed_ns < entry.elapsed_ns;
                          });
  entries_.insert(pos, std::move(entry));
  if (entries_.size() > capacity_) entries_.pop_back();
}

std::vector<SlowQueryLog::Entry> SlowQueryLog::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_;
}

void SlowQueryLog::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

std::string SlowQueryLog::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (entries_.empty()) return "(slow-query log empty)\n";
  std::string out;
  int rank = 1;
  for (const Entry& entry : entries_) {
    out += "#";
    out += std::to_string(rank++);
    out += "  ";
    out += FormatDurationNs(entry.elapsed_ns);
    out += "  ";
    out += entry.statement;
    out += "\n";
    if (entry.wall_us > 0) {
      out += "    at ";
      out += FormatWallTimeUs(entry.wall_us);
      out += "  steady=";
      out += std::to_string(entry.steady_ns);
      out += "ns\n";
    }
    if (!entry.digest.empty()) {
      // Indent the digest block under its statement line.
      size_t start = 0;
      while (start < entry.digest.size()) {
        size_t end = entry.digest.find('\n', start);
        if (end == std::string::npos) end = entry.digest.size();
        out += "    ";
        out.append(entry.digest, start, end - start);
        out += "\n";
        start = end + 1;
      }
    }
  }
  return out;
}

}  // namespace datacon
