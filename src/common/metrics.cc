#include "common/metrics.h"

#include <cinttypes>
#include <cstdio>

namespace datacon {

std::string FormatDurationNs(int64_t ns) {
  char buf[32];
  if (ns < 0) return "-";
  if (ns < 10'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " ns", ns);
  } else if (ns < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f us",
                  static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f s", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void CounterSet::Add(std::string_view name, int64_t delta) {
  for (auto& [key, value] : entries_) {
    if (key == name) {
      value += delta;
      return;
    }
  }
  entries_.emplace_back(std::string(name), delta);
}

int64_t CounterSet::Get(std::string_view name) const {
  for (const auto& [key, value] : entries_) {
    if (key == name) return value;
  }
  return 0;
}

ProfileNode* ProfileNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<ProfileNode>(std::move(name)));
  return children_.back().get();
}

const ProfileNode* ProfileNode::Find(std::string_view name) const {
  if (name_ == name) return this;
  for (const auto& child : children_) {
    if (const ProfileNode* hit = child->Find(name)) return hit;
  }
  return nullptr;
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendCounterObject(std::string* out, const CounterSet& set) {
  out->push_back('{');
  bool first = true;
  for (const auto& [key, value] : set.entries()) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(out, key);
    *out += ':';
    *out += std::to_string(value);
  }
  out->push_back('}');
}

}  // namespace

void ProfileNode::AppendText(std::string* out, int depth) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  *out += name_;
  for (const auto& [key, value] : counters_.entries()) {
    *out += "  " + key + "=" + std::to_string(value);
  }
  for (const auto& [key, value] : exec_.entries()) {
    *out += "  ~" + key + "=" + std::to_string(value);
  }
  if (elapsed_ns_ >= 0) *out += "  (" + FormatDurationNs(elapsed_ns_) + ")";
  out->push_back('\n');
  for (const auto& child : children_) child->AppendText(out, depth + 1);
}

std::string ProfileNode::ToText() const {
  std::string out;
  AppendText(&out, 0);
  return out;
}

void ProfileNode::AppendJson(std::string* out, bool deterministic_only) const {
  *out += "{\"name\":";
  AppendJsonString(out, name_);
  if (!deterministic_only) {
    *out += ",\"elapsed_ns\":" + std::to_string(elapsed_ns_);
  }
  *out += ",\"counters\":";
  AppendCounterObject(out, counters_);
  if (!deterministic_only) {
    *out += ",\"exec\":";
    AppendCounterObject(out, exec_);
  }
  *out += ",\"children\":[";
  bool first = true;
  for (const auto& child : children_) {
    if (!first) out->push_back(',');
    first = false;
    child->AppendJson(out, deterministic_only);
  }
  *out += "]}";
}

std::string ProfileNode::ToJson() const {
  std::string out;
  AppendJson(&out, /*deterministic_only=*/false);
  return out;
}

std::string ProfileNode::CounterDigest() const {
  std::string out;
  AppendJson(&out, /*deterministic_only=*/true);
  return out;
}

}  // namespace datacon
