#include "common/thread_pool.h"

#include <string>
#include <utility>

#include "common/trace.h"

namespace datacon {

size_t ThreadPool::ResolveThreadCount(size_t requested) {
  size_t count = requested;
  if (count == 0) {
    size_t hw = std::thread::hardware_concurrency();
    count = hw == 0 ? 1 : hw;
  }
  return count < kMaxThreads ? count : kMaxThreads;
}

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = ResolveThreadCount(num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    // std::thread construction can fail with std::system_error when the
    // process hits its thread limit; an uncaught throw here would abort the
    // whole process. Keep whatever workers did start — Wait() drains the
    // queue on the calling thread, so even zero workers stays correct.
    try {
      workers_.emplace_back([this, i] { WorkerLoop(i); });
    } catch (const std::system_error&) {
      break;
    }
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  // Help drain the queue instead of idling: guarantees progress even when
  // worker startup was truncated by resource limits (possibly to zero).
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    task();
    lock.lock();
    --in_flight_;
  }
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop(size_t index) {
  // Name the tracing track up front; when tracing is off this only stashes
  // the name thread-locally (no registry work).
  TraceRecorder::Global().SetCurrentThreadName("worker-" +
                                               std::to_string(index + 1));
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(lock,
                           [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace datacon
