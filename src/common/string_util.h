#ifndef DATACON_COMMON_STRING_UTIL_H_
#define DATACON_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace datacon {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at each occurrence of `sep`; adjacent separators yield empty
/// elements. Splitting the empty string yields one empty element.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view text);

/// Upper-cases ASCII letters.
std::string AsciiToUpper(std::string_view text);

/// Appends `text` to `out` as a JSON string literal, including the
/// surrounding quotes: quotes and backslashes are backslash-escaped, the
/// common control characters use their short forms (\n, \r, \t, \b, \f),
/// and every other control character below 0x20 becomes \u00XX. Non-ASCII
/// bytes pass through untouched (the emitters produce UTF-8). The single
/// shared JSON escaper — per-file copies drifted and missed control
/// characters, so every JSON emitter must call this one.
void AppendJsonEscaped(std::string* out, std::string_view text);

/// Returns `text` as a quoted JSON string literal (AppendJsonEscaped into a
/// fresh string).
std::string JsonEscape(std::string_view text);

}  // namespace datacon

#endif  // DATACON_COMMON_STRING_UTIL_H_
