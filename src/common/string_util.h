#ifndef DATACON_COMMON_STRING_UTIL_H_
#define DATACON_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace datacon {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` at each occurrence of `sep`; adjacent separators yield empty
/// elements. Splitting the empty string yields one empty element.
std::vector<std::string> Split(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

/// True iff `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string AsciiToLower(std::string_view text);

/// Upper-cases ASCII letters.
std::string AsciiToUpper(std::string_view text);

}  // namespace datacon

#endif  // DATACON_COMMON_STRING_UTIL_H_
