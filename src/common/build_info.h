#ifndef DATACON_COMMON_BUILD_INFO_H_
#define DATACON_COMMON_BUILD_INFO_H_

#include <string>

namespace datacon {

/// Project version. The project() call carries no VERSION; this string is
/// the single source of truth, bumped by hand with the release surface.
/// Every user-facing tool (datacon-lint, the DBPL REPL) reports this same
/// string so `--version` output cannot drift between binaries.
inline constexpr const char kDataconVersion[] = "0.5.0";

/// "Mmm dd yyyy hh:mm:ss, <compiler> <maj>.<min>, release|debug" — the
/// build-provenance suffix shared by tool banners and --version output.
/// Header-only on purpose: __DATE__/__TIME__ must expand in the binary
/// being built, not in a library compiled earlier.
inline std::string BuildInfoString() {
  std::string out = __DATE__;
  out += " ";
  out += __TIME__;
#if defined(__clang__)
  out += ", clang " + std::to_string(__clang_major__) + "." +
         std::to_string(__clang_minor__);
#elif defined(__GNUC__)
  out += ", gcc " + std::to_string(__GNUC__) + "." +
         std::to_string(__GNUC_MINOR__);
#endif
#if defined(NDEBUG)
  out += ", release";
#else
  out += ", debug";
#endif
  return out;
}

}  // namespace datacon

#endif  // DATACON_COMMON_BUILD_INFO_H_
