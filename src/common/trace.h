#ifndef DATACON_COMMON_TRACE_H_
#define DATACON_COMMON_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace datacon {

/// One key/value argument attached to a trace event. Values are either
/// integers or strings (the two shapes the instrumentation needs); the
/// Chrome serialization emits integers unquoted.
struct TraceArg {
  std::string key;
  bool is_int = true;
  int64_t int_value = 0;
  std::string str_value;

  static TraceArg Int(std::string key, int64_t value) {
    TraceArg a;
    a.key = std::move(key);
    a.int_value = value;
    return a;
  }
  static TraceArg Str(std::string key, std::string value) {
    TraceArg a;
    a.key = std::move(key);
    a.is_int = false;
    a.str_value = std::move(value);
    return a;
  }
};

/// One recorded event. Spans are recorded as *complete* events (Chrome
/// phase "X": a begin timestamp plus a duration) rather than separate B/E
/// pairs — RAII emits exactly one event per span, so the stream is balanced
/// by construction even on error paths, and the event count halves.
/// Instants are phase "i".
struct TraceEvent {
  enum class Phase { kComplete, kInstant };
  Phase phase = Phase::kComplete;
  std::string name;
  /// Steady-clock nanoseconds since the recorder's epoch.
  int64_t start_ns = 0;
  /// Span duration (kComplete only; 0 for instants).
  int64_t dur_ns = 0;
  /// Recorder-assigned small thread id (stable per OS thread).
  uint32_t tid = 0;
  std::vector<TraceArg> args;
};

/// A process-wide span/event recorder for end-to-end query tracing.
///
/// Design goals, in order:
///  1. Tracing OFF must be near-zero cost: the only work on an instrumented
///     path is one relaxed atomic load (`Enabled()`); no allocation, no
///     locking, no clock read.
///  2. Tracing ON must be lock-cheap: every thread appends to its own
///     buffer, guarded by the buffer's own mutex — uncontended on the hot
///     path (only a concurrent Snapshot/Clear ever takes it from another
///     thread). The recorder-wide mutex is taken only at thread
///     registration, thread retirement, and flush/serialization.
///  3. Instrumentation must never feed logical counters: spans carry wall
///     times and scheduling detail, EvalStats stays bit-identical with
///     tracing ON or OFF at any thread count (pinned by tests).
///
/// Buffers of exited threads are retired into a shared spill vector (their
/// events survive for serialization, the buffer itself is reclaimed), so
/// transient worker pools do not grow the registry without bound. The
/// global instance is intentionally leaked — worker thread_local
/// destructors may run arbitrarily late during shutdown and must always
/// find it alive.
class TraceRecorder {
 public:
  /// The process-wide recorder (never destroyed).
  static TraceRecorder& Global();

  /// The instrumentation guard: one relaxed atomic load.
  static bool Enabled() { return enabled_.load(std::memory_order_relaxed); }

  /// Turns recording on/off. Enabling does not clear previous events —
  /// callers that want a fresh trace (e.g. --trace-out) Clear() first.
  void Enable(bool on);

  /// Drops every recorded event (buffers stay registered; thread ids and
  /// names are preserved).
  void Clear();

  /// Nanoseconds since the recorder epoch (steady clock).
  int64_t NowNs() const;

  /// Names the calling thread's track ("main", "worker-3"). Cheap when the
  /// thread has no buffer yet: the name is stashed thread-locally and
  /// applied at registration, so disabled tracing never touches the
  /// registry.
  void SetCurrentThreadName(std::string name);

  /// Appends a complete span event for the calling thread. No-op when
  /// disabled (events begun before a mid-span Disable are dropped).
  void RecordComplete(std::string name, int64_t start_ns, int64_t dur_ns,
                      std::vector<TraceArg> args);

  /// Appends an instant event for the calling thread. No-op when disabled.
  void RecordInstant(std::string name, std::vector<TraceArg> args);

  /// Every recorded event, sorted by (tid, start time), plus the id→name
  /// thread table. Safe to call while other threads record.
  struct SnapshotResult {
    std::vector<TraceEvent> events;
    std::vector<std::pair<uint32_t, std::string>> threads;
  };
  SnapshotResult Snapshot() const;

  /// Chrome trace-event JSON ({"traceEvents":[...]}): phase-M thread-name
  /// metadata, phase-X spans with pid/tid/ts/dur in microseconds, phase-i
  /// instants. Loads directly in chrome://tracing and Perfetto.
  std::string ToChromeJson() const;

  /// Human-readable per-thread span tree (nesting recovered from timestamp
  /// containment), durations formatted, args appended as k=v.
  std::string ToText() const;

  /// Total events currently recorded (live buffers + retired spill).
  size_t EventCount() const;

 private:
  struct ThreadBuffer {
    std::mutex mu;
    /// Assigned once at registration, read without the lock afterwards.
    uint32_t tid = 0;
    std::string name DATACON_GUARDED_BY(mu);
    std::vector<TraceEvent> events DATACON_GUARDED_BY(mu);
  };

  TraceRecorder();

  /// The calling thread's buffer, registering it on first use. The returned
  /// pointer stays valid for the recorder's (infinite) lifetime.
  ThreadBuffer* CurrentBuffer();

  /// Thread-exit hook: moves the buffer's events into retired_events_ and
  /// releases the buffer slot.
  void RetireBuffer(ThreadBuffer* buffer);

  static std::atomic<bool> enabled_;

  mutable std::mutex mu_;  // registry: buffers_, retired_*, thread names
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_
      DATACON_GUARDED_BY(mu_);
  std::vector<TraceEvent> retired_events_ DATACON_GUARDED_BY(mu_);
  std::vector<std::pair<uint32_t, std::string>> retired_threads_
      DATACON_GUARDED_BY(mu_);
  std::atomic<uint32_t> next_tid_{1};
  std::chrono::steady_clock::time_point epoch_;

  friend struct TraceThreadState;
};

/// RAII span: captures the start time at construction when tracing is
/// enabled, emits one complete event at destruction. Constant-name
/// construction (`TraceSpan span("round");`) does no work when tracing is
/// off; dynamic detail goes through AddArg guarded by active():
///
///   TraceSpan span("round");
///   if (span.active()) span.AddArg("delta", delta_size);
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name)
      : active_(TraceRecorder::Enabled()) {
    if (active_) {
      name_ = name;
      start_ns_ = TraceRecorder::Global().NowNs();
    }
  }
  ~TraceSpan() {
    if (!active_) return;
    TraceRecorder& rec = TraceRecorder::Global();
    rec.RecordComplete(std::move(name_), start_ns_,
                       rec.NowNs() - start_ns_, std::move(args_));
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// True when the span will be recorded — guard any argument computation
  /// that allocates.
  bool active() const { return active_; }

  void AddArg(std::string key, int64_t value) {
    if (active_) args_.push_back(TraceArg::Int(std::move(key), value));
  }
  void AddArg(std::string key, std::string value) {
    if (active_) {
      args_.push_back(TraceArg::Str(std::move(key), std::move(value)));
    }
  }

 private:
  bool active_;
  std::string name_;
  int64_t start_ns_ = 0;
  std::vector<TraceArg> args_;
};

/// Records an instant event (no-op when tracing is off).
inline void TraceInstant(std::string name, std::vector<TraceArg> args = {}) {
  if (TraceRecorder::Enabled()) {
    TraceRecorder::Global().RecordInstant(std::move(name), std::move(args));
  }
}

}  // namespace datacon

#endif  // DATACON_COMMON_TRACE_H_
