#ifndef DATACON_COMMON_HASH_H_
#define DATACON_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace datacon {

/// Mixes `value` into a running hash `seed` (boost::hash_combine recipe,
/// 64-bit variant). Used to hash tuples and composite keys.
inline void HashCombine(size_t& seed, size_t value) {
  seed ^= value + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
}

/// Hashes `v` with std::hash and mixes it into `seed`.
template <typename T>
void HashCombineValue(size_t& seed, const T& v) {
  HashCombine(seed, std::hash<T>{}(v));
}

}  // namespace datacon

#endif  // DATACON_COMMON_HASH_H_
