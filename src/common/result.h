#ifndef DATACON_COMMON_RESULT_H_
#define DATACON_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace datacon {

/// Value-or-error carrier: either holds a `T` or a non-OK `Status`.
///
/// `Result` is the return type of every fallible operation that produces a
/// value. Callers must check `ok()` before calling `value()`; accessing the
/// value of a failed result aborts (it is a programming error, consistent
/// with the no-exceptions error model).
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  /// Constructs a failed result from a non-OK `status`.
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    DATACON_CHECK(!status_.ok(), "Result constructed from OK status");
  }

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// The held value; requires `ok()`.
  const T& value() const& {
    DATACON_CHECK(ok(), status_.ToString());
    return *value_;
  }
  T& value() & {
    DATACON_CHECK(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    DATACON_CHECK(ok(), status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace datacon

/// Evaluates `expr` (a Result<T>), propagating failure; on success binds the
/// moved value to `lhs`.
#define DATACON_ASSIGN_OR_RETURN(lhs, expr)            \
  DATACON_ASSIGN_OR_RETURN_IMPL_(                      \
      DATACON_CONCAT_(_datacon_result_, __LINE__), lhs, expr)

#define DATACON_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                   \
  if (!tmp.ok()) return tmp.status();                  \
  lhs = std::move(tmp).value()

#define DATACON_CONCAT_(a, b) DATACON_CONCAT_IMPL_(a, b)
#define DATACON_CONCAT_IMPL_(a, b) a##b

#endif  // DATACON_COMMON_RESULT_H_
