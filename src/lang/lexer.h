#ifndef DATACON_LANG_LEXER_H_
#define DATACON_LANG_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace datacon {

/// Token classes of the DBPL-flavoured surface language.
enum class TokenKind {
  kIdent,       // Infront, ahead, r
  kKeyword,     // TYPE, EACH, SOME, ... (text holds the keyword)
  kInt,         // 42
  kString,      // "table"
  kLParen,      // (
  kRParen,      // )
  kLBracket,    // [
  kRBracket,    // ]
  kLBrace,      // {
  kRBrace,      // }
  kLess,        // <
  kGreater,     // >
  kLessEq,      // <=
  kGreaterEq,   // >=
  kEq,          // =
  kHash,        // #   (DBPL inequality)
  kComma,       // ,
  kSemicolon,   // ;
  kColon,       // :
  kDot,         // .
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kAssign,      // :=
  kEof,
};

/// One lexical token with its source position (1-based line/column).
struct Token {
  TokenKind kind;
  std::string text;
  int64_t int_value = 0;
  int line = 1;
  int column = 1;

  /// True for a keyword token spelling exactly `kw`.
  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kKeyword && text == kw;
  }
};

/// True iff `word` is one of the reserved keywords (TYPE, VAR, RELATION,
/// KEY, OF, RECORD, END, SELECTOR, CONSTRUCTOR, FOR, BEGIN, EACH, IN, SOME,
/// ALL, AND, OR, NOT, TRUE, FALSE, INTEGER, CARDINAL, STRING, BOOLEAN, DIV,
/// MOD, QUERY, INSERT, INTO, EXPLAIN, PRAGMA, ANALYZE, CHECK, SCRIPT).
bool IsKeyword(std::string_view word);

/// Tokenizes `source`. Comments run `(*` ... `*)` and may nest. The final
/// token is always kEof. Fails with kParseError on malformed input
/// (unterminated string or comment, stray characters).
Result<std::vector<Token>> Lex(std::string_view source);

}  // namespace datacon

#endif  // DATACON_LANG_LEXER_H_
