#ifndef DATACON_LANG_INTERPRETER_H_
#define DATACON_LANG_INTERPRETER_H_

#include <string>
#include <string_view>
#include <vector>

#include "analysis/diagnostic.h"
#include "analysis/lint.h"
#include "common/status.h"
#include "core/database.h"
#include "lang/script.h"

namespace datacon {

/// Executes DBPL-flavoured source against a Database: declarations define
/// schema objects, INSERT/assignment statements modify relation variables,
/// QUERY/EXPLAIN statements append to `results()`. Symbols accumulate
/// across Execute calls, so the interpreter doubles as a REPL backend.
class Interpreter {
 public:
  /// One QUERY or EXPLAIN outcome, in statement order.
  struct QueryResult {
    /// The printed query (or the EXPLAIN text).
    std::string text;
    /// The result relation (empty for EXPLAIN).
    Relation relation;
  };

  /// `db` must outlive the interpreter.
  explicit Interpreter(Database* db) : db_(db) {}

  /// Parses and executes `source`. On error, statements before the failing
  /// one remain applied (the REPL contract).
  Status Execute(std::string_view source);

  const std::vector<QueryResult>& results() const { return results_; }
  void ClearResults() { results_.clear(); }

  /// Diagnostics produced since the last ClearDiagnostics: the findings of
  /// CHECK statements plus, under `PRAGMA LINT = ON`, the definition-time
  /// findings of every SELECTOR/CONSTRUCTOR statement. Statement order,
  /// spans sorted within one statement.
  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  void ClearDiagnostics() { diagnostics_.clear(); }

  /// True between `PRAGMA LINT = ON;` and `PRAGMA LINT = OFF;`.
  bool lint_enabled() const { return lint_enabled_; }

 private:
  Status Run(const ScriptStmt& stmt);
  Result<Relation> EvalRelationExpr(const RelationExpr& value);

  /// Appends `found` to the diagnostics channel; under PRAGMA LINT any
  /// error rejects the pending definition (kTypeError) — the catalog is
  /// only touched after this returns OK.
  Status ReportDefinitionLint(std::vector<Diagnostic> found);

  LintOptions lint_options() const;

  Database* db_;
  std::vector<QueryResult> results_;
  std::vector<Diagnostic> diagnostics_;
  bool lint_enabled_ = false;
  /// Scalar aliases live here; relation types/variables live in the catalog.
  std::map<std::string, ValueType> scalar_aliases_;
};

}  // namespace datacon

#endif  // DATACON_LANG_INTERPRETER_H_
