#ifndef DATACON_LANG_INTERPRETER_H_
#define DATACON_LANG_INTERPRETER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "lang/script.h"

namespace datacon {

/// Executes DBPL-flavoured source against a Database: declarations define
/// schema objects, INSERT/assignment statements modify relation variables,
/// QUERY/EXPLAIN statements append to `results()`. Symbols accumulate
/// across Execute calls, so the interpreter doubles as a REPL backend.
class Interpreter {
 public:
  /// One QUERY or EXPLAIN outcome, in statement order.
  struct QueryResult {
    /// The printed query (or the EXPLAIN text).
    std::string text;
    /// The result relation (empty for EXPLAIN).
    Relation relation;
  };

  /// `db` must outlive the interpreter.
  explicit Interpreter(Database* db) : db_(db) {}

  /// Parses and executes `source`. On error, statements before the failing
  /// one remain applied (the REPL contract).
  Status Execute(std::string_view source);

  const std::vector<QueryResult>& results() const { return results_; }
  void ClearResults() { results_.clear(); }

 private:
  Status Run(const ScriptStmt& stmt);
  Result<Relation> EvalRelationExpr(const RelationExpr& value);

  Database* db_;
  std::vector<QueryResult> results_;
  /// Scalar aliases live here; relation types/variables live in the catalog.
  std::map<std::string, ValueType> scalar_aliases_;
};

}  // namespace datacon

#endif  // DATACON_LANG_INTERPRETER_H_
