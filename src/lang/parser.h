#ifndef DATACON_LANG_PARSER_H_
#define DATACON_LANG_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "lang/script.h"

namespace datacon {

/// Recursive-descent parser for the DBPL-flavoured surface language (the
/// grammar is documented in DESIGN.md §4.5). The programs of the paper —
/// `ahead`, `ahead_2`, `hidden_by`, the mutually recursive `ahead`/`above`,
/// `nonsense`, `strange` — parse verbatim modulo record-syntax details.
///
/// `seed` supplies names declared by earlier fragments (REPL use); within a
/// single source string, declarations are visible to later statements.
Result<Script> ParseScript(std::string_view source,
                           const SymbolSeed* seed = nullptr);

}  // namespace datacon

#endif  // DATACON_LANG_PARSER_H_
