#include "lang/lexer.h"

#include <cctype>
#include <charconv>
#include <set>

namespace datacon {

bool IsKeyword(std::string_view word) {
  static const std::set<std::string_view> kKeywords = {
      "TYPE",   "VAR",      "RELATION",    "KEY",   "OF",      "RECORD",
      "END",    "SELECTOR", "CONSTRUCTOR", "FOR",   "BEGIN",   "EACH",
      "IN",     "SOME",     "ALL",         "AND",   "OR",      "NOT",
      "TRUE",   "FALSE",    "INTEGER",     "CARDINAL", "STRING", "BOOLEAN",
      "DIV",    "MOD",      "QUERY",       "INSERT", "INTO",   "EXPLAIN",
      "PRAGMA", "ANALYZE",  "CHECK",       "SCRIPT", "SHOW",
      "CONSTRAINT", "DENY", "FOREIGN",     "REFERENCES",
  };
  return kKeywords.count(word) > 0;
}

namespace {

class Lexer {
 public:
  explicit Lexer(std::string_view source) : source_(source) {}

  Result<std::vector<Token>> Run() {
    std::vector<Token> tokens;
    while (true) {
      DATACON_RETURN_IF_ERROR(SkipWhitespaceAndComments());
      if (AtEnd()) {
        tokens.push_back(Make(TokenKind::kEof, ""));
        return tokens;
      }
      DATACON_ASSIGN_OR_RETURN(Token token, Next());
      tokens.push_back(std::move(token));
    }
  }

 private:
  bool AtEnd() const { return pos_ >= source_.size(); }
  char Peek() const { return source_[pos_]; }
  char PeekAt(size_t offset) const {
    return pos_ + offset < source_.size() ? source_[pos_ + offset] : '\0';
  }
  char Advance() {
    char c = source_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  Token Make(TokenKind kind, std::string text) const {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = token_line_;
    t.column = token_column_;
    return t;
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at line " + std::to_string(line_) +
                              ", column " + std::to_string(column_));
  }

  Status SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      if (c == '(' && PeekAt(1) == '*') {
        Advance();
        Advance();
        int depth = 1;
        while (depth > 0) {
          if (AtEnd()) return Error("unterminated comment");
          if (Peek() == '(' && PeekAt(1) == '*') {
            Advance();
            Advance();
            ++depth;
          } else if (Peek() == '*' && PeekAt(1) == ')') {
            Advance();
            Advance();
            --depth;
          } else {
            Advance();
          }
        }
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Result<Token> Next() {
    token_line_ = line_;
    token_column_ = column_;
    char c = Peek();

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::string word;
      while (!AtEnd() && (std::isalnum(static_cast<unsigned char>(Peek())) ||
                          Peek() == '_')) {
        word.push_back(Advance());
      }
      if (IsKeyword(word)) return Make(TokenKind::kKeyword, std::move(word));
      return Make(TokenKind::kIdent, std::move(word));
    }

    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::string digits;
      while (!AtEnd() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        digits.push_back(Advance());
      }
      int64_t value = 0;
      auto [ptr, ec] =
          std::from_chars(digits.data(), digits.data() + digits.size(), value);
      if (ec != std::errc() || ptr != digits.data() + digits.size()) {
        return Error("integer literal '" + digits + "' out of range");
      }
      Token t = Make(TokenKind::kInt, digits);
      t.int_value = value;
      return t;
    }

    if (c == '"') {
      Advance();
      std::string text;
      while (true) {
        if (AtEnd()) return Error("unterminated string literal");
        char next = Advance();
        if (next == '"') break;
        if (next == '\n') return Error("newline in string literal");
        text.push_back(next);
      }
      return Make(TokenKind::kString, std::move(text));
    }

    Advance();
    switch (c) {
      case '(':
        return Make(TokenKind::kLParen, "(");
      case ')':
        return Make(TokenKind::kRParen, ")");
      case '[':
        return Make(TokenKind::kLBracket, "[");
      case ']':
        return Make(TokenKind::kRBracket, "]");
      case '{':
        return Make(TokenKind::kLBrace, "{");
      case '}':
        return Make(TokenKind::kRBrace, "}");
      case '<':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          return Make(TokenKind::kLessEq, "<=");
        }
        return Make(TokenKind::kLess, "<");
      case '>':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          return Make(TokenKind::kGreaterEq, ">=");
        }
        return Make(TokenKind::kGreater, ">");
      case '=':
        return Make(TokenKind::kEq, "=");
      case '#':
        return Make(TokenKind::kHash, "#");
      case ',':
        return Make(TokenKind::kComma, ",");
      case ';':
        return Make(TokenKind::kSemicolon, ";");
      case ':':
        if (!AtEnd() && Peek() == '=') {
          Advance();
          return Make(TokenKind::kAssign, ":=");
        }
        return Make(TokenKind::kColon, ":");
      case '.':
        return Make(TokenKind::kDot, ".");
      case '+':
        return Make(TokenKind::kPlus, "+");
      case '-':
        return Make(TokenKind::kMinus, "-");
      case '*':
        return Make(TokenKind::kStar, "*");
      default:
        return Error(std::string("unexpected character '") + c + "'");
    }
  }

  std::string_view source_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  int token_line_ = 1;
  int token_column_ = 1;
};

}  // namespace

Result<std::vector<Token>> Lex(std::string_view source) {
  return Lexer(source).Run();
}

}  // namespace datacon
