#ifndef DATACON_LANG_SCRIPT_H_
#define DATACON_LANG_SCRIPT_H_

#include <map>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/range.h"
#include "ast/source_loc.h"
#include "storage/tuple.h"
#include "types/schema.h"

namespace datacon {

/// A relational expression in statement position: either a range
/// (`Infront {ahead}`) or a full calculus expression (`{EACH r IN ...}`).
/// Exactly one member is set.
struct RelationExpr {
  RangePtr range;
  CalcExprPtr expr;
};

/// `TYPE name = RELATION ... OF RECORD ... END;` or a scalar alias
/// `TYPE parttype = STRING;`.
struct TypeDeclStmt {
  std::string name;
  bool is_relation = false;
  Schema schema;                        // when is_relation
  ValueType scalar = ValueType::kInt;   // otherwise
};

/// `VAR name: reltype;`
struct VarDeclStmt {
  std::string name;
  std::string type_name;
};

struct SelectorStmt {
  SelectorDeclPtr decl;
};

struct ConstructorStmt {
  ConstructorDeclPtr decl;
};

/// `CONSTRAINT name DENY EACH v IN R, ...: pred;` (or the KEY/FOREIGN
/// sugar) — an integrity constraint, audited and compiled at define time
/// and enforced on every subsequent mutation while PRAGMA CONSTRAINTS is
/// ON.
struct ConstraintStmt {
  ConstraintDeclPtr decl;
};

/// `INSERT INTO Infront <"vase", "table">, <"table", "chair">;`
struct InsertStmt {
  std::string relation;
  std::vector<Tuple> tuples;
  SourceLoc loc;
};

/// `Ahead := Infront {ahead};` or `Infront [refint] := {...};`
struct AssignStmt {
  std::string relation;
  std::optional<std::string> selector;
  std::vector<Value> selector_args;
  RelationExpr value;
  SourceLoc loc;
};

/// `QUERY Infront {ahead};`
struct QueryStmt {
  RelationExpr value;
  SourceLoc loc;
};

/// `EXPLAIN Infront {ahead};` — or, with `analyze`, `EXPLAIN ANALYZE
/// Infront {ahead};`, which also evaluates the range and renders the
/// collected profile tree next to the plan.
struct ExplainStmt {
  RangePtr range;
  bool analyze = false;
  SourceLoc loc;
};

/// `CHECK ahead;` runs the lint pipeline over one defined selector or
/// constructor; `CHECK SCRIPT;` lints every declaration made so far. Both
/// report structured diagnostics without evaluating anything.
struct CheckStmt {
  /// Absent for `CHECK SCRIPT;`.
  std::optional<std::string> name;
  SourceLoc loc;
};

/// `PRAGMA THREADS = 4;` — engine knobs settable from a script. `THREADS`
/// sets worker threads for branch execution (0 = use the hardware's
/// concurrency); `PROFILE = ON|OFF` (or 1|0) toggles profile collection for
/// subsequent queries; `LINT = ON|OFF` makes every subsequent DEFINE run
/// the lint pipeline (warnings reported, errors reject the definition).
struct PragmaStmt {
  std::string name;
  int64_t value = 0;
};

/// `SHOW METRICS;` prints this database's query histograms (latency,
/// fixpoint rounds, tuples derived, seed tuples pruned) with p50/p95/p99
/// plus the cache.*/constraints.* counters;
/// `SHOW SLOWLOG;` prints the database's slow-query log, slowest first;
/// `SHOW CONSTRAINTS;` prints every defined constraint with its compiled
/// per-update check plans; `SHOW SCHEMAS;` prints every constructor's
/// inferred result schema (analysis/typecheck.h); `SHOW EVENTS;` prints
/// the structured event log (`PRAGMA EVENTS = ON` to record).
struct ShowStmt {
  enum class What { kMetrics, kSlowLog, kConstraints, kSchemas, kEvents };
  What what = What::kMetrics;
  SourceLoc loc;
};

using ScriptStmt =
    std::variant<TypeDeclStmt, VarDeclStmt, SelectorStmt, ConstructorStmt,
                 ConstraintStmt, InsertStmt, AssignStmt, QueryStmt, ExplainStmt,
                 CheckStmt, PragmaStmt, ShowStmt>;

/// A parsed program: the statement sequence in source order.
struct Script {
  std::vector<ScriptStmt> stmts;
};

/// Names the parser must already know when a source fragment is parsed
/// incrementally (REPL use): scalar type aliases, declared relation type
/// names, and declared relation variables.
struct SymbolSeed {
  std::map<std::string, ValueType> scalar_types;
  std::set<std::string> relation_types;
  std::set<std::string> relation_names;
};

}  // namespace datacon

#endif  // DATACON_LANG_SCRIPT_H_
