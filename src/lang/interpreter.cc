#include "lang/interpreter.h"

#include "analysis/constraint.h"
#include "analysis/typecheck.h"
#include "ast/printer.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "lang/parser.h"

namespace datacon {

namespace {

/// Trace label per ScriptStmt alternative, in variant order.
constexpr const char* kStmtKinds[] = {
    "type decl", "var decl", "selector decl", "constructor decl",
    "constraint decl", "insert", "assign", "query",
    "explain",   "check",    "pragma", "show",
};
static_assert(std::variant_size_v<ScriptStmt> ==
                  sizeof(kStmtKinds) / sizeof(kStmtKinds[0]),
              "kStmtKinds must cover every ScriptStmt alternative");

}  // namespace

LintOptions Interpreter::lint_options() const {
  LintOptions options;
  options.allow_stratified_negation =
      db_->options().allow_stratified_negation;
  return options;
}

Status Interpreter::ReportDefinitionLint(std::vector<Diagnostic> found) {
  LintReport report;
  report.Append(std::move(found));
  report.SortBySpan();
  std::string errors;
  for (const Diagnostic& d : report.diagnostics) {
    diagnostics_.push_back(d);
    if (d.severity == Severity::kError) errors += d.ToString() + "\n";
  }
  if (!errors.empty()) {
    return Status::TypeError("rejected by lint:\n" + errors);
  }
  return Status::OK();
}

Status Interpreter::Execute(std::string_view source) {
  SymbolSeed seed;
  seed.scalar_types = scalar_aliases_;
  for (const auto& [name, schema] : db_->catalog().relation_types()) {
    (void)schema;
    seed.relation_types.insert(name);
  }
  for (const auto& [name, type] : db_->catalog().relation_type_names()) {
    (void)type;
    seed.relation_names.insert(name);
  }
  Result<Script> parsed = [&] {
    TraceSpan span("parse");
    if (span.active()) {
      span.AddArg("bytes", static_cast<int64_t>(source.size()));
    }
    return ParseScript(source, &seed);
  }();
  DATACON_ASSIGN_OR_RETURN(Script script, std::move(parsed));
  // Consecutive constructor declarations form one definition group, so
  // mutually recursive constructors (section 3.1) can reference each other
  // forward — exactly as the paper writes them down.
  for (size_t i = 0; i < script.stmts.size();) {
    if (std::holds_alternative<ConstructorStmt>(script.stmts[i])) {
      TraceSpan span("statement");
      if (span.active()) span.AddArg("kind", "constructor group");
      std::vector<ConstructorDeclPtr> group;
      while (i < script.stmts.size() &&
             std::holds_alternative<ConstructorStmt>(script.stmts[i])) {
        group.push_back(std::get<ConstructorStmt>(script.stmts[i]).decl);
        ++i;
      }
      if (lint_enabled_) {
        // Lint BEFORE defining: an error rejects the whole group and leaves
        // the catalog untouched.
        TraceSpan lint_span("lint");
        DATACON_RETURN_IF_ERROR(ReportDefinitionLint(
            LintConstructorGroup(group, db_->catalog(), lint_options())));
      }
      DATACON_RETURN_IF_ERROR(db_->DefineConstructorGroup(group));
      continue;
    }
    TraceSpan span("statement");
    if (span.active()) span.AddArg("kind", kStmtKinds[script.stmts[i].index()]);
    DATACON_RETURN_IF_ERROR(Run(script.stmts[i]));
    ++i;
  }
  return Status::OK();
}

Result<Relation> Interpreter::EvalRelationExpr(const RelationExpr& value) {
  if (value.range != nullptr) return db_->EvalRange(value.range);
  return db_->EvalQuery(value.expr);
}

Status Interpreter::Run(const ScriptStmt& stmt) {
  if (const auto* type_decl = std::get_if<TypeDeclStmt>(&stmt)) {
    if (type_decl->is_relation) {
      return db_->DefineRelationType(type_decl->name, type_decl->schema);
    }
    scalar_aliases_[type_decl->name] = type_decl->scalar;
    return Status::OK();
  }
  if (const auto* var_decl = std::get_if<VarDeclStmt>(&stmt)) {
    return db_->CreateRelation(var_decl->name, var_decl->type_name);
  }
  if (const auto* selector = std::get_if<SelectorStmt>(&stmt)) {
    if (lint_enabled_) {
      TraceSpan lint_span("lint");
      DATACON_RETURN_IF_ERROR(ReportDefinitionLint(
          LintSelector(*selector->decl, db_->catalog())));
    }
    return db_->DefineSelector(selector->decl);
  }
  if (const auto* ctor = std::get_if<ConstructorStmt>(&stmt)) {
    if (lint_enabled_) {
      TraceSpan lint_span("lint");
      DATACON_RETURN_IF_ERROR(ReportDefinitionLint(LintConstructorGroup(
          {ctor->decl}, db_->catalog(), lint_options())));
    }
    return db_->DefineConstructor(ctor->decl);
  }
  if (const auto* constraint = std::get_if<ConstraintStmt>(&stmt)) {
    if (lint_enabled_) {
      // Lint BEFORE defining, like selectors/constructors: warnings are
      // collected, errors reject and leave the catalog untouched.
      TraceSpan lint_span("lint");
      DATACON_RETURN_IF_ERROR(ReportDefinitionLint(
          LintConstraint(*constraint->decl, db_->catalog())));
    }
    return db_->DefineConstraint(constraint->decl);
  }
  if (const auto* insert = std::get_if<InsertStmt>(&stmt)) {
    // One statement, one atomic batch: a key or constraint violation rolls
    // every tuple of the statement back.
    return db_->InsertAll(insert->relation, insert->tuples);
  }
  if (const auto* assign = std::get_if<AssignStmt>(&stmt)) {
    DATACON_ASSIGN_OR_RETURN(Relation value, EvalRelationExpr(assign->value));
    if (assign->selector.has_value()) {
      return db_->AssignThroughSelector(assign->relation, *assign->selector,
                                        assign->selector_args, value);
    }
    return db_->Assign(assign->relation, value);
  }
  if (const auto* query = std::get_if<QueryStmt>(&stmt)) {
    DATACON_ASSIGN_OR_RETURN(Relation value, EvalRelationExpr(query->value));
    std::string text = query->value.range != nullptr
                           ? ToString(*query->value.range)
                           : ToString(*query->value.expr);
    results_.push_back(QueryResult{std::move(text), std::move(value)});
    return Status::OK();
  }
  if (const auto* explain = std::get_if<ExplainStmt>(&stmt)) {
    DATACON_ASSIGN_OR_RETURN(std::string text, db_->Explain(explain->range));
    if (!explain->analyze) {
      results_.push_back(QueryResult{std::move(text), Relation()});
      return Status::OK();
    }
    // EXPLAIN ANALYZE: actually evaluate the range with profiling forced on
    // (restoring the PRAGMA PROFILE setting afterwards) and render the
    // collected profile tree below the plan.
    bool saved_profile = db_->options().eval.profile;
    db_->options().eval.profile = true;
    Result<Relation> value = db_->EvalRange(explain->range);
    db_->options().eval.profile = saved_profile;
    DATACON_RETURN_IF_ERROR(value.status());
    const EvalStats& stats = db_->last_stats();
    text += "analyze:\n";
    if (db_->last_profile() != nullptr) {
      std::string profile_text = db_->last_profile()->ToText();
      size_t start = 0;
      while (start < profile_text.size()) {
        size_t end = profile_text.find('\n', start);
        if (end == std::string::npos) end = profile_text.size();
        text += "  " + profile_text.substr(start, end - start) + "\n";
        start = end + 1;
      }
    }
    text += "result: " + std::to_string(value->size()) + " tuple(s), " +
            std::to_string(stats.iterations) + " round(s), " +
            std::to_string(stats.tuples_considered) + " considered, " +
            std::to_string(stats.tuples_inserted) + " inserted";
    if (stats.specialized_branches > 0) {
      text += ", " + std::to_string(stats.specialized_branches) +
              " specialized branch(es), " +
              std::to_string(stats.seed_tuples_pruned) +
              " seed tuple(s) pruned";
    }
    text += "\n";
    // Only queries that actually consulted the materialization cache grow a
    // cache line (plain-range queries and PRAGMA CACHE = OFF stay as-is).
    MatCacheStats cache = db_->last_cache_stats();
    if (cache.hits + cache.misses + cache.delta_maintained > 0) {
      text += "cache: " + std::to_string(cache.hits) + " hit(s), " +
              std::to_string(cache.misses) + " miss(es)";
      if (cache.delta_maintained > 0) {
        text += ", " + std::to_string(cache.delta_maintained) +
                " delta-maintained";
      }
      text += "\n";
    }
    text += "resources: " + db_->last_usage().ToText() + "\n";
    results_.push_back(QueryResult{std::move(text), std::move(value).value()});
    return Status::OK();
  }
  if (const auto* check = std::get_if<CheckStmt>(&stmt)) {
    LintReport report;
    if (check->name.has_value()) {
      DATACON_ASSIGN_OR_RETURN(report, db_->Lint(*check->name));
    } else {
      report = db_->Lint();
    }
    for (const Diagnostic& d : report.diagnostics) diagnostics_.push_back(d);
    std::string header =
        check->name.has_value() ? "CHECK " + *check->name : "CHECK SCRIPT";
    std::string text = report.empty() ? header + ": no diagnostics\n"
                                      : header + ":\n" + report.ToText();
    results_.push_back(QueryResult{std::move(text), Relation()});
    return Status::OK();
  }
  if (const auto* pragma = std::get_if<PragmaStmt>(&stmt)) {
    if (pragma->name == "THREADS") {
      if (pragma->value < 0) {
        return Status::InvalidArgument("PRAGMA THREADS requires a value >= 0");
      }
      db_->options().eval.exec.num_threads =
          static_cast<size_t>(pragma->value);
      return Status::OK();
    }
    if (pragma->name == "LINT") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA LINT requires ON or OFF");
      }
      lint_enabled_ = pragma->value != 0;
      return Status::OK();
    }
    if (pragma->name == "PROFILE") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA PROFILE requires ON or OFF");
      }
      db_->options().eval.profile = pragma->value != 0;
      return Status::OK();
    }
    if (pragma->name == "SPECIALIZE") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA SPECIALIZE requires ON or OFF");
      }
      db_->options().specialize = pragma->value != 0;
      return Status::OK();
    }
    if (pragma->name == "TRACE") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA TRACE requires ON or OFF");
      }
      TraceRecorder::Global().Enable(pragma->value != 0);
      return Status::OK();
    }
    if (pragma->name == "SLOW_QUERY_MS") {
      if (pragma->value < 0) {
        return Status::InvalidArgument(
            "PRAGMA SLOW_QUERY_MS requires a value >= 0");
      }
      db_->slow_query_log().set_threshold_ns(pragma->value * 1'000'000);
      return Status::OK();
    }
    if (pragma->name == "CACHE") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA CACHE requires ON or OFF");
      }
      db_->options().cache = pragma->value != 0;
      return Status::OK();
    }
    if (pragma->name == "CACHE_CAPACITY") {
      if (pragma->value < 0) {
        return Status::InvalidArgument(
            "PRAGMA CACHE_CAPACITY requires a value >= 0");
      }
      db_->options().cache_capacity = static_cast<size_t>(pragma->value);
      db_->mat_cache().set_capacity(static_cast<size_t>(pragma->value));
      return Status::OK();
    }
    if (pragma->name == "CONSTRAINTS") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA CONSTRAINTS requires ON or OFF");
      }
      db_->options().constraints = pragma->value != 0;
      return Status::OK();
    }
    if (pragma->name == "TYPECHECK") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA TYPECHECK requires ON or OFF");
      }
      db_->options().typecheck = pragma->value != 0;
      return Status::OK();
    }
    if (pragma->name == "EVENTS") {
      if (pragma->value != 0 && pragma->value != 1) {
        return Status::InvalidArgument("PRAGMA EVENTS requires ON or OFF");
      }
      db_->options().events = pragma->value != 0;
      db_->events().set_enabled(pragma->value != 0);
      return Status::OK();
    }
    return Status::Unsupported("unknown pragma '" + pragma->name + "'");
  }
  if (const auto* show = std::get_if<ShowStmt>(&stmt)) {
    std::string text;
    switch (show->what) {
      case ShowStmt::What::kMetrics:
        text = "METRICS:\n" + db_->metrics().ToText();
        break;
      case ShowStmt::What::kSlowLog:
        text = "SLOWLOG:\n" + db_->slow_query_log().ToText();
        break;
      case ShowStmt::What::kConstraints:
        text = "CONSTRAINTS:\n" + db_->DescribeConstraints();
        break;
      case ShowStmt::What::kSchemas: {
        TypeInference inference = InferCatalogTypes(db_->catalog());
        text = "SCHEMAS:\n";
        if (inference.constructors.empty()) {
          text += "  no constructors defined\n";
        } else {
          for (const auto& [name, schema] : inference.constructors) {
            text += "  " + name + ": " + schema.ToString() + "\n";
          }
        }
        break;
      }
      case ShowStmt::What::kEvents:
        text = "EVENTS:\n" + db_->events().ToText();
        break;
    }
    results_.push_back(QueryResult{std::move(text), Relation()});
    return Status::OK();
  }
  return Status::Internal("unhandled script statement");
}

}  // namespace datacon
