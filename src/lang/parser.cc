#include "lang/parser.h"

#include <memory>

#include "ast/builder.h"
#include "common/check.h"
#include "lang/lexer.h"

namespace datacon {

namespace {

class Parser {
 public:
  Parser(std::vector<Token> tokens, const SymbolSeed* seed)
      : tokens_(std::move(tokens)) {
    if (seed != nullptr) symbols_ = *seed;
  }

  Result<Script> ParseProgram() {
    Script script;
    while (!Check(TokenKind::kEof)) {
      DATACON_ASSIGN_OR_RETURN(ScriptStmt stmt, ParseStatement());
      script.stmts.push_back(std::move(stmt));
    }
    return script;
  }

 private:
  // --- Token helpers ---

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAt(size_t offset) const {
    size_t i = pos_ + offset;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenKind kind) const { return Peek().kind == kind; }
  bool CheckKeyword(std::string_view kw) const { return Peek().IsKeyword(kw); }
  bool Match(TokenKind kind) {
    if (!Check(kind)) return false;
    ++pos_;
    return true;
  }
  bool MatchKeyword(std::string_view kw) {
    if (!CheckKeyword(kw)) return false;
    ++pos_;
    return true;
  }

  Status Error(const std::string& message) const {
    const Token& t = Peek();
    return Status::ParseError(message + " at line " + std::to_string(t.line) +
                              ", column " + std::to_string(t.column) +
                              " (near '" + t.text + "')");
  }

  Result<Token> Expect(TokenKind kind, const std::string& what) {
    if (!Check(kind)) return Error("expected " + what);
    return Advance();
  }
  Status ExpectKeyword(std::string_view kw) {
    if (!MatchKeyword(kw)) return Error("expected '" + std::string(kw) + "'");
    return Status::OK();
  }
  Result<std::string> ExpectIdent(const std::string& what) {
    if (!Check(TokenKind::kIdent)) return Error("expected " + what);
    return Advance().text;
  }

  /// The source location of the next token.
  SourceLoc Loc() const { return SourceLoc{Peek().line, Peek().column}; }

  // --- Scalar types ---

  Result<ValueType> ParseScalarTypeName() {
    if (MatchKeyword("INTEGER") || MatchKeyword("CARDINAL")) {
      return ValueType::kInt;
    }
    if (MatchKeyword("STRING")) return ValueType::kString;
    if (MatchKeyword("BOOLEAN")) return ValueType::kBool;
    if (Check(TokenKind::kIdent)) {
      auto it = symbols_.scalar_types.find(Peek().text);
      if (it != symbols_.scalar_types.end()) {
        Advance();
        return it->second;
      }
    }
    return Error("expected a scalar type name");
  }

  bool AtScalarTypeName() const {
    if (CheckKeyword("INTEGER") || CheckKeyword("CARDINAL") ||
        CheckKeyword("STRING") || CheckKeyword("BOOLEAN")) {
      return true;
    }
    return Check(TokenKind::kIdent) &&
           symbols_.scalar_types.count(Peek().text) > 0;
  }

  // --- Statements ---

  Result<ScriptStmt> ParseStatement() {
    if (CheckKeyword("TYPE")) return ParseTypeDecl();
    if (CheckKeyword("VAR")) return ParseVarDecl();
    if (CheckKeyword("SELECTOR")) return ParseSelectorDecl();
    if (CheckKeyword("CONSTRUCTOR")) return ParseConstructorDecl();
    if (CheckKeyword("CONSTRAINT")) return ParseConstraintDecl();
    if (CheckKeyword("INSERT")) return ParseInsert();
    if (CheckKeyword("QUERY")) return ParseQuery();
    if (CheckKeyword("EXPLAIN")) return ParseExplain();
    if (CheckKeyword("CHECK")) return ParseCheck();
    if (CheckKeyword("PRAGMA")) return ParsePragma();
    if (CheckKeyword("SHOW")) return ParseShow();
    if (Check(TokenKind::kIdent)) return ParseAssign();
    return Error("expected a declaration or statement");
  }

  Result<ScriptStmt> ParseTypeDecl() {
    DATACON_RETURN_IF_ERROR(ExpectKeyword("TYPE"));
    DATACON_ASSIGN_OR_RETURN(std::string name, ExpectIdent("type name"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());

    TypeDeclStmt stmt;
    stmt.name = name;
    if (MatchKeyword("RELATION")) {
      stmt.is_relation = true;
      std::vector<std::string> key_names;
      if (MatchKeyword("KEY")) {
        DATACON_RETURN_IF_ERROR(Expect(TokenKind::kLess, "'<'").status());
        do {
          DATACON_ASSIGN_OR_RETURN(std::string key, ExpectIdent("key field"));
          key_names.push_back(std::move(key));
        } while (Match(TokenKind::kComma));
        DATACON_RETURN_IF_ERROR(Expect(TokenKind::kGreater, "'>'").status());
      }
      DATACON_RETURN_IF_ERROR(ExpectKeyword("OF"));
      DATACON_RETURN_IF_ERROR(ExpectKeyword("RECORD"));
      std::vector<Field> fields;
      while (!CheckKeyword("END")) {
        std::vector<std::string> group;
        do {
          DATACON_ASSIGN_OR_RETURN(std::string fname, ExpectIdent("field name"));
          group.push_back(std::move(fname));
        } while (Match(TokenKind::kComma));
        DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
        DATACON_ASSIGN_OR_RETURN(ValueType type, ParseScalarTypeName());
        for (std::string& fname : group) {
          fields.push_back(Field{std::move(fname), type});
        }
        if (!Match(TokenKind::kSemicolon)) break;
      }
      DATACON_RETURN_IF_ERROR(ExpectKeyword("END"));
      if (fields.empty()) {
        return Error("a record type needs at least one field");
      }
      std::vector<int> key_indices;
      for (const std::string& key : key_names) {
        bool found = false;
        for (size_t i = 0; i < fields.size(); ++i) {
          if (fields[i].name == key) {
            key_indices.push_back(static_cast<int>(i));
            found = true;
            break;
          }
        }
        if (!found) return Error("key field '" + key + "' is not declared");
      }
      stmt.schema = Schema(std::move(fields), std::move(key_indices));
      symbols_.relation_types.insert(name);
    } else {
      DATACON_ASSIGN_OR_RETURN(stmt.scalar, ParseScalarTypeName());
      symbols_.scalar_types[name] = stmt.scalar;
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseVarDecl() {
    DATACON_RETURN_IF_ERROR(ExpectKeyword("VAR"));
    VarDeclStmt stmt;
    DATACON_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("relation variable name"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
    DATACON_ASSIGN_OR_RETURN(stmt.type_name, ExpectIdent("relation type name"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    symbols_.relation_names.insert(stmt.name);
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseSelectorDecl() {
    SourceLoc loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("SELECTOR"));
    DATACON_ASSIGN_OR_RETURN(std::string name, ExpectIdent("selector name"));
    std::vector<FormalScalar> params;
    if (Match(TokenKind::kLParen)) {
      if (!Check(TokenKind::kRParen)) {
        do {
          DATACON_ASSIGN_OR_RETURN(std::string pname,
                                   ExpectIdent("parameter name"));
          DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
          DATACON_ASSIGN_OR_RETURN(ValueType type, ParseScalarTypeName());
          params.push_back(FormalScalar{std::move(pname), type});
        } while (Match(TokenKind::kSemicolon) || Match(TokenKind::kComma));
      }
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    }
    DATACON_RETURN_IF_ERROR(ExpectKeyword("FOR"));
    DATACON_ASSIGN_OR_RETURN(std::string base_name,
                             ExpectIdent("base relation formal"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
    DATACON_ASSIGN_OR_RETURN(std::string base_type,
                             ExpectIdent("base relation type"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    DATACON_RETURN_IF_ERROR(ExpectKeyword("BEGIN"));

    // The body binds one variable over the base formal.
    formal_relations_.insert(base_name);
    DATACON_RETURN_IF_ERROR(ExpectKeyword("EACH"));
    DATACON_ASSIGN_OR_RETURN(std::string var, ExpectIdent("element variable"));
    DATACON_RETURN_IF_ERROR(ExpectKeyword("IN"));
    DATACON_ASSIGN_OR_RETURN(std::string range_name,
                             ExpectIdent("base relation"));
    if (range_name != base_name) {
      return Error("selector body must range over its base formal '" +
                   base_name + "'");
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
    DATACON_ASSIGN_OR_RETURN(PredPtr pred, ParsePred());
    DATACON_RETURN_IF_ERROR(ExpectKeyword("END"));
    DATACON_ASSIGN_OR_RETURN(std::string end_name, ExpectIdent("selector name"));
    if (end_name != name) {
      return Error("END name '" + end_name + "' does not match '" + name + "'");
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    formal_relations_.erase(base_name);

    SelectorStmt stmt;
    stmt.decl = std::make_shared<SelectorDecl>(
        name, FormalRelation{base_name, base_type}, std::move(params),
        std::move(var), std::move(pred), loc);
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseConstructorDecl() {
    SourceLoc loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("CONSTRUCTOR"));
    DATACON_ASSIGN_OR_RETURN(std::string name, ExpectIdent("constructor name"));
    DATACON_RETURN_IF_ERROR(ExpectKeyword("FOR"));
    DATACON_ASSIGN_OR_RETURN(std::string base_name,
                             ExpectIdent("base relation formal"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
    DATACON_ASSIGN_OR_RETURN(std::string base_type,
                             ExpectIdent("base relation type"));

    std::vector<FormalRelation> rel_params;
    std::vector<FormalScalar> scalar_params;
    if (Match(TokenKind::kLParen)) {
      if (!Check(TokenKind::kRParen)) {
        do {
          DATACON_ASSIGN_OR_RETURN(std::string pname,
                                   ExpectIdent("parameter name"));
          DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
          if (AtScalarTypeName()) {
            DATACON_ASSIGN_OR_RETURN(ValueType type, ParseScalarTypeName());
            scalar_params.push_back(FormalScalar{std::move(pname), type});
          } else {
            DATACON_ASSIGN_OR_RETURN(std::string tname,
                                     ExpectIdent("relation type name"));
            rel_params.push_back(FormalRelation{std::move(pname), tname});
          }
        } while (Match(TokenKind::kSemicolon) || Match(TokenKind::kComma));
      }
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
    DATACON_ASSIGN_OR_RETURN(std::string result_type,
                             ExpectIdent("result type name"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    DATACON_RETURN_IF_ERROR(ExpectKeyword("BEGIN"));

    formal_relations_.insert(base_name);
    for (const FormalRelation& r : rel_params) formal_relations_.insert(r.name);

    std::vector<BranchPtr> branches;
    do {
      DATACON_ASSIGN_OR_RETURN(BranchPtr branch, ParseBranch());
      branches.push_back(std::move(branch));
    } while (Match(TokenKind::kComma));

    DATACON_RETURN_IF_ERROR(ExpectKeyword("END"));
    DATACON_ASSIGN_OR_RETURN(std::string end_name,
                             ExpectIdent("constructor name"));
    if (end_name != name) {
      return Error("END name '" + end_name + "' does not match '" + name + "'");
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());

    formal_relations_.erase(base_name);
    for (const FormalRelation& r : rel_params) formal_relations_.erase(r.name);

    ConstructorStmt stmt;
    stmt.decl = std::make_shared<ConstructorDecl>(
        name, FormalRelation{base_name, base_type}, std::move(rel_params),
        std::move(scalar_params), std::move(result_type),
        std::make_shared<CalcExpr>(std::move(branches)), loc);
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseConstraintDecl() {
    SourceLoc loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("CONSTRAINT"));
    DATACON_ASSIGN_OR_RETURN(std::string name, ExpectIdent("constraint name"));

    ConstraintStmt stmt;
    if (MatchKeyword("DENY")) {
      // Denial form: the constraint is violated iff a witness exists.
      std::vector<Binding> bindings;
      do {
        SourceLoc binding_loc = Loc();
        DATACON_RETURN_IF_ERROR(ExpectKeyword("EACH"));
        DATACON_ASSIGN_OR_RETURN(std::string var, ExpectIdent("tuple variable"));
        DATACON_RETURN_IF_ERROR(ExpectKeyword("IN"));
        DATACON_ASSIGN_OR_RETURN(RangePtr range, ParseRange());
        bindings.push_back(
            Binding{std::move(var), std::move(range), binding_loc});
      } while (Match(TokenKind::kComma));
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
      DATACON_ASSIGN_OR_RETURN(PredPtr pred, ParsePred());
      stmt.decl = std::make_shared<ConstraintDecl>(
          std::move(name), std::move(bindings), std::move(pred), loc);
    } else if (MatchKeyword("KEY")) {
      std::vector<std::string> fields;
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kLess, "'<'").status());
      do {
        DATACON_ASSIGN_OR_RETURN(std::string field, ExpectIdent("key field"));
        fields.push_back(std::move(field));
      } while (Match(TokenKind::kComma));
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kGreater, "'>'").status());
      // ON is not a reserved word (PRAGMA values use it as a plain ident).
      if (!Check(TokenKind::kIdent) || Peek().text != "ON") {
        return Error("expected 'ON'");
      }
      Advance();
      DATACON_ASSIGN_OR_RETURN(std::string relation,
                               ExpectIdent("relation name"));
      stmt.decl = std::make_shared<ConstraintDecl>(
          std::move(name), std::move(fields), std::move(relation), loc);
    } else if (MatchKeyword("FOREIGN")) {
      DATACON_ASSIGN_OR_RETURN(std::string fk_field, ExpectIdent("field name"));
      DATACON_RETURN_IF_ERROR(ExpectKeyword("OF"));
      DATACON_ASSIGN_OR_RETURN(RangePtr fk_range, ParseRange());
      DATACON_RETURN_IF_ERROR(ExpectKeyword("REFERENCES"));
      DATACON_ASSIGN_OR_RETURN(std::string ref_field, ExpectIdent("field name"));
      DATACON_RETURN_IF_ERROR(ExpectKeyword("OF"));
      DATACON_ASSIGN_OR_RETURN(RangePtr ref_range, ParseRange());
      stmt.decl = std::make_shared<ConstraintDecl>(
          std::move(name), std::move(fk_field), std::move(fk_range),
          std::move(ref_field), std::move(ref_range), loc);
    } else {
      return Error("expected DENY, KEY, or FOREIGN after the constraint name");
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseInsert() {
    InsertStmt stmt;
    stmt.loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    DATACON_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    DATACON_ASSIGN_OR_RETURN(stmt.relation, ExpectIdent("relation name"));
    do {
      DATACON_ASSIGN_OR_RETURN(Tuple t, ParseTupleLiteral());
      stmt.tuples.push_back(std::move(t));
    } while (Match(TokenKind::kComma));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseQuery() {
    QueryStmt stmt;
    stmt.loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("QUERY"));
    DATACON_ASSIGN_OR_RETURN(stmt.value, ParseRelationExpr());
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseExplain() {
    ExplainStmt stmt;
    stmt.loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("EXPLAIN"));
    stmt.analyze = MatchKeyword("ANALYZE");
    DATACON_ASSIGN_OR_RETURN(stmt.range, ParseRange());
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseCheck() {
    CheckStmt stmt;
    stmt.loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("CHECK"));
    if (!MatchKeyword("SCRIPT")) {
      DATACON_ASSIGN_OR_RETURN(
          std::string name, ExpectIdent("a selector/constructor name or SCRIPT"));
      stmt.name = std::move(name);
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseShow() {
    ShowStmt stmt;
    stmt.loc = Loc();
    DATACON_RETURN_IF_ERROR(ExpectKeyword("SHOW"));
    DATACON_ASSIGN_OR_RETURN(
        std::string what,
        ExpectIdent("METRICS, SLOWLOG, CONSTRAINTS, SCHEMAS, or EVENTS"));
    if (what == "METRICS") {
      stmt.what = ShowStmt::What::kMetrics;
    } else if (what == "SLOWLOG") {
      stmt.what = ShowStmt::What::kSlowLog;
    } else if (what == "CONSTRAINTS") {
      stmt.what = ShowStmt::What::kConstraints;
    } else if (what == "SCHEMAS") {
      stmt.what = ShowStmt::What::kSchemas;
    } else if (what == "EVENTS") {
      stmt.what = ShowStmt::What::kEvents;
    } else {
      return Error(
          "expected METRICS, SLOWLOG, CONSTRAINTS, SCHEMAS, or EVENTS "
          "after SHOW");
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParsePragma() {
    DATACON_RETURN_IF_ERROR(ExpectKeyword("PRAGMA"));
    PragmaStmt stmt;
    DATACON_ASSIGN_OR_RETURN(stmt.name, ExpectIdent("pragma name"));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kEq, "'='").status());
    if (Check(TokenKind::kInt)) {
      stmt.value = Advance().int_value;
    } else if (Check(TokenKind::kIdent) &&
               (Peek().text == "ON" || Peek().text == "OFF")) {
      stmt.value = Advance().text == "ON" ? 1 : 0;
    } else {
      return Error("expected an integer, ON, or OFF");
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  Result<ScriptStmt> ParseAssign() {
    AssignStmt stmt;
    stmt.loc = Loc();
    DATACON_ASSIGN_OR_RETURN(stmt.relation, ExpectIdent("relation name"));
    if (Match(TokenKind::kLBracket)) {
      DATACON_ASSIGN_OR_RETURN(std::string sel, ExpectIdent("selector name"));
      stmt.selector = std::move(sel);
      if (Match(TokenKind::kLParen)) {
        if (!Check(TokenKind::kRParen)) {
          do {
            DATACON_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
            stmt.selector_args.push_back(std::move(v));
          } while (Match(TokenKind::kComma));
        }
        DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      }
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'").status());
    }
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kAssign, "':='").status());
    DATACON_ASSIGN_OR_RETURN(stmt.value, ParseRelationExpr());
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kSemicolon, "';'").status());
    return ScriptStmt(std::move(stmt));
  }

  // --- Expressions ---

  Result<RelationExpr> ParseRelationExpr() {
    RelationExpr out;
    if (Match(TokenKind::kLBrace)) {
      std::vector<BranchPtr> branches;
      do {
        DATACON_ASSIGN_OR_RETURN(BranchPtr branch, ParseBranch());
        branches.push_back(std::move(branch));
      } while (Match(TokenKind::kComma));
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'").status());
      out.expr = std::make_shared<CalcExpr>(std::move(branches));
      return out;
    }
    DATACON_ASSIGN_OR_RETURN(out.range, ParseRange());
    return out;
  }

  Result<BranchPtr> ParseBranch() {
    SourceLoc branch_loc = Loc();
    std::optional<std::vector<TermPtr>> targets;
    // `<t1, ..., tk> OF` prefix?
    if (Check(TokenKind::kLess)) {
      size_t save = pos_;
      Result<std::vector<TermPtr>> terms = ParseAngleTermList();
      if (terms.ok() && MatchKeyword("OF")) {
        targets = std::move(terms).value();
      } else {
        pos_ = save;
        return Error("expected '<targets> OF' before branch bindings");
      }
    }
    std::vector<Binding> bindings;
    do {
      SourceLoc binding_loc = Loc();
      DATACON_RETURN_IF_ERROR(ExpectKeyword("EACH"));
      DATACON_ASSIGN_OR_RETURN(std::string var, ExpectIdent("tuple variable"));
      DATACON_RETURN_IF_ERROR(ExpectKeyword("IN"));
      DATACON_ASSIGN_OR_RETURN(RangePtr range, ParseRange());
      bindings.push_back(Binding{std::move(var), std::move(range), binding_loc});
      // A comma followed by EACH continues the bindings; a comma followed
      // by anything else separates branches (handled by the caller).
      if (Check(TokenKind::kComma) && PeekAt(1).IsKeyword("EACH")) {
        Advance();
        continue;
      }
      break;
    } while (true);
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kColon, "':'").status());
    DATACON_ASSIGN_OR_RETURN(PredPtr pred, ParsePred());
    return BranchPtr(std::make_shared<Branch>(
        std::move(bindings), std::move(pred), std::move(targets), branch_loc));
  }

  Result<std::vector<TermPtr>> ParseAngleTermList() {
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kLess, "'<'").status());
    std::vector<TermPtr> terms;
    do {
      DATACON_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
      terms.push_back(std::move(t));
    } while (Match(TokenKind::kComma));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kGreater, "'>'").status());
    return terms;
  }

  bool IsRelationName(const std::string& name) const {
    return formal_relations_.count(name) > 0 ||
           symbols_.relation_names.count(name) > 0;
  }

  Result<RangePtr> ParseRange() {
    DATACON_ASSIGN_OR_RETURN(std::string base, ExpectIdent("relation name"));
    std::vector<RangeApp> apps;
    while (true) {
      if (Match(TokenKind::kLBracket)) {
        RangeApp app;
        app.kind = RangeApp::Kind::kSelector;
        DATACON_ASSIGN_OR_RETURN(app.name, ExpectIdent("selector name"));
        if (Match(TokenKind::kLParen)) {
          if (!Check(TokenKind::kRParen)) {
            do {
              DATACON_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
              app.term_args.push_back(std::move(t));
            } while (Match(TokenKind::kComma));
          }
          DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
        }
        DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRBracket, "']'").status());
        apps.push_back(std::move(app));
        continue;
      }
      if (Match(TokenKind::kLBrace)) {
        RangeApp app;
        app.kind = RangeApp::Kind::kConstructor;
        DATACON_ASSIGN_OR_RETURN(app.name, ExpectIdent("constructor name"));
        if (Match(TokenKind::kLParen)) {
          if (!Check(TokenKind::kRParen)) {
            do {
              // A relation name (formal or variable) is a range argument;
              // anything else is a scalar term argument.
              if (Check(TokenKind::kIdent) && IsRelationName(Peek().text)) {
                DATACON_ASSIGN_OR_RETURN(RangePtr r, ParseRange());
                app.range_args.push_back(std::move(r));
              } else {
                DATACON_ASSIGN_OR_RETURN(TermPtr t, ParseTerm());
                app.term_args.push_back(std::move(t));
              }
            } while (Match(TokenKind::kComma));
          }
          DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
        }
        DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "'}'").status());
        apps.push_back(std::move(app));
        continue;
      }
      break;
    }
    return RangePtr(std::make_shared<Range>(std::move(base), std::move(apps)));
  }

  // --- Predicates (OR of ANDs of factors) ---

  Result<PredPtr> ParsePred() {
    DATACON_ASSIGN_OR_RETURN(PredPtr first, ParseAnd());
    if (!CheckKeyword("OR")) return first;
    std::vector<PredPtr> operands = {std::move(first)};
    while (MatchKeyword("OR")) {
      DATACON_ASSIGN_OR_RETURN(PredPtr next, ParseAnd());
      operands.push_back(std::move(next));
    }
    return build::Or(std::move(operands));
  }

  Result<PredPtr> ParseAnd() {
    DATACON_ASSIGN_OR_RETURN(PredPtr first, ParseFactor());
    if (!CheckKeyword("AND")) return first;
    std::vector<PredPtr> operands = {std::move(first)};
    while (MatchKeyword("AND")) {
      DATACON_ASSIGN_OR_RETURN(PredPtr next, ParseFactor());
      operands.push_back(std::move(next));
    }
    return build::And(std::move(operands));
  }

  bool AtCompareOp() const {
    switch (Peek().kind) {
      case TokenKind::kEq:
      case TokenKind::kHash:
      case TokenKind::kLess:
      case TokenKind::kLessEq:
      case TokenKind::kGreater:
      case TokenKind::kGreaterEq:
        return true;
      default:
        return false;
    }
  }

  Result<CompareOp> ParseCompareOp() {
    switch (Advance().kind) {
      case TokenKind::kEq:
        return CompareOp::kEq;
      case TokenKind::kHash:
        return CompareOp::kNe;
      case TokenKind::kLess:
        return CompareOp::kLt;
      case TokenKind::kLessEq:
        return CompareOp::kLe;
      case TokenKind::kGreater:
        return CompareOp::kGt;
      case TokenKind::kGreaterEq:
        return CompareOp::kGe;
      default:
        return Error("expected a comparison operator");
    }
  }

  Result<PredPtr> ParseFactor() {
    if (MatchKeyword("NOT")) {
      DATACON_ASSIGN_OR_RETURN(PredPtr operand, ParseFactor());
      return build::Not(std::move(operand));
    }
    if (CheckKeyword("SOME") || CheckKeyword("ALL")) {
      SourceLoc quant_loc = Loc();
      Quantifier q =
          Peek().IsKeyword("SOME") ? Quantifier::kSome : Quantifier::kAll;
      Advance();
      DATACON_ASSIGN_OR_RETURN(std::string var, ExpectIdent("quantified variable"));
      DATACON_RETURN_IF_ERROR(ExpectKeyword("IN"));
      DATACON_ASSIGN_OR_RETURN(RangePtr range, ParseRange());
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "'('").status());
      DATACON_ASSIGN_OR_RETURN(PredPtr body, ParsePred());
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      return PredPtr(std::make_shared<QuantPred>(
          q, std::move(var), std::move(range), std::move(body), quant_loc));
    }
    // `<t1, ..., tk> IN range` — membership.
    if (Check(TokenKind::kLess)) {
      DATACON_ASSIGN_OR_RETURN(std::vector<TermPtr> tuple, ParseAngleTermList());
      DATACON_RETURN_IF_ERROR(ExpectKeyword("IN"));
      DATACON_ASSIGN_OR_RETURN(RangePtr range, ParseRange());
      return build::In(std::move(tuple), std::move(range));
    }
    // TRUE/FALSE as predicates — unless part of a comparison.
    if (CheckKeyword("TRUE") || CheckKeyword("FALSE")) {
      bool value = Peek().IsKeyword("TRUE");
      if (!PeekAt(1).IsKeyword("AND") && !PeekAt(1).IsKeyword("OR") &&
          PeekAt(1).kind != TokenKind::kEq &&
          PeekAt(1).kind != TokenKind::kHash) {
        Advance();
        return value ? build::True() : build::False();
      }
      if (PeekAt(1).IsKeyword("AND") || PeekAt(1).IsKeyword("OR")) {
        Advance();
        return value ? build::True() : build::False();
      }
    }
    // Parenthesized predicate vs. parenthesized term: try the predicate
    // first; backtrack when the closing paren is followed by a comparison
    // or arithmetic operator.
    if (Check(TokenKind::kLParen)) {
      size_t save = pos_;
      Advance();
      Result<PredPtr> inner = ParsePred();
      if (inner.ok() && Match(TokenKind::kRParen) && !AtCompareOp() &&
          !Check(TokenKind::kPlus) && !Check(TokenKind::kMinus) &&
          !Check(TokenKind::kStar) && !CheckKeyword("DIV") &&
          !CheckKeyword("MOD")) {
        return std::move(inner).value();
      }
      pos_ = save;
    }
    // Comparison: term op term.
    DATACON_ASSIGN_OR_RETURN(TermPtr lhs, ParseTerm());
    if (!AtCompareOp()) return Error("expected a comparison operator");
    DATACON_ASSIGN_OR_RETURN(CompareOp op, ParseCompareOp());
    DATACON_ASSIGN_OR_RETURN(TermPtr rhs, ParseTerm());
    return build::Cmp(op, std::move(lhs), std::move(rhs));
  }

  // --- Terms (arithmetic with DBPL precedence) ---

  Result<TermPtr> ParseTerm() {
    DATACON_ASSIGN_OR_RETURN(TermPtr lhs, ParseMulTerm());
    while (Check(TokenKind::kPlus) || Check(TokenKind::kMinus)) {
      ArithOp op = Match(TokenKind::kPlus) ? ArithOp::kAdd
                                           : (Advance(), ArithOp::kSub);
      DATACON_ASSIGN_OR_RETURN(TermPtr rhs, ParseMulTerm());
      lhs = build::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TermPtr> ParseMulTerm() {
    DATACON_ASSIGN_OR_RETURN(TermPtr lhs, ParseAtom());
    while (true) {
      ArithOp op;
      if (Match(TokenKind::kStar)) {
        op = ArithOp::kMul;
      } else if (MatchKeyword("DIV")) {
        op = ArithOp::kDiv;
      } else if (MatchKeyword("MOD")) {
        op = ArithOp::kMod;
      } else {
        break;
      }
      DATACON_ASSIGN_OR_RETURN(TermPtr rhs, ParseAtom());
      lhs = build::Arith(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<TermPtr> ParseAtom() {
    if (Check(TokenKind::kInt)) {
      return build::Int(Advance().int_value);
    }
    if (Check(TokenKind::kString)) {
      return build::Str(Advance().text);
    }
    if (MatchKeyword("TRUE")) return build::BoolLit(true);
    if (MatchKeyword("FALSE")) return build::BoolLit(false);
    if (Match(TokenKind::kLParen)) {
      DATACON_ASSIGN_OR_RETURN(TermPtr inner, ParseTerm());
      DATACON_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "')'").status());
      return inner;
    }
    if (Check(TokenKind::kIdent)) {
      std::string name = Advance().text;
      if (Match(TokenKind::kDot)) {
        DATACON_ASSIGN_OR_RETURN(std::string field, ExpectIdent("field name"));
        return build::FieldRef(std::move(name), std::move(field));
      }
      return build::Param(std::move(name));
    }
    return Error("expected a term");
  }

  Result<Value> ParseLiteralValue() {
    if (Check(TokenKind::kInt)) return Value::Int(Advance().int_value);
    if (Check(TokenKind::kString)) return Value::String(Advance().text);
    if (MatchKeyword("TRUE")) return Value::Bool(true);
    if (MatchKeyword("FALSE")) return Value::Bool(false);
    if (Match(TokenKind::kMinus)) {
      if (Check(TokenKind::kInt)) return Value::Int(-Advance().int_value);
      return Error("expected an integer after '-'");
    }
    return Error("expected a literal value");
  }

  Result<Tuple> ParseTupleLiteral() {
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kLess, "'<'").status());
    std::vector<Value> values;
    do {
      DATACON_ASSIGN_OR_RETURN(Value v, ParseLiteralValue());
      values.push_back(std::move(v));
    } while (Match(TokenKind::kComma));
    DATACON_RETURN_IF_ERROR(Expect(TokenKind::kGreater, "'>'").status());
    return Tuple(std::move(values));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  SymbolSeed symbols_;
  std::set<std::string> formal_relations_;
};

}  // namespace

Result<Script> ParseScript(std::string_view source, const SymbolSeed* seed) {
  DATACON_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return Parser(std::move(tokens), seed).ParseProgram();
}

}  // namespace datacon
