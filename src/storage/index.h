#ifndef DATACON_STORAGE_INDEX_H_
#define DATACON_STORAGE_INDEX_H_

#include <unordered_map>
#include <vector>

#include "storage/relation.h"
#include "storage/tuple.h"

namespace datacon {

/// A transient hash index over a relation: maps the projection of each
/// stored tuple onto `columns` to the list of matching tuples.
///
/// Built on demand by the join machinery (and by materialized physical
/// access paths, section 4). The index holds pointers into the indexed
/// relation's tuple set; it is valid as long as no tuple is erased from the
/// relation (inserts do not invalidate unordered_set element pointers, but
/// tuples inserted after construction are not indexed — a probe would
/// silently miss them). `rel` must outlive the index; InSync() lets the
/// join machinery detect the grown-after-build hazard instead of
/// miscomputing.
class HashIndex {
 public:
  /// Builds an index of `rel` on the given column positions.
  HashIndex(const Relation& rel, std::vector<int> columns);

  /// The column positions this index covers.
  const std::vector<int>& columns() const { return columns_; }

  /// All indexed tuples whose projection equals `key` (empty if none).
  const std::vector<const Tuple*>& Probe(const Tuple& key) const;

  /// Number of distinct keys.
  size_t key_count() const { return buckets_.size(); }

  /// Tuples the indexed relation held when the index was built.
  size_t size_at_build() const { return size_at_build_; }

  /// True while the indexed relation still has exactly the tuples that were
  /// indexed, keyed on Relation::generation() — any mutation since the
  /// build (including an insert+erase pair of equal cardinality, which a
  /// size comparison cannot see) desynchronizes the index. Probing a
  /// desynchronized index returns stale results and must be treated as an
  /// error by the caller.
  bool InSync() const;

 private:
  const Relation* rel_;
  size_t size_at_build_;
  uint64_t generation_at_build_;
  std::vector<int> columns_;
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHash> buckets_;
  std::vector<const Tuple*> empty_;
};

}  // namespace datacon

#endif  // DATACON_STORAGE_INDEX_H_
