#ifndef DATACON_STORAGE_TUPLE_H_
#define DATACON_STORAGE_TUPLE_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "common/hash.h"
#include "types/value.h"

namespace datacon {

/// An element of a relation: an ordered list of scalar values, positionally
/// matched against a Schema. Tuples are value types — hashable, comparable,
/// and cheap to move.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  Tuple(std::initializer_list<Value> values) : values_(values) {}

  int arity() const { return static_cast<int>(values_.size()); }
  const Value& value(int i) const { return values_[static_cast<size_t>(i)]; }
  const std::vector<Value>& values() const { return values_; }

  /// The sub-tuple at the given positions, in the given order.
  Tuple Project(const std::vector<int>& indices) const;

  /// This tuple followed by all values of `other`.
  Tuple Concat(const Tuple& other) const;

  /// Renders e.g. `<"vase", "table">`.
  std::string ToString() const;

  size_t Hash() const {
    size_t seed = values_.size();
    for (const Value& v : values_) HashCombine(seed, v.Hash());
    return seed;
  }

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }
  /// Lexicographic order; used only to produce deterministic output.
  friend bool operator<(const Tuple& a, const Tuple& b) {
    return a.values_ < b.values_;
  }

 private:
  std::vector<Value> values_;
};

struct TupleHash {
  size_t operator()(const Tuple& t) const { return t.Hash(); }
};

}  // namespace datacon

namespace std {
template <>
struct hash<datacon::Tuple> {
  size_t operator()(const datacon::Tuple& t) const { return t.Hash(); }
};
}  // namespace std

#endif  // DATACON_STORAGE_TUPLE_H_
