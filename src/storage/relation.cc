#include "storage/relation.h"

#include <algorithm>

#include "common/check.h"

namespace datacon {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  enforce_key_ = !schema_.KeyIsAllAttributes();
  if (enforce_key_) key_positions_ = schema_.EffectiveKey();
}

Relation& Relation::operator=(const Relation& other) {
  if (this == &other) return *this;
  schema_ = other.schema_;
  tuples_ = other.tuples_;
  key_to_tuple_ = other.key_to_tuple_;
  enforce_key_ = other.enforce_key_;
  key_positions_ = other.key_positions_;
  NoteStructuralChange();
  return *this;
}

Relation& Relation::operator=(Relation&& other) noexcept {
  if (this == &other) return *this;
  schema_ = std::move(other.schema_);
  tuples_ = std::move(other.tuples_);
  key_to_tuple_ = std::move(other.key_to_tuple_);
  enforce_key_ = other.enforce_key_;
  key_positions_ = std::move(other.key_positions_);
  NoteStructuralChange();
  return *this;
}

void Relation::NoteStructuralChange() {
  ++generation_;
  insert_log_.clear();
  log_base_ = generation_;
}

std::optional<std::vector<Tuple>> Relation::InsertedSince(
    uint64_t since) const {
  if (since > generation_ || since < log_base_) return std::nullopt;
  return std::vector<Tuple>(
      insert_log_.begin() + static_cast<ptrdiff_t>(since - log_base_),
      insert_log_.end());
}

Status Relation::ValidateTuple(const Tuple& t) const {
  if (t.arity() != schema_.arity()) {
    return Status::TypeError("tuple arity " + std::to_string(t.arity()) +
                             " does not match schema arity " +
                             std::to_string(schema_.arity()));
  }
  for (int i = 0; i < t.arity(); ++i) {
    if (t.value(i).type() != schema_.field(i).type) {
      return Status::TypeError("field '" + schema_.field(i).name +
                               "' expects " +
                               std::string(ValueTypeName(schema_.field(i).type)) +
                               ", got " + t.value(i).ToString());
    }
  }
  return Status::OK();
}

Result<bool> Relation::Insert(const Tuple& t) {
  DATACON_RETURN_IF_ERROR(ValidateTuple(t));
  return InsertValidated(t);
}

Result<bool> Relation::InsertProven(const Tuple& t) {
  DATACON_DCHECK(ValidateTuple(t).ok(),
                 "typed-proven insert violates the relation schema");
  return InsertValidated(t);
}

Result<bool> Relation::InsertValidated(const Tuple& t) {
  if (tuples_.count(t) > 0) return false;
  if (enforce_key_) {
    Tuple key = t.Project(key_positions_);
    auto it = key_to_tuple_.find(key);
    if (it != key_to_tuple_.end()) {
      // A distinct tuple with the same key is stored: the section 2.2 key
      // constraint fails.
      return Status::KeyViolation("key " + key.ToString() +
                                  " already identifies " +
                                  it->second.ToString() +
                                  "; cannot insert " + t.ToString());
    }
    key_to_tuple_.emplace(std::move(key), t);
  }
  tuples_.insert(t);
  ++generation_;
  if (insert_log_.size() >= kMaxInsertLog) {
    // Log overflow: delta reconstruction for observers older than this
    // point degrades to "not reconstructible".
    insert_log_.clear();
    log_base_ = generation_;
  } else {
    insert_log_.push_back(t);
  }
  return true;
}

Status Relation::InsertAll(const Relation& other) {
  if (!schema_.UnionCompatible(other.schema_)) {
    return Status::TypeError("InsertAll between incompatible schemas: " +
                             schema_.ToString() + " vs " +
                             other.schema_.ToString());
  }
  // Validate the whole batch before applying any of it, so a failing batch
  // leaves the relation unchanged (the atomicity half of the section 2.2
  // assignment semantics).
  std::unordered_map<Tuple, const Tuple*, TupleHash> staged_keys;
  for (const Tuple& t : other.tuples_) {
    DATACON_RETURN_IF_ERROR(ValidateTuple(t));
    if (tuples_.count(t) > 0) continue;
    if (!enforce_key_) continue;
    Tuple key = t.Project(key_positions_);
    auto stored = key_to_tuple_.find(key);
    if (stored != key_to_tuple_.end()) {
      return Status::KeyViolation("key " + key.ToString() +
                                  " already identifies " +
                                  stored->second.ToString() +
                                  "; cannot insert " + t.ToString());
    }
    auto [staged, fresh] = staged_keys.try_emplace(std::move(key), &t);
    if (!fresh) {
      return Status::KeyViolation("key " + staged->first.ToString() +
                                  " identifies both " +
                                  staged->second->ToString() + " and " +
                                  t.ToString() + " within one batch");
    }
  }
  for (const Tuple& t : other.tuples_) {
    Result<bool> grew = Insert(t);
    DATACON_CHECK(grew.ok(), "validated batch insert failed");
  }
  return Status::OK();
}

bool Relation::Erase(const Tuple& t) {
  auto it = tuples_.find(t);
  if (it == tuples_.end()) return false;
  if (enforce_key_) key_to_tuple_.erase(t.Project(key_positions_));
  tuples_.erase(it);
  NoteStructuralChange();
  return true;
}

void Relation::Clear() {
  if (tuples_.empty()) return;
  tuples_.clear();
  key_to_tuple_.clear();
  NoteStructuralChange();
}

bool Relation::SameTuples(const Relation& other) const {
  if (tuples_.size() != other.tuples_.size()) return false;
  for (const Tuple& t : tuples_) {
    if (other.tuples_.count(t) == 0) return false;
  }
  return true;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out += "}";
  return out;
}

}  // namespace datacon
