#include "storage/relation.h"

#include <algorithm>

namespace datacon {

Relation::Relation(Schema schema) : schema_(std::move(schema)) {
  enforce_key_ = !schema_.KeyIsAllAttributes();
  if (enforce_key_) key_positions_ = schema_.EffectiveKey();
}

Result<bool> Relation::Insert(const Tuple& t) {
  if (t.arity() != schema_.arity()) {
    return Status::TypeError("tuple arity " + std::to_string(t.arity()) +
                             " does not match schema arity " +
                             std::to_string(schema_.arity()));
  }
  for (int i = 0; i < t.arity(); ++i) {
    if (t.value(i).type() != schema_.field(i).type) {
      return Status::TypeError("field '" + schema_.field(i).name +
                               "' expects " +
                               std::string(ValueTypeName(schema_.field(i).type)) +
                               ", got " + t.value(i).ToString());
    }
  }
  if (tuples_.count(t) > 0) return false;
  if (enforce_key_) {
    Tuple key = t.Project(key_positions_);
    auto it = key_to_tuple_.find(key);
    if (it != key_to_tuple_.end()) {
      // A distinct tuple with the same key is stored: the section 2.2 key
      // constraint fails.
      return Status::KeyViolation("key " + key.ToString() +
                                  " already identifies " +
                                  it->second.ToString() +
                                  "; cannot insert " + t.ToString());
    }
    key_to_tuple_.emplace(std::move(key), t);
  }
  tuples_.insert(t);
  return true;
}

Status Relation::InsertAll(const Relation& other) {
  if (!schema_.UnionCompatible(other.schema_)) {
    return Status::TypeError("InsertAll between incompatible schemas: " +
                             schema_.ToString() + " vs " +
                             other.schema_.ToString());
  }
  for (const Tuple& t : other.tuples_) {
    DATACON_ASSIGN_OR_RETURN(bool grew, Insert(t));
    (void)grew;
  }
  return Status::OK();
}

bool Relation::Erase(const Tuple& t) {
  auto it = tuples_.find(t);
  if (it == tuples_.end()) return false;
  if (enforce_key_) key_to_tuple_.erase(t.Project(key_positions_));
  tuples_.erase(it);
  return true;
}

void Relation::Clear() {
  tuples_.clear();
  key_to_tuple_.clear();
}

bool Relation::SameTuples(const Relation& other) const {
  if (tuples_.size() != other.tuples_.size()) return false;
  for (const Tuple& t : tuples_) {
    if (other.tuples_.count(t) == 0) return false;
  }
  return true;
}

std::vector<Tuple> Relation::SortedTuples() const {
  std::vector<Tuple> out(tuples_.begin(), tuples_.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::string Relation::ToString() const {
  std::string out = "{";
  bool first = true;
  for (const Tuple& t : SortedTuples()) {
    if (!first) out += ", ";
    first = false;
    out += t.ToString();
  }
  out += "}";
  return out;
}

}  // namespace datacon
