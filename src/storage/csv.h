#ifndef DATACON_STORAGE_CSV_H_
#define DATACON_STORAGE_CSV_H_

#include <iosfwd>
#include <string>

#include "common/result.h"
#include "storage/relation.h"

namespace datacon {

/// Writes `rel` as CSV: a header row of field names, then one row per
/// tuple in sorted order (deterministic output). Strings are quoted with
/// doubled-quote escaping; integers print as digits; booleans as
/// TRUE/FALSE.
Status WriteCsv(const Relation& rel, std::ostream* out);

/// Reads CSV produced by WriteCsv (or hand-written in the same dialect)
/// into a relation over `schema`. The header row is validated against the
/// schema's field names. Key constraints of `schema` apply during load.
Result<Relation> ReadCsv(std::istream* in, const Schema& schema);

/// Convenience file wrappers.
Status SaveCsvFile(const Relation& rel, const std::string& path);
Result<Relation> LoadCsvFile(const std::string& path, const Schema& schema);

}  // namespace datacon

#endif  // DATACON_STORAGE_CSV_H_
