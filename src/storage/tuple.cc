#include "storage/tuple.h"

namespace datacon {

Tuple Tuple::Project(const std::vector<int>& indices) const {
  std::vector<Value> out;
  out.reserve(indices.size());
  for (int i : indices) out.push_back(values_[static_cast<size_t>(i)]);
  return Tuple(std::move(out));
}

Tuple Tuple::Concat(const Tuple& other) const {
  std::vector<Value> out = values_;
  out.insert(out.end(), other.values_.begin(), other.values_.end());
  return Tuple(std::move(out));
}

std::string Tuple::ToString() const {
  std::string out = "<";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += ">";
  return out;
}

}  // namespace datacon
