#include "storage/csv.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

namespace datacon {

namespace {

/// Quotes a string field: always quoted, embedded quotes doubled.
std::string QuoteField(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

Result<std::string> ValueToCsv(const Value& v) {
  switch (v.type()) {
    case ValueType::kInt:
      return std::to_string(v.AsInt());
    case ValueType::kString:
      return QuoteField(v.AsString());
    case ValueType::kBool:
      return std::string(v.AsBool() ? "TRUE" : "FALSE");
  }
  // Reachable only through memory corruption or an unhandled ValueType
  // added later — either way an engine bug, not bad user input, and never
  // silently an empty cell.
  return Status::Internal("ValueToCsv: unknown value type " +
                          std::to_string(static_cast<int>(v.type())));
}

/// Removes one trailing '\r' (a CRLF line read by getline) in place.
void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

/// Removes a leading UTF-8 byte-order mark in place (files exported by
/// Windows tooling routinely start with one).
void StripUtf8Bom(std::string* line) {
  if (line->size() >= 3 && (*line)[0] == '\xEF' && (*line)[1] == '\xBB' &&
      (*line)[2] == '\xBF') {
    line->erase(0, 3);
  }
}

/// Splits one CSV line into raw cells honouring quoting. Returns an error
/// on unterminated quotes.
Result<std::vector<std::string>> SplitCsvLine(const std::string& line) {
  std::vector<std::string> cells;
  std::string current;
  bool in_quotes = false;
  bool was_quoted = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      was_quoted = true;
      continue;
    }
    if (c == ',') {
      cells.push_back(std::move(current));
      current.clear();
      continue;
    }
    current.push_back(c);
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quote in CSV line: " + line);
  }
  (void)was_quoted;
  cells.push_back(std::move(current));
  return cells;
}

Result<Value> ParseCell(const std::string& cell, ValueType type) {
  switch (type) {
    case ValueType::kInt: {
      if (cell.empty()) return Status::ParseError("empty integer cell");
      int64_t v = 0;
      auto [ptr, ec] =
          std::from_chars(cell.data(), cell.data() + cell.size(), v);
      if (ec != std::errc() || ptr != cell.data() + cell.size()) {
        return Status::ParseError("malformed integer cell '" + cell + "'");
      }
      return Value::Int(v);
    }
    case ValueType::kString:
      // Quotes were already stripped by the splitter.
      return Value::String(cell);
    case ValueType::kBool:
      if (cell == "TRUE") return Value::Bool(true);
      if (cell == "FALSE") return Value::Bool(false);
      return Status::ParseError("malformed boolean cell '" + cell + "'");
  }
  return Status::Internal("unknown value type");
}

}  // namespace

Status WriteCsv(const Relation& rel, std::ostream* out) {
  const Schema& schema = rel.schema();
  for (int i = 0; i < schema.arity(); ++i) {
    if (i > 0) *out << ",";
    *out << schema.field(i).name;
  }
  *out << "\n";
  for (const Tuple& t : rel.SortedTuples()) {
    for (int i = 0; i < t.arity(); ++i) {
      if (i > 0) *out << ",";
      DATACON_ASSIGN_OR_RETURN(std::string cell, ValueToCsv(t.value(i)));
      *out << cell;
    }
    *out << "\n";
  }
  if (!out->good()) return Status::InvalidArgument("CSV write failed");
  return Status::OK();
}

Result<Relation> ReadCsv(std::istream* in, const Schema& schema) {
  std::string line;
  if (!std::getline(*in, line)) {
    return Status::ParseError("CSV input has no header row");
  }
  StripUtf8Bom(&line);
  StripTrailingCr(&line);
  DATACON_ASSIGN_OR_RETURN(std::vector<std::string> header,
                           SplitCsvLine(line));
  if (static_cast<int>(header.size()) != schema.arity()) {
    return Status::ParseError("CSV header has " +
                              std::to_string(header.size()) +
                              " column(s), schema expects " +
                              std::to_string(schema.arity()));
  }
  for (int i = 0; i < schema.arity(); ++i) {
    if (header[static_cast<size_t>(i)] != schema.field(i).name) {
      return Status::ParseError("CSV column '" +
                                header[static_cast<size_t>(i)] +
                                "' does not match schema field '" +
                                schema.field(i).name + "'");
    }
  }

  Relation rel(schema);
  size_t line_number = 1;
  while (std::getline(*in, line)) {
    ++line_number;
    StripTrailingCr(&line);
    if (line.empty()) continue;
    DATACON_ASSIGN_OR_RETURN(std::vector<std::string> cells,
                             SplitCsvLine(line));
    if (static_cast<int>(cells.size()) != schema.arity()) {
      return Status::ParseError("CSV line " + std::to_string(line_number) +
                                " has " + std::to_string(cells.size()) +
                                " cell(s), expected " +
                                std::to_string(schema.arity()));
    }
    std::vector<Value> values;
    values.reserve(cells.size());
    for (int i = 0; i < schema.arity(); ++i) {
      Result<Value> v =
          ParseCell(cells[static_cast<size_t>(i)], schema.field(i).type);
      if (!v.ok()) {
        return Status::ParseError("CSV line " + std::to_string(line_number) +
                                  ": " + v.status().message());
      }
      values.push_back(std::move(v).value());
    }
    DATACON_ASSIGN_OR_RETURN(bool grew, rel.Insert(Tuple(std::move(values))));
    (void)grew;
  }
  return rel;
}

Status SaveCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream out(path);
  if (!out.is_open()) {
    return Status::InvalidArgument("cannot open '" + path + "' for writing");
  }
  return WriteCsv(rel, &out);
}

Result<Relation> LoadCsvFile(const std::string& path, const Schema& schema) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::NotFound("cannot open '" + path + "' for reading");
  }
  return ReadCsv(&in, schema);
}

}  // namespace datacon
