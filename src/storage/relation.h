#ifndef DATACON_STORAGE_RELATION_H_
#define DATACON_STORAGE_RELATION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"
#include "types/schema.h"

namespace datacon {

/// An in-memory relation variable: a set of tuples over a Schema, with the
/// paper's key constraint (section 2.2) enforced on every insertion.
///
/// Inserting a tuple that already exists is a no-op; inserting a tuple that
/// agrees with a stored tuple on the key attributes but differs elsewhere
/// fails with kKeyViolation — the runtime test the paper derives from the
/// annotated set-type definition:
///
///   IF ALL x1,x2 IN rex (x1.key=x2.key ==> x1=x2) THEN rel:=rex ELSE <exc.>
///
/// Relations with an all-attribute key behave as plain sets (the default for
/// derived relations produced by constructors).
class Relation {
 public:
  /// An empty relation over an empty schema.
  Relation() = default;

  /// An empty relation over `schema`.
  explicit Relation(Schema schema);

  Relation(const Relation&) = default;
  Relation(Relation&&) = default;

  /// Assignment replaces the *contents* of an existing relation variable,
  /// not its identity: the target's generation keeps counting up (it never
  /// adopts the source's, which would let a stale observer see an equal
  /// generation across a wholesale content swap), and the insert log is
  /// discarded — a bulk replacement is structural churn, like Clear.
  Relation& operator=(const Relation& other);
  Relation& operator=(Relation&& other) noexcept;

  /// Number of stored tuples.
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Monotonic change counter: starts at 0 and strictly increases on every
  /// mutation that changes the tuple set (a growing Insert, a removing
  /// Erase, a non-empty Clear, any assignment). Failed or no-op mutations
  /// do not bump it. Equal generations of the *same relation object* imply
  /// an unchanged tuple set — the staleness key for hash indexes and the
  /// materialization cache.
  uint64_t generation() const { return generation_; }

  /// The tuples inserted since the relation was at generation `since`, in
  /// insertion order, or nullopt when that history is not reconstructible —
  /// an Erase/Clear/assignment intervened, the bounded insert log
  /// overflowed, or `since` predates this object's history. An engaged
  /// empty vector means "nothing changed".
  std::optional<std::vector<Tuple>> InsertedSince(uint64_t since) const;

  /// Insert-log bound: one delta entry per grown insert is retained, up to
  /// this many, after which delta reconstruction degrades to nullopt
  /// (callers fall back to full recomputation).
  static constexpr size_t kMaxInsertLog = 1 << 16;

  const Schema& schema() const { return schema_; }

  /// The stored tuple set (unordered).
  const std::unordered_set<Tuple, TupleHash>& tuples() const {
    return tuples_;
  }

  /// True iff `t` is stored.
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Inserts `t`. Fails with kTypeError on arity mismatch and with
  /// kKeyViolation when `t` collides with a differing tuple on the key.
  /// Returns true when the relation grew, false when `t` was present.
  Result<bool> Insert(const Tuple& t);

  /// Insert for tuples whose types are statically discharged: the caller
  /// holds a whole-program proof (analysis/typecheck.h) that `t` matches
  /// this schema, so the per-tuple arity/type validation reduces to a
  /// debug assertion. Key enforcement still runs — key facts are data,
  /// not types.
  Result<bool> InsertProven(const Tuple& t);

  /// Inserts every tuple of `other` (union-compatible schema required).
  /// Atomic: the whole batch is validated (arity, field types, key
  /// constraint — both against stored tuples and between distinct new
  /// tuples of the batch) before anything is applied, so a failing
  /// InsertAll leaves the relation unchanged.
  Status InsertAll(const Relation& other);

  /// Removes `t`; returns true when something was removed.
  bool Erase(const Tuple& t);

  /// Removes all tuples, keeping the schema.
  void Clear();

  /// Set equality over the stored tuples (schemas must be union-compatible;
  /// key declarations are not compared).
  bool SameTuples(const Relation& other) const;

  /// Stored tuples in lexicographic order — deterministic output for tests,
  /// examples, and golden files.
  std::vector<Tuple> SortedTuples() const;

  /// Renders the relation as `{<...>, <...>}` in sorted order.
  std::string ToString() const;

 private:
  /// Arity/type/key validation of `t` against this relation's stored
  /// tuples (the per-tuple half of Insert, without mutating).
  Status ValidateTuple(const Tuple& t) const;

  /// The mutation half of Insert/InsertProven, after validation.
  Result<bool> InsertValidated(const Tuple& t);

  /// Records a tuple-set change that is not a pure insert: the insert log
  /// can no longer reconstruct deltas, so it restarts at the new
  /// generation.
  void NoteStructuralChange();

  Schema schema_;
  std::unordered_set<Tuple, TupleHash> tuples_;
  /// Key projection -> stored tuple, maintained only when the key is a
  /// proper subset of the attributes.
  std::unordered_map<Tuple, Tuple, TupleHash> key_to_tuple_;
  bool enforce_key_ = false;
  std::vector<int> key_positions_;

  uint64_t generation_ = 0;
  /// Tuples for generations log_base_+1 .. log_base_+insert_log_.size(), in
  /// order; insert-only histories keep log_base_ + insert_log_.size() ==
  /// generation_.
  uint64_t log_base_ = 0;
  std::vector<Tuple> insert_log_;
};

}  // namespace datacon

#endif  // DATACON_STORAGE_RELATION_H_
