#ifndef DATACON_STORAGE_RELATION_H_
#define DATACON_STORAGE_RELATION_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/tuple.h"
#include "types/schema.h"

namespace datacon {

/// An in-memory relation variable: a set of tuples over a Schema, with the
/// paper's key constraint (section 2.2) enforced on every insertion.
///
/// Inserting a tuple that already exists is a no-op; inserting a tuple that
/// agrees with a stored tuple on the key attributes but differs elsewhere
/// fails with kKeyViolation — the runtime test the paper derives from the
/// annotated set-type definition:
///
///   IF ALL x1,x2 IN rex (x1.key=x2.key ==> x1=x2) THEN rel:=rex ELSE <exc.>
///
/// Relations with an all-attribute key behave as plain sets (the default for
/// derived relations produced by constructors).
class Relation {
 public:
  /// An empty relation over an empty schema.
  Relation() = default;

  /// An empty relation over `schema`.
  explicit Relation(Schema schema);

  /// Number of stored tuples.
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  const Schema& schema() const { return schema_; }

  /// The stored tuple set (unordered).
  const std::unordered_set<Tuple, TupleHash>& tuples() const {
    return tuples_;
  }

  /// True iff `t` is stored.
  bool Contains(const Tuple& t) const { return tuples_.count(t) > 0; }

  /// Inserts `t`. Fails with kTypeError on arity mismatch and with
  /// kKeyViolation when `t` collides with a differing tuple on the key.
  /// Returns true when the relation grew, false when `t` was present.
  Result<bool> Insert(const Tuple& t);

  /// Inserts every tuple of `other` (union-compatible schema required).
  Status InsertAll(const Relation& other);

  /// Removes `t`; returns true when something was removed.
  bool Erase(const Tuple& t);

  /// Removes all tuples, keeping the schema.
  void Clear();

  /// Set equality over the stored tuples (schemas must be union-compatible;
  /// key declarations are not compared).
  bool SameTuples(const Relation& other) const;

  /// Stored tuples in lexicographic order — deterministic output for tests,
  /// examples, and golden files.
  std::vector<Tuple> SortedTuples() const;

  /// Renders the relation as `{<...>, <...>}` in sorted order.
  std::string ToString() const;

 private:
  Schema schema_;
  std::unordered_set<Tuple, TupleHash> tuples_;
  /// Key projection -> stored tuple, maintained only when the key is a
  /// proper subset of the attributes.
  std::unordered_map<Tuple, Tuple, TupleHash> key_to_tuple_;
  bool enforce_key_ = false;
  std::vector<int> key_positions_;
};

}  // namespace datacon

#endif  // DATACON_STORAGE_RELATION_H_
