#include "storage/index.h"

namespace datacon {

HashIndex::HashIndex(const Relation& rel, std::vector<int> columns)
    : rel_(&rel),
      size_at_build_(rel.size()),
      generation_at_build_(rel.generation()),
      columns_(std::move(columns)) {
  buckets_.reserve(rel.size());
  for (const Tuple& t : rel.tuples()) {
    buckets_[t.Project(columns_)].push_back(&t);
  }
}

const std::vector<const Tuple*>& HashIndex::Probe(const Tuple& key) const {
  auto it = buckets_.find(key);
  if (it == buckets_.end()) return empty_;
  return it->second;
}

bool HashIndex::InSync() const {
  return rel_->generation() == generation_at_build_;
}

}  // namespace datacon
