#ifndef DATACON_WORKLOAD_GENERATORS_H_
#define DATACON_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/database.h"

namespace datacon::workload {

/// A directed graph as an explicit edge list over integer node ids; the
/// shared input shape for every recursive-query workload (the deductive
/// database literature's standard drivers: chains, trees, random digraphs,
/// grids, part hierarchies).
struct EdgeList {
  int node_count = 0;
  std::vector<std::pair<int, int>> edges;
};

/// 0 -> 1 -> ... -> n-1. Closure size is n(n-1)/2 — the worst case for
/// bounded unrolling and the best case for seeded search.
EdgeList Chain(int n);

/// A chain whose last node points back to the first. Exercises fixpoint
/// convergence on cyclic data (where pure SLD diverges).
EdgeList Cycle(int n);

/// A complete `fanout`-ary tree of the given depth, edges parent -> child.
EdgeList KaryTree(int depth, int fanout);

/// `edge_count` distinct random edges over n nodes (no self-loops),
/// deterministic in `seed`.
EdgeList RandomDigraph(int n, int edge_count, uint64_t seed);

/// A width x height grid with rightward and downward edges.
EdgeList Grid(int width, int height);

/// A layered DAG: `layers` layers of `width` nodes; each node gets
/// `fanout` random successors in the next layer. The classic
/// bill-of-materials (part explosion) shape.
EdgeList LayeredDag(int layers, int width, int fanout, uint64_t seed);

/// Declares, in `db`:
///   TYPE <prefix>_edgerel = RELATION OF RECORD src, dst: INTEGER END;
///   VAR <prefix>_E: <prefix>_edgerel;
///   CONSTRUCTOR <prefix>_tc FOR Rel: <prefix>_edgerel (): <prefix>_edgerel
/// in exactly the paper's `ahead` shape (identity branch plus left-linear
/// recursive join), and loads `edges` into <prefix>_E.
Status SetupClosure(Database* db, const std::string& prefix,
                    const EdgeList& edges);

/// Loads `edges` into the existing binary integer relation `relation`.
Status LoadEdges(Database* db, const std::string& relation,
                 const EdgeList& edges);

/// The paper's CAD scene: `objects` named parts, Infront/Ontop facts over
/// them, deterministic in `seed`. Declares parttype-style relation types
/// `infrontrel` (front, back) and `ontoprel` (top, base), variables
/// `Infront` and `Ontop`, and the mutually recursive constructors `ahead`
/// and `above` of section 3.1. Roughly `infront_edges` + `ontop_edges`
/// facts are generated (duplicates are dropped).
Status SetupCadScene(Database* db, int objects, int infront_edges,
                     int ontop_edges, uint64_t seed);

}  // namespace datacon::workload

#endif  // DATACON_WORKLOAD_GENERATORS_H_
