#include "workload/generators.h"

#include <random>
#include <set>

#include "ast/builder.h"

namespace datacon::workload {

using build::Constructed;
using build::Each;
using build::Eq;
using build::FieldRef;
using build::IdentityBranch;
using build::MakeBranch;
using build::Rel;
using build::True;
using build::Union;

EdgeList Chain(int n) {
  EdgeList out;
  out.node_count = n;
  for (int i = 0; i + 1 < n; ++i) out.edges.emplace_back(i, i + 1);
  return out;
}

EdgeList Cycle(int n) {
  EdgeList out = Chain(n);
  if (n > 1) out.edges.emplace_back(n - 1, 0);
  return out;
}

EdgeList KaryTree(int depth, int fanout) {
  EdgeList out;
  // Node ids breadth-first: node i has children i*fanout+1 .. i*fanout+fanout.
  int count = 1;
  int layer = 1;
  for (int d = 0; d < depth; ++d) {
    layer *= fanout;
    count += layer;
  }
  out.node_count = count;
  for (int i = 0; i < count; ++i) {
    for (int c = 1; c <= fanout; ++c) {
      int child = i * fanout + c;
      if (child >= count) break;
      out.edges.emplace_back(i, child);
    }
  }
  return out;
}

EdgeList RandomDigraph(int n, int edge_count, uint64_t seed) {
  EdgeList out;
  out.node_count = n;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, n - 1);
  std::set<std::pair<int, int>> seen;
  int attempts = 0;
  while (static_cast<int>(seen.size()) < edge_count &&
         attempts < edge_count * 20) {
    ++attempts;
    int a = pick(rng);
    int b = pick(rng);
    if (a == b) continue;
    seen.emplace(a, b);
  }
  out.edges.assign(seen.begin(), seen.end());
  return out;
}

EdgeList Grid(int width, int height) {
  EdgeList out;
  out.node_count = width * height;
  auto id = [width](int x, int y) { return y * width + x; };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      if (x + 1 < width) out.edges.emplace_back(id(x, y), id(x + 1, y));
      if (y + 1 < height) out.edges.emplace_back(id(x, y), id(x, y + 1));
    }
  }
  return out;
}

EdgeList LayeredDag(int layers, int width, int fanout, uint64_t seed) {
  EdgeList out;
  out.node_count = layers * width;
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, width - 1);
  std::set<std::pair<int, int>> seen;
  for (int layer = 0; layer + 1 < layers; ++layer) {
    for (int i = 0; i < width; ++i) {
      int from = layer * width + i;
      for (int f = 0; f < fanout; ++f) {
        int to = (layer + 1) * width + pick(rng);
        seen.emplace(from, to);
      }
    }
  }
  out.edges.assign(seen.begin(), seen.end());
  return out;
}

Status LoadEdges(Database* db, const std::string& relation,
                 const EdgeList& edges) {
  for (const auto& [a, b] : edges.edges) {
    DATACON_RETURN_IF_ERROR(
        db->Insert(relation, Tuple({Value::Int(a), Value::Int(b)})));
  }
  return Status::OK();
}

Status SetupClosure(Database* db, const std::string& prefix,
                    const EdgeList& edges) {
  const std::string type_name = prefix + "_edgerel";
  const std::string rel_name = prefix + "_E";
  const std::string ctor_name = prefix + "_tc";
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      type_name, Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation(rel_name, type_name));

  // The paper's `ahead` shape, over integer edges:
  //   BEGIN EACH r IN Rel: TRUE,
  //         <f.src, b.dst> OF EACH f IN Rel, EACH b IN Rel {tc}: f.dst = b.src
  //   END tc
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst")},
                  {Each("f", Rel("Rel")),
                   Each("b", Constructed(Rel("Rel"), ctor_name))},
                  Eq(FieldRef("f", "dst"), FieldRef("b", "src")))});
  auto decl = std::make_shared<ConstructorDecl>(
      ctor_name, FormalRelation{"Rel", type_name},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, type_name,
      body);
  DATACON_RETURN_IF_ERROR(db->DefineConstructor(decl));
  return LoadEdges(db, rel_name, edges);
}

Status SetupCadScene(Database* db, int objects, int infront_edges,
                     int ontop_edges, uint64_t seed) {
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "infrontrel",
      Schema({{"front", ValueType::kString}, {"back", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "ontoprel",
      Schema({{"top", ValueType::kString}, {"base", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "aheadrel",
      Schema({{"head", ValueType::kString}, {"tail", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db->DefineRelationType(
      "aboverel",
      Schema({{"high", ValueType::kString}, {"low", ValueType::kString}})));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("Infront", "infrontrel"));
  DATACON_RETURN_IF_ERROR(db->CreateRelation("Ontop", "ontoprel"));

  // Section 3.1, mutual recursion:
  //   CONSTRUCTOR ahead FOR Rel: infrontrel (Ontop_p: ontoprel): aheadrel
  auto ahead_body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("r", "front"), FieldRef("ah", "tail")},
                  {Each("r", Rel("Rel")),
                   Each("ah", Constructed(Rel("Rel"), "ahead",
                                          {Rel("Ontop_p")}))},
                  Eq(FieldRef("r", "back"), FieldRef("ah", "head"))),
       MakeBranch({FieldRef("r", "front"), FieldRef("ab", "low")},
                  {Each("r", Rel("Rel")),
                   Each("ab", Constructed(Rel("Ontop_p"), "above",
                                          {Rel("Rel")}))},
                  Eq(FieldRef("r", "back"), FieldRef("ab", "high")))});
  auto ahead = std::make_shared<ConstructorDecl>(
      "ahead", FormalRelation{"Rel", "infrontrel"},
      std::vector<FormalRelation>{{"Ontop_p", "ontoprel"}},
      std::vector<FormalScalar>{}, "aheadrel", ahead_body);

  //   CONSTRUCTOR above FOR Rel: ontoprel (Infront_p: infrontrel): aboverel
  auto above_body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("r", "top"), FieldRef("ab", "low")},
                  {Each("r", Rel("Rel")),
                   Each("ab", Constructed(Rel("Rel"), "above",
                                          {Rel("Infront_p")}))},
                  Eq(FieldRef("r", "base"), FieldRef("ab", "high"))),
       MakeBranch({FieldRef("r", "top"), FieldRef("ah", "tail")},
                  {Each("r", Rel("Rel")),
                   Each("ah", Constructed(Rel("Infront_p"), "ahead",
                                          {Rel("Rel")}))},
                  Eq(FieldRef("r", "base"), FieldRef("ah", "head")))});
  auto above = std::make_shared<ConstructorDecl>(
      "above", FormalRelation{"Rel", "ontoprel"},
      std::vector<FormalRelation>{{"Infront_p", "infrontrel"}},
      std::vector<FormalScalar>{}, "aboverel", above_body);
  // `ahead` and `above` are mutually recursive: define them as a group.
  DATACON_RETURN_IF_ERROR(db->DefineConstructorGroup({ahead, above}));

  // Random facts over part names p0..p<objects-1>.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pick(0, objects - 1);
  auto part = [](int i) { return Value::String("p" + std::to_string(i)); };
  std::set<std::pair<int, int>> seen;
  int attempts = 0;
  while (static_cast<int>(seen.size()) < infront_edges &&
         attempts < infront_edges * 20) {
    ++attempts;
    int a = pick(rng);
    int b = pick(rng);
    if (a == b) continue;
    if (!seen.emplace(a, b).second) continue;
    DATACON_RETURN_IF_ERROR(db->Insert("Infront", Tuple({part(a), part(b)})));
  }
  seen.clear();
  attempts = 0;
  while (static_cast<int>(seen.size()) < ontop_edges &&
         attempts < ontop_edges * 20) {
    ++attempts;
    int a = pick(rng);
    int b = pick(rng);
    if (a == b) continue;
    if (!seen.emplace(a, b).second) continue;
    DATACON_RETURN_IF_ERROR(db->Insert("Ontop", Tuple({part(a), part(b)})));
  }
  return Status::OK();
}

}  // namespace datacon::workload
