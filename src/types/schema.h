#ifndef DATACON_TYPES_SCHEMA_H_
#define DATACON_TYPES_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "types/value.h"

namespace datacon {

/// One attribute of a record type: a name and a scalar domain.
struct Field {
  std::string name;
  ValueType type;

  friend bool operator==(const Field& a, const Field& b) {
    return a.name == b.name && a.type == b.type;
  }
};

/// The record type of a relation (section 2.2): an ordered list of named
/// fields plus the indices of the key attributes.
///
/// The paper's `RELATION key OF elementtype` declares which attributes form
/// the element identifier. An empty key set means *all* attributes form the
/// key, i.e. plain set semantics — the correct default for derived
/// (selected/constructed) relations, whose tuples are identified by their
/// full value.
class Schema {
 public:
  /// An empty schema (no fields); useful as a placeholder.
  Schema() = default;

  /// Constructs a schema over `fields` with set semantics (all-field key).
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// Constructs a schema with an explicit key. `key_indices` must be valid,
  /// distinct field positions; validated by `Validate()`.
  Schema(std::vector<Field> fields, std::vector<int> key_indices)
      : fields_(std::move(fields)), key_indices_(std::move(key_indices)) {}

  /// Checks field-name uniqueness and key-index validity.
  Status Validate() const;

  /// Number of attributes.
  int arity() const { return static_cast<int>(fields_.size()); }

  const std::vector<Field>& fields() const { return fields_; }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }

  /// Position of the field named `name`, or nullopt.
  std::optional<int> FieldIndex(const std::string& name) const;

  /// The declared key positions; empty means "all attributes".
  const std::vector<int>& declared_key() const { return key_indices_; }

  /// The effective key positions: the declared key, or every position when
  /// no key was declared.
  std::vector<int> EffectiveKey() const;

  /// True when the declared key covers every attribute (set semantics), so
  /// key enforcement degenerates to duplicate elimination.
  bool KeyIsAllAttributes() const;

  /// True iff `other` has the same field types in the same order (names may
  /// differ); this is the compatibility required for union and assignment.
  bool UnionCompatible(const Schema& other) const;

  /// Full structural equality: names, types, and key.
  friend bool operator==(const Schema& a, const Schema& b) {
    return a.fields_ == b.fields_ && a.key_indices_ == b.key_indices_;
  }

  /// Renders e.g. "RECORD front: STRING; back: STRING END KEY <front>".
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
  std::vector<int> key_indices_;
};

}  // namespace datacon

#endif  // DATACON_TYPES_SCHEMA_H_
