#ifndef DATACON_TYPES_VALUE_H_
#define DATACON_TYPES_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>

#include "common/check.h"
#include "common/hash.h"

namespace datacon {

/// Scalar domains of the DBPL fragment. The paper's INTEGER and CARDINAL
/// both map to kInt (a 64-bit signed integer); STRING covers the part
/// identifiers of the CAD examples; BOOLEAN supports predicate-valued
/// attributes.
enum class ValueType {
  kInt,
  kString,
  kBool,
};

/// Canonical spelling of a value type ("INTEGER", "STRING", "BOOLEAN").
std::string_view ValueTypeName(ValueType type);

/// A single scalar value of one of the supported domains.
///
/// Values are immutable once constructed, cheaply copyable (strings are the
/// only heap case), hashable, and totally ordered within a type. Comparing
/// or ordering values of different types is a programming error; the type
/// checker guarantees it never happens for checked programs.
class Value {
 public:
  /// Constructs the integer 0 (the natural zero value).
  Value() : rep_(int64_t{0}) {}

  /// Named constructors, one per domain.
  static Value Int(int64_t v) { return Value(Rep(std::in_place_index<0>, v)); }
  static Value String(std::string v) {
    return Value(Rep(std::in_place_index<1>, std::move(v)));
  }
  static Value Bool(bool v) { return Value(Rep(std::in_place_index<2>, v)); }

  /// The domain this value belongs to.
  ValueType type() const {
    switch (rep_.index()) {
      case 0:
        return ValueType::kInt;
      case 1:
        return ValueType::kString;
      default:
        return ValueType::kBool;
    }
  }

  /// Accessors; each requires the matching type.
  int64_t AsInt() const {
    DATACON_CHECK(type() == ValueType::kInt, "Value is not an integer");
    return std::get<0>(rep_);
  }
  const std::string& AsString() const {
    DATACON_CHECK(type() == ValueType::kString, "Value is not a string");
    return std::get<1>(rep_);
  }
  bool AsBool() const {
    DATACON_CHECK(type() == ValueType::kBool, "Value is not a boolean");
    return std::get<2>(rep_);
  }

  /// Three-way comparison within a single type: negative, zero, or positive
  /// as this value sorts before, equal to, or after `other`. Requires both
  /// values to have the same type.
  int Compare(const Value& other) const;

  /// Renders the value for diagnostics: integers as digits, strings quoted,
  /// booleans as TRUE/FALSE.
  std::string ToString() const;

  size_t Hash() const {
    size_t seed = rep_.index();
    switch (rep_.index()) {
      case 0:
        HashCombineValue(seed, std::get<0>(rep_));
        break;
      case 1:
        HashCombineValue(seed, std::get<1>(rep_));
        break;
      default:
        HashCombineValue(seed, std::get<2>(rep_));
        break;
    }
    return seed;
  }

  friend bool operator==(const Value& a, const Value& b) {
    return a.rep_ == b.rep_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }
  /// Orders first by type index, then by value; gives deterministic sorted
  /// output for relations holding a single type per column.
  friend bool operator<(const Value& a, const Value& b) {
    if (a.rep_.index() != b.rep_.index()) return a.rep_.index() < b.rep_.index();
    return a.Compare(b) < 0;
  }

 private:
  using Rep = std::variant<int64_t, std::string, bool>;
  explicit Value(Rep rep) : rep_(std::move(rep)) {}

  Rep rep_;
};

}  // namespace datacon

namespace std {
template <>
struct hash<datacon::Value> {
  size_t operator()(const datacon::Value& v) const { return v.Hash(); }
};
}  // namespace std

#endif  // DATACON_TYPES_VALUE_H_
