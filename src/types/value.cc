#include "types/value.h"

namespace datacon {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return "INTEGER";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOLEAN";
  }
  return "UNKNOWN";
}

int Value::Compare(const Value& other) const {
  DATACON_CHECK(type() == other.type(),
                "Compare across types: " + ToString() + " vs " +
                    other.ToString());
  switch (type()) {
    case ValueType::kInt: {
      int64_t a = AsInt(), b = other.AsInt();
      return a < b ? -1 : (a > b ? 1 : 0);
    }
    case ValueType::kString: {
      int c = AsString().compare(other.AsString());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
    case ValueType::kBool: {
      int a = AsBool() ? 1 : 0, b = other.AsBool() ? 1 : 0;
      return a - b;
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kString:
      return "\"" + AsString() + "\"";
    case ValueType::kBool:
      return AsBool() ? "TRUE" : "FALSE";
  }
  return "?";
}

}  // namespace datacon
