#include "types/schema.h"

#include <set>

namespace datacon {

Status Schema::Validate() const {
  std::set<std::string> names;
  for (const Field& f : fields_) {
    if (f.name.empty()) {
      return Status::InvalidArgument("schema has a field with empty name");
    }
    if (!names.insert(f.name).second) {
      return Status::InvalidArgument("duplicate field name '" + f.name + "'");
    }
  }
  std::set<int> seen;
  for (int k : key_indices_) {
    if (k < 0 || k >= arity()) {
      return Status::InvalidArgument("key index " + std::to_string(k) +
                                     " out of range for arity " +
                                     std::to_string(arity()));
    }
    if (!seen.insert(k).second) {
      return Status::InvalidArgument("duplicate key index " +
                                     std::to_string(k));
    }
  }
  return Status::OK();
}

std::optional<int> Schema::FieldIndex(const std::string& name) const {
  for (int i = 0; i < arity(); ++i) {
    if (fields_[static_cast<size_t>(i)].name == name) return i;
  }
  return std::nullopt;
}

std::vector<int> Schema::EffectiveKey() const {
  if (!key_indices_.empty()) return key_indices_;
  std::vector<int> all(static_cast<size_t>(arity()));
  for (int i = 0; i < arity(); ++i) all[static_cast<size_t>(i)] = i;
  return all;
}

bool Schema::KeyIsAllAttributes() const {
  if (key_indices_.empty()) return true;
  if (static_cast<int>(key_indices_.size()) != arity()) return false;
  std::set<int> s(key_indices_.begin(), key_indices_.end());
  return static_cast<int>(s.size()) == arity();
}

bool Schema::UnionCompatible(const Schema& other) const {
  if (arity() != other.arity()) return false;
  for (int i = 0; i < arity(); ++i) {
    if (field(i).type != other.field(i).type) return false;
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out = "RECORD ";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += "; ";
    out += fields_[i].name;
    out += ": ";
    out += ValueTypeName(fields_[i].type);
  }
  out += " END";
  if (!key_indices_.empty()) {
    out += " KEY <";
    for (size_t i = 0; i < key_indices_.size(); ++i) {
      if (i > 0) out += ", ";
      out += fields_[static_cast<size_t>(key_indices_[i])].name;
    }
    out += ">";
  }
  return out;
}

}  // namespace datacon
