#include "core/capture.h"

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "ra/analysis.h"

namespace datacon {

namespace {

/// True when `branch` is the closure's base case: the identity over the
/// formal base `rel`, or an explicit field-for-field projection of it.
bool IsBaseBranch(const Branch& branch, const std::string& rel) {
  if (branch.bindings().size() != 1) return false;
  const Binding& b = branch.bindings()[0];
  if (b.range->relation() != rel || !b.range->IsPlain()) return false;
  if (!FlattenConjuncts(branch.pred()).empty()) return false;  // pred != TRUE
  if (!branch.targets().has_value()) return true;
  // <r.f0, r.f1> over the base, in field order, also counts.
  const auto& ts = *branch.targets();
  if (ts.size() != 2) return false;
  for (int i = 0; i < 2; ++i) {
    if (ts[static_cast<size_t>(i)]->kind() != Term::Kind::kFieldRef) {
      return false;
    }
    const auto& f =
        static_cast<const FieldRefTerm&>(*ts[static_cast<size_t>(i)]);
    if (f.var() != b.var) return false;
    // Field order is validated against the base schema by the caller's
    // type check; here we only require both positions reference the bound
    // variable with distinct fields.
  }
  const auto& f0 = static_cast<const FieldRefTerm&>(*ts[0]);
  const auto& f1 = static_cast<const FieldRefTerm&>(*ts[1]);
  return f0.field() != f1.field();
}

struct FieldOf {
  std::string var;
  std::string field;
};

std::optional<FieldOf> AsField(const TermPtr& t) {
  if (t->kind() != Term::Kind::kFieldRef) return std::nullopt;
  const auto& f = static_cast<const FieldRefTerm&>(*t);
  return FieldOf{f.var(), f.field()};
}

}  // namespace

std::optional<TransitiveClosureInfo> DetectTransitiveClosure(
    const ConstructorDecl& decl) {
  if (!decl.rel_params().empty() || !decl.scalar_params().empty()) {
    return std::nullopt;
  }
  if (decl.body()->branches().size() != 2) return std::nullopt;
  const std::string& rel = decl.base().name;

  const Branch* base_branch = nullptr;
  const Branch* step_branch = nullptr;
  for (const BranchPtr& b : decl.body()->branches()) {
    if (base_branch == nullptr && IsBaseBranch(*b, rel)) {
      base_branch = b.get();
    } else {
      step_branch = b.get();
    }
  }
  if (base_branch == nullptr || step_branch == nullptr) return std::nullopt;

  // The step branch: EACH f IN Rel, EACH b IN Rel{decl} joined on one
  // equality, projecting <outer-source, recursive-target> (left-linear) or
  // the mirror image (right-linear).
  if (step_branch->bindings().size() != 2) return std::nullopt;
  const Binding* outer = nullptr;   // over the plain base
  const Binding* rec = nullptr;     // over Rel{decl}
  for (const Binding& b : step_branch->bindings()) {
    if (b.range->relation() != rel) return std::nullopt;
    if (b.range->IsPlain()) {
      if (outer != nullptr) return std::nullopt;
      outer = &b;
    } else {
      const auto& apps = b.range->apps();
      if (apps.size() != 1 || apps[0].kind != RangeApp::Kind::kConstructor ||
          apps[0].name != decl.name() || !apps[0].range_args.empty() ||
          !apps[0].term_args.empty()) {
        return std::nullopt;
      }
      if (rec != nullptr) return std::nullopt;
      rec = &b;
    }
  }
  if (outer == nullptr || rec == nullptr) return std::nullopt;

  std::vector<PredPtr> conjuncts = FlattenConjuncts(step_branch->pred());
  if (conjuncts.size() != 1 ||
      conjuncts[0]->kind() != Pred::Kind::kCompare) {
    return std::nullopt;
  }
  const auto& cmp = static_cast<const ComparePred&>(*conjuncts[0]);
  if (cmp.op() != CompareOp::kEq) return std::nullopt;
  std::optional<FieldOf> lhs = AsField(cmp.lhs());
  std::optional<FieldOf> rhs = AsField(cmp.rhs());
  if (!lhs.has_value() || !rhs.has_value()) return std::nullopt;
  // Normalize: the join must connect the outer variable and the recursive
  // variable.
  const FieldOf* outer_side = nullptr;
  const FieldOf* rec_side = nullptr;
  for (const FieldOf* side : {&*lhs, &*rhs}) {
    if (side->var == outer->var) outer_side = side;
    if (side->var == rec->var) rec_side = side;
  }
  if (outer_side == nullptr || rec_side == nullptr) return std::nullopt;

  if (!step_branch->targets().has_value()) return std::nullopt;
  const auto& ts = *step_branch->targets();
  if (ts.size() != 2) return std::nullopt;
  std::optional<FieldOf> t0 = AsField(ts[0]);
  std::optional<FieldOf> t1 = AsField(ts[1]);
  if (!t0.has_value() || !t1.has_value()) return std::nullopt;

  // Left-linear (`ahead`): <outer.src, rec.tgt>, join outer.dst = rec.src.
  if (t0->var == outer->var && t1->var == rec->var &&
      outer_side->field != t0->field && rec_side->field != t1->field) {
    return TransitiveClosureInfo{/*left_linear=*/true};
  }
  // Right-linear mirror: <rec.src, outer.dst>, join rec.tgt = outer.src.
  if (t0->var == rec->var && t1->var == outer->var &&
      rec_side->field != t0->field && outer_side->field != t1->field) {
    return TransitiveClosureInfo{/*left_linear=*/false};
  }
  return std::nullopt;
}

namespace {

/// Adjacency of a binary relation: first column -> list of second columns.
std::unordered_map<Value, std::vector<Value>> BuildAdjacency(
    const Relation& edges) {
  std::unordered_map<Value, std::vector<Value>> adj;
  adj.reserve(edges.size());
  for (const Tuple& t : edges.tuples()) {
    adj[t.value(0)].push_back(t.value(1));
  }
  return adj;
}

/// Appends (source, x) for every x reachable from `source` via >= 1 edge.
Status ClosureFrom(const Value& source,
                   const std::unordered_map<Value, std::vector<Value>>& adj,
                   Relation* out) {
  std::unordered_set<Value> visited;
  std::deque<Value> frontier;
  frontier.push_back(source);
  while (!frontier.empty()) {
    Value v = std::move(frontier.front());
    frontier.pop_front();
    auto it = adj.find(v);
    if (it == adj.end()) continue;
    for (const Value& next : it->second) {
      if (!visited.insert(next).second) continue;
      DATACON_ASSIGN_OR_RETURN(bool grew,
                               out->Insert(Tuple({source, next})));
      (void)grew;
      frontier.push_back(next);
    }
  }
  return Status::OK();
}

}  // namespace

Result<Relation> FullClosure(const Relation& edges,
                             const Schema& result_schema) {
  if (edges.schema().arity() != 2 || result_schema.arity() != 2) {
    return Status::TypeError("transitive closure requires binary relations");
  }
  std::unordered_map<Value, std::vector<Value>> adj = BuildAdjacency(edges);
  Relation out(result_schema);
  for (const auto& [source, unused] : adj) {
    (void)unused;
    DATACON_RETURN_IF_ERROR(ClosureFrom(source, adj, &out));
  }
  return out;
}

Result<Relation> SeededClosure(const Relation& edges,
                               const std::vector<Value>& seeds,
                               const Schema& result_schema) {
  if (edges.schema().arity() != 2 || result_schema.arity() != 2) {
    return Status::TypeError("transitive closure requires binary relations");
  }
  std::unordered_map<Value, std::vector<Value>> adj = BuildAdjacency(edges);
  Relation out(result_schema);
  for (const Value& seed : seeds) {
    DATACON_RETURN_IF_ERROR(ClosureFrom(seed, adj, &out));
  }
  return out;
}

}  // namespace datacon
