#ifndef DATACON_CORE_CAPTURE_H_
#define DATACON_CORE_CAPTURE_H_

#include <optional>
#include <vector>

#include "ast/decl.h"
#include "common/result.h"
#include "storage/relation.h"
#include "types/schema.h"
#include "types/value.h"

namespace datacon {

/// Result of the transitive-closure capture rule (section 4, step 3:
/// "attempt to employ capture rules [Ullm 84] to detect special cases such
/// as [Schn 78]").
///
/// A constructor matches when it has the paper's `ahead` shape over binary
/// relations:
///
///   CONSTRUCTOR c FOR Rel: basetype (): resulttype;
///   BEGIN EACH r IN Rel: TRUE,
///         <f.a0, b.t1> OF EACH f IN Rel, EACH b IN Rel {c}: f.a1 = b.t0
///   END c
///
/// (left-linear; the mirrored right-linear form also matches). Such a
/// constructor denotes the transitive closure of its base, which a
/// specialized frontier algorithm computes without generic join machinery.
struct TransitiveClosureInfo {
  /// True for the `ahead` orientation (recursive tuple extends on the
  /// right); false for the mirrored right-linear form.
  bool left_linear = true;
};

/// Detects the transitive-closure shape. Returns nullopt when the
/// constructor is well-formed but differently shaped. The constructor must
/// have no parameters, a binary base, and a binary result.
std::optional<TransitiveClosureInfo> DetectTransitiveClosure(
    const ConstructorDecl& decl);

/// The full transitive closure of the binary relation `edges`, computed by
/// a breadth-first frontier per source node. `result_schema` must be binary
/// with field types matching `edges`.
Result<Relation> FullClosure(const Relation& edges,
                             const Schema& result_schema);

/// The tuples of the transitive closure whose first component is in
/// `seeds` — the "magic" variant used when a query binds the source
/// attribute (the paper's `Infront [hidden_by("table")] {ahead}` plan):
/// only reachability from the seeds is ever computed.
Result<Relation> SeededClosure(const Relation& edges,
                               const std::vector<Value>& seeds,
                               const Schema& result_schema);

}  // namespace datacon

#endif  // DATACON_CORE_CAPTURE_H_
