#include "core/subst.h"

#include "common/check.h"

namespace datacon {

TermPtr SubstituteTerm(const TermPtr& term, const Substitution& subst) {
  switch (term->kind()) {
    case Term::Kind::kFieldRef:
    case Term::Kind::kLiteral:
      return term;
    case Term::Kind::kParamRef: {
      const auto& t = static_cast<const ParamRefTerm&>(*term);
      auto it = subst.scalars.find(t.name());
      if (it == subst.scalars.end()) return term;
      return it->second;
    }
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(*term);
      TermPtr lhs = SubstituteTerm(t.lhs(), subst);
      TermPtr rhs = SubstituteTerm(t.rhs(), subst);
      if (lhs == t.lhs() && rhs == t.rhs()) return term;
      return std::make_shared<ArithTerm>(t.op(), std::move(lhs), std::move(rhs));
    }
  }
  DATACON_UNREACHABLE("term kind");
}

RangePtr SubstituteRange(const RangePtr& range, const Substitution& subst) {
  auto substitute_apps = [&](const std::vector<RangeApp>& apps) {
    std::vector<RangeApp> out;
    out.reserve(apps.size());
    for (const RangeApp& app : apps) {
      RangeApp copy;
      copy.kind = app.kind;
      copy.name = app.name;
      for (const TermPtr& t : app.term_args) {
        copy.term_args.push_back(SubstituteTerm(t, subst));
      }
      for (const RangePtr& r : app.range_args) {
        copy.range_args.push_back(SubstituteRange(r, subst));
      }
      out.push_back(std::move(copy));
    }
    return out;
  };

  auto it = subst.relations.find(range->relation());
  if (it == subst.relations.end()) {
    return std::make_shared<Range>(range->relation(),
                                   substitute_apps(range->apps()));
  }
  // Splice: the actual's own suffix chain comes first, then this
  // occurrence's (substituted) suffixes.
  const RangePtr& actual = it->second;
  std::vector<RangeApp> apps = actual->apps();
  std::vector<RangeApp> own = substitute_apps(range->apps());
  apps.insert(apps.end(), own.begin(), own.end());
  return std::make_shared<Range>(actual->relation(), std::move(apps));
}

PredPtr SubstitutePred(const PredPtr& pred, const Substitution& subst) {
  switch (pred->kind()) {
    case Pred::Kind::kBool:
      return pred;
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(*pred);
      return std::make_shared<ComparePred>(p.op(), SubstituteTerm(p.lhs(), subst),
                                           SubstituteTerm(p.rhs(), subst));
    }
    case Pred::Kind::kAnd: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const AndPred&>(*pred).operands()) {
        ops.push_back(SubstitutePred(op, subst));
      }
      return std::make_shared<AndPred>(std::move(ops));
    }
    case Pred::Kind::kOr: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const OrPred&>(*pred).operands()) {
        ops.push_back(SubstitutePred(op, subst));
      }
      return std::make_shared<OrPred>(std::move(ops));
    }
    case Pred::Kind::kNot: {
      const auto& p = static_cast<const NotPred&>(*pred);
      return std::make_shared<NotPred>(SubstitutePred(p.operand(), subst));
    }
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(*pred);
      return std::make_shared<QuantPred>(p.quantifier(), p.var(),
                                         SubstituteRange(p.range(), subst),
                                         SubstitutePred(p.body(), subst));
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(*pred);
      std::vector<TermPtr> tuple;
      for (const TermPtr& t : p.tuple()) {
        tuple.push_back(SubstituteTerm(t, subst));
      }
      return std::make_shared<InPred>(std::move(tuple),
                                      SubstituteRange(p.range(), subst));
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

BranchPtr SubstituteBranch(const BranchPtr& branch, const Substitution& subst) {
  std::vector<Binding> bindings;
  bindings.reserve(branch->bindings().size());
  for (const Binding& b : branch->bindings()) {
    bindings.push_back(Binding{b.var, SubstituteRange(b.range, subst), b.loc});
  }
  std::optional<std::vector<TermPtr>> targets;
  if (branch->targets().has_value()) {
    targets.emplace();
    for (const TermPtr& t : *branch->targets()) {
      targets->push_back(SubstituteTerm(t, subst));
    }
  }
  return std::make_shared<Branch>(std::move(bindings),
                                  SubstitutePred(branch->pred(), subst),
                                  std::move(targets), branch->loc());
}

CalcExprPtr SubstituteExpr(const CalcExprPtr& expr, const Substitution& subst) {
  std::vector<BranchPtr> branches;
  branches.reserve(expr->branches().size());
  for (const BranchPtr& b : expr->branches()) {
    branches.push_back(SubstituteBranch(b, subst));
  }
  return std::make_shared<CalcExpr>(std::move(branches));
}

TermPtr SubstituteFields(const TermPtr& term, const FieldSubstitution& subst) {
  switch (term->kind()) {
    case Term::Kind::kLiteral:
    case Term::Kind::kParamRef:
      return term;
    case Term::Kind::kFieldRef: {
      const auto& t = static_cast<const FieldRefTerm&>(*term);
      auto it = subst.find({t.var(), t.field()});
      return it == subst.end() ? term : it->second;
    }
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(*term);
      return std::make_shared<ArithTerm>(t.op(), SubstituteFields(t.lhs(), subst),
                                         SubstituteFields(t.rhs(), subst));
    }
  }
  DATACON_UNREACHABLE("term kind");
}

PredPtr SubstituteFields(const PredPtr& pred, const FieldSubstitution& subst) {
  switch (pred->kind()) {
    case Pred::Kind::kBool:
      return pred;
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(*pred);
      return std::make_shared<ComparePred>(p.op(),
                                           SubstituteFields(p.lhs(), subst),
                                           SubstituteFields(p.rhs(), subst));
    }
    case Pred::Kind::kAnd: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const AndPred&>(*pred).operands()) {
        ops.push_back(SubstituteFields(op, subst));
      }
      return std::make_shared<AndPred>(std::move(ops));
    }
    case Pred::Kind::kOr: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const OrPred&>(*pred).operands()) {
        ops.push_back(SubstituteFields(op, subst));
      }
      return std::make_shared<OrPred>(std::move(ops));
    }
    case Pred::Kind::kNot: {
      const auto& p = static_cast<const NotPred&>(*pred);
      return std::make_shared<NotPred>(SubstituteFields(p.operand(), subst));
    }
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(*pred);
      // Semantic analysis forbids shadowing, so the quantified variable can
      // never collide with a substituted one.
      return std::make_shared<QuantPred>(p.quantifier(), p.var(), p.range(),
                                         SubstituteFields(p.body(), subst));
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(*pred);
      std::vector<TermPtr> tuple;
      for (const TermPtr& t : p.tuple()) {
        tuple.push_back(SubstituteFields(t, subst));
      }
      return std::make_shared<InPred>(std::move(tuple), p.range());
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

}  // namespace datacon
