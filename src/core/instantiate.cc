#include "core/instantiate.h"

#include "ast/printer.h"
#include "common/check.h"
#include "core/positivity.h"
#include "core/subst.h"

namespace datacon {

RangeSplit SplitAtLastConstructor(const Range& range) {
  RangeSplit split;
  int last_ctor = -1;
  const std::vector<RangeApp>& apps = range.apps();
  for (size_t i = 0; i < apps.size(); ++i) {
    if (apps[i].kind == RangeApp::Kind::kConstructor) {
      last_ctor = static_cast<int>(i);
    }
  }
  if (last_ctor < 0) {
    split.base_relation = range.relation();
    split.trailing_selectors = apps;
    return split;
  }
  std::vector<RangeApp> head_apps(apps.begin(),
                                  apps.begin() + last_ctor + 1);
  split.ctor_head =
      std::make_shared<Range>(range.relation(), std::move(head_apps));
  split.base_relation = range.relation();
  split.trailing_selectors.assign(apps.begin() + last_ctor + 1, apps.end());
  return split;
}

Status ApplicationGraph::AddRoots(const CalcExpr& expr) {
  DATACON_RETURN_IF_ERROR(ScanExpr(expr, /*from_node=*/-1));
  return DrainPending();
}

Result<int> ApplicationGraph::AddRootRange(const Range& range) {
  RangeSplit split = SplitAtLastConstructor(range);
  if (!split.ctor_head.has_value()) return -1;
  DATACON_ASSIGN_OR_RETURN(int root, NodeFor(*split.ctor_head));
  DATACON_RETURN_IF_ERROR(DrainPending());
  return root;
}

Status ApplicationGraph::DrainPending() {
  while (!pending_.empty()) {
    int id = pending_.back();
    pending_.pop_back();
    DATACON_RETURN_IF_ERROR(
        ScanExpr(*nodes_[static_cast<size_t>(id)].body, id));
  }
  return Status::OK();
}

Result<int> ApplicationGraph::FindNode(const Range& head) const {
  auto it = key_to_node_.find(ToString(head));
  if (it == key_to_node_.end()) {
    return Status::NotFound("application '" + ToString(head) +
                            "' was not instantiated");
  }
  return it->second;
}

Digraph ApplicationGraph::BuildDigraph() const {
  Digraph g(static_cast<int>(nodes_.size()));
  for (const AppEdge& e : edges_) g.AddEdge(e.from, e.to);
  return g;
}

Result<SccDecomposition> ApplicationGraph::Stratify() const {
  SccDecomposition scc = ComputeScc(BuildDigraph());
  for (const AppEdge& e : edges_) {
    if (!e.negative) continue;
    if (scc.component_of[static_cast<size_t>(e.from)] ==
        scc.component_of[static_cast<size_t>(e.to)]) {
      return Status::PositivityViolation(
          "application '" + nodes_[static_cast<size_t>(e.from)].key +
          "' depends negatively on '" + nodes_[static_cast<size_t>(e.to)].key +
          "' within the same recursive component; the system is not "
          "stratifiable");
    }
  }
  return scc;
}

Result<int> ApplicationGraph::NodeFor(const RangePtr& head) {
  std::string key = ToString(*head);
  auto it = key_to_node_.find(key);
  if (it != key_to_node_.end()) return it->second;

  if (nodes_.size() >= kMaxNodes) {
    return Status::Unsupported(
        "constructor instantiation exceeded " + std::to_string(kMaxNodes) +
        " distinct applications; the application set does not close");
  }

  DATACON_CHECK(!head->apps().empty() &&
                    head->apps().back().kind == RangeApp::Kind::kConstructor,
                "NodeFor requires a range ending in a constructor application");
  const RangeApp& app = head->apps().back();

  DATACON_ASSIGN_OR_RETURN(const ConstructorDecl* ctor,
                           catalog_->LookupConstructor(app.name));

  // The base of the application: the head minus its final application.
  std::vector<RangeApp> base_apps(head->apps().begin(),
                                  head->apps().end() - 1);
  RangePtr base = std::make_shared<Range>(head->relation(),
                                          std::move(base_apps));

  // Section 3.2: replace all formal parameters by their actual values.
  Substitution subst;
  subst.relations.emplace(ctor->base().name, base);
  if (app.range_args.size() != ctor->rel_params().size()) {
    return Status::TypeError("constructor '" + app.name +
                             "' relation-argument count mismatch");
  }
  for (size_t i = 0; i < app.range_args.size(); ++i) {
    subst.relations.emplace(ctor->rel_params()[i].name, app.range_args[i]);
  }
  if (app.term_args.size() != ctor->scalar_params().size()) {
    return Status::TypeError("constructor '" + app.name +
                             "' scalar-argument count mismatch");
  }
  for (size_t i = 0; i < app.term_args.size(); ++i) {
    subst.scalars.emplace(ctor->scalar_params()[i].name, app.term_args[i]);
  }

  Node node;
  node.key = key;
  node.ctor = ctor;
  node.base = base;
  node.body = SubstituteExpr(ctor->body(), subst);
  DATACON_ASSIGN_OR_RETURN(
      const Schema* result_schema,
      catalog_->LookupRelationType(ctor->result_type_name()));
  node.result_schema = *result_schema;

  int id = static_cast<int>(nodes_.size());
  // Register the key immediately so recursive references resolve to this
  // node instead of expanding forever — the finite representation of the
  // infinite derivation sequence. The body is scanned later by
  // DrainPending.
  key_to_node_.emplace(std::move(key), id);
  nodes_.push_back(std::move(node));
  pending_.push_back(id);
  return id;
}

Status ApplicationGraph::ScanExpr(const CalcExpr& expr, int from_node) {
  // Collect first, then recurse: ForEachRangeWithParity takes a plain
  // callback, and instantiation can itself extend the graph.
  struct Occurrence {
    RangePtr head;
    bool negative;
  };
  std::vector<Occurrence> occurrences;
  for (const BranchPtr& branch : expr.branches()) {
    ForEachRangeWithParity(*branch, [&](const Range& range, int parity) {
      if (!range.ContainsConstructor()) return;
      RangeSplit split = SplitAtLastConstructor(range);
      DATACON_CHECK(split.ctor_head.has_value(),
                    "constructor-containing range with no head");
      occurrences.push_back(Occurrence{*split.ctor_head, parity % 2 != 0});
    });
  }
  for (const Occurrence& occ : occurrences) {
    DATACON_ASSIGN_OR_RETURN(int to, NodeFor(occ.head));
    if (from_node >= 0) {
      edges_.push_back(AppEdge{from_node, to, occ.negative});
    }
  }
  return Status::OK();
}

}  // namespace datacon
