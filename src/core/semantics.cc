#include "core/semantics.h"

#include <set>

#include "ast/printer.h"
#include "common/check.h"

namespace datacon {

namespace {

/// Structural field equality (names and types, ignoring key declarations):
/// the compatibility needed when a relation flows into a position whose
/// declared type names the same fields.
bool SchemaFieldsEqual(const Schema& a, const Schema& b) {
  return a.fields() == b.fields();
}

Status CheckTermAgainst(const Term& term, ValueType expected,
                        const AnalysisScope& scope, const std::string& what) {
  DATACON_ASSIGN_OR_RETURN(ValueType actual, TermTypeOf(term, scope));
  if (actual != expected) {
    return Status::TypeError(what + ": expected " +
                             std::string(ValueTypeName(expected)) + ", got " +
                             std::string(ValueTypeName(actual)) + " in '" +
                             ToString(term) + "'");
  }
  return Status::OK();
}

/// Checks one branch against an expected result schema, under `scope`
/// (formals/params set by the caller; tuple variables managed here).
Status CheckBranchAgainst(const Branch& branch, AnalysisScope* scope,
                          const Schema& result_schema) {
  if (branch.bindings().empty()) {
    return Status::TypeError("branch binds no variables: " + ToString(branch));
  }
  std::set<std::string> branch_vars;
  const Schema* single_schema = nullptr;
  for (const Binding& b : branch.bindings()) {
    if (scope->vars.count(b.var) > 0) {
      return Status::TypeError("duplicate or shadowing variable '" + b.var +
                               "' in branch: " + ToString(branch));
    }
    DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                             RangeSchemaOf(*b.range, *scope));
    scope->vars.emplace(b.var, schema);
    branch_vars.insert(b.var);
    single_schema = schema;
  }

  Status status = CheckPred(*branch.pred(), scope);

  if (status.ok()) {
    if (branch.targets().has_value()) {
      const auto& targets = *branch.targets();
      if (static_cast<int>(targets.size()) != result_schema.arity()) {
        status = Status::TypeError(
            "target list has " + std::to_string(targets.size()) +
            " terms, result type has arity " +
            std::to_string(result_schema.arity()) + ": " + ToString(branch));
      } else {
        for (int i = 0; status.ok() && i < result_schema.arity(); ++i) {
          status = CheckTermAgainst(
              *targets[static_cast<size_t>(i)], result_schema.field(i).type,
              *scope, "target position " + std::to_string(i));
        }
      }
    } else {
      if (branch.bindings().size() != 1) {
        status = Status::TypeError(
            "a branch without a target list must bind exactly one variable: " +
            ToString(branch));
      } else if (!single_schema->UnionCompatible(result_schema)) {
        status = Status::TypeError(
            "identity branch over " + single_schema->ToString() +
            " is not union-compatible with result " + result_schema.ToString());
      }
    }
  }

  for (const std::string& v : branch_vars) scope->vars.erase(v);
  return status;
}

}  // namespace

Result<const Schema*> RangeSchemaOf(const Range& range,
                                    const AnalysisScope& scope) {
  DATACON_CHECK(scope.catalog != nullptr, "scope without catalog");
  // Resolve the base: a formal relation parameter shadows a catalog
  // relation variable of the same name.
  const Schema* current = nullptr;
  auto formal = scope.relation_formals.find(range.relation());
  if (formal != scope.relation_formals.end()) {
    DATACON_ASSIGN_OR_RETURN(current,
                             scope.catalog->LookupRelationType(formal->second));
  } else {
    auto type_name = scope.catalog->LookupRelationTypeName(range.relation());
    if (!type_name.ok()) {
      return Status::NotFound("relation '" + range.relation() +
                              "' is neither a formal parameter nor a declared "
                              "relation variable");
    }
    DATACON_ASSIGN_OR_RETURN(
        current, scope.catalog->LookupRelationType(*type_name.value()));
  }

  for (const RangeApp& app : range.apps()) {
    if (app.kind == RangeApp::Kind::kSelector) {
      DATACON_ASSIGN_OR_RETURN(const SelectorDecl* sel,
                               scope.catalog->LookupSelector(app.name));
      DATACON_ASSIGN_OR_RETURN(
          const Schema* sel_base,
          scope.catalog->LookupRelationType(sel->base().type_name));
      if (!SchemaFieldsEqual(*current, *sel_base)) {
        return Status::TypeError("selector '" + app.name + "' expects " +
                                 sel_base->ToString() + ", applied to " +
                                 current->ToString());
      }
      if (app.term_args.size() != sel->params().size()) {
        return Status::TypeError(
            "selector '" + app.name + "' takes " +
            std::to_string(sel->params().size()) + " argument(s), got " +
            std::to_string(app.term_args.size()));
      }
      for (size_t i = 0; i < app.term_args.size(); ++i) {
        DATACON_RETURN_IF_ERROR(CheckTermAgainst(
            *app.term_args[i], sel->params()[i].type, scope,
            "argument '" + sel->params()[i].name + "' of selector '" +
                app.name + "'"));
      }
      // Selectors restrict but never change the element type.
      continue;
    }

    DATACON_ASSIGN_OR_RETURN(const ConstructorDecl* ctor,
                             scope.catalog->LookupConstructor(app.name));
    DATACON_ASSIGN_OR_RETURN(
        const Schema* ctor_base,
        scope.catalog->LookupRelationType(ctor->base().type_name));
    if (!SchemaFieldsEqual(*current, *ctor_base)) {
      return Status::TypeError("constructor '" + app.name + "' expects base " +
                               ctor_base->ToString() + ", applied to " +
                               current->ToString());
    }
    if (app.range_args.size() != ctor->rel_params().size()) {
      return Status::TypeError(
          "constructor '" + app.name + "' takes " +
          std::to_string(ctor->rel_params().size()) +
          " relation argument(s), got " + std::to_string(app.range_args.size()));
    }
    for (size_t i = 0; i < app.range_args.size(); ++i) {
      DATACON_ASSIGN_OR_RETURN(const Schema* arg_schema,
                               RangeSchemaOf(*app.range_args[i], scope));
      DATACON_ASSIGN_OR_RETURN(
          const Schema* formal_schema,
          scope.catalog->LookupRelationType(ctor->rel_params()[i].type_name));
      if (!SchemaFieldsEqual(*arg_schema, *formal_schema)) {
        return Status::TypeError(
            "relation argument '" + ctor->rel_params()[i].name +
            "' of constructor '" + app.name + "' expects " +
            formal_schema->ToString() + ", got " + arg_schema->ToString());
      }
    }
    if (app.term_args.size() != ctor->scalar_params().size()) {
      return Status::TypeError(
          "constructor '" + app.name + "' takes " +
          std::to_string(ctor->scalar_params().size()) +
          " scalar argument(s), got " + std::to_string(app.term_args.size()));
    }
    for (size_t i = 0; i < app.term_args.size(); ++i) {
      DATACON_RETURN_IF_ERROR(CheckTermAgainst(
          *app.term_args[i], ctor->scalar_params()[i].type, scope,
          "scalar argument '" + ctor->scalar_params()[i].name +
              "' of constructor '" + app.name + "'"));
    }
    DATACON_ASSIGN_OR_RETURN(
        current, scope.catalog->LookupRelationType(ctor->result_type_name()));
  }
  return current;
}

Result<ValueType> TermTypeOf(const Term& term, const AnalysisScope& scope) {
  switch (term.kind()) {
    case Term::Kind::kLiteral:
      return static_cast<const LiteralTerm&>(term).value().type();
    case Term::Kind::kParamRef: {
      const auto& t = static_cast<const ParamRefTerm&>(term);
      auto it = scope.scalar_params.find(t.name());
      if (it == scope.scalar_params.end()) {
        return Status::NotFound("unknown parameter '" + t.name() + "'");
      }
      return it->second;
    }
    case Term::Kind::kFieldRef: {
      const auto& t = static_cast<const FieldRefTerm&>(term);
      auto it = scope.vars.find(t.var());
      if (it == scope.vars.end()) {
        return Status::NotFound("unbound tuple variable '" + t.var() + "'");
      }
      std::optional<int> idx = it->second->FieldIndex(t.field());
      if (!idx.has_value()) {
        return Status::NotFound("no field '" + t.field() + "' in " +
                                it->second->ToString());
      }
      return it->second->field(*idx).type;
    }
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(term);
      DATACON_RETURN_IF_ERROR(CheckTermAgainst(*t.lhs(), ValueType::kInt, scope,
                                               "arithmetic operand"));
      DATACON_RETURN_IF_ERROR(CheckTermAgainst(*t.rhs(), ValueType::kInt, scope,
                                               "arithmetic operand"));
      return ValueType::kInt;
    }
  }
  DATACON_UNREACHABLE("term kind");
}

Status CheckPred(const Pred& pred, AnalysisScope* scope) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      return Status::OK();
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(pred);
      DATACON_ASSIGN_OR_RETURN(ValueType lhs, TermTypeOf(*p.lhs(), *scope));
      DATACON_ASSIGN_OR_RETURN(ValueType rhs, TermTypeOf(*p.rhs(), *scope));
      if (lhs != rhs) {
        return Status::TypeError("comparison across types in '" +
                                 ToString(pred) + "'");
      }
      return Status::OK();
    }
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        DATACON_RETURN_IF_ERROR(CheckPred(*op, scope));
      }
      return Status::OK();
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        DATACON_RETURN_IF_ERROR(CheckPred(*op, scope));
      }
      return Status::OK();
    case Pred::Kind::kNot:
      return CheckPred(*static_cast<const NotPred&>(pred).operand(), scope);
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      if (scope->vars.count(p.var()) > 0) {
        return Status::TypeError("quantifier shadows variable '" + p.var() +
                                 "' in '" + ToString(pred) + "'");
      }
      DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                               RangeSchemaOf(*p.range(), *scope));
      scope->vars.emplace(p.var(), schema);
      Status status = CheckPred(*p.body(), scope);
      scope->vars.erase(p.var());
      return status;
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(pred);
      DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                               RangeSchemaOf(*p.range(), *scope));
      if (static_cast<int>(p.tuple().size()) != schema->arity()) {
        return Status::TypeError("membership tuple arity " +
                                 std::to_string(p.tuple().size()) +
                                 " does not match " + schema->ToString());
      }
      for (int i = 0; i < schema->arity(); ++i) {
        DATACON_RETURN_IF_ERROR(CheckTermAgainst(
            *p.tuple()[static_cast<size_t>(i)], schema->field(i).type, *scope,
            "membership position " + std::to_string(i)));
      }
      return Status::OK();
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

Status CheckSelectorDecl(const SelectorDecl& decl, const Catalog& catalog) {
  AnalysisScope scope;
  scope.catalog = &catalog;
  DATACON_ASSIGN_OR_RETURN(const Schema* base_schema,
                           catalog.LookupRelationType(decl.base().type_name));
  scope.relation_formals.emplace(decl.base().name, decl.base().type_name);
  for (const FormalScalar& p : decl.params()) {
    if (!scope.scalar_params.emplace(p.name, p.type).second) {
      return Status::TypeError("duplicate parameter '" + p.name +
                               "' in selector '" + decl.name() + "'");
    }
  }
  scope.vars.emplace(decl.var(), base_schema);
  DATACON_RETURN_IF_ERROR(CheckPred(*decl.pred(), &scope));
  return Status::OK();
}

Status CheckConstructorDecl(const ConstructorDecl& decl,
                            const Catalog& catalog) {
  AnalysisScope scope;
  scope.catalog = &catalog;
  DATACON_RETURN_IF_ERROR(
      catalog.LookupRelationType(decl.base().type_name).status());
  DATACON_ASSIGN_OR_RETURN(const Schema* result_schema,
                           catalog.LookupRelationType(decl.result_type_name()));
  scope.relation_formals.emplace(decl.base().name, decl.base().type_name);
  for (const FormalRelation& r : decl.rel_params()) {
    DATACON_RETURN_IF_ERROR(catalog.LookupRelationType(r.type_name).status());
    if (!scope.relation_formals.emplace(r.name, r.type_name).second) {
      return Status::TypeError("duplicate relation parameter '" + r.name +
                               "' in constructor '" + decl.name() + "'");
    }
  }
  for (const FormalScalar& p : decl.scalar_params()) {
    if (!scope.scalar_params.emplace(p.name, p.type).second) {
      return Status::TypeError("duplicate parameter '" + p.name +
                               "' in constructor '" + decl.name() + "'");
    }
  }
  if (decl.body()->branches().empty()) {
    return Status::TypeError("constructor '" + decl.name() +
                             "' has an empty body");
  }
  for (const BranchPtr& branch : decl.body()->branches()) {
    DATACON_RETURN_IF_ERROR(CheckBranchAgainst(*branch, &scope, *result_schema));
  }
  return Status::OK();
}

Status CheckQuery(const CalcExpr& expr, const Catalog& catalog,
                  const Schema& result_schema,
                  const std::map<std::string, ValueType>& placeholders) {
  AnalysisScope scope;
  scope.catalog = &catalog;
  scope.scalar_params = placeholders;
  for (const BranchPtr& branch : expr.branches()) {
    DATACON_RETURN_IF_ERROR(CheckBranchAgainst(*branch, &scope, result_schema));
  }
  return Status::OK();
}

Result<Schema> InferQuerySchema(
    const CalcExpr& expr, const Catalog& catalog,
    const std::map<std::string, ValueType>& placeholders) {
  if (expr.branches().empty()) {
    return Status::TypeError("cannot infer a schema for an empty expression");
  }
  AnalysisScope scope;
  scope.catalog = &catalog;
  scope.scalar_params = placeholders;

  const Branch& first = *expr.branches()[0];
  std::vector<Field> fields;
  if (!first.targets().has_value()) {
    if (first.bindings().size() != 1) {
      return Status::TypeError(
          "a branch without a target list must bind exactly one variable");
    }
    DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                             RangeSchemaOf(*first.bindings()[0].range, scope));
    // Derived results use set semantics: drop any key declaration.
    fields = schema->fields();
  } else {
    for (const Binding& b : first.bindings()) {
      DATACON_ASSIGN_OR_RETURN(const Schema* schema,
                               RangeSchemaOf(*b.range, scope));
      scope.vars.emplace(b.var, schema);
    }
    int i = 0;
    for (const TermPtr& t : *first.targets()) {
      DATACON_ASSIGN_OR_RETURN(ValueType type, TermTypeOf(*t, scope));
      // Prefer the source field's own name when the target is a plain field
      // reference; fall back to positional names.
      std::string name = "c" + std::to_string(i);
      if (t->kind() == Term::Kind::kFieldRef) {
        name = static_cast<const FieldRefTerm&>(*t).field();
      }
      fields.push_back(Field{std::move(name), type});
      ++i;
    }
    scope.vars.clear();
  }
  // Positions where later branches propose a different source field name
  // revert to positional names, so a union's schema never depends on which
  // branch happens to be written first. Branches the later CheckQuery will
  // reject (wrong arity, unresolved ranges) get no vote here. The lint
  // pipeline reports the disagreement itself as W242.
  for (size_t bi = 1; bi < expr.branches().size(); ++bi) {
    const Branch& br = *expr.branches()[bi];
    std::vector<std::string> names;  // "" = no opinion (computed target)
    if (!br.targets().has_value()) {
      if (br.bindings().size() != 1) continue;
      Result<const Schema*> schema =
          RangeSchemaOf(*br.bindings()[0].range, scope);
      if (!schema.ok()) continue;
      if (schema.value()->arity() != static_cast<int>(fields.size())) continue;
      for (const Field& f : schema.value()->fields()) names.push_back(f.name);
    } else {
      if (br.targets()->size() != fields.size()) continue;
      for (const TermPtr& t : *br.targets()) {
        names.push_back(t->kind() == Term::Kind::kFieldRef
                            ? static_cast<const FieldRefTerm&>(*t).field()
                            : "");
      }
    }
    for (size_t i = 0; i < fields.size(); ++i) {
      if (!names[i].empty() && names[i] != fields[i].name) {
        fields[i].name = "c" + std::to_string(i);
      }
    }
  }
  // Disambiguate duplicate field names positionally.
  for (size_t a = 0; a < fields.size(); ++a) {
    for (size_t b = a + 1; b < fields.size(); ++b) {
      if (fields[a].name == fields[b].name) {
        fields[b].name += "_" + std::to_string(b);
      }
    }
  }
  Schema inferred(std::move(fields));
  DATACON_RETURN_IF_ERROR(CheckQuery(expr, catalog, inferred, placeholders));
  return inferred;
}

}  // namespace datacon
