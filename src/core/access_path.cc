#include "core/access_path.h"

#include "ast/builder.h"
#include "ast/printer.h"
#include "ra/analysis.h"

namespace datacon {

namespace {

/// True when `term` mentions the parameter `param`.
bool TermMentionsParam(const Term& term, const std::string& param) {
  switch (term.kind()) {
    case Term::Kind::kFieldRef:
    case Term::Kind::kLiteral:
      return false;
    case Term::Kind::kParamRef:
      return static_cast<const ParamRefTerm&>(term).name() == param;
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(term);
      return TermMentionsParam(*t.lhs(), param) ||
             TermMentionsParam(*t.rhs(), param);
    }
  }
  return false;
}

bool PredMentionsParam(const Pred& pred, const std::string& param) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
      return false;
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(pred);
      return TermMentionsParam(*p.lhs(), param) ||
             TermMentionsParam(*p.rhs(), param);
    }
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        if (PredMentionsParam(*op, param)) return true;
      }
      return false;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        if (PredMentionsParam(*op, param)) return true;
      }
      return false;
    case Pred::Kind::kNot:
      return PredMentionsParam(
          *static_cast<const NotPred&>(pred).operand(), param);
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      for (const RangeApp& app : p.range()->apps()) {
        for (const TermPtr& t : app.term_args) {
          if (TermMentionsParam(*t, param)) return true;
        }
      }
      return PredMentionsParam(*p.body(), param);
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(pred);
      for (const TermPtr& t : p.tuple()) {
        if (TermMentionsParam(*t, param)) return true;
      }
      return false;
    }
  }
  return false;
}

}  // namespace

Result<PhysicalAccessPath> PhysicalAccessPath::Build(Database* db,
                                                     CalcExprPtr form,
                                                     const std::string& param) {
  if (form->branches().size() != 1) {
    return Status::Unsupported(
        "a physical access path requires a single-branch query form");
  }
  const Branch& branch = *form->branches()[0];

  // Locate the `<var>.<field> = <param>` conjunct.
  std::vector<PredPtr> conjuncts = FlattenConjuncts(branch.pred());
  std::optional<size_t> bound_index;
  const FieldRefTerm* bound_field = nullptr;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (conjuncts[i]->kind() != Pred::Kind::kCompare) continue;
    const auto& cmp = static_cast<const ComparePred&>(*conjuncts[i]);
    if (cmp.op() != CompareOp::kEq) continue;
    for (bool flip : {false, true}) {
      const TermPtr& lhs = flip ? cmp.rhs() : cmp.lhs();
      const TermPtr& rhs = flip ? cmp.lhs() : cmp.rhs();
      if (lhs->kind() != Term::Kind::kFieldRef ||
          rhs->kind() != Term::Kind::kParamRef ||
          static_cast<const ParamRefTerm&>(*rhs).name() != param) {
        continue;
      }
      bound_index = i;
      bound_field = &static_cast<const FieldRefTerm&>(*lhs);
      break;
    }
    if (bound_index.has_value()) break;
  }
  if (!bound_index.has_value()) {
    return Status::Unsupported("query form does not bind parameter '" + param +
                               "' to an attribute with an equality");
  }

  // Strip the conjunct; the rest of the form must no longer mention the
  // parameter (it becomes a free variable of the materialization).
  std::vector<PredPtr> rest;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i != *bound_index) rest.push_back(conjuncts[i]);
  }
  PredPtr stripped_pred = ConjunctsToPred(std::move(rest));
  if (PredMentionsParam(*stripped_pred, param)) {
    return Status::Unsupported(
        "parameter '" + param +
        "' occurs outside its binding equality; cannot materialize");
  }

  // The probe column: identity branches expose the range's fields; target
  // branches expose the target positions.
  BranchPtr stripped = std::make_shared<Branch>(
      branch.bindings(), stripped_pred, branch.targets());
  CalcExprPtr unrestricted =
      std::make_shared<CalcExpr>(std::vector<BranchPtr>{stripped});

  DATACON_ASSIGN_OR_RETURN(Relation materialized,
                           db->EvalQuery(unrestricted));

  int probe_column = -1;
  if (branch.targets().has_value()) {
    for (size_t i = 0; i < branch.targets()->size(); ++i) {
      const TermPtr& t = (*branch.targets())[i];
      if (t->kind() != Term::Kind::kFieldRef) continue;
      const auto& f = static_cast<const FieldRefTerm&>(*t);
      if (f.var() == bound_field->var() && f.field() == bound_field->field()) {
        probe_column = static_cast<int>(i);
        break;
      }
    }
  } else {
    std::optional<int> idx =
        materialized.schema().FieldIndex(bound_field->field());
    if (idx.has_value()) probe_column = *idx;
  }
  if (probe_column < 0) {
    return Status::Unsupported(
        "the bound attribute '" + ToString(*bound_field) +
        "' does not appear in the query result; cannot partition on it");
  }

  PhysicalAccessPath path;
  path.schema_ = materialized.schema();
  path.materialized_ =
      std::make_shared<Relation>(std::move(materialized));
  path.index_ = std::make_shared<HashIndex>(
      *path.materialized_, std::vector<int>{probe_column});
  path.probe_column_ = probe_column;
  return path;
}

Result<Relation> PhysicalAccessPath::Execute(const Value& value) const {
  Relation out(schema_);
  for (const Tuple* t : index_->Probe(Tuple({value}))) {
    DATACON_ASSIGN_OR_RETURN(bool grew, out.Insert(*t));
    (void)grew;
  }
  return out;
}

}  // namespace datacon
