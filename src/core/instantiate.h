#ifndef DATACON_CORE_INSTANTIATE_H_
#define DATACON_CORE_INSTANTIATE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/range.h"
#include "common/result.h"
#include "core/catalog.h"
#include "graph/digraph.h"
#include "graph/scc.h"

namespace datacon {

/// Decomposition of a range expression around its last top-level
/// constructor application:
///   `Infront [s1] {ahead(Ontop)} [s2]`
/// splits into head `Infront [s1] {ahead(Ontop)}` (the application to
/// instantiate) and trailing selector applications `[s2]` (applied to the
/// materialized application at evaluation time). A range without any
/// constructor application has no head: it denotes `base_relation`
/// restricted by `trailing_selectors`.
struct RangeSplit {
  /// Present iff the range contains a constructor application; a range
  /// ending exactly at that application.
  std::optional<RangePtr> ctor_head;
  std::string base_relation;
  std::vector<RangeApp> trailing_selectors;
};

RangeSplit SplitAtLastConstructor(const Range& range);

/// A dependency edge between constructor applications; `negative` marks
/// references occurring at odd NOT/ALL parity (only producible when the
/// strict positivity check is replaced by the stratified-negation
/// extension).
struct AppEdge {
  int from;
  int to;
  bool negative;
};

/// The instantiated system of constructor applications referenced by a set
/// of root expressions — the paper's finite representation of the possibly
/// infinite derivation sequence ([Naqv 84], [Venk 84]), equivalent to a
/// clause interconnectivity graph [Sick 76].
///
/// Each node is one application `Actrel{c(...)}` with all formals replaced
/// by actuals (section 3.2's `g_j`); edges record which applications a
/// node's body references. The SCC condensation of this graph drives
/// evaluation: acyclic components in one pass, cyclic ones by fixpoint.
class ApplicationGraph {
 public:
  struct Node {
    /// Canonical printed form of the application range; the node identity.
    std::string key;
    const ConstructorDecl* ctor;
    /// The application's base range (the head minus its final application).
    RangePtr base;
    /// Fully substituted body: no formal names remain.
    CalcExprPtr body;
    Schema result_schema;
  };

  /// Instantiation is bounded to catch programs whose applications never
  /// close under substitution (not expressible through plain parameter
  /// passing, but cheap to guard against).
  static constexpr size_t kMaxNodes = 2000;

  explicit ApplicationGraph(const Catalog* catalog) : catalog_(catalog) {}

  /// Instantiates every application reachable from `expr`.
  Status AddRoots(const CalcExpr& expr);

  /// Instantiates every application reachable from `range`; returns the
  /// node id for the range's own head, or -1 when the range contains no
  /// constructor application.
  Result<int> AddRootRange(const Range& range);

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<AppEdge>& edges() const { return edges_; }

  /// The node id of an already-instantiated head range.
  Result<int> FindNode(const Range& head) const;

  /// The dependency digraph (edge from -> to means "from's body references
  /// to") over the current nodes.
  Digraph BuildDigraph() const;

  /// SCC decomposition in dependencies-first order, with a stratification
  /// check: a negative edge inside a cyclic component makes the system
  /// non-stratifiable and yields kPositivityViolation.
  Result<SccDecomposition> Stratify() const;

 private:
  /// Memoizing node construction for a head range (must end in a
  /// constructor application). Creation only enqueues the node; its body is
  /// scanned by DrainPending — instantiation is iterative, so runaway
  /// application sets hit the node bound instead of the thread stack.
  Result<int> NodeFor(const RangePtr& head);

  /// Scans an expression for constructor-containing ranges, creating nodes
  /// and recording edges from `from_node` (or roots when -1).
  Status ScanExpr(const CalcExpr& expr, int from_node);

  /// Scans the bodies of all nodes created but not yet processed.
  Status DrainPending();

  const Catalog* catalog_;
  std::vector<Node> nodes_;
  std::vector<AppEdge> edges_;
  std::map<std::string, int> key_to_node_;
  std::vector<int> pending_;
};

}  // namespace datacon

#endif  // DATACON_CORE_INSTANTIATE_H_
