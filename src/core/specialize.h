#ifndef DATACON_CORE_SPECIALIZE_H_
#define DATACON_CORE_SPECIALIZE_H_

#include <map>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "ast/range.h"
#include "common/result.h"
#include "core/instantiate.h"
#include "ra/env.h"
#include "ra/resolver.h"
#include "types/value.h"

namespace datacon {

struct AdornmentAnalysis;

/// The magic-seed specialization of an application system, derived from the
/// adornment analysis (analysis/adorn.h): which nodes may be restricted to
/// their *relevant* tuples, which binding positions of which body branches
/// carry the restriction, and how relevant values flow between nodes.
///
/// Soundness: a node is active only when every use site's demand is covered
/// by a seed or a transfer edge, so the relevant-value closure computed by
/// ComputeMagicSets over-approximates every value the restricted fixpoint
/// can ask for — the specialized run derives a subset of the full fixpoint
/// containing every tuple any consumer (including the query) selects.
struct SpecializationPlan {
  /// Restrict binding `binding` of a branch to tuples whose field `field`
  /// is in the magic set of `magic_node`.
  struct BindingFilter {
    size_t binding = 0;
    int field = -1;
    int magic_node = -1;
  };

  struct NodePlan {
    bool active = false;
    int bound_attr = -1;
    /// Aligned with the node body's branch list.
    std::vector<std::vector<BindingFilter>> branch_filters;
  };

  /// A root relevant value for `node`: a literal, or a prepared-query
  /// parameter resolved at evaluation time.
  struct Seed {
    int node = -1;
    std::optional<Value> literal;
    std::optional<std::string> param;
  };

  /// Relevant values of `from_node` induce relevant values of `to_node`:
  /// verbatim when `via_base` is null, otherwise through one equi-join hop
  /// over the constructor-free range `via_base` (a base tuple t with
  /// t[from_field] relevant makes t[to_field] relevant).
  struct Edge {
    int from_node = -1;
    int to_node = -1;
    RangePtr via_base;
    int from_field = -1;
    int to_field = -1;
  };

  std::vector<NodePlan> nodes;
  std::vector<Seed> seeds;
  std::vector<Edge> edges;

  bool any() const;
  /// Branches of active nodes carrying at least one filter.
  size_t specialized_branches() const;
};

/// Builds an executable plan from the adornment analysis; nullopt when no
/// node is specializable.
Result<std::optional<SpecializationPlan>> BuildSpecializationPlan(
    const AdornmentAnalysis& adornment, const ApplicationGraph& graph);

/// The relevant-value set of every active node: the closure of the plan's
/// seeds under its edges, computed before any fixpoint runs (via_base
/// ranges are constructor-free, so they resolve against stored relations).
class MagicSets {
 public:
  /// The set for `node`, or nullptr when the node has no magic set (it is
  /// not active and must not be filtered).
  const std::unordered_set<Value>* ValuesFor(int node) const {
    auto it = sets_.find(node);
    return it == sets_.end() ? nullptr : &it->second;
  }

  size_t TotalValues() const;

  const std::map<int, std::unordered_set<Value>>& sets() const {
    return sets_;
  }
  std::map<int, std::unordered_set<Value>>& sets() { return sets_; }

 private:
  std::map<int, std::unordered_set<Value>> sets_;
};

/// Closes the plan's seeds under its transfer edges. `params` supplies
/// prepared-query parameter values for parameter seeds.
Result<MagicSets> ComputeMagicSets(const SpecializationPlan& plan,
                                   const RelationResolver& resolver,
                                   const Environment& params);

}  // namespace datacon

#endif  // DATACON_CORE_SPECIALIZE_H_
