#ifndef DATACON_CORE_POSITIVITY_H_
#define DATACON_CORE_POSITIVITY_H_

#include <functional>

#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/pred.h"
#include "ast/range.h"
#include "common/status.h"

namespace datacon {

/// Invokes `fn(range, parity)` for every range expression occurring in the
/// branch — binding ranges, quantifier ranges, and membership ranges —
/// where `parity` is the total number of enclosing NOTs and ALLs, counted
/// exactly as defined in section 3.3 of the paper:
///
///  * everything inside `NOT f` is under that NOT;
///  * the *range* of `ALL v IN exp (p)` is under that ALL, but names
///    occurring only in the body `p` are not;
///  * branch binding ranges are at parity 0.
///
/// Constructor arguments nested inside a range share the range's parity
/// (`fn` receives the outermost range; use Range::ContainsConstructor to
/// inspect nesting).
void ForEachRangeWithParity(
    const Branch& branch,
    const std::function<void(const Range&, int parity)>& fn);

/// Same traversal over a bare predicate, starting at `initial_parity`.
void ForEachRangeWithParity(
    const Pred& pred, int initial_parity,
    const std::function<void(const Range&, int parity)>& fn);

/// The positivity constraint of section 3.3: every range containing a
/// constructor application must occur under an even number of NOTs and
/// ALLs. Violations yield kPositivityViolation with a message naming the
/// offending occurrence — this is the test the DBPL compiler applies to
/// reject `nonsense` (and, deliberately, the converging-but-non-monotonic
/// `strange`).
Status CheckPositivity(const ConstructorDecl& decl);

/// Positivity of a single expression body (used for queries pushed into
/// constructor bodies, section 4, case 3).
Status CheckPositivity(const CalcExpr& expr);

}  // namespace datacon

#endif  // DATACON_CORE_POSITIVITY_H_
