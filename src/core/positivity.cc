#include "core/positivity.h"

#include "ast/printer.h"
#include "common/check.h"

namespace datacon {

namespace {

void WalkPred(const Pred& pred, int parity,
              const std::function<void(const Range&, int)>& fn) {
  switch (pred.kind()) {
    case Pred::Kind::kBool:
    case Pred::Kind::kCompare:
      return;
    case Pred::Kind::kAnd:
      for (const PredPtr& op : static_cast<const AndPred&>(pred).operands()) {
        WalkPred(*op, parity, fn);
      }
      return;
    case Pred::Kind::kOr:
      for (const PredPtr& op : static_cast<const OrPred&>(pred).operands()) {
        WalkPred(*op, parity, fn);
      }
      return;
    case Pred::Kind::kNot:
      // Everything inside the negated factor is under one more NOT.
      WalkPred(*static_cast<const NotPred&>(pred).operand(), parity + 1, fn);
      return;
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(pred);
      // Only a universal quantifier's *range* counts as "under" it
      // (section 3.3); SOME ranges and both bodies keep the current parity.
      int range_parity =
          p.quantifier() == Quantifier::kAll ? parity + 1 : parity;
      fn(*p.range(), range_parity);
      WalkPred(*p.body(), parity, fn);
      return;
    }
    case Pred::Kind::kIn:
      fn(*static_cast<const InPred&>(pred).range(), parity);
      return;
  }
  DATACON_UNREACHABLE("pred kind");
}

}  // namespace

void ForEachRangeWithParity(
    const Pred& pred, int initial_parity,
    const std::function<void(const Range&, int parity)>& fn) {
  WalkPred(pred, initial_parity, fn);
}

void ForEachRangeWithParity(
    const Branch& branch,
    const std::function<void(const Range&, int parity)>& fn) {
  for (const Binding& b : branch.bindings()) fn(*b.range, 0);
  WalkPred(*branch.pred(), 0, fn);
}

namespace {

Status CheckExprPositivity(const CalcExpr& expr, const std::string& context) {
  Status violation = Status::OK();
  for (const BranchPtr& branch : expr.branches()) {
    ForEachRangeWithParity(*branch, [&](const Range& range, int parity) {
      if (!violation.ok()) return;
      if (parity % 2 != 0 && range.ContainsConstructor()) {
        violation = Status::PositivityViolation(
            context + ": constructed relation '" + ToString(range) +
            "' occurs under " + std::to_string(parity) +
            " NOT(s)/ALL(s); the positivity constraint requires an even "
            "total (section 3.3)");
      }
    });
    if (!violation.ok()) return violation;
  }
  return Status::OK();
}

}  // namespace

Status CheckPositivity(const ConstructorDecl& decl) {
  return CheckExprPositivity(*decl.body(), "constructor '" + decl.name() + "'");
}

Status CheckPositivity(const CalcExpr& expr) {
  return CheckExprPositivity(expr, "expression");
}

}  // namespace datacon
