#ifndef DATACON_CORE_DATABASE_H_
#define DATACON_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "analysis/constraint.h"
#include "analysis/lint.h"
#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/range.h"
#include "common/eventlog.h"
#include "common/metrics.h"
#include "common/result.h"
#include "core/catalog.h"
#include "core/fixpoint.h"
#include "core/instantiate.h"
#include "core/matcache.h"
#include "core/rewrite.h"
#include "storage/relation.h"
#include "types/value.h"

namespace datacon {

/// Knobs of the three-level compilation/optimization framework (section 4).
/// Benchmarks flip these to isolate the effect of each technique.
struct DatabaseOptions {
  EvalOptions eval;
  /// Apply capture rules: transitive-closure-shaped constructors are
  /// materialized by a specialized frontier algorithm, and queries binding
  /// the closure's source attribute run a seeded (magic) closure.
  bool use_capture_rules = true;
  /// Inline non-recursive constructor applications into queries (the
  /// section 4 propagation cases 1-3 over range-nested expressions).
  bool inline_nonrecursive = true;
  /// Magic-seed specialization: run the compile-time adornment/relevance
  /// analysis (analysis/adorn.h) per query and restrict eligible fixpoints
  /// to tuples relevant for the bound attributes (`PRAGMA SPECIALIZE`).
  bool specialize = true;
  /// Extension beyond the paper: accept constructors violating the strict
  /// positivity test as long as every negative dependency crosses strata
  /// (checked at query compilation). The paper's DBPL rejects these at
  /// definition time.
  bool allow_stratified_negation = false;
  /// Capacity of the slow-query log (N slowest statements retained);
  /// 0 disables it. The admission threshold is runtime-settable
  /// (slow_query_log().set_threshold_ns, `PRAGMA SLOW_QUERY_MS`).
  size_t slow_query_log_capacity = 16;
  /// Incremental constructor-application cache (`PRAGMA CACHE`): reuse
  /// materialized applications across queries keyed on the generations of
  /// their input relations; insert-only churn is delta-maintained, any
  /// erase/clear invalidates. Parameterized (prepared) executions bypass
  /// the cache regardless.
  bool cache = true;
  /// Entry capacity of that cache, LRU-evicted (`PRAGMA CACHE_CAPACITY`);
  /// 0 stops new entries from being stored.
  size_t cache_capacity = 64;
  /// Enforce declared integrity constraints on INSERT and assignment
  /// (`PRAGMA CONSTRAINTS`). Definitions are still audited and compiled
  /// while off; violations admitted while off surface on the next checked
  /// statement (its full recheck).
  bool constraints = true;
  /// Run the compile-time simplified (delta-driven) checks where the
  /// analysis proved them complete; false forces full re-evaluation on
  /// every check — the A/B lever of bench_constraints.
  bool constraints_simplify = true;
  /// Run the level-1 type checks and the whole-program type inference at
  /// definition time (`PRAGMA TYPECHECK`). While every definition in the
  /// catalog was admitted with this on, evaluation is *typed-proven*: the
  /// inner loop skips per-tuple Value::type() dispatch (ra/eval.h). Turning
  /// it off admits ill-typed definitions, permanently demoting the catalog
  /// to the checked interpreter (eval-time kTypeError becomes reachable).
  bool typecheck = true;
  /// Record structured events (`PRAGMA EVENTS`, `SHOW EVENTS;`): query
  /// start/finish, cache outcomes, constraint violations, specialization
  /// fallbacks, slow-query admissions. Off by default; while off, each
  /// emission site costs one relaxed atomic load.
  bool events = false;
};

class Database;

/// A compiled parameterized query form. Holds the instantiated application
/// graph and any seeded-closure plan; Execute supplies the constants.
class PreparedQuery {
 public:
  /// Runs the compiled form with the given parameter values.
  Result<Relation> Execute(const std::map<std::string, Value>& params);

  /// One line describing the chosen plan ("seeded transitive closure on
  /// parameter 'p'" / "general evaluation").
  const std::string& plan_description() const { return plan_description_; }

  const Schema& result_schema() const { return schema_; }

 private:
  friend class Database;
  PreparedQuery() = default;

  Database* db_ = nullptr;
  CalcExprPtr expr_;
  Schema schema_;
  std::map<std::string, ValueType> placeholders_;
  std::optional<SeededTcPlan> seeded_plan_;
  std::string plan_description_;
  // Constraint checks set this: checking must be invisible, so even a
  // parameterless denial may neither read nor warm the materialization
  // cache (a warmed entry would change later queries' replayed stats).
  bool cache_bypass_ = false;
};

/// The DBPL database program facade: definitions run level-1 analysis
/// (type check, positivity, definition partitioning), queries run level-2
/// compilation (instantiation, rewrites, capture rules) and level-3
/// evaluation (set-oriented fixpoint).
class Database {
 public:
  explicit Database(DatabaseOptions options = {});
  /// Retires this database's metrics into ProcessMetrics(), so process-wide
  /// artifacts (benchmark JSON, end-of-process dumps) see the union of all
  /// databases' work.
  ~Database();
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  // --- Definitions (level 1) ---

  /// `TYPE name = RELATION <key> OF RECORD ... END`.
  Status DefineRelationType(const std::string& name, Schema schema);

  /// `VAR name: type_name`.
  Status CreateRelation(const std::string& name, const std::string& type_name);

  /// Inserts one tuple into a base relation (key constraint enforced).
  /// With constraints on, every compiled integrity constraint whose inputs
  /// moved is re-checked; a violation erases the tuple again and returns
  /// kConstraintViolation.
  Status Insert(const std::string& relation, Tuple tuple);

  /// Inserts a batch of tuples atomically: on a key or constraint
  /// violation every tuple that grew the relation is erased again and the
  /// relation's tuple set is exactly what it was (the backend of a
  /// multi-tuple `INSERT INTO ...;` statement).
  Status InsertAll(const std::string& relation,
                   const std::vector<Tuple>& tuples);

  Result<const Relation*> GetRelation(const std::string& name) const;
  Result<Relation*> GetMutableRelation(const std::string& name);

  /// Checked assignment `relation := value` (section 2.2: the type checker
  /// re-validates the key constraint; on violation nothing changes).
  Status Assign(const std::string& relation, const Relation& value);

  /// Assignment through a selector, `relation[sel(args)] := value`
  /// (section 2.3): every tuple of `value` must satisfy the selector's
  /// predicate, otherwise kInvalidArgument and nothing changes.
  Status AssignThroughSelector(const std::string& relation,
                               const std::string& selector,
                               const std::vector<Value>& args,
                               const Relation& value);

  /// Defines a selector after type-checking it.
  Status DefineSelector(SelectorDeclPtr decl);

  /// Defines a constructor after type-checking and (unless
  /// allow_stratified_negation) the strict positivity test of section 3.3.
  /// The constructor may reference itself; references to other constructors
  /// must already be defined — use DefineConstructorGroup for mutual
  /// recursion.
  Status DefineConstructor(ConstructorDeclPtr decl);

  /// Defines a set of (possibly mutually recursive) constructors: all are
  /// registered, then all are checked; on any failure the whole group is
  /// rolled back.
  Status DefineConstructorGroup(const std::vector<ConstructorDeclPtr>& decls);

  /// Defines a constructor with the positivity test skipped. Exists to
  /// reproduce the section 3.3 examples (`nonsense`, `strange`) in
  /// unchecked evaluation mode; not part of the paper's DBPL surface.
  Status DefineConstructorUnchecked(ConstructorDeclPtr decl);

  /// Defines an integrity constraint: runs the define-time audit
  /// (analysis/constraint.h; error diagnostics reject), compiles the full
  /// denial check plus the per-event simplified residues, and — with
  /// constraints on — verifies the constraint against the existing facts
  /// (refuted constraints are rejected with kConstraintViolation and the
  /// catalog is left untouched).
  Status DefineConstraint(ConstraintDeclPtr decl);

  /// The `SHOW CONSTRAINTS;` table: every constraint with its compiled
  /// full-check plan and per-input-relation event modes/residue plans.
  std::string DescribeConstraints() const;

  // --- Static analysis ---

  /// Runs the lint pipeline (analysis/lint.h) over every selector and
  /// constructor defined so far; allow_stratified_negation follows
  /// options(). The backend of `CHECK SCRIPT;` and the datacon-lint CLI.
  /// Defined in the datacon_analysis library — callers must link it.
  LintReport Lint() const;

  /// Lints one defined selector or constructor by name (`CHECK name;`).
  /// kNotFound when the catalog knows no such declaration.
  Result<LintReport> Lint(const std::string& name) const;

  // --- Queries (levels 2 + 3) ---

  /// The value of a (selected/constructed) relation expression —
  /// `Infront {ahead}`, `Infront [hidden_by("table")] {ahead}`, ...
  Result<Relation> EvalRange(const RangePtr& range);

  /// Evaluates a relational calculus expression; the result schema is
  /// inferred from the first branch.
  Result<Relation> EvalQuery(const CalcExprPtr& expr);

  /// Evaluates with an explicit result schema.
  Result<Relation> EvalQueryAs(const CalcExprPtr& expr, const Schema& schema);

  /// Compiles a parameterized query form once (the paper's *logical access
  /// path*: a compiled procedure with dummy constants); Execute binds the
  /// constants.
  Result<PreparedQuery> Prepare(CalcExprPtr expr,
                                std::map<std::string, ValueType> placeholders);

  /// Human-readable description of how `range` would be evaluated:
  /// instantiated applications, recursive components, chosen strategy,
  /// capture-rule hits, and the level-1 definition partitions.
  Result<std::string> Explain(const RangePtr& range) const;

  const Catalog& catalog() const { return catalog_; }
  DatabaseOptions& options() { return options_; }
  const DatabaseOptions& options() const { return options_; }

  /// Statistics of the most recent EvalRange/EvalQuery call.
  const EvalStats& last_stats() const { return last_stats_; }

  /// Resource attribution of the most recent evaluation (working-set peak,
  /// materialized tuples/bytes, index builds, cache outcomes) — consumed by
  /// EXPLAIN ANALYZE, the slow-query log, and query.finish events.
  const ResourceUsage& last_usage() const { return last_usage_; }

  /// Profile tree of the most recent evaluation, or null when profiling was
  /// off (options().eval.profile) — consumed by EXPLAIN ANALYZE. Equivalent
  /// to profile_at(last_eval_index()).
  const ProfileNode* last_profile() const {
    return profile_at(last_eval_index());
  }

  /// The 1-based sequence number of the most recent evaluation (0 before
  /// the first). Each EvalRange/EvalQuery/PreparedQuery::Execute call gets
  /// the next index.
  int64_t last_eval_index() const { return eval_index_; }

  /// True when the most recent evaluation ran on the typed-proven fast
  /// path: typecheck on, every definition admitted under it, and the
  /// checked (non-unchecked) evaluation mode.
  bool last_typed_proven() const { return last_typed_proven_; }

  /// True while every definition in the catalog was admitted with
  /// typecheck on (the proof obligation of the typed fast path).
  bool catalog_typed_clean() const { return catalog_typed_clean_; }

  /// Profile tree of evaluation `index`, or null when profiling was off for
  /// that evaluation or the profile has been evicted. The most recent
  /// kRetainedProfiles profiled evaluations are retained, so a pointer
  /// taken for statement i stays valid while later statements run — the
  /// fix for last_profile() being clobbered by the next statement.
  const ProfileNode* profile_at(int64_t index) const;

  /// The kRetainedProfiles bound (exposed for the eviction regression
  /// test).
  static constexpr size_t kRetainedProfiles = 32;

  /// This database's metrics registry: the query histograms plus the
  /// cache.*/constraints.* counters. `SHOW METRICS;` and the Prometheus
  /// exposition read it; no other database ever writes it.
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// This database's structured event log (`PRAGMA EVENTS`,
  /// `SHOW EVENTS;`, REPL --events-out).
  EventLog& events() { return event_log_; }
  const EventLog& events() const { return event_log_; }

  /// The database's slow-query log (see DatabaseOptions
  /// slow_query_log_capacity). Every evaluation at or above the threshold
  /// is offered to it with the printed query text and a stats digest.
  SlowQueryLog& slow_query_log() { return slow_query_log_; }
  const SlowQueryLog& slow_query_log() const { return slow_query_log_; }

  /// The materialization cache (PRAGMA CACHE / CACHE_CAPACITY). Lifetime
  /// counters live in mat_cache().stats(); per-query deltas in
  /// last_cache_stats().
  MatCache& mat_cache() { return mat_cache_; }
  const MatCache& mat_cache() const { return mat_cache_; }

  /// Cache-counter deltas of the most recent evaluation (hits/misses/
  /// invalidations/delta-maintenances since BeginEvaluation) — consumed by
  /// EXPLAIN ANALYZE.
  MatCacheStats last_cache_stats() const;

 private:
  friend class PreparedQuery;

  /// One compiled residue: the parameterized denial remainder plus the
  /// parameter name carrying each delta attribute.
  struct CompiledResidue {
    PreparedQuery query;
    std::vector<std::string> param_fields;
  };
  /// The compiled plan for INSERTs into one input relation. A residue that
  /// failed to compile degrades the event to kFull at define time.
  struct CompiledEvent {
    ConstraintCheckMode insert_mode = ConstraintCheckMode::kFull;
    std::vector<CompiledResidue> residues;
  };
  /// A defined constraint with its compiled checks and the input
  /// generations as of the last successful check (the delta baseline).
  struct CompiledConstraint {
    ConstraintDeclPtr decl;
    ConstraintBody body;
    std::optional<PreparedQuery> full;
    std::map<std::string, CompiledEvent> events;
    std::map<std::string, uint64_t> snapshot;
  };

  /// Re-checks every constraint whose input generations moved since its
  /// snapshot; kConstraintViolation on the first witness found. No-op with
  /// constraints off or none defined. Callers roll the mutation back on
  /// failure.
  Status CheckConstraintsAfterUpdate();
  Status CheckOneConstraint(CompiledConstraint* constraint);

  /// Shared evaluation pipeline: level-2 rewrites + plan dispatch, wrapped
  /// in the per-query observability (trace span, latency/rounds/tuples
  /// histograms, slow-query log).
  Result<Relation> Evaluate(const CalcExprPtr& expr, const Schema& schema,
                            const Environment& params);

  /// Starts a new evaluation sequence number and resets last_stats_.
  void BeginEvaluation();

  /// Feeds this database's metrics histograms, the slow-query log, and the
  /// event log; called on every evaluation exit (also failed ones — a slow
  /// failing query is still a slow query).
  void FinishEvaluation(const CalcExpr& expr, int64_t elapsed_ns, bool ok);

  /// Retains `profile` (may be null) for the current evaluation index,
  /// evicting beyond kRetainedProfiles.
  void StoreProfile(std::unique_ptr<ProfileNode> profile);

  /// Level-3 execution of a seeded-closure plan (no re-detection).
  Result<Relation> ExecuteSeeded(const CalcExprPtr& expr, const Schema& schema,
                                 const Environment& params,
                                 const SeededTcPlan& plan);

  /// Level-3 general execution (instantiate, capture install, fixpoint);
  /// `expr` must already be rewritten. `allow_cache = false` forces the
  /// run past the materialization cache (constraint checks).
  Result<Relation> EvaluateGeneral(const CalcExprPtr& expr,
                                   const Schema& schema,
                                   const Environment& params,
                                   bool allow_cache = true);

  Status DefineConstructorGroup(const std::vector<ConstructorDeclPtr>& decls,
                                bool check_positivity);

  /// Installs capture-rule materializations for eligible nodes. Nodes the
  /// specialization plan restricts are skipped — their pruned fixpoint
  /// replaces the full-closure capture. With `use_cache`, closures are
  /// reused from / stored into mat_cache_ under "capture|<node key>" keys
  /// (full hits only — captures are never delta-maintained).
  Status InstallCaptures(const ApplicationGraph& graph, SystemEvaluator* ev,
                         const SpecializationPlan* plan, bool use_cache);

  /// The typed-proven verdict for the next evaluation; see
  /// last_typed_proven().
  bool TypedProven() const {
    return options_.typecheck && catalog_typed_clean_ &&
           !options_.eval.unchecked;
  }

  DatabaseOptions options_;
  Catalog catalog_;
  EvalStats last_stats_;
  ResourceUsage last_usage_;
  bool catalog_typed_clean_ = true;
  bool last_typed_proven_ = false;
  int64_t eval_index_ = 0;
  /// (evaluation index, profile) pairs, oldest first, at most
  /// kRetainedProfiles entries.
  std::vector<std::pair<int64_t, std::unique_ptr<ProfileNode>>> profiles_;
  /// Declared before slow_query_log_/mat_cache_: MatCache registers its
  /// counter mirrors against metrics_ in its constructor.
  MetricsRegistry metrics_;
  EventLog event_log_;
  /// Registry-owned instruments this database feeds on every evaluation /
  /// constraint check (stable pointers, registered in the constructor).
  Histogram* query_latency_ns_;
  Histogram* query_fixpoint_rounds_;
  Histogram* query_tuples_inserted_;
  Histogram* query_seed_tuples_pruned_;
  Counter* constraints_checks_;
  Counter* constraints_simplified_;
  Counter* constraints_full_rechecks_;
  Counter* constraints_violations_;
  SlowQueryLog slow_query_log_;
  MatCache mat_cache_;
  std::map<std::string, CompiledConstraint> constraints_;
  /// Counter snapshot taken by BeginEvaluation, so last_cache_stats() can
  /// report the most recent query's deltas.
  MatCacheStats cache_before_;
};

}  // namespace datacon

#endif  // DATACON_CORE_DATABASE_H_
