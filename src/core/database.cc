#include "core/database.h"

#include <set>

#include "analysis/adorn.h"
#include "analysis/typecheck.h"
#include "ast/builder.h"
#include "ast/printer.h"
#include "common/check.h"
#include "common/trace.h"
#include "core/capture.h"
#include "core/positivity.h"
#include "core/quant_graph.h"
#include "core/semantics.h"
#include "ra/branch_exec.h"
#include "ra/eval.h"

namespace datacon {

Database::Database(DatabaseOptions options)
    : options_(options),
      // Eagerly registered so SHOW METRICS / ToPrometheus always expose the
      // full instrument set (and so the hot paths below never re-hash names).
      query_latency_ns_(metrics_.GetHistogram("query.latency_ns")),
      query_fixpoint_rounds_(metrics_.GetHistogram("query.fixpoint_rounds")),
      query_tuples_inserted_(metrics_.GetHistogram("query.tuples_inserted")),
      query_seed_tuples_pruned_(
          metrics_.GetHistogram("query.seed_tuples_pruned")),
      constraints_checks_(metrics_.GetCounter("constraints.checks")),
      constraints_simplified_(metrics_.GetCounter("constraints.simplified")),
      constraints_full_rechecks_(
          metrics_.GetCounter("constraints.full_rechecks")),
      constraints_violations_(metrics_.GetCounter("constraints.violations")),
      slow_query_log_(options.slow_query_log_capacity),
      mat_cache_(options.cache_capacity, &metrics_, &event_log_) {
  event_log_.set_enabled(options.events);
}

Database::~Database() { ProcessMetrics().MergeFrom(metrics_); }

Status Database::DefineRelationType(const std::string& name, Schema schema) {
  return catalog_.DefineRelationType(name, std::move(schema));
}

Status Database::CreateRelation(const std::string& name,
                                const std::string& type_name) {
  return catalog_.CreateRelation(name, type_name);
}

Status Database::Insert(const std::string& relation, Tuple tuple) {
  DATACON_ASSIGN_OR_RETURN(Relation * rel, catalog_.LookupRelation(relation));
  DATACON_ASSIGN_OR_RETURN(bool grew, rel->Insert(tuple));
  if (grew) {
    Status checked = CheckConstraintsAfterUpdate();
    if (!checked.ok()) {
      rel->Erase(tuple);
      return checked;
    }
  }
  return Status::OK();
}

Status Database::InsertAll(const std::string& relation,
                           const std::vector<Tuple>& tuples) {
  DATACON_ASSIGN_OR_RETURN(Relation * rel, catalog_.LookupRelation(relation));
  std::vector<Tuple> grown;
  grown.reserve(tuples.size());
  Status status = Status::OK();
  for (const Tuple& t : tuples) {
    Result<bool> grew = rel->Insert(t);
    if (!grew.ok()) {
      status = grew.status();
      break;
    }
    if (grew.value()) grown.push_back(t);
  }
  if (status.ok() && !grown.empty()) status = CheckConstraintsAfterUpdate();
  if (!status.ok()) {
    // Statement atomicity: undo exactly the tuples this statement added.
    for (const Tuple& t : grown) rel->Erase(t);
    return status;
  }
  return Status::OK();
}

Result<const Relation*> Database::GetRelation(const std::string& name) const {
  return catalog_.LookupRelation(name);
}

Result<Relation*> Database::GetMutableRelation(const std::string& name) {
  return catalog_.LookupRelation(name);
}

Status Database::Assign(const std::string& relation, const Relation& value) {
  DATACON_ASSIGN_OR_RETURN(Relation * rel, catalog_.LookupRelation(relation));
  // Build the new value first so a key violation leaves `relation`
  // unchanged — the paper's IF <test> THEN rel := rex ELSE <exception>.
  Relation fresh(rel->schema());
  DATACON_RETURN_IF_ERROR(fresh.InsertAll(value));
  Relation saved = std::move(*rel);
  *rel = std::move(fresh);
  Status checked = CheckConstraintsAfterUpdate();
  if (!checked.ok()) {
    *rel = std::move(saved);
    return checked;
  }
  return Status::OK();
}

Status Database::AssignThroughSelector(const std::string& relation,
                                       const std::string& selector,
                                       const std::vector<Value>& args,
                                       const Relation& value) {
  DATACON_ASSIGN_OR_RETURN(const SelectorDecl* sel,
                           catalog_.LookupSelector(selector));
  if (args.size() != sel->params().size()) {
    return Status::TypeError("selector '" + selector + "' takes " +
                             std::to_string(sel->params().size()) +
                             " argument(s), got " + std::to_string(args.size()));
  }
  // An empty application graph still resolves plain and selected ranges,
  // which is all a selector predicate may reference.
  ApplicationGraph graph(&catalog_);
  Environment env;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i].type() != sel->params()[i].type) {
      return Status::TypeError("argument '" + sel->params()[i].name +
                               "' of selector '" + selector + "' expects " +
                               std::string(ValueTypeName(sel->params()[i].type)));
    }
    env.BindParam(sel->params()[i].name, args[i]);
  }
  EvalOptions eval_options = options_.eval;
  eval_options.typed_proven = TypedProven();
  SystemEvaluator ev(&catalog_, &graph, eval_options, env);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  Evaluator eval(&ev, eval_options.typed_proven);

  Environment tuple_env = env;
  for (const Tuple& t : value.tuples()) {
    tuple_env.Bind(sel->var(), &t, &value.schema());
    DATACON_ASSIGN_OR_RETURN(bool ok, eval.EvalPred(*sel->pred(), tuple_env));
    if (!ok) {
      return Status::InvalidArgument(
          "tuple " + t.ToString() + " violates selector '" + selector +
          "'; assignment through a selected relation rejected (section 2.3)");
    }
  }
  return Assign(relation, value);
}

Status Database::DefineSelector(SelectorDeclPtr decl) {
  if (options_.typecheck) {
    DATACON_RETURN_IF_ERROR(CheckSelectorDecl(*decl, catalog_));
  } else {
    // Admitting an unchecked definition permanently demotes the catalog to
    // the checked interpreter (the typed proof no longer holds).
    catalog_typed_clean_ = false;
  }
  return catalog_.DefineSelector(std::move(decl));
}

Status Database::DefineConstructorGroup(
    const std::vector<ConstructorDeclPtr>& decls, bool check_positivity) {
  // Register the whole group first: a recursive constructor must be visible
  // to its own type check, and mutually recursive constructors (section
  // 3.1's ahead/above) to each other's. Roll everything back on failure.
  std::vector<std::string> registered;
  Status status = Status::OK();
  for (const ConstructorDeclPtr& decl : decls) {
    status = catalog_.DefineConstructor(decl);
    if (!status.ok()) break;
    registered.push_back(decl->name());
  }
  if (status.ok()) {
    for (const ConstructorDeclPtr& decl : decls) {
      if (options_.typecheck) {
        status = CheckConstructorDecl(*decl, catalog_);
        if (!status.ok()) break;
      }
      if (check_positivity) {
        // The strict DBPL rule: reject at definition time (section 3.3).
        // With the stratified extension, negative references are instead
        // validated against the application graph at query compilation.
        status = CheckPositivity(*decl);
        if (!status.ok()) break;
      }
    }
  }
  if (status.ok() && options_.typecheck) {
    // Whole-program inference over the group: E130 conflicts, E131
    // ill-typed operations, and E132 non-binary capture shapes reject the
    // definition outright; warnings surface through CHECK/datacon-lint.
    for (const Diagnostic& d : TypecheckConstructorGroup(decls, catalog_)) {
      if (d.severity == Severity::kError) {
        status = Status::TypeError(d.ToString());
        break;
      }
    }
  }
  if (status.ok() && !options_.typecheck) catalog_typed_clean_ = false;
  if (!status.ok()) {
    for (const std::string& name : registered) catalog_.RemoveConstructor(name);
    return status;
  }
  return Status::OK();
}

Status Database::DefineConstructor(ConstructorDeclPtr decl) {
  return DefineConstructorGroup({std::move(decl)},
                                !options_.allow_stratified_negation);
}

Status Database::DefineConstructorGroup(
    const std::vector<ConstructorDeclPtr>& decls) {
  return DefineConstructorGroup(decls, !options_.allow_stratified_negation);
}

Status Database::DefineConstructorUnchecked(ConstructorDeclPtr decl) {
  return DefineConstructorGroup({std::move(decl)}, /*check_positivity=*/false);
}

namespace {

/// Renders the first (lexicographically smallest) witness tuple of a
/// non-empty violation result — deterministic across runs.
std::string FirstWitness(const Relation& witnesses) {
  std::vector<Tuple> sorted = witnesses.SortedTuples();
  return sorted.front().ToString();
}

}  // namespace

Status Database::DefineConstraint(ConstraintDeclPtr decl) {
  if (constraints_.count(decl->name()) > 0) {
    return Status::AlreadyExists("constraint '" + decl->name() + "'");
  }
  ConstraintAnalysis analysis = AnalyzeConstraint(*decl, catalog_);
  if (analysis.HasErrors()) {
    for (const Diagnostic& d : analysis.diagnostics) {
      if (d.severity != Severity::kError) continue;
      Status status(d.code == kDiagConstraintUnknownRelation
                        ? StatusCode::kNotFound
                        : StatusCode::kTypeError,
                    d.code + ": " + d.message);
      return status;
    }
  }

  CompiledConstraint compiled;
  compiled.decl = decl;
  compiled.body = analysis.body;
  DATACON_ASSIGN_OR_RETURN(CalcExprPtr denial,
                           DenialQuery(compiled.body, catalog_));
  DATACON_ASSIGN_OR_RETURN(PreparedQuery full, Prepare(denial, {}));
  // Checks must be invisible to later queries: never warm the cache.
  full.cache_bypass_ = true;
  compiled.full = std::move(full);

  for (const ConstraintEvent& event : analysis.events) {
    CompiledEvent ce;
    ce.insert_mode = event.insert_mode;
    if (event.insert_mode == ConstraintCheckMode::kSimplified) {
      for (size_t index : event.residue_bindings) {
        Result<ConstraintResidue> residue =
            BuildResidue(compiled.body, index, catalog_);
        Result<PreparedQuery> prepared =
            residue.ok() ? Prepare(residue->expr, residue->placeholders)
                         : Result<PreparedQuery>(residue.status());
        if (!prepared.ok()) {
          // A residue the query compiler cannot handle degrades the event
          // to full re-evaluation instead of rejecting the constraint.
          ce.insert_mode = ConstraintCheckMode::kFull;
          ce.residues.clear();
          break;
        }
        PreparedQuery residue_query = std::move(prepared).value();
        residue_query.cache_bypass_ = true;
        ce.residues.push_back(CompiledResidue{std::move(residue_query),
                                              residue->param_fields});
      }
    }
    compiled.events.emplace(event.relation, std::move(ce));
  }

  // The W231 case at runtime: a constraint refuted by the facts already in
  // the database is rejected (while enforcement is off it is admitted and
  // caught by the first checked statement).
  if (options_.constraints) {
    DATACON_ASSIGN_OR_RETURN(Relation witnesses, compiled.full->Execute({}));
    if (witnesses.size() > 0) {
      return Status::ConstraintViolation(
          "constraint '" + decl->name() +
          "' is already violated by existing facts: witness " +
          FirstWitness(witnesses));
    }
  }
  for (const std::string& input : analysis.inputs) {
    DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                             catalog_.LookupRelation(input));
    compiled.snapshot[input] = rel->generation();
  }
  DATACON_RETURN_IF_ERROR(catalog_.DefineConstraint(decl));
  constraints_.emplace(decl->name(), std::move(compiled));
  return Status::OK();
}

Status Database::CheckConstraintsAfterUpdate() {
  if (!options_.constraints || constraints_.empty()) return Status::OK();
  for (auto& [name, compiled] : constraints_) {
    DATACON_RETURN_IF_ERROR(CheckOneConstraint(&compiled));
  }
  return Status::OK();
}

Status Database::CheckOneConstraint(CompiledConstraint* constraint) {
  // Which inputs moved since the last successful check, and are their
  // deltas still reconstructible as pure inserts?
  struct MovedInput {
    std::string relation;
    std::optional<std::vector<Tuple>> delta;
  };
  std::vector<MovedInput> moved;
  bool rebase = false;
  for (const auto& [input, generation] : constraint->snapshot) {
    DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                             catalog_.LookupRelation(input));
    if (rel->generation() == generation) continue;
    std::optional<std::vector<Tuple>> delta = rel->InsertedSince(generation);
    // Erase/Clear churn or insert-log overflow: the delta is gone, so only
    // full re-evaluation is sound (erases can create witnesses through
    // odd-parity occurrences that inserts never could).
    if (!delta.has_value()) rebase = true;
    moved.push_back(MovedInput{input, std::move(delta)});
  }
  if (moved.empty()) return Status::OK();

  constraints_checks_->Increment();
  TraceSpan span("constraint");
  if (span.active()) span.AddArg("name", constraint->decl->name());

  bool need_full = rebase || !options_.constraints_simplify;
  if (!need_full) {
    for (const MovedInput& input : moved) {
      auto it = constraint->events.find(input.relation);
      if (it == constraint->events.end() ||
          it->second.insert_mode == ConstraintCheckMode::kFull) {
        need_full = true;
        break;
      }
    }
  }

  if (need_full) {
    if (span.active()) span.AddArg("mode", "full");
    constraints_full_rechecks_->Increment();
    DATACON_ASSIGN_OR_RETURN(Relation witnesses, constraint->full->Execute({}));
    if (witnesses.size() > 0) {
      constraints_violations_->Increment();
      std::string witness = FirstWitness(witnesses);
      if (event_log_.enabled()) {
        event_log_.Emit("constraint.violation",
                        {EventField::Str("name", constraint->decl->name()),
                         EventField::Str("witness", witness)});
      }
      return Status::ConstraintViolation(
          "constraint '" + constraint->decl->name() + "' violated: witness " +
          witness);
    }
  } else {
    if (span.active()) span.AddArg("mode", "simplified");
    for (const MovedInput& input : moved) {
      CompiledEvent& event = constraint->events.at(input.relation);
      if (event.insert_mode == ConstraintCheckMode::kSkip) continue;
      for (const Tuple& delta_tuple : *input.delta) {
        for (CompiledResidue& residue : event.residues) {
          constraints_simplified_->Increment();
          std::map<std::string, Value> params;
          for (size_t i = 0; i < residue.param_fields.size(); ++i) {
            params.emplace(residue.param_fields[i],
                           delta_tuple.value(static_cast<int>(i)));
          }
          DATACON_ASSIGN_OR_RETURN(Relation witnesses,
                                   residue.query.Execute(params));
          if (witnesses.size() > 0) {
            constraints_violations_->Increment();
            std::string witness = FirstWitness(witnesses);
            if (event_log_.enabled()) {
              event_log_.Emit(
                  "constraint.violation",
                  {EventField::Str("name", constraint->decl->name()),
                   EventField::Str("relation", input.relation),
                   EventField::Str("witness", witness)});
            }
            return Status::ConstraintViolation(
                "constraint '" + constraint->decl->name() +
                "' violated by tuple " + delta_tuple.ToString() + " (" +
                input.relation + "): witness " + witness);
          }
        }
      }
    }
  }

  // Success: advance the delta baseline to the current generations.
  for (auto& [input, generation] : constraint->snapshot) {
    DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                             catalog_.LookupRelation(input));
    generation = rel->generation();
  }
  return Status::OK();
}

std::string Database::DescribeConstraints() const {
  if (constraints_.empty()) return "no constraints defined\n";
  std::string out;
  for (const auto& [name, compiled] : constraints_) {
    out += ToString(*compiled.decl) + "\n";
    out += "  full check: " + compiled.full->plan_description() + "\n";
    for (const auto& [relation, event] : compiled.events) {
      out += "  on INSERT INTO " + relation + ": " +
             std::string(ConstraintCheckModeName(event.insert_mode));
      if (event.insert_mode == ConstraintCheckMode::kSimplified) {
        out += " (" + std::to_string(event.residues.size()) + " residue" +
               (event.residues.size() == 1 ? "" : "s") + ")";
      }
      out += "\n";
      for (size_t i = 0; i < event.residues.size(); ++i) {
        out += "    residue " + std::to_string(i) + ": " +
               event.residues[i].query.plan_description() + "\n";
      }
    }
    out += "  on erase/rebase of any input: full recheck\n";
  }
  return out;
}

Result<Relation> Database::EvalRange(const RangePtr& range) {
  // `Rel {ctor}` is the identity query over the range.
  CalcExprPtr expr = build::Union(
      {build::IdentityBranch("__q", range, build::True())});
  return EvalQuery(expr);
}

Result<Relation> Database::EvalQuery(const CalcExprPtr& expr) {
  DATACON_ASSIGN_OR_RETURN(Schema schema, InferQuerySchema(*expr, catalog_));
  return Evaluate(expr, schema, Environment());
}

Result<Relation> Database::EvalQueryAs(const CalcExprPtr& expr,
                                       const Schema& schema) {
  DATACON_RETURN_IF_ERROR(CheckQuery(*expr, catalog_, schema));
  return Evaluate(expr, schema, Environment());
}

Status Database::InstallCaptures(const ApplicationGraph& graph,
                                 SystemEvaluator* ev,
                                 const SpecializationPlan* plan,
                                 bool use_cache) {
  for (size_t i = 0; i < graph.nodes().size(); ++i) {
    const ApplicationGraph::Node& node = graph.nodes()[i];
    if (plan != nullptr && plan->nodes[i].active) continue;
    if (node.base->ContainsConstructor()) continue;
    if (!DetectTransitiveClosure(*node.ctor).has_value()) continue;
    TraceSpan span("capture");
    if (span.active()) span.AddArg("node", node.key);
    Timer timer;

    // Captures cache under their own key namespace. They are stored with
    // empty EvalStats (FullClosure contributes nothing to EvalStats either
    // way) and are never delta-maintained — the frontier algorithm has no
    // incremental form here, and a full recompute is its own seed.
    std::string cache_key;
    std::optional<std::vector<CacheInput>> cache_inputs;
    if (use_cache) {
      InputScan scan;
      ScanRangeInputs(*node.base, catalog_, 0, &scan);
      if (scan.ok) {
        cache_key = "capture|" + node.key;
        CacheLookup found = mat_cache_.Lookup(cache_key, catalog_);
        if (found.outcome == CacheOutcome::kHit && found.members.size() == 1 &&
            found.members[0].relation != nullptr) {
          if (span.active()) span.AddArg("cache", std::string("hit"));
          if (ev->profile() != nullptr) {
            ProfileNode* n = ev->profile()->AddChild(
                "capture [" + node.key + "] (cache hit)");
            n->counters().Add(
                "closure_tuples",
                static_cast<int64_t>(found.members[0].relation->size()));
            n->set_elapsed_ns(timer.ElapsedNs());
          }
          DATACON_RETURN_IF_ERROR(ev->InstallNodeRelation(
              static_cast<int>(i), found.members[0].relation));
          continue;
        }
        Result<std::vector<CacheInput>> snap =
            SnapshotCacheInputs(scan.inputs, catalog_);
        if (snap.ok()) {
          cache_inputs = std::move(snap).value();
        } else {
          cache_key.clear();
        }
      }
    }

    DATACON_ASSIGN_OR_RETURN(const Relation* edges, ev->Resolve(*node.base));
    DATACON_ASSIGN_OR_RETURN(Relation closure,
                             FullClosure(*edges, node.result_schema));
    auto closure_rel = std::make_shared<Relation>(std::move(closure));
    if (ev->profile() != nullptr) {
      ProfileNode* n = ev->profile()->AddChild(
          "capture [" + node.key + "] (transitive closure)");
      n->counters().Add("edge_tuples", static_cast<int64_t>(edges->size()));
      n->counters().Add("closure_tuples",
                        static_cast<int64_t>(closure_rel->size()));
      n->set_elapsed_ns(timer.ElapsedNs());
    }
    DATACON_RETURN_IF_ERROR(ev->InstallNodeRelation(
        static_cast<int>(i), std::shared_ptr<const Relation>(closure_rel)));
    if (!cache_key.empty() && cache_inputs.has_value()) {
      mat_cache_.Insert(cache_key, {CachedRelation{node.key, closure_rel}},
                        *std::move(cache_inputs), EvalStats{},
                        /*maintainable=*/false);
    }
  }
  return Status::OK();
}

namespace {

/// Seeded plans only run when the closure binding is the expression's sole
/// constructor reference (everything else resolves against base relations).
bool SeededPlanApplies(const CalcExpr& expr, const SeededTcPlan& plan) {
  if (expr.branches().size() != 1 || plan.branch_index != 0) return false;
  const Branch& branch = *expr.branches()[0];
  size_t constructed = 0;
  bool pred_recursion = false;
  for (const Binding& b : branch.bindings()) {
    if (b.range->ContainsConstructor()) ++constructed;
  }
  ForEachRangeWithParity(*branch.pred(), 0, [&](const Range& r, int) {
    if (r.ContainsConstructor()) pred_recursion = true;
  });
  // The plan's binding must also carry no trailing selectors (its last app
  // is the constructor; DetectSeededTc guarantees this).
  return constructed == 1 && !pred_recursion;
}

}  // namespace

void Database::BeginEvaluation() {
  ++eval_index_;
  last_stats_ = EvalStats{};
  last_usage_ = ResourceUsage{};
  last_typed_proven_ = TypedProven();
  cache_before_ = mat_cache_.stats();
}

MatCacheStats Database::last_cache_stats() const {
  const MatCacheStats& now = mat_cache_.stats();
  MatCacheStats out;
  out.hits = now.hits - cache_before_.hits;
  out.misses = now.misses - cache_before_.misses;
  out.invalidations = now.invalidations - cache_before_.invalidations;
  out.delta_maintained = now.delta_maintained - cache_before_.delta_maintained;
  out.evictions = now.evictions - cache_before_.evictions;
  return out;
}

void Database::StoreProfile(std::unique_ptr<ProfileNode> profile) {
  if (profile == nullptr) return;
  profiles_.emplace_back(eval_index_, std::move(profile));
  if (profiles_.size() > kRetainedProfiles) profiles_.erase(profiles_.begin());
}

const ProfileNode* Database::profile_at(int64_t index) const {
  for (const auto& [idx, profile] : profiles_) {
    if (idx == index) return profile.get();
  }
  return nullptr;
}

void Database::FinishEvaluation(const CalcExpr& expr, int64_t elapsed_ns,
                                bool ok) {
  // Always-on monitoring: four relaxed-atomic histogram records per query.
  query_latency_ns_->Record(elapsed_ns);
  query_fixpoint_rounds_->Record(static_cast<int64_t>(last_stats_.iterations));
  query_tuples_inserted_->Record(
      static_cast<int64_t>(last_stats_.tuples_inserted));
  query_seed_tuples_pruned_->Record(
      static_cast<int64_t>(last_stats_.seed_tuples_pruned));
  // The statement/digest strings are only built once admission is certain.
  if (slow_query_log_.WouldRecord(elapsed_ns)) {
    std::string digest =
        "rounds=" + std::to_string(last_stats_.iterations) +
        " considered=" + std::to_string(last_stats_.tuples_considered) +
        " inserted=" + std::to_string(last_stats_.tuples_inserted) +
        " index_probes=" + std::to_string(last_stats_.index_probes) + "\n" +
        last_usage_.ToText();
    if (const ProfileNode* profile = profile_at(eval_index_)) {
      digest += "\n" + profile->ToText();
      while (!digest.empty() && digest.back() == '\n') digest.pop_back();
    }
    slow_query_log_.Record(ToString(expr), elapsed_ns, std::move(digest));
    if (event_log_.enabled()) {
      event_log_.Emit("slowlog.admit",
                      {EventField::Int("eval_index", eval_index_),
                       EventField::Int("elapsed_ns", elapsed_ns)});
    }
  }
  if (event_log_.enabled()) {
    event_log_.Emit(
        "query.finish",
        {EventField::Int("eval_index", eval_index_),
         EventField::Int("ok", ok ? 1 : 0),
         EventField::Int("elapsed_ns", elapsed_ns),
         EventField::Int("rounds",
                         static_cast<int64_t>(last_stats_.iterations)),
         EventField::Int("tuples_considered",
                         static_cast<int64_t>(last_stats_.tuples_considered)),
         EventField::Int("tuples_inserted",
                         static_cast<int64_t>(last_stats_.tuples_inserted)),
         EventField::Int("peak_delta",
                         static_cast<int64_t>(last_usage_.peak_delta_tuples)),
         EventField::Int(
             "materialized",
             static_cast<int64_t>(last_usage_.tuples_materialized)),
         EventField::Int("approx_bytes",
                         static_cast<int64_t>(last_usage_.approx_bytes))});
  }
}

Result<Relation> Database::Evaluate(const CalcExprPtr& expr,
                                    const Schema& schema,
                                    const Environment& params) {
  BeginEvaluation();
  TraceSpan span("evaluate");
  if (event_log_.enabled()) {
    event_log_.Emit("query.start",
                    {EventField::Int("eval_index", eval_index_),
                     EventField::Str("query", ToString(*expr))});
  }
  Timer timer;
  Result<Relation> out = [&]() -> Result<Relation> {
    CalcExprPtr effective = expr;
    if (options_.inline_nonrecursive) {
      DATACON_ASSIGN_OR_RETURN(
          std::optional<CalcExprPtr> inlined,
          InlineNonRecursiveApplications(effective, catalog_));
      if (inlined.has_value()) effective = *inlined;
    }

    if (options_.use_capture_rules) {
      DATACON_ASSIGN_OR_RETURN(std::optional<SeededTcPlan> plan,
                               DetectSeededTc(*effective, catalog_));
      if (plan.has_value() && SeededPlanApplies(*effective, *plan)) {
        return ExecuteSeeded(effective, schema, params, *plan);
      }
    }
    return EvaluateGeneral(effective, schema, params);
  }();
  if (span.active()) {
    span.AddArg("rounds", static_cast<int64_t>(last_stats_.iterations));
    span.AddArg("tuples_inserted",
                static_cast<int64_t>(last_stats_.tuples_inserted));
    span.AddArg("ok", out.ok() ? int64_t{1} : int64_t{0});
  }
  FinishEvaluation(*expr, timer.ElapsedNs(), out.ok());
  return out;
}

Result<Relation> Database::ExecuteSeeded(const CalcExprPtr& expr,
                                         const Schema& schema,
                                         const Environment& params,
                                         const SeededTcPlan& plan) {
  // Constant propagation into the recursive constructor: reachability from
  // the bound constant only, never the full closure.
  TraceSpan span("seeded closure");
  Timer timer;
  ApplicationGraph graph(&catalog_);
  EvalOptions eval_options = options_.eval;
  eval_options.typed_proven = TypedProven();
  SystemEvaluator ev(&catalog_, &graph, eval_options, params);
  ev.InstallEventLog(&event_log_);
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());

  DATACON_ASSIGN_OR_RETURN(const Relation* edges,
                           ev.Resolve(*plan.edges_range));
  Value seed;
  if (plan.seed_literal.has_value()) {
    seed = *plan.seed_literal;
  } else {
    const Value* bound = params.LookupParam(*plan.seed_param);
    if (bound == nullptr) {
      return Status::NotFound("parameter '" + *plan.seed_param +
                              "' not bound");
    }
    seed = *bound;
  }
  DATACON_ASSIGN_OR_RETURN(Relation closure,
                           SeededClosure(*edges, {seed}, plan.result_schema));
  if (span.active()) {
    span.AddArg("edge_tuples", static_cast<int64_t>(edges->size()));
    span.AddArg("closure_tuples", static_cast<int64_t>(closure.size()));
  }

  const Branch& branch = *expr->branches()[0];
  std::vector<ResolvedBinding> resolved;
  for (size_t j = 0; j < branch.bindings().size(); ++j) {
    if (j == plan.binding_index) {
      resolved.push_back(ResolvedBinding{branch.bindings()[j].var, &closure});
    } else {
      DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                               ev.Resolve(*branch.bindings()[j].range));
      resolved.push_back(ResolvedBinding{branch.bindings()[j].var, rel});
    }
  }
  Relation out(schema);
  Evaluator eval(&ev, eval_options.typed_proven);
  BranchExecStats exec_stats;
  DATACON_RETURN_IF_ERROR(ExecuteBranch(branch, resolved, eval, params, &out,
                                        &exec_stats, options_.eval.exec));
  last_stats_.tuples_considered = exec_stats.env_count;
  last_stats_.tuples_inserted = exec_stats.inserted;
  last_stats_.outer_tuples = exec_stats.outer_tuples;
  last_stats_.index_builds = exec_stats.index_builds;
  last_stats_.index_probes = exec_stats.index_probes;
  last_stats_.snapshot_materializations = exec_stats.snapshots;
  last_stats_.chunks_dispatched = exec_stats.chunks;
  // Resource attribution: whatever MaterializeAll built, plus the seeded
  // closure itself (the plan's working set) and the branch's index builds.
  last_usage_ = ev.usage();
  last_usage_.index_builds += exec_stats.index_builds;
  last_usage_.tuples_materialized += closure.size();
  last_usage_.approx_bytes += ApproxRelationBytes(closure);
  if (closure.size() > last_usage_.peak_delta_tuples) {
    last_usage_.peak_delta_tuples = closure.size();
  }
  if (options_.eval.profile) {
    auto root = std::make_unique<ProfileNode>("evaluation");
    ProfileNode* n = root->AddChild("seeded transitive closure");
    n->counters().Add("closure_tuples", static_cast<int64_t>(closure.size()));
    n->counters().Add("tuples_considered",
                      static_cast<int64_t>(exec_stats.env_count));
    n->counters().Add("tuples_inserted",
                      static_cast<int64_t>(exec_stats.inserted));
    n->counters().Add("outer_scans",
                      static_cast<int64_t>(exec_stats.outer_tuples));
    n->counters().Add("index_builds",
                      static_cast<int64_t>(exec_stats.index_builds));
    n->counters().Add("index_probes",
                      static_cast<int64_t>(exec_stats.index_probes));
    if (exec_stats.snapshots > 0) {
      n->exec().Add("snapshots", static_cast<int64_t>(exec_stats.snapshots));
    }
    if (exec_stats.chunks > 0) {
      n->exec().Add("chunks", static_cast<int64_t>(exec_stats.chunks));
    }
    root->set_elapsed_ns(timer.ElapsedNs());
    StoreProfile(std::move(root));
  }
  return out;
}

Result<Relation> Database::EvaluateGeneral(const CalcExprPtr& expr,
                                           const Schema& schema,
                                           const Environment& params,
                                           bool allow_cache) {
  ApplicationGraph graph(&catalog_);
  DATACON_RETURN_IF_ERROR(graph.AddRoots(*expr));
  EvalOptions eval_options = options_.eval;
  eval_options.typed_proven = TypedProven();
  SystemEvaluator ev(&catalog_, &graph, eval_options, params);
  ev.InstallEventLog(&event_log_);
  // Parameterized executions bypass the cache: parameter values change
  // results (and magic seeds) without appearing in any cache key.
  const bool use_cache = allow_cache && options_.cache && !params.HasParams();
  if (use_cache) ev.InstallMatCache(&mat_cache_);
  std::optional<SpecializationPlan> plan;
  if (options_.specialize) {
    TraceSpan plan_span("plan specialize");
    DATACON_ASSIGN_OR_RETURN(AdornmentAnalysis adornment,
                             AnalyzeAdornment(*expr, graph, catalog_));
    DATACON_ASSIGN_OR_RETURN(plan, BuildSpecializationPlan(adornment, graph));
    if (plan.has_value()) ev.InstallSpecialization(&*plan);
  }
  if (options_.use_capture_rules) {
    DATACON_RETURN_IF_ERROR(InstallCaptures(
        graph, &ev, plan.has_value() ? &*plan : nullptr, use_cache));
  }
  DATACON_RETURN_IF_ERROR(ev.MaterializeAll());
  DATACON_ASSIGN_OR_RETURN(Relation out, ev.EvaluateExpr(*expr, schema));
  last_stats_ = ev.stats();
  last_usage_ = ev.usage();
  StoreProfile(ev.TakeProfile());
  return out;
}

Result<PreparedQuery> Database::Prepare(
    CalcExprPtr expr, std::map<std::string, ValueType> placeholders) {
  DATACON_ASSIGN_OR_RETURN(Schema schema,
                           InferQuerySchema(*expr, catalog_, placeholders));

  PreparedQuery q;
  q.db_ = this;
  q.expr_ = expr;
  q.schema_ = std::move(schema);
  q.placeholders_ = std::move(placeholders);
  q.plan_description_ = "general evaluation";

  if (options_.inline_nonrecursive) {
    DATACON_ASSIGN_OR_RETURN(std::optional<CalcExprPtr> inlined,
                             InlineNonRecursiveApplications(q.expr_, catalog_));
    if (inlined.has_value()) {
      q.expr_ = *inlined;
      q.plan_description_ = "inlined non-recursive applications";
    }
  }
  if (options_.use_capture_rules) {
    DATACON_ASSIGN_OR_RETURN(std::optional<SeededTcPlan> plan,
                             DetectSeededTc(*q.expr_, catalog_));
    if (plan.has_value() && SeededPlanApplies(*q.expr_, *plan)) {
      q.seeded_plan_ = std::move(plan);
      q.plan_description_ =
          "seeded transitive closure (" +
          (q.seeded_plan_->seed_param.has_value()
               ? "parameter '" + *q.seeded_plan_->seed_param + "'"
               : "constant " + q.seeded_plan_->seed_literal->ToString()) +
          ")";
    }
  }
  return q;
}

Result<Relation> PreparedQuery::Execute(
    const std::map<std::string, Value>& params) {
  // Validate the bindings against the declared placeholders.
  for (const auto& [name, type] : placeholders_) {
    auto it = params.find(name);
    if (it == params.end()) {
      return Status::InvalidArgument("parameter '" + name + "' not bound");
    }
    if (it->second.type() != type) {
      return Status::TypeError("parameter '" + name + "' expects " +
                               std::string(ValueTypeName(type)) + ", got " +
                               it->second.ToString());
    }
  }
  for (const auto& [name, value] : params) {
    (void)value;
    if (placeholders_.count(name) == 0) {
      return Status::InvalidArgument("unknown parameter '" + name + "'");
    }
  }
  Environment env;
  for (const auto& [name, value] : params) env.BindParam(name, value);
  // The plan was chosen at Prepare time (level 2); Execute runs level 3
  // only — no re-detection, no re-inlining. Observability wraps it the
  // same way Database::Evaluate wraps ad-hoc queries.
  db_->BeginEvaluation();
  TraceSpan span("evaluate");
  if (span.active()) span.AddArg("plan", plan_description_);
  if (db_->event_log_.enabled()) {
    db_->event_log_.Emit("query.start",
                         {EventField::Int("eval_index", db_->eval_index_),
                          EventField::Str("plan", plan_description_)});
  }
  Timer timer;
  Result<Relation> out =
      seeded_plan_.has_value()
          ? db_->ExecuteSeeded(expr_, schema_, env, *seeded_plan_)
          : db_->EvaluateGeneral(expr_, schema_, env, !cache_bypass_);
  if (span.active()) {
    span.AddArg("rounds", static_cast<int64_t>(db_->last_stats_.iterations));
    span.AddArg("tuples_inserted",
                static_cast<int64_t>(db_->last_stats_.tuples_inserted));
    span.AddArg("ok", out.ok() ? int64_t{1} : int64_t{0});
  }
  db_->FinishEvaluation(*expr_, timer.ElapsedNs(), out.ok());
  return out;
}

Result<std::string> Database::Explain(const RangePtr& range) const {
  ApplicationGraph graph(&catalog_);
  DATACON_ASSIGN_OR_RETURN(int root, graph.AddRootRange(*range));

  std::string out = "query range: " + ToString(*range) + "\n";

  out += "level 1 (definition analysis): partitions:\n";
  for (const std::vector<std::string>& part : PartitionDefinitions(catalog_)) {
    out += "  {";
    for (size_t i = 0; i < part.size(); ++i) {
      if (i > 0) out += ", ";
      out += part[i];
    }
    out += "}\n";
  }

  out += "level 2 (query compilation): instantiated applications:\n";
  if (root < 0) {
    out += "  (none — plain range)\n";
    return out;
  }
  Result<SccDecomposition> scc = graph.Stratify();
  if (!scc.ok()) return scc.status();

  // Adornment analysis over the identity query `EACH __q IN range: TRUE` —
  // the same form EvalRange evaluates. The table is informational; the
  // rewrite itself is gated by options().specialize (PRAGMA SPECIALIZE).
  CalcExprPtr identity =
      build::Union({build::IdentityBranch("__q", range, build::True())});
  DATACON_ASSIGN_OR_RETURN(AdornmentAnalysis adornment,
                           AnalyzeAdornment(*identity, graph, catalog_));
  DATACON_ASSIGN_OR_RETURN(std::optional<SpecializationPlan> plan,
                           BuildSpecializationPlan(adornment, graph));
  auto specialized = [&](int n) {
    return options_.specialize && plan.has_value() &&
           plan->nodes[static_cast<size_t>(n)].active;
  };

  for (int comp : scc->topological_order) {
    const std::vector<int>& members =
        scc->components[static_cast<size_t>(comp)];
    bool cyclic = scc->cyclic[static_cast<size_t>(comp)];
    out += "  component:";
    for (int n : members) {
      out += " [" + graph.nodes()[static_cast<size_t>(n)].key + "]";
    }
    if (!cyclic) {
      out += specialized(members[0]) ? " -> single pass (restricted)\n"
                                     : " -> single pass\n";
      continue;
    }
    if (specialized(members[0])) {
      out += options_.eval.strategy == FixpointStrategy::kSemiNaive
                 ? " -> magic-seed specialized semi-naive fixpoint\n"
                 : " -> magic-seed specialized naive fixpoint\n";
      continue;
    }
    bool captured = false;
    if (options_.use_capture_rules && members.size() == 1) {
      const ApplicationGraph::Node& node =
          graph.nodes()[static_cast<size_t>(members[0])];
      if (!node.base->ContainsConstructor() &&
          DetectTransitiveClosure(*node.ctor).has_value()) {
        captured = true;
      }
    }
    if (captured) {
      out += " -> capture rule: specialized transitive closure\n";
    } else {
      out += options_.eval.strategy == FixpointStrategy::kSemiNaive
                 ? " -> semi-naive fixpoint\n"
                 : " -> naive fixpoint\n";
    }
  }

  out += "level 2 (inferred schemas):\n";
  TypeInference inference = InferCatalogTypes(catalog_);
  std::set<std::string> explained;
  for (const ApplicationGraph::Node& node : graph.nodes()) {
    const std::string& ctor_name = node.ctor->name();
    if (!explained.insert(ctor_name).second) continue;
    auto it = inference.constructors.find(ctor_name);
    if (it != inference.constructors.end()) {
      out += "  " + ctor_name + ": " + it->second.ToString() + "\n";
    }
  }
  out += TypedProven()
             ? "  typed evaluation: proven (per-tuple type checks elided)\n"
             : "  typed evaluation: checked fallback (catalog not "
               "typed-proven)\n";

  out += "level 2 (adornment & relevance):\n";
  out += adornment.ToText(graph);
  out += options_.specialize
             ? "  specialization: ON (PRAGMA SPECIALIZE = OFF disables)\n"
             : "  specialization: OFF (PRAGMA SPECIALIZE = ON enables)\n";
  for (const Diagnostic& d : adornment.diagnostics) {
    out += "  " + d.ToString() + "\n";
  }

  out += "level 3 (physical branch plans):\n";
  AnalysisScope scope;
  scope.catalog = &catalog_;
  for (const ApplicationGraph::Node& node : graph.nodes()) {
    out += "  [" + node.key + "]\n";
    for (const BranchPtr& branch : node.body->branches()) {
      std::vector<BindingSchema> schemas;
      Status schema_status = Status::OK();
      for (const Binding& b : branch->bindings()) {
        Result<const Schema*> schema = RangeSchemaOf(*b.range, scope);
        if (!schema.ok()) {
          schema_status = schema.status();
          break;
        }
        schemas.push_back(BindingSchema{b.var, schema.value()});
      }
      if (!schema_status.ok()) return schema_status;
      DATACON_ASSIGN_OR_RETURN(
          std::string plan,
          ExplainBranchPlan(*branch, schemas, options_.eval.exec));
      out += "    " + plan + "\n";
    }
  }
  return out;
}

}  // namespace datacon
