#include "core/rewrite.h"

#include "ast/builder.h"
#include "common/check.h"
#include "core/capture.h"
#include "core/positivity.h"
#include "core/subst.h"
#include "ra/analysis.h"

namespace datacon {

namespace {

std::string Renamed(const std::map<std::string, std::string>& renames,
                    const std::string& var) {
  auto it = renames.find(var);
  return it == renames.end() ? var : it->second;
}

TermPtr RenameTermVars(const TermPtr& term,
                       const std::map<std::string, std::string>& renames) {
  switch (term->kind()) {
    case Term::Kind::kLiteral:
    case Term::Kind::kParamRef:
      return term;
    case Term::Kind::kFieldRef: {
      const auto& t = static_cast<const FieldRefTerm&>(*term);
      auto it = renames.find(t.var());
      if (it == renames.end()) return term;
      return std::make_shared<FieldRefTerm>(it->second, t.field());
    }
    case Term::Kind::kArith: {
      const auto& t = static_cast<const ArithTerm&>(*term);
      return std::make_shared<ArithTerm>(t.op(),
                                         RenameTermVars(t.lhs(), renames),
                                         RenameTermVars(t.rhs(), renames));
    }
  }
  DATACON_UNREACHABLE("term kind");
}

RangePtr RenameRangeVars(const RangePtr& range,
                         const std::map<std::string, std::string>& renames) {
  std::vector<RangeApp> apps;
  apps.reserve(range->apps().size());
  for (const RangeApp& app : range->apps()) {
    RangeApp copy;
    copy.kind = app.kind;
    copy.name = app.name;
    for (const TermPtr& t : app.term_args) {
      copy.term_args.push_back(RenameTermVars(t, renames));
    }
    for (const RangePtr& r : app.range_args) {
      copy.range_args.push_back(RenameRangeVars(r, renames));
    }
    apps.push_back(std::move(copy));
  }
  return std::make_shared<Range>(range->relation(), std::move(apps));
}

PredPtr RenamePredVars(const PredPtr& pred,
                       const std::map<std::string, std::string>& renames) {
  switch (pred->kind()) {
    case Pred::Kind::kBool:
      return pred;
    case Pred::Kind::kCompare: {
      const auto& p = static_cast<const ComparePred&>(*pred);
      return std::make_shared<ComparePred>(p.op(),
                                           RenameTermVars(p.lhs(), renames),
                                           RenameTermVars(p.rhs(), renames));
    }
    case Pred::Kind::kAnd: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const AndPred&>(*pred).operands()) {
        ops.push_back(RenamePredVars(op, renames));
      }
      return std::make_shared<AndPred>(std::move(ops));
    }
    case Pred::Kind::kOr: {
      std::vector<PredPtr> ops;
      for (const PredPtr& op : static_cast<const OrPred&>(*pred).operands()) {
        ops.push_back(RenamePredVars(op, renames));
      }
      return std::make_shared<OrPred>(std::move(ops));
    }
    case Pred::Kind::kNot: {
      const auto& p = static_cast<const NotPred&>(*pred);
      return std::make_shared<NotPred>(RenamePredVars(p.operand(), renames));
    }
    case Pred::Kind::kQuant: {
      const auto& p = static_cast<const QuantPred&>(*pred);
      return std::make_shared<QuantPred>(
          p.quantifier(), Renamed(renames, p.var()),
          RenameRangeVars(p.range(), renames),
          RenamePredVars(p.body(), renames));
    }
    case Pred::Kind::kIn: {
      const auto& p = static_cast<const InPred&>(*pred);
      std::vector<TermPtr> tuple;
      for (const TermPtr& t : p.tuple()) {
        tuple.push_back(RenameTermVars(t, renames));
      }
      return std::make_shared<InPred>(std::move(tuple),
                                      RenameRangeVars(p.range(), renames));
    }
  }
  DATACON_UNREACHABLE("pred kind");
}

}  // namespace

BranchPtr RenameVars(const BranchPtr& branch,
                     const std::map<std::string, std::string>& renames) {
  std::vector<Binding> bindings;
  bindings.reserve(branch->bindings().size());
  for (const Binding& b : branch->bindings()) {
    bindings.push_back(Binding{Renamed(renames, b.var),
                               RenameRangeVars(b.range, renames), b.loc});
  }
  std::optional<std::vector<TermPtr>> targets;
  if (branch->targets().has_value()) {
    targets.emplace();
    for (const TermPtr& t : *branch->targets()) {
      targets->push_back(RenameTermVars(t, renames));
    }
  }
  return std::make_shared<Branch>(std::move(bindings),
                                  RenamePredVars(branch->pred(), renames),
                                  std::move(targets), branch->loc());
}

namespace {

/// True when the constructor's body contains no constructor application at
/// all — inlining it can never lose recursion.
bool IsNonRecursiveBody(const ConstructorDecl& decl) {
  bool found = false;
  for (const BranchPtr& branch : decl.body()->branches()) {
    ForEachRangeWithParity(*branch, [&](const Range& range, int) {
      if (range.ContainsConstructor()) found = true;
    });
  }
  return !found;
}

/// Inlines the constructor application ending `binding`'s range into the
/// query branch; appends the resulting branches to `out`.
Status InlineBinding(const Branch& query_branch, size_t binding_index,
                     const ConstructorDecl& ctor, const Catalog& catalog,
                     int* fresh_counter, std::vector<BranchPtr>* out) {
  const Binding& binding = query_branch.bindings()[binding_index];
  const RangeApp& app = binding.range->apps().back();

  // Base of the application: the range minus its final application.
  std::vector<RangeApp> base_apps(binding.range->apps().begin(),
                                  binding.range->apps().end() - 1);
  RangePtr base = std::make_shared<Range>(binding.range->relation(),
                                          std::move(base_apps));

  Substitution subst;
  subst.relations.emplace(ctor.base().name, base);
  for (size_t i = 0; i < app.range_args.size(); ++i) {
    subst.relations.emplace(ctor.rel_params()[i].name, app.range_args[i]);
  }
  for (size_t i = 0; i < app.term_args.size(); ++i) {
    subst.scalars.emplace(ctor.scalar_params()[i].name, app.term_args[i]);
  }
  CalcExprPtr body = SubstituteExpr(ctor.body(), subst);

  DATACON_ASSIGN_OR_RETURN(const Schema* result_schema,
                           catalog.LookupRelationType(ctor.result_type_name()));
  DATACON_ASSIGN_OR_RETURN(const Schema* base_schema,
                           catalog.LookupRelationType(ctor.base().type_name));

  for (const BranchPtr& body_branch_raw : body->branches()) {
    // Keep inlined variables distinct from the query's.
    std::map<std::string, std::string> renames;
    std::set<std::string> body_vars;
    for (const Binding& b : body_branch_raw->bindings()) body_vars.insert(b.var);
    for (const std::string& v : body_vars) {
      renames[v] = "__inl" + std::to_string((*fresh_counter)++) + "_" + v;
    }
    BranchPtr body_branch = RenameVars(body_branch_raw, renames);

    // Case 2 (join): each reference to a result field of the inlined
    // variable is replaced by the body branch's target term for that field.
    FieldSubstitution fields;
    std::vector<TermPtr> produced;
    if (body_branch->targets().has_value()) {
      produced = *body_branch->targets();
    } else {
      // Identity body branch: the produced tuple is the bound variable's,
      // field for field (positionally against the result schema).
      const Binding& only = body_branch->bindings()[0];
      for (int i = 0; i < base_schema->arity(); ++i) {
        produced.push_back(std::make_shared<FieldRefTerm>(
            only.var, base_schema->field(i).name));
      }
    }
    for (int i = 0; i < result_schema->arity(); ++i) {
      fields[{binding.var, result_schema->field(i).name}] =
          produced[static_cast<size_t>(i)];
    }

    std::vector<Binding> bindings;
    for (size_t j = 0; j < query_branch.bindings().size(); ++j) {
      if (j == binding_index) {
        for (const Binding& b : body_branch->bindings()) bindings.push_back(b);
      } else {
        bindings.push_back(query_branch.bindings()[j]);
      }
    }

    std::vector<PredPtr> conjuncts;
    conjuncts.push_back(body_branch->pred());
    conjuncts.push_back(SubstituteFields(query_branch.pred(), fields));
    PredPtr pred = ConjunctsToPred(FlattenConjuncts(build::And(conjuncts)));

    std::vector<TermPtr> targets;
    if (query_branch.targets().has_value()) {
      for (const TermPtr& t : *query_branch.targets()) {
        targets.push_back(SubstituteFields(t, fields));
      }
    } else {
      // Identity query branch: produce the constructed tuple itself.
      for (int i = 0; i < result_schema->arity(); ++i) {
        targets.push_back(produced[static_cast<size_t>(i)]);
      }
    }
    out->push_back(std::make_shared<Branch>(std::move(bindings),
                                            std::move(pred),
                                            std::move(targets)));
  }
  return Status::OK();
}

}  // namespace

Result<std::optional<CalcExprPtr>> InlineNonRecursiveApplications(
    const CalcExprPtr& expr, const Catalog& catalog) {
  CalcExprPtr current = expr;
  bool any_change = false;
  // Nested non-recursive applications unfold in successive passes; ten
  // levels is far beyond anything a sane program contains.
  for (int pass = 0; pass < 10; ++pass) {
    bool changed = false;
    int fresh_counter = 0;
    std::vector<BranchPtr> out;
    for (const BranchPtr& branch : current->branches()) {
      std::optional<size_t> target_binding;
      const ConstructorDecl* target_ctor = nullptr;
      for (size_t j = 0; j < branch->bindings().size(); ++j) {
        const RangePtr& range = branch->bindings()[j].range;
        if (range->apps().empty() ||
            range->apps().back().kind != RangeApp::Kind::kConstructor) {
          continue;
        }
        Result<const ConstructorDecl*> ctor =
            catalog.LookupConstructor(range->apps().back().name);
        if (!ctor.ok()) return ctor.status();
        if (!IsNonRecursiveBody(*ctor.value())) continue;
        target_binding = j;
        target_ctor = ctor.value();
        break;
      }
      if (!target_binding.has_value()) {
        out.push_back(branch);
        continue;
      }
      DATACON_RETURN_IF_ERROR(InlineBinding(*branch, *target_binding,
                                            *target_ctor, catalog,
                                            &fresh_counter, &out));
      changed = true;
    }
    if (!changed) break;
    any_change = true;
    current = std::make_shared<CalcExpr>(std::move(out));
  }
  if (!any_change) return std::optional<CalcExprPtr>();
  return std::optional<CalcExprPtr>(current);
}

Result<std::optional<SeededTcPlan>> DetectSeededTc(const CalcExpr& expr,
                                                   const Catalog& catalog) {
  for (size_t bi = 0; bi < expr.branches().size(); ++bi) {
    const Branch& branch = *expr.branches()[bi];
    for (size_t j = 0; j < branch.bindings().size(); ++j) {
      const Binding& binding = branch.bindings()[j];
      const RangePtr& range = binding.range;
      if (range->apps().empty() ||
          range->apps().back().kind != RangeApp::Kind::kConstructor) {
        continue;
      }
      const RangeApp& app = range->apps().back();
      if (!app.range_args.empty() || !app.term_args.empty()) continue;
      Result<const ConstructorDecl*> ctor = catalog.LookupConstructor(app.name);
      if (!ctor.ok()) return ctor.status();
      if (!DetectTransitiveClosure(*ctor.value()).has_value()) continue;

      std::vector<RangeApp> base_apps(range->apps().begin(),
                                      range->apps().end() - 1);
      RangePtr edges = std::make_shared<Range>(range->relation(),
                                               std::move(base_apps));
      if (edges->ContainsConstructor()) continue;

      DATACON_ASSIGN_OR_RETURN(
          const Schema* result_schema,
          catalog.LookupRelationType(ctor.value()->result_type_name()));
      const std::string& source_field = result_schema->field(0).name;

      for (const PredPtr& conjunct : FlattenConjuncts(branch.pred())) {
        if (conjunct->kind() != Pred::Kind::kCompare) continue;
        const auto& cmp = static_cast<const ComparePred&>(*conjunct);
        if (cmp.op() != CompareOp::kEq) continue;
        for (bool flip : {false, true}) {
          const TermPtr& lhs = flip ? cmp.rhs() : cmp.lhs();
          const TermPtr& rhs = flip ? cmp.lhs() : cmp.rhs();
          if (lhs->kind() != Term::Kind::kFieldRef) continue;
          const auto& field = static_cast<const FieldRefTerm&>(*lhs);
          if (field.var() != binding.var || field.field() != source_field) {
            continue;
          }
          SeededTcPlan plan;
          plan.branch_index = bi;
          plan.binding_index = j;
          plan.edges_range = edges;
          plan.result_schema = *result_schema;
          if (rhs->kind() == Term::Kind::kLiteral) {
            plan.seed_literal = static_cast<const LiteralTerm&>(*rhs).value();
          } else if (rhs->kind() == Term::Kind::kParamRef) {
            plan.seed_param = static_cast<const ParamRefTerm&>(*rhs).name();
          } else {
            continue;
          }
          return std::optional<SeededTcPlan>(std::move(plan));
        }
      }
    }
  }
  return std::optional<SeededTcPlan>();
}

}  // namespace datacon
