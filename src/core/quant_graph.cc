#include "core/quant_graph.h"

#include <algorithm>
#include <map>
#include <set>

#include "ast/printer.h"
#include "core/positivity.h"
#include "ra/analysis.h"

namespace datacon {

std::string QuantGraph::ToDot() const {
  std::string out = "digraph quant {\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += "  n" + std::to_string(i) + " [label=\"" + nodes[i].label + "\"";
    if (nodes[i].kind == Node::Kind::kHead) out += ", shape=box";
    out += "];\n";
  }
  for (const Arc& a : arcs) {
    out += "  n" + std::to_string(a.from) + " -> n" + std::to_string(a.to) +
           " [label=\"" + a.label + "\"];\n";
  }
  out += "}\n";
  return out;
}

QuantGraph BuildAugmentedQuantGraph(const ConstructorDecl& decl,
                                    const Catalog& catalog) {
  QuantGraph g;
  g.nodes.push_back(QuantGraph::Node{QuantGraph::Node::Kind::kHead,
                                     "CONSTRUCTOR " + decl.name() + " FOR " +
                                         decl.base().name + ": " +
                                         decl.base().type_name + " () : " +
                                         decl.result_type_name()});

  Result<const Schema*> result_schema =
      catalog.LookupRelationType(decl.result_type_name());

  for (const BranchPtr& branch : decl.body()->branches()) {
    std::map<std::string, int> var_node;
    for (const Binding& b : branch->bindings()) {
      int id = static_cast<int>(g.nodes.size());
      g.nodes.push_back(QuantGraph::Node{
          QuantGraph::Node::Kind::kVariable,
          "EACH " + b.var + " IN " + ToString(*b.range)});
      var_node[b.var] = id;

      // Step 2: a quantified node whose range is constructed points back to
      // the corresponding constructor head. Self-recursion points at this
      // head; other constructors are labelled by name.
      for (const RangeApp& app : b.range->apps()) {
        if (app.kind != RangeApp::Kind::kConstructor) continue;
        if (app.name == decl.name()) {
          g.arcs.push_back(QuantGraph::Arc{id, 0, "recursive"});
        } else {
          g.arcs.push_back(QuantGraph::Arc{id, 0, "uses " + app.name});
        }
      }
    }

    // Head arcs: the attribute relationships between the result relation
    // and the range definitions (Fig. 3's "front = head" style arcs).
    auto arc_for_target = [&](int position, const Term& term) {
      if (term.kind() != Term::Kind::kFieldRef) return;
      const auto& f = static_cast<const FieldRefTerm&>(term);
      auto it = var_node.find(f.var());
      if (it == var_node.end()) return;
      std::string result_field =
          result_schema.ok()
              ? result_schema.value()->field(position).name
              : std::to_string(position);
      g.arcs.push_back(
          QuantGraph::Arc{0, it->second, result_field + " = " + f.field()});
    };
    if (branch->targets().has_value()) {
      int i = 0;
      for (const TermPtr& t : *branch->targets()) arc_for_target(i++, *t);
    } else if (!branch->bindings().empty()) {
      auto it = var_node.find(branch->bindings()[0].var);
      if (it != var_node.end()) {
        g.arcs.push_back(QuantGraph::Arc{0, it->second, "="});
      }
    }

    // Join arcs between variable nodes, one per equi-join conjunct, in
    // quantifier direction (outside in).
    for (const PredPtr& conjunct : FlattenConjuncts(branch->pred())) {
      if (conjunct->kind() != Pred::Kind::kCompare) continue;
      const auto& cmp = static_cast<const ComparePred&>(*conjunct);
      if (cmp.op() != CompareOp::kEq) continue;
      if (cmp.lhs()->kind() != Term::Kind::kFieldRef ||
          cmp.rhs()->kind() != Term::Kind::kFieldRef) {
        continue;
      }
      const auto& l = static_cast<const FieldRefTerm&>(*cmp.lhs());
      const auto& r = static_cast<const FieldRefTerm&>(*cmp.rhs());
      auto li = var_node.find(l.var());
      auto ri = var_node.find(r.var());
      if (li == var_node.end() || ri == var_node.end() ||
          li->second == ri->second) {
        continue;
      }
      g.arcs.push_back(QuantGraph::Arc{
          li->second, ri->second, l.field() + " = " + r.field()});
    }
  }
  return g;
}

std::vector<std::vector<std::string>> PartitionDefinitions(
    const Catalog& catalog) {
  // Name-level graph: each constructor connects to every constructor and
  // relation type name its signature and body mention.
  std::map<std::string, std::set<std::string>> adjacency;
  auto connect = [&](const std::string& a, const std::string& b) {
    adjacency[a].insert(b);
    adjacency[b].insert(a);
  };

  for (const auto& [name, decl] : catalog.constructors()) {
    const std::string ctor_node = "constructor:" + name;
    connect(ctor_node, "type:" + decl->base().type_name);
    connect(ctor_node, "type:" + decl->result_type_name());
    for (const FormalRelation& r : decl->rel_params()) {
      connect(ctor_node, "type:" + r.type_name);
    }
    for (const BranchPtr& branch : decl->body()->branches()) {
      ForEachRangeWithParity(*branch, [&](const Range& range, int) {
        for (const RangeApp& app : range.apps()) {
          if (app.kind == RangeApp::Kind::kConstructor) {
            connect(ctor_node, "constructor:" + app.name);
          }
        }
      });
    }
  }

  std::set<std::string> visited;
  std::vector<std::vector<std::string>> components;
  for (const auto& [name, unused] : catalog.constructors()) {
    (void)unused;
    const std::string start = "constructor:" + name;
    if (visited.count(start) > 0) continue;
    std::vector<std::string> stack = {start};
    std::vector<std::string> ctors, types;
    visited.insert(start);
    while (!stack.empty()) {
      std::string node = stack.back();
      stack.pop_back();
      if (node.rfind("constructor:", 0) == 0) {
        ctors.push_back(node.substr(12));
      } else {
        types.push_back(node.substr(5));
      }
      for (const std::string& next : adjacency[node]) {
        if (visited.insert(next).second) stack.push_back(next);
      }
    }
    std::sort(ctors.begin(), ctors.end());
    std::sort(types.begin(), types.end());
    ctors.insert(ctors.end(), types.begin(), types.end());
    components.push_back(std::move(ctors));
  }
  return components;
}

}  // namespace datacon
