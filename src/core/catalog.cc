#include "core/catalog.h"

namespace datacon {

Status Catalog::DefineRelationType(const std::string& name, Schema schema) {
  DATACON_RETURN_IF_ERROR(schema.Validate());
  if (relation_types_.count(name) > 0) {
    return Status::AlreadyExists("relation type '" + name + "'");
  }
  relation_types_.emplace(name, std::move(schema));
  return Status::OK();
}

Result<const Schema*> Catalog::LookupRelationType(const std::string& name) const {
  auto it = relation_types_.find(name);
  if (it == relation_types_.end()) {
    return Status::NotFound("relation type '" + name + "'");
  }
  return &it->second;
}

Status Catalog::CreateRelation(const std::string& name,
                               const std::string& type_name) {
  if (relations_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "'");
  }
  DATACON_ASSIGN_OR_RETURN(const Schema* schema, LookupRelationType(type_name));
  relations_.emplace(name, std::make_unique<Relation>(*schema));
  relation_var_types_.emplace(name, type_name);
  return Status::OK();
}

Result<Relation*> Catalog::LookupRelation(const std::string& name) {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "'");
  }
  return it->second.get();
}

Result<const Relation*> Catalog::LookupRelation(const std::string& name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("relation '" + name + "'");
  }
  return static_cast<const Relation*>(it->second.get());
}

Result<const std::string*> Catalog::LookupRelationTypeName(
    const std::string& name) const {
  auto it = relation_var_types_.find(name);
  if (it == relation_var_types_.end()) {
    return Status::NotFound("relation '" + name + "'");
  }
  return &it->second;
}

Status Catalog::DefineSelector(SelectorDeclPtr decl) {
  const std::string& name = decl->name();
  if (selectors_.count(name) > 0) {
    return Status::AlreadyExists("selector '" + name + "'");
  }
  selectors_.emplace(name, std::move(decl));
  return Status::OK();
}

Result<const SelectorDecl*> Catalog::LookupSelector(
    const std::string& name) const {
  auto it = selectors_.find(name);
  if (it == selectors_.end()) {
    return Status::NotFound("selector '" + name + "'");
  }
  return it->second.get();
}

Status Catalog::DefineConstructor(ConstructorDeclPtr decl) {
  const std::string& name = decl->name();
  if (constructors_.count(name) > 0) {
    return Status::AlreadyExists("constructor '" + name + "'");
  }
  constructors_.emplace(name, std::move(decl));
  return Status::OK();
}

Result<const ConstructorDecl*> Catalog::LookupConstructor(
    const std::string& name) const {
  auto it = constructors_.find(name);
  if (it == constructors_.end()) {
    return Status::NotFound("constructor '" + name + "'");
  }
  return it->second.get();
}

Status Catalog::DefineConstraint(ConstraintDeclPtr decl) {
  const std::string& name = decl->name();
  if (constraints_.count(name) > 0) {
    return Status::AlreadyExists("constraint '" + name + "'");
  }
  constraints_.emplace(name, std::move(decl));
  return Status::OK();
}

Result<const ConstraintDecl*> Catalog::LookupConstraint(
    const std::string& name) const {
  auto it = constraints_.find(name);
  if (it == constraints_.end()) {
    return Status::NotFound("constraint '" + name + "'");
  }
  return it->second.get();
}

}  // namespace datacon
