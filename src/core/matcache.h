#ifndef DATACON_CORE_MATCACHE_H_
#define DATACON_CORE_MATCACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ast/range.h"
#include "common/eventlog.h"
#include "common/metrics.h"
#include "common/thread_annotations.h"
#include "common/result.h"
#include "core/catalog.h"
#include "core/fixpoint.h"
#include "storage/relation.h"
#include "storage/tuple.h"

namespace datacon {

/// One materialized application relation of a cached component, identified
/// by its ApplicationGraph node key (the canonical printed application
/// range). The relation is shared immutably: the evaluator installs it
/// without copying and must never mutate it in place (maintenance copies
/// first).
struct CachedRelation {
  std::string node_key;
  std::shared_ptr<const Relation> relation;
};

/// One base-relation input of a cached component, pinned at the generation
/// it had when the entry was materialized.
struct CacheInput {
  std::string relation;
  uint64_t generation = 0;
};

/// The tuples inserted into one input relation since the entry was
/// materialized — the seed of delta maintenance.
struct CacheInputDelta {
  std::string relation;
  std::vector<Tuple> inserted;
};

enum class CacheOutcome {
  /// Every input generation unchanged: the cached members are the answer.
  kHit,
  /// Input generations advanced by reconstructible inserts only and the
  /// entry is maintainable: re-seed semi-naive from `deltas`.
  kDeltaHit,
  /// No entry, or the entry was invalidated (erase/clear churn, log
  /// overflow, non-maintainable entry behind changed inputs).
  kMiss,
};

/// The result of a cache lookup. On kHit/kDeltaHit, `members` and `stats`
/// carry the entry's materializations and its recorded EvalStats
/// contribution (replayed on a hit so repeat queries report the same
/// logical counters as the cold run that filled the entry).
struct CacheLookup {
  CacheOutcome outcome = CacheOutcome::kMiss;
  std::vector<CachedRelation> members;
  std::vector<CacheInputDelta> deltas;
  EvalStats stats;
};

/// Counters of one MatCache (also mirrored into the owning database's
/// MetricsRegistry as cache.hits / cache.misses / cache.invalidations /
/// cache.delta_maintained for `SHOW METRICS;`).
struct MatCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t invalidations = 0;
  int64_t delta_maintained = 0;
  int64_t evictions = 0;
};

/// Scan state for collecting the base-relation inputs of ranges and bodies:
/// which catalog relations a cached result depends on, whether collection
/// succeeded at all, and whether insert-only delta maintenance would be
/// sound for those dependencies.
struct InputScan {
  std::set<std::string> inputs;
  /// False when a referenced name is unknown to the catalog (a formal of an
  /// unapplied selector body) — the dependency set is then not expressible
  /// as name+generation pairs and the result is uncacheable.
  bool ok = true;
  /// False when an input occurs at odd NOT/ALL parity or inside an applied
  /// selector's predicate: inserting into such an input can *remove*
  /// derived tuples, so only full hits are safe, never delta maintenance.
  bool maintainable = true;
};

/// Collects the catalog relations `range` reads: its base, constructor
/// argument ranges (recursively), and every range referenced by an applied
/// selector's predicate. `parity` is the NOT/ALL parity at which the range
/// occurs (see core/positivity.h).
void ScanRangeInputs(const Range& range, const Catalog& catalog, int parity,
                     InputScan* scan);

/// The current generations of `names`; fails when a name no longer resolves.
Result<std::vector<CacheInput>> SnapshotCacheInputs(
    const std::set<std::string>& names, const Catalog& catalog);

/// An LRU cache of materialized constructor applications, keyed by a
/// component key (sorted member node keys, plus the adornment/seed
/// signature for magic-specialized components) and validated on every
/// lookup against the *current* generations of the entry's input
/// relations:
///
///   unchanged generations            -> kHit   (reuse, zero evaluation)
///   advanced, inserts reconstructible,
///   entry maintainable               -> kDeltaHit (re-seed semi-naive)
///   anything else                    -> invalidate + kMiss (full recompute)
///
/// The cache is per-Database; evaluations are serialized per database, but
/// all entry/counter state is guarded by one mutex anyway so concurrent
/// observers (PRAGMA CACHE_CAPACITY from another session, stats scrapes)
/// are safe. The registry counters it mirrors into are atomic.
class MatCache {
 public:
  /// `registry` (usually the owning database's) receives the cache.*
  /// counter mirrors; `events` (may be null) receives cache.hit /
  /// cache.delta / cache.invalidate events when enabled. Both must outlive
  /// the cache; null skips mirroring (stats() still counts).
  explicit MatCache(size_t capacity = 64, MetricsRegistry* registry = nullptr,
                    EventLog* events = nullptr);

  /// Looks `key` up and classifies it against `catalog`'s current relation
  /// generations. Counts a hit or miss; a kDeltaHit counts nothing yet —
  /// the caller settles it with NoteMaintained (success) or
  /// InvalidateAfterFailure (degrade to full recompute, which also counts
  /// the recompute as a miss).
  CacheLookup Lookup(const std::string& key, const Catalog& catalog);

  /// Stores (or overwrites) an entry, evicting the least recently used
  /// entry when at capacity. `stats` is the component's EvalStats
  /// contribution, replayed verbatim on later hits. No-op at capacity 0.
  void Insert(const std::string& key, std::vector<CachedRelation> members,
              std::vector<CacheInput> inputs, EvalStats stats,
              bool maintainable);

  /// Settles a kDeltaHit whose maintenance succeeded: refreshes the entry
  /// and counts delta_maintained.
  void NoteMaintained(const std::string& key,
                      std::vector<CachedRelation> members,
                      std::vector<CacheInput> inputs, EvalStats stats);

  /// Settles a kDeltaHit whose maintenance failed: drops the entry and
  /// counts an invalidation plus the miss the caller now evaluates.
  void InvalidateAfterFailure(const std::string& key);

  /// Drops every entry (counters are kept).
  void Clear();

  /// Shrinks to the new capacity immediately (LRU order).
  void set_capacity(size_t capacity);
  size_t capacity() const {
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
  }
  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

  /// Counter snapshot (by value — the counters keep moving).
  MatCacheStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  struct Entry {
    std::vector<CachedRelation> members;
    std::vector<CacheInput> inputs;
    EvalStats stats;
    bool maintainable = false;
    uint64_t last_used = 0;
  };

  void Touch(Entry* entry) DATACON_REQUIRES(mu_) {
    entry->last_used = ++tick_;
  }
  void EvictOverCapacity() DATACON_REQUIRES(mu_);
  void CountInvalidation() DATACON_REQUIRES(mu_);
  void CountMiss() DATACON_REQUIRES(mu_);

  mutable std::mutex mu_;
  size_t capacity_ DATACON_GUARDED_BY(mu_);
  uint64_t tick_ DATACON_GUARDED_BY(mu_) = 0;
  std::map<std::string, Entry> entries_ DATACON_GUARDED_BY(mu_);
  MatCacheStats stats_ DATACON_GUARDED_BY(mu_);

  /// Registry mirrors (registry-owned, stable pointers; null when no
  /// registry was injected).
  Counter* registry_hits_;
  Counter* registry_misses_;
  Counter* registry_invalidations_;
  Counter* registry_delta_maintained_;
  /// Event sink (not owned; may be null).
  EventLog* events_;
};

}  // namespace datacon

#endif  // DATACON_CORE_MATCACHE_H_
