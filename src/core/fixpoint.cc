#include "core/fixpoint.h"

#include <algorithm>
#include <utility>

#include "ast/printer.h"
#include "common/check.h"
#include "common/eventlog.h"
#include "common/trace.h"
#include "core/matcache.h"
#include "core/positivity.h"
#include "ra/branch_exec.h"
#include "ra/eval.h"

namespace datacon {

EvalStats& EvalStats::operator+=(const EvalStats& other) {
  iterations += other.iterations;
  tuples_considered += other.tuples_considered;
  tuples_inserted += other.tuples_inserted;
  outer_tuples += other.outer_tuples;
  index_builds += other.index_builds;
  index_probes += other.index_probes;
  snapshot_materializations += other.snapshot_materializations;
  chunks_dispatched += other.chunks_dispatched;
  specialized_branches += other.specialized_branches;
  seed_tuples_pruned += other.seed_tuples_pruned;
  return *this;
}

EvalStats operator+(EvalStats a, const EvalStats& b) {
  a += b;
  return a;
}

std::string ResourceUsage::ToText() const {
  return "peak_delta=" + std::to_string(peak_delta_tuples) +
         " materialized=" + std::to_string(tuples_materialized) +
         " approx_bytes=" + std::to_string(approx_bytes) +
         " index_builds=" + std::to_string(index_builds) +
         " cache_hits=" + std::to_string(cache_hits) +
         " cache_delta=" + std::to_string(cache_delta_hits) +
         " cache_misses=" + std::to_string(cache_misses);
}

size_t ApproxRelationBytes(const Relation& rel) {
  constexpr size_t kTupleOverhead = 24;
  constexpr size_t kFieldBytes = 24;
  return rel.size() *
         (kTupleOverhead +
          kFieldBytes * static_cast<size_t>(rel.schema().arity()));
}

EvalStats operator-(const EvalStats& a, const EvalStats& b) {
  EvalStats out;
  out.iterations = a.iterations - b.iterations;
  out.tuples_considered = a.tuples_considered - b.tuples_considered;
  out.tuples_inserted = a.tuples_inserted - b.tuples_inserted;
  out.outer_tuples = a.outer_tuples - b.outer_tuples;
  out.index_builds = a.index_builds - b.index_builds;
  out.index_probes = a.index_probes - b.index_probes;
  out.snapshot_materializations =
      a.snapshot_materializations - b.snapshot_materializations;
  out.chunks_dispatched = a.chunks_dispatched - b.chunks_dispatched;
  out.specialized_branches = a.specialized_branches - b.specialized_branches;
  out.seed_tuples_pruned = a.seed_tuples_pruned - b.seed_tuples_pruned;
  return out;
}

SystemEvaluator::SystemEvaluator(const Catalog* catalog,
                                 const ApplicationGraph* graph,
                                 EvalOptions options, Environment params)
    : catalog_(catalog),
      graph_(graph),
      options_(options),
      params_(std::move(params)) {
  totals_.resize(graph_->nodes().size());
  if (options_.exec.pool == nullptr &&
      ThreadPool::ResolveThreadCount(options_.exec.num_threads) > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.exec.num_threads);
    options_.exec.pool = pool_.get();
  }
  if (options_.profile) {
    profile_ = std::make_unique<ProfileNode>("evaluation");
  }
}

std::unique_ptr<ProfileNode> SystemEvaluator::TakeProfile() {
  if (profile_ != nullptr) profile_->set_elapsed_ns(lifetime_.ElapsedNs());
  cur_ = nullptr;
  return std::move(profile_);
}

std::string SystemEvaluator::ComponentLabel(
    const std::vector<int>& component) const {
  std::string label = "[";
  for (size_t i = 0; i < component.size(); ++i) {
    if (i > 0) label += ", ";
    label += graph_->nodes()[static_cast<size_t>(component[i])].key;
  }
  return label + "]";
}

void SystemEvaluator::RecordBranchExec(const BranchExecStats& exec,
                                       bool count_inserted) {
  stats_.tuples_considered += exec.env_count;
  if (count_inserted) stats_.tuples_inserted += exec.inserted;
  stats_.outer_tuples += exec.outer_tuples;
  stats_.index_builds += exec.index_builds;
  usage_.index_builds += exec.index_builds;
  stats_.index_probes += exec.index_probes;
  stats_.snapshot_materializations += exec.snapshots;
  stats_.chunks_dispatched += exec.chunks;
  if (cur_ == nullptr) return;
  CounterSet& c = cur_->counters();
  c.Add("tuples_considered", static_cast<int64_t>(exec.env_count));
  if (count_inserted) {
    c.Add("tuples_inserted", static_cast<int64_t>(exec.inserted));
  }
  c.Add("outer_scans", static_cast<int64_t>(exec.outer_tuples));
  c.Add("index_builds", static_cast<int64_t>(exec.index_builds));
  c.Add("index_probes", static_cast<int64_t>(exec.index_probes));
  if (exec.snapshots > 0) {
    cur_->exec().Add("snapshots", static_cast<int64_t>(exec.snapshots));
  }
  if (exec.chunks > 0) {
    cur_->exec().Add("chunks", static_cast<int64_t>(exec.chunks));
  }
}

Status SystemEvaluator::InstallNodeRelation(int node,
                                            std::unique_ptr<Relation> rel) {
  if (materialized_) {
    return Status::Internal("InstallNodeRelation after MaterializeAll");
  }
  if (node < 0 || static_cast<size_t>(node) >= totals_.size()) {
    return Status::InvalidArgument("no application node " +
                                   std::to_string(node));
  }
  totals_[static_cast<size_t>(node)] = std::move(rel);
  return Status::OK();
}

Status SystemEvaluator::InstallNodeRelation(
    int node, std::shared_ptr<const Relation> rel) {
  if (materialized_) {
    return Status::Internal("InstallNodeRelation after MaterializeAll");
  }
  if (node < 0 || static_cast<size_t>(node) >= totals_.size()) {
    return Status::InvalidArgument("no application node " +
                                   std::to_string(node));
  }
  // The const_cast is confined to storage: every mutation path either
  // replaces the slot with a fresh relation (fixpoints, acyclic pass) or
  // copies before writing (cache maintenance), so shared cached relations
  // are never written through this pointer.
  totals_[static_cast<size_t>(node)] =
      std::const_pointer_cast<Relation>(std::move(rel));
  return Status::OK();
}

Status SystemEvaluator::MaterializeAll() {
  DATACON_CHECK(!materialized_, "MaterializeAll called twice");

  if (plan_ != nullptr) {
    // Close the plan's seeds into per-node relevant-value sets before any
    // component evaluates. A closure failure (e.g. an unbound seed
    // parameter) degrades to unspecialized evaluation — specialization is
    // an optimization and must never change observable behaviour.
    Result<MagicSets> magic = ComputeMagicSets(*plan_, *this, params_);
    if (magic.ok()) {
      magic_ = std::move(magic).value();
      stats_.specialized_branches = plan_->specialized_branches();
      if (profile_ != nullptr) {
        ProfileNode* spec = profile_->AddChild("specialization");
        spec->counters().Add(
            "specialized_branches",
            static_cast<int64_t>(stats_.specialized_branches));
        spec->counters().Add("magic_values",
                             static_cast<int64_t>(magic_.TotalValues()));
      }
    } else {
      if (events_ != nullptr && events_->enabled()) {
        events_->Emit("specialize.fallback",
                      {EventField::Str("reason", magic.status().message())});
      }
      plan_ = nullptr;
    }
  }

  SccDecomposition scc;
  if (options_.unchecked) {
    // Unchecked mode: no stratification guarantees; plain iteration only.
    scc = ComputeScc(graph_->BuildDigraph());
  } else {
    DATACON_ASSIGN_OR_RETURN(scc, graph_->Stratify());
  }

  for (int comp : scc.topological_order) {
    const std::vector<int>& members =
        scc.components[static_cast<size_t>(comp)];
    // Components fully covered by installed (capture-rule) relations are
    // already materialized.
    bool installed = true;
    for (int n : members) {
      if (totals_[static_cast<size_t>(n)] == nullptr) {
        installed = false;
        break;
      }
    }
    if (installed) continue;
    const bool cyclic = scc.cyclic[static_cast<size_t>(comp)];
    const bool naive =
        options_.unchecked || options_.strategy == FixpointStrategy::kNaive;
    TraceSpan comp_span("component");
    if (comp_span.active()) {
      comp_span.AddArg("members", ComponentLabel(members));
      comp_span.AddArg("strategy", cyclic ? (naive ? std::string("naive")
                                                   : std::string("semi-naive"))
                                          : std::string("single pass"));
    }
    ProfileNode* comp_node = nullptr;
    Timer comp_timer;
    if (profile_ != nullptr) {
      std::string name =
          cyclic ? "component " + ComponentLabel(members) +
                       (naive ? " (naive)" : " (semi-naive)")
                 : "node [" +
                       graph_->nodes()[static_cast<size_t>(members[0])].key +
                       "]";
      comp_node = profile_->AddChild(std::move(name));
      cur_ = comp_node;
    }
    Status status;
    bool satisfied = false;
    std::optional<ComponentCacheKey> ck;
    if (cache_ != nullptr) ck = CacheKeyFor(members);
    if (ck.has_value()) {
      TraceSpan cache_span("cache");
      if (cache_span.active()) cache_span.AddArg("key", ck->key);
      CacheLookup found = cache_->Lookup(ck->key, *catalog_);
      if (found.outcome == CacheOutcome::kHit) {
        status = InstallCachedMembers(members, found.members);
        if (status.ok()) {
          // Replay the entry's recorded contribution so repeat queries
          // report the same logical counters as the run that filled it.
          stats_ += found.stats;
          satisfied = true;
          ++usage_.cache_hits;
          if (cache_span.active()) {
            cache_span.AddArg("outcome", std::string("hit"));
          }
          if (comp_node != nullptr) {
            comp_node->counters().Add("cache_hit", int64_t{1});
            int64_t cached = 0;
            for (int n : members) {
              cached += static_cast<int64_t>(
                  totals_[static_cast<size_t>(n)]->size());
            }
            comp_node->counters().Add("cached_tuples", cached);
          }
        }
      } else if (found.outcome == CacheOutcome::kDeltaHit) {
        EvalStats before = stats_;
        Status maintain = MaintainComponent(members, found);
        if (maintain.ok()) {
          Result<std::vector<CacheInput>> inputs =
              SnapshotCacheInputs(ck->inputs, *catalog_);
          if (inputs.ok()) {
            cache_->NoteMaintained(ck->key, SnapshotMembers(members),
                                   std::move(inputs).value(),
                                   found.stats + (stats_ - before));
            satisfied = true;
            status = Status::OK();
            ++usage_.cache_delta_hits;
            if (cache_span.active()) {
              cache_span.AddArg("outcome", std::string("delta_maintained"));
            }
            if (comp_node != nullptr) {
              comp_node->counters().Add("cache_delta_maintained", int64_t{1});
            }
          }
        }
        if (!satisfied) {
          // Degrade to a full recompute, never an error: undo the partial
          // maintenance (the stats snapshot keeps counters bit-identical
          // with CACHE OFF) and drop the entry.
          stats_ = before;
          for (int n : members) totals_[static_cast<size_t>(n)] = nullptr;
          overrides_.clear();
          iterating_nodes_.clear();
          scratch_.clear();
          cache_->InvalidateAfterFailure(ck->key);
          if (cache_span.active()) {
            cache_span.AddArg("outcome", std::string("degraded"));
          }
        }
      } else if (cache_span.active()) {
        cache_span.AddArg("outcome", std::string("miss"));
      }
    }
    if (!satisfied) {
      // A consulted key that did not satisfy the component is a miss for
      // attribution — including a delta hit whose maintenance degraded
      // (matching MatCache's own miss accounting).
      if (ck.has_value()) ++usage_.cache_misses;
      EvalStats before = stats_;
      if (!cyclic) {
        status = EvaluateAcyclicNode(members[0]);
      } else if (naive) {
        status = NaiveFixpoint(members);
      } else {
        status = SemiNaiveFixpoint(members);
      }
      if (status.ok() && ck.has_value()) {
        Result<std::vector<CacheInput>> inputs =
            SnapshotCacheInputs(ck->inputs, *catalog_);
        if (inputs.ok()) {
          cache_->Insert(ck->key, SnapshotMembers(members),
                         std::move(inputs).value(), stats_ - before,
                         ck->maintainable);
        }
      }
    }
    if (comp_node != nullptr) {
      comp_node->set_elapsed_ns(comp_timer.ElapsedNs());
      cur_ = nullptr;
    }
    DATACON_RETURN_IF_ERROR(status);
  }
  // Attribute the materialized footprint: every application relation held
  // at the end (freshly evaluated or cache-installed alike).
  for (const std::shared_ptr<Relation>& rel : totals_) {
    if (rel == nullptr) continue;
    usage_.tuples_materialized += rel->size();
    usage_.approx_bytes += ApproxRelationBytes(*rel);
  }
  materialized_ = true;
  return Status::OK();
}

Result<const Relation*> SystemEvaluator::NodeRelation(int node) const {
  if (node < 0 || static_cast<size_t>(node) >= totals_.size() ||
      totals_[static_cast<size_t>(node)] == nullptr) {
    return Status::Internal("application node " + std::to_string(node) +
                            " is not materialized");
  }
  return totals_[static_cast<size_t>(node)].get();
}

Result<Relation> SystemEvaluator::EvaluateExpr(const CalcExpr& expr,
                                               const Schema& result_schema) {
  Relation out(result_schema);
  ProfileNode* query_node = nullptr;
  Timer timer;
  if (profile_ != nullptr) {
    query_node = profile_->AddChild("query");
    cur_ = query_node;
  }
  TraceSpan span("query branches");
  Status status = Status::OK();
  for (const BranchPtr& branch : expr.branches()) {
    status = EvaluateBranch(*branch, &out);
    if (!status.ok()) break;
  }
  if (span.active()) {
    span.AddArg("result_tuples", static_cast<int64_t>(out.size()));
  }
  if (query_node != nullptr) {
    if (status.ok()) {
      query_node->counters().Add("result_tuples",
                                 static_cast<int64_t>(out.size()));
    }
    query_node->set_elapsed_ns(timer.ElapsedNs());
    cur_ = nullptr;
  }
  DATACON_RETURN_IF_ERROR(status);
  return out;
}

Status SystemEvaluator::EvaluateAcyclicNode(int node) {
  scratch_.clear();
  const ApplicationGraph::Node& n = graph_->nodes()[static_cast<size_t>(node)];
  totals_[static_cast<size_t>(node)] =
      std::make_unique<Relation>(n.result_schema);
  Relation* out = totals_[static_cast<size_t>(node)].get();
  DATACON_RETURN_IF_ERROR(EvaluateNodeBody(node, out));
  if (cur_ != nullptr) {
    cur_->counters().Add("total_tuples", static_cast<int64_t>(out->size()));
  }
  return Status::OK();
}

Status SystemEvaluator::NaiveFixpoint(const std::vector<int>& component) {
  iterating_nodes_.clear();
  iterating_nodes_.insert(component.begin(), component.end());
  ProfileNode* comp_node = cur_;

  // Section 3.1: Ahead := {}; Above := {}.
  for (int n : component) {
    totals_[static_cast<size_t>(n)] = std::make_unique<Relation>(
        graph_->nodes()[static_cast<size_t>(n)].result_schema);
  }

  // REPEAT  Oldahead := Ahead; ...; Ahead := ahead_fct(Oldahead, Oldabove);
  // UNTIL Ahead = Oldahead AND Above = Oldabove.
  // `totals_` plays the role of the Old* variables during a round; the
  // fresh relations are swapped in at the end of the round.
  size_t round = 0;
  while (true) {
    ++round;
    ++stats_.iterations;
    if (options_.max_iterations != 0 && round > options_.max_iterations) {
      return Status::Divergence(
          "naive fixpoint did not converge within " +
          std::to_string(options_.max_iterations) +
          " iterations (a non-monotonic system such as section 3.3's "
          "'nonsense' has no limit)");
    }
    scratch_.clear();
    TraceSpan round_span("round");
    if (round_span.active()) {
      round_span.AddArg("round", static_cast<int64_t>(round));
    }
    Timer round_timer;
    if (comp_node != nullptr) {
      cur_ = comp_node->AddChild("round " + std::to_string(round));
    }

    std::vector<std::unique_ptr<Relation>> fresh;
    fresh.reserve(component.size());
    for (int n : component) {
      auto rel = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(n)].result_schema);
      DATACON_RETURN_IF_ERROR(EvaluateNodeBody(n, rel.get()));
      NotePeakDelta(rel->size());
      fresh.push_back(std::move(rel));
    }

    bool changed = false;
    for (size_t i = 0; i < component.size(); ++i) {
      if (!fresh[i]->SameTuples(*totals_[static_cast<size_t>(component[i])])) {
        changed = true;
        break;
      }
    }
    if (comp_node != nullptr) {
      for (size_t i = 0; i < component.size(); ++i) {
        cur_->counters().Add(
            "total[" +
                graph_->nodes()[static_cast<size_t>(component[i])].key + "]",
            static_cast<int64_t>(fresh[i]->size()));
      }
      cur_->set_elapsed_ns(round_timer.ElapsedNs());
    }
    if (round_span.active()) {
      int64_t total = 0;
      for (const auto& rel : fresh) total += static_cast<int64_t>(rel->size());
      round_span.AddArg("total_tuples", total);
      round_span.AddArg("changed", changed ? int64_t{1} : int64_t{0});
    }
    for (size_t i = 0; i < component.size(); ++i) {
      totals_[static_cast<size_t>(component[i])] = std::move(fresh[i]);
    }
    if (!changed) break;
  }
  if (comp_node != nullptr) {
    comp_node->counters().Add("rounds", static_cast<int64_t>(round));
    cur_ = comp_node;
  }
  iterating_nodes_.clear();
  return Status::OK();
}

Result<std::vector<SystemEvaluator::BranchInfo>>
SystemEvaluator::AnalyzeComponentBranches(const std::vector<int>& component,
                                          const std::set<int>& in_component) {
  // Pre-analyze each branch: which bindings are recursive (range over an
  // in-component application) and whether the predicate itself references
  // the component (through a quantifier or membership range), which makes
  // the branch non-differentiable — it is then fully re-evaluated each
  // round, which is sound (monotonicity) if slower.
  std::vector<BranchInfo> infos;
  for (int n : component) {
    const ApplicationGraph::Node& node =
        graph_->nodes()[static_cast<size_t>(n)];
    for (size_t bi = 0; bi < node.body->branches().size(); ++bi) {
      const BranchPtr& branch = node.body->branches()[bi];
      BranchInfo info;
      info.branch = branch.get();
      info.owner = n;
      info.branch_index = bi;
      for (const Binding& b : branch->bindings()) {
        int id = -1;
        RangeSplit split = SplitAtLastConstructor(*b.range);
        if (split.ctor_head.has_value()) {
          DATACON_ASSIGN_OR_RETURN(int found,
                                   graph_->FindNode(**split.ctor_head));
          if (in_component.count(found) > 0) {
            id = found;
            info.recursive = true;
          }
        }
        info.binding_nodes.push_back(id);
      }
      Status scan_status = Status::OK();
      ForEachRangeWithParity(
          *branch->pred(), 0, [&](const Range& range, int /*parity*/) {
            if (!scan_status.ok() || !range.ContainsConstructor()) return;
            RangeSplit split = SplitAtLastConstructor(range);
            Result<int> found = graph_->FindNode(**split.ctor_head);
            if (!found.ok()) {
              scan_status = found.status();
              return;
            }
            if (in_component.count(found.value()) > 0) {
              info.differentiable = false;
              info.recursive = true;
            }
          });
      DATACON_RETURN_IF_ERROR(scan_status);
      infos.push_back(std::move(info));
    }
  }
  return infos;
}

Result<const Relation*> SystemEvaluator::WithTrailing(const Relation* base,
                                                      const Range& range) {
  RangeSplit split = SplitAtLastConstructor(range);
  const Relation* current = base;
  for (const RangeApp& app : split.trailing_selectors) {
    DATACON_ASSIGN_OR_RETURN(std::unique_ptr<Relation> filtered,
                             ApplySelector(*current, app));
    scratch_.push_back(std::move(filtered));
    current = scratch_.back().get();
  }
  return current;
}

Status SystemEvaluator::SemiNaiveFixpoint(const std::vector<int>& component) {
  iterating_nodes_.clear();
  iterating_nodes_.insert(component.begin(), component.end());
  std::set<int> in_component(component.begin(), component.end());
  ProfileNode* comp_node = cur_;

  DATACON_ASSIGN_OR_RETURN(std::vector<BranchInfo> infos,
                           AnalyzeComponentBranches(component, in_component));

  // Round 0: evaluate every body with in-component references bound to the
  // empty relation — f(EMPTY), the seed of the Tarski iteration.
  std::vector<std::unique_ptr<Relation>> empties;
  for (int n : component) {
    totals_[static_cast<size_t>(n)] = std::make_unique<Relation>(
        graph_->nodes()[static_cast<size_t>(n)].result_schema);
    empties.push_back(std::make_unique<Relation>(
        graph_->nodes()[static_cast<size_t>(n)].result_schema));
  }
  for (size_t i = 0; i < component.size(); ++i) {
    overrides_[component[i]] = empties[i].get();
  }
  std::map<int, std::unique_ptr<Relation>> deltas;
  scratch_.clear();
  {
    TraceSpan seed_span("round");
    if (seed_span.active()) {
      seed_span.AddArg("round", int64_t{1});
      seed_span.AddArg("seed", int64_t{1});
    }
    Timer seed_timer;
    if (comp_node != nullptr) {
      cur_ = comp_node->AddChild("round 1 (seed)");
    }
    for (int n : component) {
      auto raw = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(n)].result_schema);
      DATACON_RETURN_IF_ERROR(EvaluateNodeBody(n, raw.get()));
      DATACON_RETURN_IF_ERROR(
          totals_[static_cast<size_t>(n)]->InsertAll(*raw));
      NotePeakDelta(raw->size());
      deltas[n] = std::move(raw);
    }
    overrides_.clear();
    ++stats_.iterations;
    if (comp_node != nullptr) {
      for (int n : component) {
        cur_->counters().Add(
            "delta[" + graph_->nodes()[static_cast<size_t>(n)].key + "]",
            static_cast<int64_t>(deltas[n]->size()));
      }
      cur_->set_elapsed_ns(seed_timer.ElapsedNs());
    }
    if (seed_span.active()) {
      int64_t delta_total = 0;
      for (int n : component) {
        delta_total += static_cast<int64_t>(deltas[n]->size());
      }
      seed_span.AddArg("delta", delta_total);
      seed_span.AddArg("inserts", delta_total);
    }
  }

  size_t round = 1;
  DATACON_RETURN_IF_ERROR(
      DifferentialRounds(component, infos, &deltas, comp_node, &round));
  iterating_nodes_.clear();
  return Status::OK();
}

Status SystemEvaluator::DifferentialRounds(
    const std::vector<int>& component, const std::vector<BranchInfo>& infos,
    std::map<int, std::unique_ptr<Relation>>* deltas_io,
    ProfileNode* comp_node, size_t* round_io) {
  std::map<int, std::unique_ptr<Relation>>& deltas = *deltas_io;
  // Differential rounds. The per-component round budget mirrors
  // NaiveFixpoint: `round` is local to this component (stats_.iterations
  // accumulates across ALL components and must not feed the bound); the
  // caller's seed round — f(∅) for a cold fixpoint, the base-delta
  // derivations for cache maintenance — already counts as round 1.
  size_t round = *round_io;
  while (true) {
    bool any_delta = false;
    for (int n : component) {
      if (!deltas[n]->empty()) {
        any_delta = true;
        break;
      }
    }
    if (!any_delta) break;

    ++round;
    ++stats_.iterations;
    if (options_.max_iterations != 0 && round > options_.max_iterations) {
      return Status::Divergence(
          "semi-naive fixpoint did not converge within " +
          std::to_string(options_.max_iterations) +
          " iterations for one recursive component");
    }
    scratch_.clear();
    TraceSpan round_span("round");
    if (round_span.active()) {
      round_span.AddArg("round", static_cast<int64_t>(round));
      int64_t prev_delta = 0;
      for (int n : component) {
        prev_delta += static_cast<int64_t>(deltas[n]->size());
      }
      round_span.AddArg("delta", prev_delta);
    }
    Timer round_timer;
    if (comp_node != nullptr) {
      cur_ = comp_node->AddChild("round " + std::to_string(round));
    }

    // Lazily computed pre-round approximations T_old = T \ delta, used by
    // recursive occurrences *before* the delta occurrence (see below).
    std::map<int, std::unique_ptr<Relation>> olds;
    auto old_of = [&](int node) -> Result<const Relation*> {
      auto it = olds.find(node);
      if (it != olds.end()) return it->second.get();
      auto old_rel = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(node)].result_schema);
      for (const Tuple& t : totals_[static_cast<size_t>(node)]->tuples()) {
        if (deltas[node]->Contains(t)) continue;
        DATACON_ASSIGN_OR_RETURN(bool inserted, InsertDerived(old_rel.get(), t));
        (void)inserted;
      }
      const Relation* result = old_rel.get();
      olds[node] = std::move(old_rel);
      return result;
    };

    std::map<int, std::unique_ptr<Relation>> raws;
    for (int n : component) {
      raws[n] = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(n)].result_schema);
    }

    for (const BranchInfo& info : infos) {
      if (!info.recursive) continue;  // contributes in round 0 only
      Relation* out = raws[info.owner].get();
      if (!info.differentiable) {
        // Insertions land in a scratch `raws` relation and are counted from
        // the deduplicated deltas below — counting exec.inserted here too
        // would double-count.
        DATACON_RETURN_IF_ERROR(EvaluateBranch(*info.branch, out,
                                               /*count_inserted=*/false,
                                               info.owner, info.branch_index));
        continue;
      }
      // The standard non-linear differential rewrite: one evaluation per
      // recursive binding occurrence i, where occurrence i ranges over the
      // last round's delta, recursive occurrences before it over the
      // pre-round approximation T_old = T \ delta, and recursive
      // occurrences after it (plus all non-recursive bindings) over the
      // full current approximation T. The union over i covers every
      // combination with at least one new tuple exactly once — using the
      // full T on *both* sides would re-derive all-new-tuple combinations
      // once per occurrence, inflating tuples_considered (the results were
      // still correct, since the output is a set).
      const std::vector<Binding>& bindings = info.branch->bindings();
      for (size_t i = 0; i < bindings.size(); ++i) {
        if (info.binding_nodes[i] < 0) continue;
        std::vector<ResolvedBinding> resolved;
        resolved.reserve(bindings.size());
        for (size_t j = 0; j < bindings.size(); ++j) {
          const Relation* rel = nullptr;
          if (j == i) {
            // The delta occurrence, with any trailing selectors applied.
            DATACON_ASSIGN_OR_RETURN(
                rel, WithTrailing(deltas[info.binding_nodes[i]].get(),
                                  *bindings[j].range));
          } else if (info.binding_nodes[j] >= 0 && j < i) {
            DATACON_ASSIGN_OR_RETURN(const Relation* old_rel,
                                     old_of(info.binding_nodes[j]));
            DATACON_ASSIGN_OR_RETURN(
                rel, WithTrailing(old_rel, *bindings[j].range));
          } else {
            DATACON_ASSIGN_OR_RETURN(rel, Resolve(*bindings[j].range));
          }
          DATACON_ASSIGN_OR_RETURN(
              rel, FilteredBinding(info.owner, info.branch_index, j, rel));
          resolved.push_back(ResolvedBinding{bindings[j].var, rel});
        }
        Evaluator eval(this, options_.typed_proven);
        BranchExecStats exec_stats;
        DATACON_RETURN_IF_ERROR(ExecuteBranch(*info.branch, resolved, eval,
                                              params_, out, &exec_stats,
                                              options_.exec));
        RecordBranchExec(exec_stats, /*count_inserted=*/false);
      }
    }

    // new_delta = raw - total; then fold the deltas into the totals.
    bool grew = false;
    for (int n : component) {
      auto new_delta = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(n)].result_schema);
      for (const Tuple& t : raws[n]->tuples()) {
        if (!totals_[static_cast<size_t>(n)]->Contains(t)) {
          DATACON_ASSIGN_OR_RETURN(bool inserted,
                                   InsertDerived(new_delta.get(), t));
          (void)inserted;
        }
      }
      if (!new_delta->empty()) {
        grew = true;
        DATACON_RETURN_IF_ERROR(
            totals_[static_cast<size_t>(n)]->InsertAll(*new_delta));
        stats_.tuples_inserted += new_delta->size();
        if (cur_ != nullptr && cur_ != comp_node) {
          cur_->counters().Add("tuples_inserted",
                               static_cast<int64_t>(new_delta->size()));
        }
      }
      NotePeakDelta(new_delta->size());
      deltas[n] = std::move(new_delta);
    }
    if (comp_node != nullptr) {
      for (int n : component) {
        cur_->counters().Add(
            "delta[" + graph_->nodes()[static_cast<size_t>(n)].key + "]",
            static_cast<int64_t>(deltas[n]->size()));
      }
      cur_->set_elapsed_ns(round_timer.ElapsedNs());
    }
    if (round_span.active()) {
      int64_t inserts = 0;
      for (int n : component) {
        inserts += static_cast<int64_t>(deltas[n]->size());
      }
      round_span.AddArg("inserts", inserts);
    }
    if (!grew) break;
  }

  *round_io = round;
  if (comp_node != nullptr) {
    comp_node->counters().Add("rounds", static_cast<int64_t>(round));
    cur_ = comp_node;
  }
  return Status::OK();
}

std::optional<SystemEvaluator::ComponentCacheKey> SystemEvaluator::CacheKeyFor(
    const std::vector<int>& component) const {
  // Unchecked systems are non-monotonic by construction (section 3.3's
  // `strange`/`nonsense`); nothing about them is cached.
  if (options_.unchecked) return std::nullopt;

  std::set<int> members(component.begin(), component.end());
  // The cached result depends on every application the component reads,
  // transitively — those materializations are functions of the same base
  // relations, so pinning the closure's base inputs pins the result.
  std::set<int> reachable = members;
  std::vector<int> work(component.begin(), component.end());
  while (!work.empty()) {
    int n = work.back();
    work.pop_back();
    for (const AppEdge& e : graph_->edges()) {
      if (e.from == n && reachable.insert(e.to).second) work.push_back(e.to);
    }
  }
  const bool external = reachable.size() > members.size();

  std::string suffix;
  bool member_active = false;
  if (plan_ != nullptr) {
    for (int n : reachable) {
      if (members.count(n) > 0) continue;
      // A magically restricted upstream materialization is shaped by
      // relevant-value sets the key does not capture.
      if (plan_->nodes[static_cast<size_t>(n)].active) return std::nullopt;
    }
    for (int n : component) {
      if (plan_->nodes[static_cast<size_t>(n)].active) member_active = true;
    }
    if (member_active) {
      // A restricted member is reproducible from the key only when every
      // relevant value originates inside the component from literal seeds;
      // parameter seeds and inbound transfer edges depend on state the key
      // cannot name.
      for (const SpecializationPlan::Edge& e : plan_->edges) {
        if (members.count(e.to_node) > 0 && members.count(e.from_node) == 0) {
          return std::nullopt;
        }
      }
      for (const SpecializationPlan::Seed& s : plan_->seeds) {
        if (members.count(s.node) > 0 && !s.literal.has_value()) {
          return std::nullopt;
        }
      }
      std::vector<std::string> marks;
      for (int n : component) {
        const SpecializationPlan::NodePlan& np =
            plan_->nodes[static_cast<size_t>(n)];
        if (!np.active) continue;
        marks.push_back("a:" + graph_->nodes()[static_cast<size_t>(n)].key +
                        "#" + std::to_string(np.bound_attr));
      }
      for (const SpecializationPlan::Seed& s : plan_->seeds) {
        if (members.count(s.node) == 0) continue;
        marks.push_back("s:" +
                        graph_->nodes()[static_cast<size_t>(s.node)].key + "=" +
                        s.literal->ToString());
      }
      std::sort(marks.begin(), marks.end());
      for (const std::string& m : marks) {
        suffix += '|';
        suffix += m;
      }
    }
  }

  InputScan scan;
  for (int n : reachable) {
    const ApplicationGraph::Node& node =
        graph_->nodes()[static_cast<size_t>(n)];
    ScanRangeInputs(*node.base, *catalog_, 0, &scan);
    for (const BranchPtr& branch : node.body->branches()) {
      ForEachRangeWithParity(*branch, [&](const Range& r, int parity) {
        ScanRangeInputs(r, *catalog_, parity, &scan);
      });
    }
    if (!scan.ok) return std::nullopt;
  }
  if (member_active) {
    // Transfer-edge join hops read base relations too.
    for (const SpecializationPlan::Edge& e : plan_->edges) {
      if (members.count(e.to_node) == 0 || e.via_base == nullptr) continue;
      ScanRangeInputs(*e.via_base, *catalog_, 0, &scan);
    }
    if (!scan.ok) return std::nullopt;
  }

  ComponentCacheKey out;
  std::vector<std::string> keys;
  keys.reserve(component.size());
  for (int n : component) {
    keys.push_back(graph_->nodes()[static_cast<size_t>(n)].key);
  }
  std::sort(keys.begin(), keys.end());
  // The strategy is part of the key so replayed EvalStats always describe
  // the strategy the current options would have run.
  out.key =
      options_.strategy == FixpointStrategy::kNaive ? "c|naive" : "c|semi";
  for (const std::string& k : keys) {
    out.key += '|';
    out.key += k;
  }
  out.key += suffix;
  out.inputs = std::move(scan.inputs);
  // Insert-only maintenance re-derives only the branches touching changed
  // bases; that is sound only when every input occurs positively, every
  // application the component reads is in-component (growth of an external
  // node would go unnoticed), and no member is magically restricted.
  out.maintainable = scan.maintainable && !external && !member_active &&
                     options_.strategy == FixpointStrategy::kSemiNaive;
  return out;
}

Status SystemEvaluator::InstallCachedMembers(
    const std::vector<int>& component,
    const std::vector<CachedRelation>& members) {
  for (int n : component) {
    const std::string& key = graph_->nodes()[static_cast<size_t>(n)].key;
    const CachedRelation* found = nullptr;
    for (const CachedRelation& m : members) {
      if (m.node_key == key) {
        found = &m;
        break;
      }
    }
    if (found == nullptr || found->relation == nullptr) {
      return Status::Internal("cache entry lacks member '" + key + "'");
    }
    totals_[static_cast<size_t>(n)] =
        std::const_pointer_cast<Relation>(found->relation);
  }
  return Status::OK();
}

std::vector<CachedRelation> SystemEvaluator::SnapshotMembers(
    const std::vector<int>& component) const {
  std::vector<CachedRelation> out;
  out.reserve(component.size());
  for (int n : component) {
    out.push_back(CachedRelation{graph_->nodes()[static_cast<size_t>(n)].key,
                                 totals_[static_cast<size_t>(n)]});
  }
  return out;
}

Status SystemEvaluator::MaintainComponent(const std::vector<int>& component,
                                          const CacheLookup& found) {
  ProfileNode* comp_node = cur_;
  std::set<int> in_component(component.begin(), component.end());

  // Mutable working copies — the cached relations themselves stay
  // immutable (the entry keeps referencing them until NoteMaintained swaps
  // in the refreshed snapshot).
  for (int n : component) {
    const std::string& key = graph_->nodes()[static_cast<size_t>(n)].key;
    const CachedRelation* member = nullptr;
    for (const CachedRelation& m : found.members) {
      if (m.node_key == key) {
        member = &m;
        break;
      }
    }
    if (member == nullptr || member->relation == nullptr) {
      return Status::Internal("cache entry lacks member '" + key + "'");
    }
    totals_[static_cast<size_t>(n)] =
        std::make_shared<Relation>(*member->relation);
  }
  iterating_nodes_.clear();
  iterating_nodes_.insert(component.begin(), component.end());

  DATACON_ASSIGN_OR_RETURN(std::vector<BranchInfo> infos,
                           AnalyzeComponentBranches(component, in_component));

  // The inserted tuples of each changed base, plus the base's pre-change
  // contents (current minus delta) for the differential rewrite.
  std::map<std::string, std::unique_ptr<Relation>> delta_rels;
  std::map<std::string, std::unique_ptr<Relation>> old_rels;
  for (const CacheInputDelta& d : found.deltas) {
    DATACON_ASSIGN_OR_RETURN(const Relation* base,
                             catalog_->LookupRelation(d.relation));
    auto delta = std::make_unique<Relation>(base->schema());
    for (const Tuple& t : d.inserted) {
      DATACON_ASSIGN_OR_RETURN(bool inserted, InsertDerived(delta.get(), t));
      (void)inserted;
    }
    auto old_rel = std::make_unique<Relation>(base->schema());
    for (const Tuple& t : base->tuples()) {
      if (delta->Contains(t)) continue;
      DATACON_ASSIGN_OR_RETURN(bool inserted, InsertDerived(old_rel.get(), t));
      (void)inserted;
    }
    delta_rels[d.relation] = std::move(delta);
    old_rels[d.relation] = std::move(old_rel);
  }

  // Seed round: derive exactly the tuples the base inserts enable. For each
  // branch reading a changed base, the standard non-linear rewrite over the
  // changed *base* occurrences (DifferentialRounds then propagates through
  // the derived relations): occurrence i reads the base delta, changed
  // occurrences before it the pre-change base, everything else the current
  // state — including the full cached approximations of recursive bindings.
  std::map<int, std::unique_ptr<Relation>> deltas;
  scratch_.clear();
  {
    TraceSpan seed_span("round");
    if (seed_span.active()) {
      seed_span.AddArg("round", int64_t{1});
      seed_span.AddArg("maintain", int64_t{1});
    }
    Timer seed_timer;
    if (comp_node != nullptr) {
      cur_ = comp_node->AddChild("round 1 (maintain)");
    }
    std::map<int, std::unique_ptr<Relation>> raws;
    for (int n : component) {
      raws[n] = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(n)].result_schema);
    }
    for (const BranchInfo& info : infos) {
      const std::vector<Binding>& bindings = info.branch->bindings();
      std::set<size_t> changed;
      for (size_t j = 0; j < bindings.size(); ++j) {
        if (info.binding_nodes[j] >= 0) continue;
        RangeSplit split = SplitAtLastConstructor(*bindings[j].range);
        if (!split.ctor_head.has_value() &&
            delta_rels.count(split.base_relation) > 0) {
          changed.insert(j);
        }
      }
      bool pred_touches = false;
      ForEachRangeWithParity(*info.branch->pred(), 0,
                             [&](const Range& r, int /*parity*/) {
                               RangeSplit split = SplitAtLastConstructor(r);
                               if (!split.ctor_head.has_value() &&
                                   delta_rels.count(split.base_relation) > 0) {
                                 pred_touches = true;
                               }
                             });
      if (changed.empty() && !pred_touches) continue;
      Relation* out = raws[info.owner].get();
      if (pred_touches || !info.differentiable) {
        // No differential form through the predicate; re-derive the branch
        // in full — the raw−total subtraction below keeps only new tuples.
        DATACON_RETURN_IF_ERROR(EvaluateBranch(*info.branch, out,
                                               /*count_inserted=*/false,
                                               info.owner, info.branch_index));
        continue;
      }
      for (size_t i : changed) {
        std::vector<ResolvedBinding> resolved;
        resolved.reserve(bindings.size());
        for (size_t j = 0; j < bindings.size(); ++j) {
          const Relation* rel = nullptr;
          if (j == i || (j < i && changed.count(j) > 0)) {
            RangeSplit split = SplitAtLastConstructor(*bindings[j].range);
            const Relation* base =
                (j == i ? delta_rels : old_rels)[split.base_relation].get();
            DATACON_ASSIGN_OR_RETURN(rel,
                                     WithTrailing(base, *bindings[j].range));
          } else {
            DATACON_ASSIGN_OR_RETURN(rel, Resolve(*bindings[j].range));
          }
          DATACON_ASSIGN_OR_RETURN(
              rel, FilteredBinding(info.owner, info.branch_index, j, rel));
          resolved.push_back(ResolvedBinding{bindings[j].var, rel});
        }
        Evaluator eval(this, options_.typed_proven);
        BranchExecStats exec_stats;
        DATACON_RETURN_IF_ERROR(ExecuteBranch(*info.branch, resolved, eval,
                                              params_, out, &exec_stats,
                                              options_.exec));
        RecordBranchExec(exec_stats, /*count_inserted=*/false);
      }
    }

    for (int n : component) {
      auto new_delta = std::make_unique<Relation>(
          graph_->nodes()[static_cast<size_t>(n)].result_schema);
      for (const Tuple& t : raws[n]->tuples()) {
        if (!totals_[static_cast<size_t>(n)]->Contains(t)) {
          DATACON_ASSIGN_OR_RETURN(bool inserted,
                                   InsertDerived(new_delta.get(), t));
          (void)inserted;
        }
      }
      if (!new_delta->empty()) {
        DATACON_RETURN_IF_ERROR(
            totals_[static_cast<size_t>(n)]->InsertAll(*new_delta));
        stats_.tuples_inserted += new_delta->size();
        if (cur_ != nullptr && cur_ != comp_node) {
          cur_->counters().Add("tuples_inserted",
                               static_cast<int64_t>(new_delta->size()));
        }
      }
      NotePeakDelta(new_delta->size());
      deltas[n] = std::move(new_delta);
    }
    ++stats_.iterations;
    if (comp_node != nullptr) {
      for (int n : component) {
        cur_->counters().Add(
            "delta[" + graph_->nodes()[static_cast<size_t>(n)].key + "]",
            static_cast<int64_t>(deltas[n]->size()));
      }
      cur_->set_elapsed_ns(seed_timer.ElapsedNs());
    }
    if (seed_span.active()) {
      int64_t delta_total = 0;
      for (int n : component) {
        delta_total += static_cast<int64_t>(deltas[n]->size());
      }
      seed_span.AddArg("delta", delta_total);
      seed_span.AddArg("inserts", delta_total);
    }
  }

  bool any_recursive = false;
  for (const BranchInfo& info : infos) {
    if (info.recursive) any_recursive = true;
  }
  size_t round = 1;
  if (any_recursive) {
    DATACON_RETURN_IF_ERROR(
        DifferentialRounds(component, infos, &deltas, comp_node, &round));
  } else if (comp_node != nullptr) {
    cur_ = comp_node;
  }
  iterating_nodes_.clear();
  return Status::OK();
}

Status SystemEvaluator::EvaluateNodeBody(int node, Relation* out) {
  const ApplicationGraph::Node& n = graph_->nodes()[static_cast<size_t>(node)];
  const std::vector<BranchPtr>& branches = n.body->branches();
  for (size_t bi = 0; bi < branches.size(); ++bi) {
    DATACON_RETURN_IF_ERROR(EvaluateBranch(*branches[bi], out,
                                           /*count_inserted=*/true, node, bi));
  }
  return Status::OK();
}

Result<const Relation*> SystemEvaluator::FilteredBinding(
    int node, size_t branch_index, size_t binding_index,
    const Relation* rel) {
  if (plan_ == nullptr || node < 0) return rel;
  const SpecializationPlan::NodePlan& node_plan =
      plan_->nodes[static_cast<size_t>(node)];
  if (!node_plan.active || branch_index >= node_plan.branch_filters.size()) {
    return rel;
  }
  const SpecializationPlan::BindingFilter* filter = nullptr;
  for (const SpecializationPlan::BindingFilter& f :
       node_plan.branch_filters[branch_index]) {
    if (f.binding == binding_index) {
      filter = &f;
      break;
    }
  }
  if (filter == nullptr) return rel;
  const std::unordered_set<Value>* relevant =
      magic_.ValuesFor(filter->magic_node);
  if (relevant == nullptr) return rel;
  auto filtered = std::make_unique<Relation>(rel->schema());
  for (const Tuple& t : rel->tuples()) {
    if (relevant->count(t.value(filter->field)) == 0) continue;
    DATACON_ASSIGN_OR_RETURN(bool inserted, InsertDerived(filtered.get(), t));
    (void)inserted;
  }
  const size_t pruned = rel->size() - filtered->size();
  stats_.seed_tuples_pruned += pruned;
  if (cur_ != nullptr && pruned > 0) {
    cur_->counters().Add("seed_tuples_pruned", static_cast<int64_t>(pruned));
  }
  scratch_.push_back(std::move(filtered));
  return scratch_.back().get();
}

Status SystemEvaluator::EvaluateBranch(const Branch& branch, Relation* out,
                                       bool count_inserted, int node,
                                       size_t branch_index) {
  std::vector<ResolvedBinding> resolved;
  resolved.reserve(branch.bindings().size());
  for (size_t j = 0; j < branch.bindings().size(); ++j) {
    const Binding& b = branch.bindings()[j];
    DATACON_ASSIGN_OR_RETURN(const Relation* rel, Resolve(*b.range));
    DATACON_ASSIGN_OR_RETURN(rel, FilteredBinding(node, branch_index, j, rel));
    resolved.push_back(ResolvedBinding{b.var, rel});
  }
  Evaluator eval(this, options_.typed_proven);
  BranchExecStats exec_stats;
  DATACON_RETURN_IF_ERROR(ExecuteBranch(branch, resolved, eval, params_, out,
                                        &exec_stats, options_.exec));
  RecordBranchExec(exec_stats, count_inserted);
  return Status::OK();
}

Result<const Relation*> SystemEvaluator::Resolve(const Range& range) const {
  RangeSplit split = SplitAtLastConstructor(range);
  const Relation* base = nullptr;
  bool stable = true;

  if (split.ctor_head.has_value()) {
    DATACON_ASSIGN_OR_RETURN(int node, graph_->FindNode(**split.ctor_head));
    auto ov = overrides_.find(node);
    if (ov != overrides_.end()) {
      base = ov->second;
      stable = false;
    } else {
      if (totals_[static_cast<size_t>(node)] == nullptr) {
        return Status::Internal("application '" + ToString(**split.ctor_head) +
                                "' resolved before materialization");
      }
      base = totals_[static_cast<size_t>(node)].get();
      if (iterating_nodes_.count(node) > 0) stable = false;
    }
  } else {
    DATACON_ASSIGN_OR_RETURN(base, catalog_->LookupRelation(split.base_relation));
  }

  if (split.trailing_selectors.empty()) return base;

  std::string key = ToString(range);
  if (stable) {
    auto it = source_cache_.find(key);
    if (it != source_cache_.end()) return it->second.get();
  }

  const Relation* current = base;
  std::unique_ptr<Relation> owned;
  for (const RangeApp& app : split.trailing_selectors) {
    DATACON_ASSIGN_OR_RETURN(owned, ApplySelector(*current, app));
    current = owned.get();
    scratch_.push_back(std::move(owned));
  }
  // The final filtered relation lives in scratch_; promote it to the cache
  // when the source is stable.
  if (stable) {
    source_cache_[key] = std::move(scratch_.back());
    scratch_.pop_back();
    return source_cache_[key].get();
  }
  return current;
}

Result<std::unique_ptr<Relation>> SystemEvaluator::ApplySelector(
    const Relation& input, const RangeApp& app) const {
  DATACON_ASSIGN_OR_RETURN(const SelectorDecl* sel,
                           catalog_->LookupSelector(app.name));
  if (app.term_args.size() != sel->params().size()) {
    return Status::TypeError("selector '" + app.name +
                             "' argument count mismatch");
  }
  Evaluator eval(this, options_.typed_proven);
  Environment env = params_;
  for (size_t i = 0; i < app.term_args.size(); ++i) {
    // Selector arguments in range position must be constants (literals or
    // prepared-query parameters); correlated arguments would need an outer
    // environment that range resolution does not carry.
    Result<Value> v = eval.EvalTerm(*app.term_args[i], params_);
    if (!v.ok()) {
      return Status::Unsupported(
          "selector argument '" + ToString(*app.term_args[i]) +
          "' is not a constant: " + v.status().message());
    }
    env.BindParam(sel->params()[i].name, std::move(v).value());
  }

  auto out = std::make_unique<Relation>(input.schema());
  for (const Tuple& t : input.tuples()) {
    env.Bind(sel->var(), &t, &input.schema());
    DATACON_ASSIGN_OR_RETURN(bool keep, eval.EvalPred(*sel->pred(), env));
    if (keep) {
      DATACON_ASSIGN_OR_RETURN(bool inserted, InsertDerived(out.get(), t));
      (void)inserted;
    }
  }
  return out;
}

}  // namespace datacon
