#include "core/specialize.h"

#include <utility>

#include "analysis/adorn.h"

namespace datacon {

bool SpecializationPlan::any() const {
  for (const NodePlan& node : nodes) {
    if (node.active) return true;
  }
  return false;
}

size_t SpecializationPlan::specialized_branches() const {
  size_t count = 0;
  for (const NodePlan& node : nodes) {
    if (!node.active) continue;
    for (const std::vector<BindingFilter>& filters : node.branch_filters) {
      if (!filters.empty()) ++count;
    }
  }
  return count;
}

Result<std::optional<SpecializationPlan>> BuildSpecializationPlan(
    const AdornmentAnalysis& adornment, const ApplicationGraph& graph) {
  if (!adornment.any_specializable) {
    return std::optional<SpecializationPlan>();
  }
  if (adornment.nodes.size() != graph.nodes().size()) {
    return Status::Internal(
        "adornment analysis does not match the application graph");
  }
  SpecializationPlan plan;
  plan.nodes.resize(adornment.nodes.size());
  auto is_active = [&](int node) {
    return node >= 0 && static_cast<size_t>(node) < adornment.nodes.size() &&
           adornment.nodes[static_cast<size_t>(node)].specializable;
  };
  for (size_t t = 0; t < adornment.nodes.size(); ++t) {
    const AdornNode& adorned = adornment.nodes[t];
    SpecializationPlan::NodePlan& node_plan = plan.nodes[t];
    if (!adorned.specializable) continue;
    node_plan.active = true;
    node_plan.bound_attr = adorned.bound_attr;
    node_plan.branch_filters.resize(adorned.branches.size());
    for (size_t bi = 0; bi < adorned.branches.size(); ++bi) {
      const AdornBranch& branch = adorned.branches[bi];
      for (const AdornBranch::Filter& filter : branch.filters) {
        if (!is_active(filter.magic_node)) continue;
        node_plan.branch_filters[bi].push_back(
            {filter.binding, filter.field, filter.magic_node});
      }
      for (const AdornBranch::Transfer& step : branch.transfers) {
        if (!is_active(step.target_node)) continue;
        SpecializationPlan::Edge edge;
        edge.from_node = static_cast<int>(t);
        edge.to_node = step.target_node;
        edge.via_base = step.via_base;
        edge.from_field = step.from_field;
        edge.to_field = step.to_field;
        plan.edges.push_back(std::move(edge));
      }
    }
    for (const AdornSeed& seed : adorned.seeds) {
      SpecializationPlan::Seed s;
      s.node = static_cast<int>(t);
      s.literal = seed.literal;
      s.param = seed.param;
      plan.seeds.push_back(std::move(s));
    }
  }
  if (!plan.any()) return std::optional<SpecializationPlan>();
  return std::make_optional(std::move(plan));
}

size_t MagicSets::TotalValues() const {
  size_t total = 0;
  for (const auto& [node, values] : sets_) total += values.size();
  return total;
}

Result<MagicSets> ComputeMagicSets(const SpecializationPlan& plan,
                                   const RelationResolver& resolver,
                                   const Environment& params) {
  MagicSets magic;
  for (size_t t = 0; t < plan.nodes.size(); ++t) {
    if (plan.nodes[t].active) magic.sets()[static_cast<int>(t)];
  }

  std::vector<std::pair<int, Value>> worklist;
  auto add_value = [&](int node, const Value& value) {
    auto it = magic.sets().find(node);
    if (it == magic.sets().end()) return;
    if (it->second.insert(value).second) worklist.emplace_back(node, value);
  };

  for (const SpecializationPlan::Seed& seed : plan.seeds) {
    if (seed.literal.has_value()) {
      add_value(seed.node, *seed.literal);
    } else if (seed.param.has_value()) {
      const Value* value = params.LookupParam(*seed.param);
      if (value == nullptr) {
        return Status::InvalidArgument("specialization seed parameter '" +
                                       *seed.param + "' is not bound");
      }
      add_value(seed.node, *value);
    }
  }

  // Resolve every hop base once; the ranges are constructor-free, so they
  // resolve against stored relations before any fixpoint runs.
  std::vector<const Relation*> bases(plan.edges.size(), nullptr);
  for (size_t e = 0; e < plan.edges.size(); ++e) {
    if (plan.edges[e].via_base == nullptr) continue;
    DATACON_ASSIGN_OR_RETURN(bases[e],
                             resolver.Resolve(*plan.edges[e].via_base));
  }

  while (!worklist.empty()) {
    auto [node, value] = worklist.back();
    worklist.pop_back();
    for (size_t e = 0; e < plan.edges.size(); ++e) {
      const SpecializationPlan::Edge& edge = plan.edges[e];
      if (edge.from_node != node) continue;
      if (edge.via_base == nullptr) {
        add_value(edge.to_node, value);
        continue;
      }
      for (const Tuple& t : bases[e]->tuples()) {
        if (t.value(edge.from_field) == value) {
          add_value(edge.to_node, t.value(edge.to_field));
        }
      }
    }
  }
  return magic;
}

}  // namespace datacon
