#ifndef DATACON_CORE_QUANT_GRAPH_H_
#define DATACON_CORE_QUANT_GRAPH_H_

#include <string>
#include <vector>

#include "ast/decl.h"
#include "core/catalog.h"

namespace datacon {

/// The augmented quant graph of Figure 3: a quant graph ([JaKo 83]) with a
/// special node for the constructor head and arcs for the attribute
/// relationships between the result relation and the range definitions,
/// plus arcs from quantified nodes with constructed ranges back to the
/// constructor head (step 2 — the clause interconnectivity graph).
///
/// DataCon uses the application graph (instantiate.h) for actual
/// scheduling; the quant graph is the explainable artifact: EXPLAIN and the
/// compilation benchmark render it, and tests pin its shape for the
/// paper's `ahead` example.
struct QuantGraph {
  struct Node {
    enum class Kind { kHead, kVariable };
    Kind kind;
    std::string label;
  };
  struct Arc {
    int from;
    int to;
    std::string label;
  };

  std::vector<Node> nodes;
  std::vector<Arc> arcs;

  /// Renders the graph in Graphviz DOT syntax.
  std::string ToDot() const;
};

/// Builds the augmented quant graph of one constructor definition.
QuantGraph BuildAugmentedQuantGraph(const ConstructorDecl& decl,
                                    const Catalog& catalog);

/// Level-1 partitioning (section 4): the connected components of the
/// name-level definition graph over constructor names and the relation
/// type names they mention. Each component lists constructor names first,
/// then type names, both sorted. Components that contain no constructor
/// are omitted.
std::vector<std::vector<std::string>> PartitionDefinitions(
    const Catalog& catalog);

}  // namespace datacon

#endif  // DATACON_CORE_QUANT_GRAPH_H_
