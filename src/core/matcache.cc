#include "core/matcache.h"

#include <algorithm>
#include <utility>

#include "core/positivity.h"

namespace datacon {

void ScanRangeInputs(const Range& range, const Catalog& catalog, int parity,
                     InputScan* scan) {
  std::set<std::string> visited_selectors;
  // Iterative worklist over (range, parity) pairs so selector predicates
  // nesting further ranges cannot recurse unboundedly.
  struct Item {
    const Range* range;
    int parity;
  };
  // Every queued Range is owned by the caller's AST or by a catalog-owned
  // selector declaration, both of which outlive the scan.
  std::vector<Item> work{{&range, parity}};
  while (!work.empty() && scan->ok) {
    Item item = work.back();
    work.pop_back();
    if (item.parity % 2 != 0) scan->maintainable = false;
    // A fully substituted range's base is a catalog relation; an unknown
    // name is a formal (the range was lifted out of an unapplied selector
    // body) and the dependency cannot be pinned by name+generation.
    if (!catalog.LookupRelation(item.range->relation()).ok()) {
      scan->ok = false;
      return;
    }
    scan->inputs.insert(item.range->relation());
    for (const RangeApp& app : item.range->apps()) {
      if (app.kind == RangeApp::Kind::kConstructor) {
        // The constructor application itself is an ApplicationGraph node
        // (covered by the component's reachable-node closure); only its
        // relation-valued arguments add base inputs.
        for (const RangePtr& arg : app.range_args) {
          work.push_back({arg.get(), item.parity});
        }
        continue;
      }
      Result<const SelectorDecl*> sel = catalog.LookupSelector(app.name);
      if (!sel.ok()) {
        scan->ok = false;
        return;
      }
      if (!visited_selectors.insert(app.name).second) continue;
      // Ranges inside an applied selector's predicate are further inputs;
      // their presence also means an insert into those inputs can shrink
      // the selected set, so delta maintenance is off the table.
      ForEachRangeWithParity(*sel.value()->pred(), item.parity,
                             [&](const Range& r, int p) {
                               scan->maintainable = false;
                               work.push_back({&r, p});
                             });
    }
  }
}

Result<std::vector<CacheInput>> SnapshotCacheInputs(
    const std::set<std::string>& names, const Catalog& catalog) {
  std::vector<CacheInput> out;
  out.reserve(names.size());
  for (const std::string& name : names) {
    DATACON_ASSIGN_OR_RETURN(const Relation* rel,
                             catalog.LookupRelation(name));
    out.push_back(CacheInput{name, rel->generation()});
  }
  return out;
}

MatCache::MatCache(size_t capacity, MetricsRegistry* registry,
                   EventLog* events)
    : capacity_(capacity),
      registry_hits_(registry ? registry->GetCounter("cache.hits") : nullptr),
      registry_misses_(registry ? registry->GetCounter("cache.misses")
                                : nullptr),
      registry_invalidations_(
          registry ? registry->GetCounter("cache.invalidations") : nullptr),
      registry_delta_maintained_(
          registry ? registry->GetCounter("cache.delta_maintained") : nullptr),
      events_(events) {}

void MatCache::CountInvalidation() {
  ++stats_.invalidations;
  if (registry_invalidations_ != nullptr) registry_invalidations_->Increment();
}

void MatCache::CountMiss() {
  ++stats_.misses;
  if (registry_misses_ != nullptr) registry_misses_->Increment();
}

CacheLookup MatCache::Lookup(const std::string& key, const Catalog& catalog) {
  std::lock_guard<std::mutex> lock(mu_);
  CacheLookup result;
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    CountMiss();
    return result;
  }
  Entry& entry = it->second;
  std::vector<CacheInputDelta> deltas;
  bool invalid = false;
  bool changed = false;
  for (const CacheInput& input : entry.inputs) {
    Result<const Relation*> rel = catalog.LookupRelation(input.relation);
    if (!rel.ok()) {
      invalid = true;
      break;
    }
    if (rel.value()->generation() == input.generation) continue;
    changed = true;
    if (!entry.maintainable) {
      invalid = true;
      break;
    }
    std::optional<std::vector<Tuple>> inserted =
        rel.value()->InsertedSince(input.generation);
    if (!inserted.has_value()) {
      // Erase/Clear churn or log overflow: the delta is gone for good.
      invalid = true;
      break;
    }
    deltas.push_back(CacheInputDelta{input.relation, *std::move(inserted)});
  }
  if (invalid) {
    entries_.erase(it);
    CountInvalidation();
    CountMiss();
    if (events_ != nullptr && events_->enabled()) {
      events_->Emit("cache.invalidate", {EventField::Str("key", key)});
    }
    return result;
  }
  if (!changed) {
    Touch(&entry);
    ++stats_.hits;
    if (registry_hits_ != nullptr) registry_hits_->Increment();
    if (events_ != nullptr && events_->enabled()) {
      events_->Emit("cache.hit", {EventField::Str("key", key)});
    }
    result.outcome = CacheOutcome::kHit;
    result.members = entry.members;
    result.stats = entry.stats;
    return result;
  }
  // Delta hit: hand the caller everything it needs to maintain; counters
  // settle via NoteMaintained / InvalidateAfterFailure.
  Touch(&entry);
  result.outcome = CacheOutcome::kDeltaHit;
  result.members = entry.members;
  result.deltas = std::move(deltas);
  result.stats = entry.stats;
  return result;
}

void MatCache::Insert(const std::string& key,
                      std::vector<CachedRelation> members,
                      std::vector<CacheInput> inputs, EvalStats stats,
                      bool maintainable) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  Entry& entry = entries_[key];
  entry.members = std::move(members);
  entry.inputs = std::move(inputs);
  entry.stats = stats;
  entry.maintainable = maintainable;
  Touch(&entry);
  EvictOverCapacity();
}

void MatCache::NoteMaintained(const std::string& key,
                              std::vector<CachedRelation> members,
                              std::vector<CacheInput> inputs,
                              EvalStats stats) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.delta_maintained;
  if (registry_delta_maintained_ != nullptr) {
    registry_delta_maintained_->Increment();
  }
  if (events_ != nullptr && events_->enabled()) {
    events_->Emit("cache.delta", {EventField::Str("key", key)});
  }
  auto it = entries_.find(key);
  if (it == entries_.end()) return;  // evicted concurrently with maintenance
  Entry& entry = it->second;
  entry.members = std::move(members);
  entry.inputs = std::move(inputs);
  entry.stats = stats;
  Touch(&entry);
}

void MatCache::InvalidateAfterFailure(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.erase(key);
  CountInvalidation();
  CountMiss();
  if (events_ != nullptr && events_->enabled()) {
    events_->Emit("cache.invalidate", {EventField::Str("key", key)});
  }
}

void MatCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
}

void MatCache::set_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  EvictOverCapacity();
}

void MatCache::EvictOverCapacity() {
  while (entries_.size() > capacity_) {
    auto lru = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_used < lru->second.last_used) lru = it;
    }
    entries_.erase(lru);
    ++stats_.evictions;
  }
}

}  // namespace datacon
