#ifndef DATACON_CORE_ACCESS_PATH_H_
#define DATACON_CORE_ACCESS_PATH_H_

#include <memory>
#include <string>

#include "ast/branch.h"
#include "common/result.h"
#include "core/database.h"
#include "storage/index.h"
#include "storage/relation.h"

namespace datacon {

/// The paper's *physical access path* (section 4): for a heavily used
/// parameterized query form, "actually materialize a relation
/// corresponding to the query with the constants used as variables, and
/// partition it according to the different constant values".
///
/// Build() strips the parameter-binding conjunct from the form, evaluates
/// the unrestricted query once (the expensive part — "generated only in
/// case of heavy query usage"), and hash-partitions the result on the
/// bound attribute. Execute() then answers any instantiation with a probe.
///
/// The access path is a snapshot: updates to the underlying base relations
/// do not propagate (incremental maintenance is the paper's [ShTZ 84]
/// pointer and out of scope here) — rebuild after updates.
class PhysicalAccessPath {
 public:
  /// `form` must be a single-branch query whose predicate conjoins
  /// `<var>.<field> = <param>` for exactly one field; `param` names the
  /// placeholder. Fails with kUnsupported when the shape does not match.
  static Result<PhysicalAccessPath> Build(Database* db, CalcExprPtr form,
                                          const std::string& param);

  /// All result tuples whose bound attribute equals `value`.
  Result<Relation> Execute(const Value& value) const;

  const Schema& result_schema() const { return schema_; }

  /// Size of the materialized (unrestricted) relation.
  size_t materialized_size() const { return materialized_->size(); }

 private:
  PhysicalAccessPath() = default;

  Schema schema_;
  std::shared_ptr<Relation> materialized_;
  std::shared_ptr<HashIndex> index_;
  int probe_column_ = 0;
};

}  // namespace datacon

#endif  // DATACON_CORE_ACCESS_PATH_H_
