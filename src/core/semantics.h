#ifndef DATACON_CORE_SEMANTICS_H_
#define DATACON_CORE_SEMANTICS_H_

#include <map>
#include <string>

#include "ast/branch.h"
#include "ast/decl.h"
#include "ast/pred.h"
#include "ast/range.h"
#include "ast/term.h"
#include "common/result.h"
#include "core/catalog.h"
#include "types/schema.h"

namespace datacon {

/// Name-resolution context for semantic analysis: the catalog plus the
/// formal relation parameters, scalar parameters, and bound tuple variables
/// of the construct being checked.
struct AnalysisScope {
  const Catalog* catalog = nullptr;
  /// Formal relation name -> declared relation type name.
  std::map<std::string, std::string> relation_formals;
  /// Scalar parameter name -> type.
  std::map<std::string, ValueType> scalar_params;
  /// Bound tuple variable -> schema of its range.
  std::map<std::string, const Schema*> vars;
};

/// The schema a range expression denotes under `scope`: the base relation's
/// schema, checked through each selector application (schema-preserving) and
/// constructor application (result-type schema). Verifies existence, arity,
/// and type compatibility of every application.
Result<const Schema*> RangeSchemaOf(const Range& range,
                                    const AnalysisScope& scope);

/// The scalar type of `term` under `scope`.
Result<ValueType> TermTypeOf(const Term& term, const AnalysisScope& scope);

/// Type-checks `pred` under `scope` (quantifiers extend the scope for their
/// bodies). `scope` is restored on return.
Status CheckPred(const Pred& pred, AnalysisScope* scope);

/// Level-1 checks (run at definition time, section 4):

/// Checks a selector declaration against the catalog.
Status CheckSelectorDecl(const SelectorDecl& decl, const Catalog& catalog);

/// Type-checks a constructor declaration against the catalog: every branch's
/// ranges, predicate, and target list against the declared result type.
/// (The positivity test is separate; see positivity.h.)
Status CheckConstructorDecl(const ConstructorDecl& decl,
                            const Catalog& catalog);

/// Type-checks a query expression expected to produce `result_schema`.
/// `placeholders` declares the types of free scalar parameters (prepared
/// query forms, section 4).
Status CheckQuery(const CalcExpr& expr, const Catalog& catalog,
                  const Schema& result_schema,
                  const std::map<std::string, ValueType>& placeholders = {});

/// Infers a result schema for a query expression: the schema of the first
/// branch's range for identity branches, or synthesized fields c0..ck-1 from
/// the target terms' types. All branches must agree positionally.
Result<Schema> InferQuerySchema(const CalcExpr& expr, const Catalog& catalog,
                                const std::map<std::string, ValueType>&
                                    placeholders = {});

}  // namespace datacon

#endif  // DATACON_CORE_SEMANTICS_H_
