#ifndef DATACON_CORE_FIXPOINT_H_
#define DATACON_CORE_FIXPOINT_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "ast/branch.h"
#include "common/metrics.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/catalog.h"
#include "core/instantiate.h"
#include "core/specialize.h"
#include "ra/branch_plan.h"
#include "ra/env.h"
#include "ra/resolver.h"
#include "storage/relation.h"

namespace datacon {

struct BranchExecStats;
class EventLog;
class MatCache;
struct CacheLookup;
struct CachedRelation;
struct CacheInput;

/// Evaluation strategy for recursive components (section 3.2 / section 4).
enum class FixpointStrategy {
  /// The paper's REPEAT loop verbatim: every round recomputes every g_j
  /// from the full previous approximations (Jacobi iteration).
  kNaive,
  /// Differential evaluation: each round joins only against the tuples new
  /// in the previous round. Requires monotonicity (positivity).
  kSemiNaive,
};

/// Options controlling system evaluation.
struct EvalOptions {
  FixpointStrategy strategy = FixpointStrategy::kSemiNaive;
  /// Physical execution knobs (hash-join ablation etc.).
  BranchExecOptions exec;
  /// Evaluate even non-positive systems by plain iteration, bounded by
  /// `max_iterations`. Exists to demonstrate the section 3.3 examples
  /// (`strange` converges, `nonsense` oscillates forever); forces kNaive.
  bool unchecked = false;
  /// Iteration bound per recursive component; 0 means unbounded. Exceeding
  /// it yields kDivergence.
  size_t max_iterations = 0;
  /// Collect a per-component, per-round ProfileNode tree (wall times, delta
  /// sizes, branch-level counters) alongside the flat EvalStats. Off by
  /// default; EXPLAIN ANALYZE and `PRAGMA PROFILE = ON` turn it on.
  bool profile = false;
  /// The whole-program type checker proved every definition well-typed:
  /// run the typed-proven Evaluator variant, which replaces per-tuple
  /// Value::type() dispatch and error construction with debug-only
  /// assertions (ra/eval.h). Set by Database per evaluation; never set it
  /// for a catalog holding definitions admitted with typecheck off.
  bool typed_proven = false;
};

/// Counters reported by evaluation, consumed by EXPLAIN ANALYZE and the
/// benchmarks. All fields except the two marked "execution detail" are
/// deterministic: bit-identical at every thread-count setting.
struct EvalStats {
  /// Fixpoint rounds summed over all recursive components.
  size_t iterations = 0;
  /// Environments reaching branch output (tuples considered before dedup).
  size_t tuples_considered = 0;
  /// Tuples actually added across all application relations.
  size_t tuples_inserted = 0;
  /// Tuples scanned at the outermost level of every branch execution.
  size_t outer_tuples = 0;
  /// Hash indexes built for inner join levels.
  size_t index_builds = 0;
  /// Probe calls against those indexes.
  size_t index_probes = 0;
  /// Execution detail: snapshot materializations before parallel fan-outs.
  size_t snapshot_materializations = 0;
  /// Execution detail: chunks dispatched to the worker pool.
  size_t chunks_dispatched = 0;
  /// Body branches restricted by the magic-seed specialization.
  size_t specialized_branches = 0;
  /// Tuples dropped from binding ranges by magic-set filters before the
  /// branch executor ever saw them (summed over all rounds).
  size_t seed_tuples_pruned = 0;

  EvalStats& operator+=(const EvalStats& other);
};

/// Field-wise sum and difference. The materialization cache records a
/// component's contribution as (stats after − stats before) and replays it
/// on a hit, so repeat queries report the same logical counters as the
/// cold run that filled the entry. Subtraction assumes `b` is an earlier
/// snapshot of `a` (every counter monotonically grows).
EvalStats operator+(EvalStats a, const EvalStats& b);
EvalStats operator-(const EvalStats& a, const EvalStats& b);

/// Per-query resource attribution, threaded by the evaluator alongside
/// EvalStats: the *physical* footprint of one evaluation rather than its
/// logical work. Flows into slow-log digests, query.finish events, and the
/// EXPLAIN ANALYZE resource line. Every field is deterministic at any
/// thread-count setting, and collecting it never feeds back into EvalStats
/// (the neutrality tests pin both).
struct ResourceUsage {
  /// Largest single-node delta (semi-naive) or fresh-set (naive)
  /// cardinality seen in any fixpoint round — the working-set peak.
  size_t peak_delta_tuples = 0;
  /// Tuples held across all materialized application relations when
  /// MaterializeAll finished (cache-installed members included).
  size_t tuples_materialized = 0;
  /// Deterministic size estimate of those materializations: a fixed
  /// per-tuple overhead plus a per-field cost derived from the schema —
  /// an attribution unit, not a malloc audit.
  size_t approx_bytes = 0;
  /// Hash indexes built for inner join levels (mirrors EvalStats).
  size_t index_builds = 0;
  /// Component-level materialization-cache outcomes of this evaluation
  /// (all zero when the cache was not consulted).
  size_t cache_hits = 0;
  size_t cache_delta_hits = 0;
  size_t cache_misses = 0;

  /// "peak_delta=N materialized=N approx_bytes=N index_builds=N
  ///  cache_hits=N cache_delta=N cache_misses=N" — the digest appended to
  /// slow-log entries and the EXPLAIN ANALYZE resource line.
  std::string ToText() const;
};

/// The deterministic per-relation size estimate behind
/// ResourceUsage::approx_bytes: a fixed per-tuple overhead plus a
/// per-field cost. Pure arithmetic over size and arity — O(1), identical
/// at every thread count, and independent of allocator behaviour.
size_t ApproxRelationBytes(const Relation& rel);

/// Evaluates an instantiated application system (level 3 of the paper's
/// framework): components of the application graph are materialized in
/// dependency order — acyclic components in a single pass, cyclic ones by
/// naive or semi-naive least-fixpoint iteration.
///
/// The evaluator doubles as the RelationResolver for predicate-level range
/// references (quantifiers, membership): during iteration, in-component
/// references resolve to the current approximation.
class SystemEvaluator : public RelationResolver {
 public:
  /// `catalog` and `graph` must outlive the evaluator. `params` carries the
  /// scalar placeholder bindings of a prepared query form (empty for plain
  /// evaluation).
  SystemEvaluator(const Catalog* catalog, const ApplicationGraph* graph,
                  EvalOptions options, Environment params = {});

  /// Pre-installs an externally computed relation for `node` — the hook
  /// used by capture rules (section 4): a recognized special case (e.g.
  /// transitive closure) is materialized by a specialized algorithm and the
  /// generic fixpoint skips it. Must be called before MaterializeAll.
  Status InstallNodeRelation(int node, std::unique_ptr<Relation> rel);

  /// Same, sharing an externally cached materialization without copying.
  /// The relation is treated as immutable — the evaluator reads it but
  /// never mutates it (the cache may hand the same object to later
  /// evaluations).
  Status InstallNodeRelation(int node, std::shared_ptr<const Relation> rel);

  /// Enables the materialization cache: MaterializeAll consults `cache`
  /// per component (full reuse on unchanged input generations, semi-naive
  /// delta maintenance on insert-only churn) and fills it after cold
  /// evaluations. Must be called before MaterializeAll; the caller
  /// guarantees the evaluation is unparameterized (prepared-query
  /// parameters change results without appearing in the cache key).
  void InstallMatCache(MatCache* cache) { cache_ = cache; }

  /// Installs a magic-seed specialization plan (core/specialize.h): active
  /// nodes evaluate a restricted fixpoint whose binding ranges are filtered
  /// to relevant tuples. `plan` must outlive the evaluator; must be called
  /// before MaterializeAll (which computes the relevant-value closure).
  void InstallSpecialization(const SpecializationPlan* plan) { plan_ = plan; }

  /// Installs a structured-event sink (not owned; may be null): the
  /// evaluator emits specialize.fallback when a planned specialization
  /// degrades to unspecialized evaluation. Must be called before
  /// MaterializeAll.
  void InstallEventLog(EventLog* events) { events_ = events; }

  /// Materializes every application node not already installed. Must be
  /// called exactly once, before NodeRelation/EvaluateExpr.
  Status MaterializeAll();

  /// The materialized relation of application node `node`.
  Result<const Relation*> NodeRelation(int node) const;

  /// Evaluates a query expression against the materialized system into a
  /// fresh relation over `result_schema`.
  Result<Relation> EvaluateExpr(const CalcExpr& expr,
                                const Schema& result_schema);

  /// RelationResolver: resolves a fully-substituted range. Constructor
  /// heads resolve to (current approximations of) application relations;
  /// plain bases to catalog relations; trailing selector applications are
  /// applied on top.
  Result<const Relation*> Resolve(const Range& range) const override;

  const EvalStats& stats() const { return stats_; }

  /// Resource attribution accumulated so far (complete after
  /// MaterializeAll + EvaluateExpr).
  const ResourceUsage& usage() const { return usage_; }

  /// The profile tree collected so far (null unless options.profile). The
  /// database layer also appends capture-rule nodes through this.
  ProfileNode* profile() { return profile_.get(); }
  const ProfileNode* profile() const { return profile_.get(); }

  /// Transfers ownership of the profile tree (null unless options.profile);
  /// stamps the root with the evaluator's total lifetime.
  std::unique_ptr<ProfileNode> TakeProfile();

 private:
  /// Per-branch differential analysis of one component (which bindings are
  /// recursive, whether the predicate references the component), shared by
  /// SemiNaiveFixpoint and cache maintenance.
  struct BranchInfo {
    const Branch* branch;
    int owner;
    size_t branch_index = 0;  // position within the owner's body
    std::vector<int> binding_nodes;  // in-component node id per binding, or -1
    bool differentiable = true;
    bool recursive = false;
  };

  /// The component-key/inputs/maintainability triple of a cacheable
  /// component; nullopt when the component must not be cached (unchecked
  /// mode, unknown input names, a specialization restricted by parameter
  /// seeds or by values flowing in from outside the component).
  struct ComponentCacheKey {
    std::string key;
    std::set<std::string> inputs;
    bool maintainable = false;
  };

  /// Insert into an engine-owned scratch/delta relation: when the catalog
  /// is typed-proven the per-tuple schema validation is statically
  /// discharged (storage/relation.h InsertProven), otherwise the checked
  /// insert runs.
  Result<bool> InsertDerived(Relation* rel, const Tuple& t) const {
    return options_.typed_proven ? rel->InsertProven(t) : rel->Insert(t);
  }

  /// Single-pass evaluation of a non-recursive node.
  Status EvaluateAcyclicNode(int node);

  /// Naive (Jacobi) fixpoint over one cyclic component.
  Status NaiveFixpoint(const std::vector<int>& component);

  /// Semi-naive fixpoint over one cyclic component.
  Status SemiNaiveFixpoint(const std::vector<int>& component);

  /// The BranchInfo list of a component's bodies.
  Result<std::vector<BranchInfo>> AnalyzeComponentBranches(
      const std::vector<int>& component, const std::set<int>& in_component);

  /// The differential loop shared by SemiNaiveFixpoint (after its f(∅)
  /// seed round) and MaintainComponent (after its base-delta seed round):
  /// iterates the standard non-linear delta rewrite until no delta grows.
  /// `round` counts this component's rounds (already includes the seed).
  Status DifferentialRounds(const std::vector<int>& component,
                            const std::vector<BranchInfo>& infos,
                            std::map<int, std::unique_ptr<Relation>>* deltas,
                            ProfileNode* comp_node, size_t* round);

  /// Applies the trailing selector applications of `range` (if any) on top
  /// of `base`, materializing intermediates into scratch_.
  Result<const Relation*> WithTrailing(const Relation* base,
                                       const Range& range);

  /// Computes the cache key of `component`, or nullopt when uncacheable.
  std::optional<ComponentCacheKey> CacheKeyFor(
      const std::vector<int>& component) const;

  /// Installs the cached member relations of a full hit.
  Status InstallCachedMembers(const std::vector<int>& component,
                              const std::vector<CachedRelation>& members);

  /// Incrementally maintains a cached component against the insert deltas
  /// of `found`: installs mutable copies of the cached members, seeds
  /// semi-naive with the branch derivations touching the changed bases,
  /// then runs the differential loop. On error the caller degrades to a
  /// full recompute.
  Status MaintainComponent(const std::vector<int>& component,
                           const CacheLookup& found);

  /// The current member relations of `component` as shareable cache
  /// members.
  std::vector<CachedRelation> SnapshotMembers(
      const std::vector<int>& component) const;

  /// Evaluates every branch of `node`'s body into `out`, resolving ranges
  /// through `this` (honouring `overrides_`).
  Status EvaluateNodeBody(int node, Relation* out);

  /// Evaluates a single branch into `out`. `count_inserted` is false inside
  /// semi-naive differential rounds, where insertions are counted from the
  /// deduplicated deltas instead of the raw per-branch output. `node` and
  /// `branch_index` locate the branch in the specialization plan (node -1:
  /// a query branch, never filtered).
  Status EvaluateBranch(const Branch& branch, Relation* out,
                        bool count_inserted = true, int node = -1,
                        size_t branch_index = 0);

  /// Applies the specialization plan's filter for (node, branch, binding)
  /// to `rel`, materializing the restricted copy into scratch_ and counting
  /// the dropped tuples. Returns `rel` unchanged when no filter applies.
  /// The filter runs before the branch executor's parallel fan-out, so the
  /// pruning counters stay deterministic at any thread count.
  Result<const Relation*> FilteredBinding(int node, size_t branch_index,
                                          size_t binding_index,
                                          const Relation* rel);

  /// Folds one branch execution's counters into the flat stats and, when
  /// profiling, into the current profile node.
  void RecordBranchExec(const BranchExecStats& exec, bool count_inserted);

  /// Raises the attribution working-set peak to `cardinality` — called with
  /// each round's per-node delta/fresh-set size.
  void NotePeakDelta(size_t cardinality) {
    if (cardinality > usage_.peak_delta_tuples) {
      usage_.peak_delta_tuples = cardinality;
    }
  }

  /// The display key of a component: "[k1, k2]" over the member node keys.
  std::string ComponentLabel(const std::vector<int>& component) const;

  /// Materializes the base relation + selector chain of a split range.
  Result<const Relation*> ResolveSource(const RangeSplit& split,
                                        const std::string& cache_key) const;

  /// Applies one selector application to `input`.
  Result<std::unique_ptr<Relation>> ApplySelector(const Relation& input,
                                                  const RangeApp& app) const;

  const Catalog* catalog_;
  const ApplicationGraph* graph_;
  EvalOptions options_;
  Environment params_;

  /// Magic-seed specialization (not owned; null when disabled) and the
  /// relevant-value closure computed at the start of MaterializeAll.
  const SpecializationPlan* plan_ = nullptr;
  MagicSets magic_;

  /// Materialization cache (not owned; null when disabled).
  MatCache* cache_ = nullptr;

  /// Structured-event sink (not owned; null when disabled).
  EventLog* events_ = nullptr;

  /// Materialized application relations. Shared so cache hits install
  /// without copying; relations obtained from the cache are immutable by
  /// discipline (fixpoints always build fresh relations, maintenance
  /// copies before mutating).
  std::vector<std::shared_ptr<Relation>> totals_;
  bool materialized_ = false;

  /// During a fixpoint round, remaps in-component node ids to a snapshot or
  /// delta relation.
  mutable std::map<int, const Relation*> overrides_;
  /// Nodes of the component currently being iterated; ranges over these are
  /// never cached.
  std::set<int> iterating_nodes_;

  /// Cache for materialized selector chains over stable sources.
  mutable std::map<std::string, std::unique_ptr<Relation>> source_cache_;
  /// Keeps ephemeral (uncacheable) materializations alive for the duration
  /// of the evaluation step that requested them.
  mutable std::vector<std::unique_ptr<Relation>> scratch_;

  /// Worker pool shared by every branch execution of this evaluator, so
  /// per-round fan-outs do not respawn threads. Created in the constructor
  /// only when the options ask for more than one thread and no external
  /// pool was supplied.
  std::unique_ptr<ThreadPool> pool_;

  EvalStats stats_;
  ResourceUsage usage_;

  /// Profile tree (only when options.profile) and the node branch-level
  /// counters currently flow into (a component, round, or query node).
  std::unique_ptr<ProfileNode> profile_;
  ProfileNode* cur_ = nullptr;
  Timer lifetime_;
};

}  // namespace datacon

#endif  // DATACON_CORE_FIXPOINT_H_
