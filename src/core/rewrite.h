#ifndef DATACON_CORE_REWRITE_H_
#define DATACON_CORE_REWRITE_H_

#include <map>
#include <optional>
#include <string>

#include "ast/branch.h"
#include "ast/decl.h"
#include "common/result.h"
#include "core/catalog.h"

namespace datacon {

/// Variable renaming over a branch (bindings, predicate, targets, nested
/// quantifiers). Used to keep inlined constructor-body variables distinct
/// from query variables.
BranchPtr RenameVars(const BranchPtr& branch,
                     const std::map<std::string, std::string>& renames);

/// The section 4 propagation rules (a compiler-side application of the
/// range-nesting equivalences N1–N3 of [JaKo 83]):
///
/// A query branch ranging over a *non-recursive* constructor application is
/// replaced by one branch per constructor-body branch — case 3 (union)
/// distributes the query over the body; case 2 (join) substitutes, for each
/// reference to a result field of the constructed variable, the body
/// branch's corresponding target term; case 1 (selector) is the degenerate
/// single-branch single-variable instance. The rewritten query never
/// materializes the constructed relation.
///
/// Returns the rewritten expression, or nullopt when nothing was inlined
/// (no binding over a non-recursive constructor application). Recursive
/// constructors and ranges with selector applications after the
/// constructor are left untouched.
Result<std::optional<CalcExprPtr>> InlineNonRecursiveApplications(
    const CalcExprPtr& expr, const Catalog& catalog);

/// A compiled "seeded transitive closure" plan (the paper's constant
/// propagation into a recursive constructor, section 4): the query
///
///   { ... EACH v IN Base {tc_ctor}: v.<source_field> = <constant> AND rest }
///
/// is answered by computing reachability from the constant only. The plan
/// records which branch binding to replace and where the seed comes from.
struct SeededTcPlan {
  /// Index of the branch within the query expression.
  size_t branch_index = 0;
  /// Index of the binding ranging over the closure.
  size_t binding_index = 0;
  /// The application's plain base range (edges of the closure).
  RangePtr edges_range;
  /// Schema of the closure result.
  Schema result_schema;
  /// The seed: a literal value, or the name of a prepared-query parameter.
  std::optional<Value> seed_literal;
  std::optional<std::string> seed_param;
};

/// Detects a seeded-TC opportunity in `expr`. Conservative: triggers only
/// when one branch binds a variable over `Base {c}` where `c` matches the
/// transitive-closure capture rule, the base is constructor-free, and the
/// predicate conjoins `v.<first result field> = <literal or parameter>`.
Result<std::optional<SeededTcPlan>> DetectSeededTc(const CalcExpr& expr,
                                                   const Catalog& catalog);

}  // namespace datacon

#endif  // DATACON_CORE_REWRITE_H_
