#ifndef DATACON_CORE_CATALOG_H_
#define DATACON_CORE_CATALOG_H_

#include <map>
#include <memory>
#include <string>

#include "ast/decl.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/relation.h"
#include "types/schema.h"

namespace datacon {

/// The schema-level name space of a database program: relation types,
/// relation variables, selector declarations, and constructor declarations.
///
/// The catalog is the context against which semantic analysis resolves
/// names (level 1 of the paper's three-level framework) and against which
/// queries are instantiated (level 2).
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- Relation types ---

  /// Declares `TYPE name = RELATION ... OF RECORD ... END`.
  Status DefineRelationType(const std::string& name, Schema schema);
  Result<const Schema*> LookupRelationType(const std::string& name) const;

  // --- Relation variables ---

  /// Declares `VAR name: type_name` and creates empty storage for it.
  Status CreateRelation(const std::string& name, const std::string& type_name);
  Result<Relation*> LookupRelation(const std::string& name);
  Result<const Relation*> LookupRelation(const std::string& name) const;
  /// The declared type name of relation variable `name`.
  Result<const std::string*> LookupRelationTypeName(const std::string& name) const;

  // --- Selectors and constructors ---

  Status DefineSelector(SelectorDeclPtr decl);
  Result<const SelectorDecl*> LookupSelector(const std::string& name) const;

  Status DefineConstructor(ConstructorDeclPtr decl);
  Result<const ConstructorDecl*> LookupConstructor(const std::string& name) const;

  /// Removes a constructor again — used to roll back a registration whose
  /// semantic checks failed (recursive constructors must be visible to
  /// their own type check, so registration happens first).
  void RemoveConstructor(const std::string& name) { constructors_.erase(name); }

  // --- Integrity constraints ---

  Status DefineConstraint(ConstraintDeclPtr decl);
  Result<const ConstraintDecl*> LookupConstraint(const std::string& name) const;

  /// Rolls back a constraint registration whose initial full check failed.
  void RemoveConstraint(const std::string& name) { constraints_.erase(name); }

  const std::map<std::string, ConstraintDeclPtr>& constraints() const {
    return constraints_;
  }

  const std::map<std::string, ConstructorDeclPtr>& constructors() const {
    return constructors_;
  }
  const std::map<std::string, SelectorDeclPtr>& selectors() const {
    return selectors_;
  }
  const std::map<std::string, Schema>& relation_types() const {
    return relation_types_;
  }
  const std::map<std::string, std::string>& relation_type_names() const {
    return relation_var_types_;
  }

 private:
  std::map<std::string, Schema> relation_types_;
  std::map<std::string, std::unique_ptr<Relation>> relations_;
  std::map<std::string, std::string> relation_var_types_;
  std::map<std::string, SelectorDeclPtr> selectors_;
  std::map<std::string, ConstructorDeclPtr> constructors_;
  std::map<std::string, ConstraintDeclPtr> constraints_;
};

}  // namespace datacon

#endif  // DATACON_CORE_CATALOG_H_
