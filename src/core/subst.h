#ifndef DATACON_CORE_SUBST_H_
#define DATACON_CORE_SUBST_H_

#include <map>
#include <string>
#include <utility>

#include "ast/branch.h"
#include "ast/pred.h"
#include "ast/range.h"
#include "ast/term.h"
#include "types/value.h"

namespace datacon {

/// Replaces formal names by actuals when a selector/constructor definition
/// is instantiated for a concrete application (section 3.2: "replacing all
/// formal parameters by their actual values").
struct Substitution {
  /// Formal relation name -> actual range. The actual's suffix chain is
  /// spliced in front of any suffixes the occurrence carries.
  std::map<std::string, RangePtr> relations;
  /// Scalar parameter name -> actual term (a literal constant, or a
  /// placeholder parameter of an enclosing prepared query form).
  std::map<std::string, TermPtr> scalars;
};

TermPtr SubstituteTerm(const TermPtr& term, const Substitution& subst);
RangePtr SubstituteRange(const RangePtr& range, const Substitution& subst);
PredPtr SubstitutePred(const PredPtr& pred, const Substitution& subst);
BranchPtr SubstituteBranch(const BranchPtr& branch, const Substitution& subst);
CalcExprPtr SubstituteExpr(const CalcExprPtr& expr, const Substitution& subst);

/// (variable, field) -> replacement term. Used by the section 4 propagation
/// rules: a query predicate over a constructed range is rewritten onto a
/// branch by substituting the branch's target term for each reference to
/// the corresponding result field.
using FieldSubstitution = std::map<std::pair<std::string, std::string>, TermPtr>;

TermPtr SubstituteFields(const TermPtr& term, const FieldSubstitution& subst);
PredPtr SubstituteFields(const PredPtr& pred, const FieldSubstitution& subst);

}  // namespace datacon

#endif  // DATACON_CORE_SUBST_H_
