#include "types/value.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace datacon {
namespace {

TEST(Value, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.type(), ValueType::kInt);
  EXPECT_EQ(v.AsInt(), 0);
}

TEST(Value, Constructors) {
  EXPECT_EQ(Value::Int(42).AsInt(), 42);
  EXPECT_EQ(Value::Int(-7).AsInt(), -7);
  EXPECT_EQ(Value::String("table").AsString(), "table");
  EXPECT_EQ(Value::Bool(true).AsBool(), true);
  EXPECT_EQ(Value::Bool(false).AsBool(), false);
}

TEST(Value, TypeTags) {
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt);
  EXPECT_EQ(Value::String("").type(), ValueType::kString);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
}

TEST(Value, Equality) {
  EXPECT_EQ(Value::Int(3), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Int(4));
  EXPECT_NE(Value::Int(1), Value::String("1"));
  EXPECT_EQ(Value::String("a"), Value::String("a"));
  EXPECT_NE(Value::Bool(true), Value::Bool(false));
}

TEST(Value, CompareWithinType) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(5).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_LT(Value::Bool(false).Compare(Value::Bool(true)), 0);
}

TEST(Value, OrderingIsStrictWeak) {
  std::vector<Value> values = {Value::Int(3), Value::String("b"),
                               Value::Int(1), Value::String("a"),
                               Value::Bool(true)};
  std::sort(values.begin(), values.end());
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_FALSE(values[i + 1] < values[i]);
  }
}

TEST(Value, ToString) {
  EXPECT_EQ(Value::Int(12).ToString(), "12");
  EXPECT_EQ(Value::String("vase").ToString(), "\"vase\"");
  EXPECT_EQ(Value::Bool(true).ToString(), "TRUE");
  EXPECT_EQ(Value::Bool(false).ToString(), "FALSE");
}

TEST(Value, HashEqualValuesAgree) {
  EXPECT_EQ(Value::Int(9).Hash(), Value::Int(9).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(Value, HashSupportsUnorderedContainers) {
  std::unordered_set<Value> set;
  set.insert(Value::Int(1));
  set.insert(Value::Int(1));
  set.insert(Value::String("1"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value::Int(1)) > 0);
}

TEST(Value, IntAndStringWithSameSpellingDiffer) {
  // The hash mixes the type tag, so 1 and "1" rarely collide and never
  // compare equal.
  EXPECT_NE(Value::Int(1), Value::String("1"));
}

TEST(ValueTypeName, Spellings) {
  EXPECT_EQ(ValueTypeName(ValueType::kInt), "INTEGER");
  EXPECT_EQ(ValueTypeName(ValueType::kString), "STRING");
  EXPECT_EQ(ValueTypeName(ValueType::kBool), "BOOLEAN");
}

}  // namespace
}  // namespace datacon
