#include "types/schema.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

Schema InfrontSchema() {
  return Schema({{"front", ValueType::kString}, {"back", ValueType::kString}});
}

TEST(Schema, FieldAccess) {
  Schema s = InfrontSchema();
  EXPECT_EQ(s.arity(), 2);
  EXPECT_EQ(s.field(0).name, "front");
  EXPECT_EQ(s.field(1).type, ValueType::kString);
  EXPECT_EQ(s.FieldIndex("front"), 0);
  EXPECT_EQ(s.FieldIndex("back"), 1);
  EXPECT_FALSE(s.FieldIndex("head").has_value());
}

TEST(Schema, ValidateAcceptsWellFormed) {
  EXPECT_TRUE(InfrontSchema().Validate().ok());
  Schema keyed({{"part", ValueType::kString}, {"weight", ValueType::kInt}},
               {0});
  EXPECT_TRUE(keyed.Validate().ok());
}

TEST(Schema, ValidateRejectsDuplicateFieldNames) {
  Schema s({{"x", ValueType::kInt}, {"x", ValueType::kString}});
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(Schema, ValidateRejectsEmptyFieldName) {
  Schema s({{"", ValueType::kInt}});
  EXPECT_EQ(s.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(Schema, ValidateRejectsBadKeyIndices) {
  Schema out_of_range({{"x", ValueType::kInt}}, {1});
  EXPECT_FALSE(out_of_range.Validate().ok());
  Schema negative({{"x", ValueType::kInt}}, {-1});
  EXPECT_FALSE(negative.Validate().ok());
  Schema duplicate({{"x", ValueType::kInt}, {"y", ValueType::kInt}}, {0, 0});
  EXPECT_FALSE(duplicate.Validate().ok());
}

TEST(Schema, EffectiveKeyDefaultsToAllAttributes) {
  Schema s = InfrontSchema();
  EXPECT_EQ(s.EffectiveKey(), (std::vector<int>{0, 1}));
  EXPECT_TRUE(s.KeyIsAllAttributes());
}

TEST(Schema, DeclaredKeyIsEffective) {
  Schema s({{"part", ValueType::kString}, {"weight", ValueType::kInt}}, {0});
  EXPECT_EQ(s.EffectiveKey(), (std::vector<int>{0}));
  EXPECT_FALSE(s.KeyIsAllAttributes());
}

TEST(Schema, ExplicitFullKeyCountsAsAllAttributes) {
  Schema s({{"a", ValueType::kInt}, {"b", ValueType::kInt}}, {1, 0});
  EXPECT_TRUE(s.KeyIsAllAttributes());
}

TEST(Schema, UnionCompatibilityIsPositional) {
  Schema infront = InfrontSchema();
  Schema ahead({{"head", ValueType::kString}, {"tail", ValueType::kString}});
  // The paper's identity branch `EACH r IN Rel: TRUE` relies on this:
  // infrontrel tuples flow into aheadrel positionally.
  EXPECT_TRUE(infront.UnionCompatible(ahead));
  Schema mixed({{"head", ValueType::kString}, {"n", ValueType::kInt}});
  EXPECT_FALSE(infront.UnionCompatible(mixed));
  Schema unary({{"x", ValueType::kString}});
  EXPECT_FALSE(infront.UnionCompatible(unary));
}

TEST(Schema, EqualityIsStructural) {
  EXPECT_EQ(InfrontSchema(), InfrontSchema());
  Schema keyed({{"front", ValueType::kString}, {"back", ValueType::kString}},
               {0});
  EXPECT_FALSE(InfrontSchema() == keyed);
}

TEST(Schema, ToStringMentionsFieldsAndKey) {
  Schema s({{"part", ValueType::kString}, {"weight", ValueType::kInt}}, {0});
  EXPECT_EQ(s.ToString(),
            "RECORD part: STRING; weight: INTEGER END KEY <part>");
  EXPECT_EQ(InfrontSchema().ToString(),
            "RECORD front: STRING; back: STRING END");
}

}  // namespace
}  // namespace datacon
