#include "ast/printer.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(Printer, Terms) {
  EXPECT_EQ(ToString(*FieldRef("r", "front")), "r.front");
  EXPECT_EQ(ToString(*Int(42)), "42");
  EXPECT_EQ(ToString(*Str("table")), "\"table\"");
  EXPECT_EQ(ToString(*BoolLit(true)), "TRUE");
  EXPECT_EQ(ToString(*Param("Obj")), "Obj");
  EXPECT_EQ(ToString(*Add(FieldRef("s", "number"), Int(1))),
            "(s.number + 1)");
  EXPECT_EQ(ToString(*Arith(ArithOp::kMod, Param("p"), Param("n"))),
            "(p MOD n)");
}

TEST(Printer, Ranges) {
  EXPECT_EQ(ToString(*Rel("Infront")), "Infront");
  EXPECT_EQ(ToString(*Constructed(Rel("Infront"), "ahead")),
            "Infront {ahead}");
  EXPECT_EQ(ToString(*Selected(Rel("Infront"), "hidden_by", {Str("table")})),
            "Infront [hidden_by(\"table\")]");
  // The paper's combined example.
  EXPECT_EQ(ToString(*Constructed(
                Selected(Rel("Infront"), "hidden_by", {Str("table")}),
                "ahead")),
            "Infront [hidden_by(\"table\")] {ahead}");
  EXPECT_EQ(ToString(*Constructed(Rel("Infront"), "ahead", {Rel("Ontop")})),
            "Infront {ahead(Ontop)}");
}

TEST(Printer, ComparePreds) {
  EXPECT_EQ(ToString(*Eq(FieldRef("f", "back"), FieldRef("b", "head"))),
            "f.back = b.head");
  EXPECT_EQ(ToString(*Ne(FieldRef("a", "x"), Int(0))), "a.x # 0");
  EXPECT_EQ(ToString(*Le(Int(1), Param("p"))), "1 <= p");
}

TEST(Printer, BooleanStructure) {
  PredPtr p = And({Eq(FieldRef("a", "x"), Int(1)),
                   Or({Eq(FieldRef("a", "y"), Int(2)),
                       Not(Eq(FieldRef("a", "z"), Int(3)))})});
  EXPECT_EQ(ToString(*p), "a.x = 1 AND (a.y = 2 OR NOT (a.z = 3))");
}

TEST(Printer, Quantifiers) {
  PredPtr p = Some("r1", Rel("Objects"), Eq(FieldRef("r", "front"),
                                            FieldRef("r1", "part")));
  EXPECT_EQ(ToString(*p), "SOME r1 IN Objects (r.front = r1.part)");
  PredPtr all = All("n", Rel("Numbers"), Ne(FieldRef("n", "v"), Int(0)));
  EXPECT_EQ(ToString(*all), "ALL n IN Numbers (n.v # 0)");
}

TEST(Printer, Membership) {
  PredPtr p = In({FieldRef("r", "front"), FieldRef("r", "back")},
                 Constructed(Rel("Rel"), "nonsense"));
  EXPECT_EQ(ToString(*p), "<r.front, r.back> IN Rel {nonsense}");
}

TEST(Printer, IdentityBranch) {
  BranchPtr b = IdentityBranch("r", Rel("Rel"), True());
  EXPECT_EQ(ToString(*b), "EACH r IN Rel: TRUE");
}

TEST(Printer, TargetBranchMatchesPaperNotation) {
  // <f.front, b.back> OF EACH f, b IN Infront: f.back = b.front
  BranchPtr b = MakeBranch(
      {FieldRef("f", "front"), FieldRef("b", "back")},
      {Each("f", Rel("Infront")), Each("b", Rel("Infront"))},
      Eq(FieldRef("f", "back"), FieldRef("b", "front")));
  EXPECT_EQ(ToString(*b),
            "<f.front, b.back> OF EACH f IN Infront, EACH b IN Infront: "
            "f.back = b.front");
}

TEST(Printer, CalcExprUnion) {
  CalcExprPtr e = Union({IdentityBranch("r", Rel("Rel"), True()),
                         IdentityBranch("s", Rel("Other"), True())});
  EXPECT_EQ(ToString(*e), "{EACH r IN Rel: TRUE,\n EACH s IN Other: TRUE}");
}

TEST(Printer, SelectorDecl) {
  auto decl = std::make_shared<SelectorDecl>(
      "hidden_by", FormalRelation{"Rel", "infrontrel"},
      std::vector<FormalScalar>{{"Obj", ValueType::kString}}, "r",
      Eq(FieldRef("r", "front"), Param("Obj")));
  EXPECT_EQ(ToString(*decl),
            "SELECTOR hidden_by (Obj: STRING) FOR Rel: infrontrel;\n"
            "BEGIN EACH r IN Rel: r.front = Obj\nEND hidden_by");
}

TEST(Printer, ConstructorDecl) {
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("f", "front"), FieldRef("b", "tail")},
                  {Each("f", Rel("Rel")),
                   Each("b", Constructed(Rel("Rel"), "ahead"))},
                  Eq(FieldRef("f", "back"), FieldRef("b", "head")))});
  auto decl = std::make_shared<ConstructorDecl>(
      "ahead", FormalRelation{"Rel", "infrontrel"},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{}, "aheadrel",
      body);
  std::string text = ToString(*decl);
  EXPECT_NE(text.find("CONSTRUCTOR ahead FOR Rel: infrontrel: aheadrel;"),
            std::string::npos);
  EXPECT_NE(text.find("EACH b IN Rel {ahead}"), std::string::npos);
  EXPECT_NE(text.find("END ahead"), std::string::npos);
}

TEST(Range, ContainsConstructor) {
  EXPECT_FALSE(Rel("Infront")->ContainsConstructor());
  EXPECT_FALSE(Selected(Rel("Infront"), "s")->ContainsConstructor());
  EXPECT_TRUE(Constructed(Rel("Infront"), "ahead")->ContainsConstructor());
  // Nested: constructor only inside an argument range.
  RangePtr nested = Constructed(Rel("A"), "c", {Constructed(Rel("B"), "d")});
  EXPECT_TRUE(nested->ContainsConstructor());
}

TEST(Range, IsPlain) {
  EXPECT_TRUE(Rel("X")->IsPlain());
  EXPECT_FALSE(Selected(Rel("X"), "s")->IsPlain());
}

}  // namespace
}  // namespace datacon
