#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

std::vector<Token> MustLex(std::string_view source) {
  Result<std::vector<Token>> tokens = Lex(source);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  return tokens.ok() ? tokens.value() : std::vector<Token>{};
}

TEST(Lexer, EmptySourceYieldsEof) {
  std::vector<Token> tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEof);
}

TEST(Lexer, IdentifiersAndKeywords) {
  std::vector<Token> tokens = MustLex("CONSTRUCTOR ahead Infront r_1");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_TRUE(tokens[0].IsKeyword("CONSTRUCTOR"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "ahead");
  EXPECT_EQ(tokens[2].text, "Infront");
  EXPECT_EQ(tokens[3].text, "r_1");
}

TEST(Lexer, KeywordsAreCaseSensitive) {
  std::vector<Token> tokens = MustLex("each EACH");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_TRUE(tokens[1].IsKeyword("EACH"));
}

TEST(Lexer, AnalyzeIsAKeyword) {
  std::vector<Token> tokens = MustLex("EXPLAIN ANALYZE analyze");
  EXPECT_TRUE(tokens[0].IsKeyword("EXPLAIN"));
  EXPECT_TRUE(tokens[1].IsKeyword("ANALYZE"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
}

TEST(Lexer, CheckAndScriptAreKeywords) {
  std::vector<Token> tokens = MustLex("CHECK SCRIPT check script");
  EXPECT_TRUE(tokens[0].IsKeyword("CHECK"));
  EXPECT_TRUE(tokens[1].IsKeyword("SCRIPT"));
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[3].kind, TokenKind::kIdent);
}

TEST(Lexer, IntegerLiterals) {
  std::vector<Token> tokens = MustLex("0 42 100");
  EXPECT_EQ(tokens[0].int_value, 0);
  EXPECT_EQ(tokens[1].int_value, 42);
  EXPECT_EQ(tokens[2].int_value, 100);
}

TEST(Lexer, StringLiterals) {
  std::vector<Token> tokens = MustLex("\"table\" \"\"");
  EXPECT_EQ(tokens[0].kind, TokenKind::kString);
  EXPECT_EQ(tokens[0].text, "table");
  EXPECT_EQ(tokens[1].text, "");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_EQ(Lex("\"abc").status().code(), StatusCode::kParseError);
  EXPECT_EQ(Lex("\"a\nb\"").status().code(), StatusCode::kParseError);
}

TEST(Lexer, Operators) {
  std::vector<Token> tokens = MustLex("< <= > >= = # := : . + - * ( ) [ ] { } , ;");
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  std::vector<TokenKind> expected = {
      TokenKind::kLess,     TokenKind::kLessEq,   TokenKind::kGreater,
      TokenKind::kGreaterEq, TokenKind::kEq,      TokenKind::kHash,
      TokenKind::kAssign,   TokenKind::kColon,    TokenKind::kDot,
      TokenKind::kPlus,     TokenKind::kMinus,    TokenKind::kStar,
      TokenKind::kLParen,   TokenKind::kRParen,   TokenKind::kLBracket,
      TokenKind::kRBracket, TokenKind::kLBrace,   TokenKind::kRBrace,
      TokenKind::kComma,    TokenKind::kSemicolon, TokenKind::kEof};
  EXPECT_EQ(kinds, expected);
}

TEST(Lexer, CommentsAreSkipped) {
  std::vector<Token> tokens = MustLex("a (* comment *) b");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, NestedComments) {
  std::vector<Token> tokens = MustLex("x (* outer (* inner *) still *) y");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].text, "y");
}

TEST(Lexer, UnterminatedCommentFails) {
  EXPECT_EQ(Lex("a (* no end").status().code(), StatusCode::kParseError);
}

TEST(Lexer, ParenNotConfusedWithComment) {
  std::vector<Token> tokens = MustLex("(a)");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLParen);
}

TEST(Lexer, LineAndColumnTracking) {
  std::vector<Token> tokens = MustLex("a\n  bb");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].column, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(Lexer, StrayCharacterFails) {
  EXPECT_EQ(Lex("a ? b").status().code(), StatusCode::kParseError);
  EXPECT_NE(Lex("a ? b").status().message().find("line 1"),
            std::string::npos);
}

TEST(Lexer, PaperConstructorSnippet) {
  // The paper's `ahead` body lexes cleanly.
  std::vector<Token> tokens = MustLex(
      "BEGIN EACH r IN Rel: TRUE, <f.front, b.tail> OF EACH f IN Rel, "
      "EACH b IN Rel {ahead}: f.back = b.head END ahead");
  EXPECT_GT(tokens.size(), 30u);
  EXPECT_TRUE(tokens[0].IsKeyword("BEGIN"));
}

TEST(Lexer, OverflowingIntegerLiteralRejected) {
  EXPECT_EQ(Lex("99999999999999999999999").status().code(),
            StatusCode::kParseError);
  // INT64_MAX still lexes.
  std::vector<Token> tokens = MustLex("9223372036854775807");
  EXPECT_EQ(tokens[0].int_value, INT64_MAX);
}

TEST(IsKeyword, CoversLanguageSurface) {
  for (const char* kw :
       {"TYPE", "VAR", "RELATION", "OF", "RECORD", "END", "SELECTOR",
        "CONSTRUCTOR", "FOR", "BEGIN", "EACH", "IN", "SOME", "ALL", "AND",
        "OR", "NOT", "TRUE", "FALSE", "QUERY", "INSERT", "INTO", "EXPLAIN",
        "DIV", "MOD", "KEY", "CHECK", "SCRIPT"}) {
    EXPECT_TRUE(IsKeyword(kw)) << kw;
  }
  EXPECT_FALSE(IsKeyword("ahead"));
  EXPECT_FALSE(IsKeyword("true"));
}

}  // namespace
}  // namespace datacon
