#include "lang/interpreter.h"

#include <gtest/gtest.h>

#include "common/trace.h"

namespace datacon {
namespace {

constexpr const char* kCadSetup = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;
VAR Ahead: aheadrel;

SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;

INSERT INTO Infront <"vase", "table">, <"table", "chair">, <"chair", "wall">;
)";

TEST(Interpreter, FullCadProgram) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  const Relation& ahead = interp.results()[0].relation;
  // 3 base + (vase,chair),(vase,wall),(table,wall) = 6.
  EXPECT_EQ(ahead.size(), 6u);
  EXPECT_TRUE(ahead.Contains(
      Tuple({Value::String("vase"), Value::String("wall")})));
}

TEST(Interpreter, SelectorQuery) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront [hidden_by(\"table\")];").ok());
  const Relation& hidden = interp.results()[0].relation;
  EXPECT_EQ(hidden.size(), 1u);
  EXPECT_TRUE(hidden.Contains(
      Tuple({Value::String("table"), Value::String("chair")})));
}

TEST(Interpreter, SelectedThenConstructedRange) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  Status s = interp.Execute("QUERY Infront [hidden_by(\"table\")] {ahead};");
  ASSERT_TRUE(s.ok()) << s.ToString();
  // Closure of {(table,chair)} alone is itself.
  EXPECT_EQ(interp.results()[0].relation.size(), 1u);
}

TEST(Interpreter, AssignmentStoresResult) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("Ahead := Infront {ahead};").ok());
  Result<const Relation*> ahead = db.GetRelation("Ahead");
  ASSERT_TRUE(ahead.ok());
  EXPECT_EQ(ahead.value()->size(), 6u);
}

TEST(Interpreter, SelectorGuardedAssignmentRejectsViolations) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  // Every tuple of Infront would need front = "vase"; (table,chair) fails.
  Status s = interp.Execute("Infront [hidden_by(\"vase\")] := Infront;");
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(Interpreter, SelectorGuardedAssignmentAcceptsValid) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  Status s = interp.Execute(
      "Infront [hidden_by(\"vase\")] := Infront [hidden_by(\"vase\")];");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(db.GetRelation("Infront").value()->size(), 1u);
}

TEST(Interpreter, CalcExprQueryWithQuantifier) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  // Objects directly in front of something that is itself in front of
  // something: vase and table.
  ASSERT_TRUE(interp
                  .Execute("QUERY {EACH r IN Infront: SOME s IN Infront "
                           "(r.back = s.front)};")
                  .ok());
  EXPECT_EQ(interp.results()[0].relation.size(), 2u);
}

TEST(Interpreter, ExplainProducesReport) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("EXPLAIN Infront {ahead};").ok());
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("Infront {ahead}"), std::string::npos);
  EXPECT_NE(text.find("capture rule"), std::string::npos);
}

TEST(Interpreter, ExplainAnalyzeRendersProfileAndResult) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  Status s = interp.Execute("EXPLAIN ANALYZE Infront {ahead};");
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(interp.results().size(), 1u);
  const std::string& text = interp.results()[0].text;
  // The plan part is still there...
  EXPECT_NE(text.find("Infront {ahead}"), std::string::npos);
  // ...followed by the profile tree and the result summary.
  EXPECT_NE(text.find("analyze:"), std::string::npos);
  EXPECT_NE(text.find("evaluation"), std::string::npos);
  EXPECT_NE(text.find("result: 6 tuple(s)"), std::string::npos);
  // Unlike plain EXPLAIN, the query was actually evaluated.
  EXPECT_EQ(interp.results()[0].relation.size(), 6u);
  // EXPLAIN ANALYZE forces profiling per query; it must not leave the
  // session-wide setting on.
  EXPECT_FALSE(db.options().eval.profile);
}

TEST(Interpreter, ExplainAnalyzeShowsFixpointRounds) {
  // A doubly-recursive constructor dodges the transitive-closure capture
  // rule, so the generic semi-naive engine runs and the profile must list
  // each round with its delta size.
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(R"(
TYPE t = RELATION OF RECORD a, b: INTEGER END;
VAR E: t;
CONSTRUCTOR tc2 FOR Rel: t (): t;
BEGIN EACH r IN Rel: TRUE,
      <x.a, y.b> OF EACH x IN Rel {tc2}, EACH y IN Rel {tc2}: x.b = y.a
END tc2;
INSERT INTO E <1, 2>, <2, 3>, <3, 4>;
)").ok());
  Status s = interp.Execute("EXPLAIN ANALYZE E {tc2};");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const std::string& text = interp.results()[0].text;
  EXPECT_NE(text.find("component [E {tc2}] (semi-naive)"), std::string::npos)
      << text;
  EXPECT_NE(text.find("rounds=4"), std::string::npos) << text;
  EXPECT_NE(text.find("round 1 (seed)"), std::string::npos) << text;
  EXPECT_NE(text.find("delta[E {tc2}]=2"), std::string::npos) << text;
  EXPECT_NE(text.find("result: 6 tuple(s), 4 round(s)"), std::string::npos)
      << text;
}

TEST(Interpreter, PragmaProfileTogglesCollection) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  EXPECT_FALSE(db.options().eval.profile);
  ASSERT_TRUE(interp.Execute("PRAGMA PROFILE = ON;").ok());
  EXPECT_TRUE(db.options().eval.profile);
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_NE(db.last_profile(), nullptr);
  ASSERT_TRUE(interp.Execute("PRAGMA PROFILE = OFF;").ok());
  EXPECT_FALSE(db.options().eval.profile);
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  EXPECT_EQ(db.last_profile(), nullptr);
}

TEST(Interpreter, PragmaProfileRejectsOtherIntegers) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(interp.Execute("PRAGMA PROFILE = 2;").code(),
            StatusCode::kInvalidArgument);
}

TEST(Interpreter, SymbolsPersistAcrossExecuteCalls) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("TYPE t = RELATION OF RECORD x: INTEGER END;")
                  .ok());
  ASSERT_TRUE(interp.Execute("VAR R: t;").ok());
  ASSERT_TRUE(interp.Execute("INSERT INTO R <1>, <2>;").ok());
  ASSERT_TRUE(interp.Execute("QUERY R;").ok());
  EXPECT_EQ(interp.results()[0].relation.size(), 2u);
}

TEST(Interpreter, ScalarAliasPersists) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("TYPE name = STRING;").ok());
  ASSERT_TRUE(
      interp.Execute("TYPE t = RELATION OF RECORD n: name END;").ok());
  ASSERT_TRUE(interp.Execute("VAR R: t; INSERT INTO R <\"x\">;").ok());
}

TEST(Interpreter, MutualRecursionViaAdjacentDeclarations) {
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(R"(
TYPE infrontrel = RELATION OF RECORD front, back: STRING END;
TYPE ontoprel = RELATION OF RECORD top, base: STRING END;
TYPE aheadrel = RELATION OF RECORD head, tail: STRING END;
TYPE aboverel = RELATION OF RECORD high, low: STRING END;
VAR Infront: infrontrel;
VAR Ontop: ontoprel;

CONSTRUCTOR ahead FOR Rel: infrontrel (OT: ontoprel): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <r.front, ah.tail> OF EACH r IN Rel,
        EACH ah IN Rel {ahead(OT)}: r.back = ah.head,
      <r.front, ab.low> OF EACH r IN Rel,
        EACH ab IN OT {above(Rel)}: r.back = ab.high
END ahead;

CONSTRUCTOR above FOR Rel: ontoprel (IF: infrontrel): aboverel;
BEGIN EACH r IN Rel: TRUE,
      <r.top, ab.low> OF EACH r IN Rel,
        EACH ab IN Rel {above(IF)}: r.base = ab.high,
      <r.top, ah.tail> OF EACH r IN Rel,
        EACH ah IN IF {ahead(Rel)}: r.base = ah.head
END above;

INSERT INTO Ontop <"vase", "table">;
INSERT INTO Infront <"table", "chair">;
QUERY Ontop {above(Infront)};
)");
  ASSERT_TRUE(s.ok()) << s.ToString();
  const Relation& above = interp.results()[0].relation;
  EXPECT_TRUE(above.Contains(
      Tuple({Value::String("vase"), Value::String("chair")})));
}

TEST(Interpreter, ErrorsSurfaceFromDefinitions) {
  Database db;
  Interpreter interp(&db);
  // Unknown type in VAR.
  EXPECT_EQ(interp.Execute("VAR R: nosuchtype;").code(),
            StatusCode::kNotFound);
}

TEST(Interpreter, PositivityViolationSurfaceFromScript) {
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(R"(
TYPE cardrel = RELATION OF RECORD number: INTEGER END;
VAR Base: cardrel;
CONSTRUCTOR strange FOR Baserel: cardrel (): cardrel;
BEGIN EACH r IN Baserel:
  NOT SOME s IN Baserel {strange} (r.number = s.number + 1)
END strange;
)");
  EXPECT_EQ(s.code(), StatusCode::kPositivityViolation);
}

TEST(Interpreter, InsertKeyViolation) {
  Database db;
  Interpreter interp(&db);
  Status s = interp.Execute(R"(
TYPE objectrel = RELATION KEY <part> OF RECORD part: STRING; w: INTEGER END;
VAR Objects: objectrel;
INSERT INTO Objects <"vase", 1>, <"vase", 2>;
)");
  EXPECT_EQ(s.code(), StatusCode::kKeyViolation);
}

TEST(Interpreter, ClearResults) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront;").ok());
  EXPECT_EQ(interp.results().size(), 1u);
  interp.ClearResults();
  EXPECT_TRUE(interp.results().empty());
}

TEST(Interpreter, PragmaThreadsSetsExecutionKnob) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(db.options().eval.exec.num_threads, 1u);
  ASSERT_TRUE(interp.Execute("PRAGMA THREADS = 4;").ok());
  EXPECT_EQ(db.options().eval.exec.num_threads, 4u);
  // 0 = hardware concurrency.
  ASSERT_TRUE(interp.Execute("PRAGMA THREADS = 0;").ok());
  EXPECT_EQ(db.options().eval.exec.num_threads, 0u);
}

TEST(Interpreter, PragmaThreadsAffectsQueries) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("PRAGMA THREADS = 4; QUERY Infront {ahead};").ok());
  EXPECT_EQ(interp.results()[0].relation.size(), 6u);
}

TEST(Interpreter, UnknownPragmaIsRejected) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(interp.Execute("PRAGMA FROBNICATE = 1;").code(),
            StatusCode::kUnsupported);
  EXPECT_FALSE(interp.Execute("PRAGMA THREADS = -2;").ok());
}

TEST(Interpreter, CheckScriptOnCleanCatalogReportsNothing) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("CHECK SCRIPT;").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  EXPECT_EQ(interp.results()[0].text, "CHECK SCRIPT: no diagnostics\n");
  EXPECT_TRUE(interp.diagnostics().empty());
}

TEST(Interpreter, CheckNamedObjectReportsFindings) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  // Legal but sloppy: the parameter is never referenced.
  ASSERT_TRUE(interp
                  .Execute("SELECTOR shady (P: parttype) FOR Rel: infrontrel;\n"
                           "BEGIN EACH r IN Rel: r.front = \"x\" END shady;")
                  .ok());
  ASSERT_TRUE(interp.Execute("CHECK shady;").ok());
  ASSERT_EQ(interp.results().size(), 1u);
  EXPECT_NE(interp.results()[0].text.find("CHECK shady:\n"), std::string::npos);
  EXPECT_NE(interp.results()[0].text.find("W202"), std::string::npos);
  ASSERT_FALSE(interp.diagnostics().empty());
  EXPECT_EQ(interp.diagnostics()[0].code, "W202");
}

TEST(Interpreter, CheckUnknownNameFails) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(interp.Execute("CHECK nope;").code(), StatusCode::kNotFound);
}

TEST(Interpreter, PragmaLintTogglesDefinitionLint) {
  Database db;
  Interpreter interp(&db);
  EXPECT_FALSE(interp.lint_enabled());
  ASSERT_TRUE(interp.Execute("PRAGMA LINT = ON;").ok());
  EXPECT_TRUE(interp.lint_enabled());
  ASSERT_TRUE(interp.Execute("PRAGMA LINT = OFF;").ok());
  EXPECT_FALSE(interp.lint_enabled());
  EXPECT_EQ(interp.Execute("PRAGMA LINT = 2;").code(),
            StatusCode::kInvalidArgument);
}

TEST(Interpreter, PragmaLintRejectsUnsafeDefinitionAndLeavesCatalogUnchanged) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("PRAGMA LINT = ON;").ok());
  // `q` is bound by no range: E110 rejects the definition.
  Status s = interp.Execute(
      "SELECTOR bad (P: parttype) FOR Rel: infrontrel;\n"
      "BEGIN EACH r IN Rel: q.front = P END bad;");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_NE(s.message().find("rejected by lint"), std::string::npos);
  EXPECT_NE(s.message().find("E110"), std::string::npos);
  // The catalog must be exactly as before the failed DEFINE.
  EXPECT_FALSE(db.catalog().LookupSelector("bad").ok());
  // The findings still reach the diagnostics channel.
  bool has_e110 = false;
  for (const Diagnostic& d : interp.diagnostics()) {
    if (d.code == kDiagUnsafeVariable) has_e110 = true;
  }
  EXPECT_TRUE(has_e110);
}

TEST(Interpreter, PragmaLintRejectsWholeConstructorGroup) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("PRAGMA LINT = ON;").ok());
  // The second constructor of the group has an unbound target variable;
  // the error must reject the whole group, including the clean first one.
  Status s = interp.Execute(
      "CONSTRUCTOR good FOR Rel: infrontrel (): infrontrel;\n"
      "BEGIN EACH r IN Rel: TRUE\n"
      "END good;\n"
      "CONSTRUCTOR bad FOR Rel: infrontrel (): infrontrel;\n"
      "BEGIN <z.front, r.back> OF EACH r IN Rel: TRUE\n"
      "END bad;\n");
  EXPECT_EQ(s.code(), StatusCode::kTypeError);
  EXPECT_FALSE(db.catalog().LookupConstructor("good").ok());
  EXPECT_FALSE(db.catalog().LookupConstructor("bad").ok());
}

TEST(Interpreter, PragmaLintWarningsDoNotReject) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("PRAGMA LINT = ON;").ok());
  Status s = interp.Execute(
      "SELECTOR shady (P: parttype) FOR Rel: infrontrel;\n"
      "BEGIN EACH r IN Rel: r.front = \"x\" END shady;");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(db.catalog().LookupSelector("shady").ok());
  ASSERT_FALSE(interp.diagnostics().empty());
  EXPECT_EQ(interp.diagnostics()[0].code, "W202");
}

TEST(Interpreter, PragmaTraceTogglesTheRecorder) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute("PRAGMA TRACE = ON;").ok());
  EXPECT_TRUE(TraceRecorder::Enabled());
  ASSERT_TRUE(interp.Execute("PRAGMA TRACE = OFF;").ok());
  EXPECT_FALSE(TraceRecorder::Enabled());
  EXPECT_EQ(interp.Execute("PRAGMA TRACE = 7;").code(),
            StatusCode::kInvalidArgument);
  TraceRecorder::Global().Clear();
}

TEST(Interpreter, PragmaSlowQueryMsSetsThreshold) {
  Database db;
  Interpreter interp(&db);
  EXPECT_EQ(db.slow_query_log().threshold_ns(), 0);
  ASSERT_TRUE(interp.Execute("PRAGMA SLOW_QUERY_MS = 250;").ok());
  EXPECT_EQ(db.slow_query_log().threshold_ns(), 250'000'000);
  ASSERT_TRUE(interp.Execute("PRAGMA SLOW_QUERY_MS = 0;").ok());
  EXPECT_EQ(db.slow_query_log().threshold_ns(), 0);
  EXPECT_FALSE(interp.Execute("PRAGMA SLOW_QUERY_MS = -3;").ok());
}

TEST(Interpreter, ShowMetricsAndSlowlogRenderText) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  ASSERT_TRUE(interp.Execute("QUERY Infront {ahead};").ok());
  interp.ClearResults();
  ASSERT_TRUE(interp.Execute("SHOW METRICS; SHOW SLOWLOG;").ok());
  ASSERT_EQ(interp.results().size(), 2u);
  EXPECT_NE(interp.results()[0].text.find("METRICS:"), std::string::npos);
  // The query above fed the global latency histogram.
  EXPECT_NE(interp.results()[0].text.find("query.latency_ns"),
            std::string::npos);
  EXPECT_NE(interp.results()[1].text.find("SLOWLOG:"), std::string::npos);
  // Threshold 0 admits everything, so the query shows up in the slow log.
  EXPECT_NE(interp.results()[1].text.find("{ahead}"), std::string::npos);
}

TEST(Interpreter, PragmaLintOffSkipsDefinitionLint) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  // Lint disabled: even an unsafe definition is only caught by the
  // level-1 checks, which do not implement the range-restriction rule.
  Status s = interp.Execute(
      "SELECTOR shady (P: parttype) FOR Rel: infrontrel;\n"
      "BEGIN EACH r IN Rel: r.front = \"x\" END shady;");
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_TRUE(interp.diagnostics().empty());
}

}  // namespace
}  // namespace datacon
