#include "lang/parser.h"

#include <gtest/gtest.h>

#include "ast/printer.h"

namespace datacon {
namespace {

Script MustParse(std::string_view source, const SymbolSeed* seed = nullptr) {
  Result<Script> script = ParseScript(source, seed);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  return script.ok() ? std::move(script).value() : Script{};
}

SymbolSeed CadSeed() {
  SymbolSeed seed;
  seed.scalar_types["parttype"] = ValueType::kString;
  seed.relation_types = {"infrontrel", "ontoprel", "aheadrel", "aboverel"};
  seed.relation_names = {"Infront", "Ontop"};
  return seed;
}

TEST(Parser, RelationTypeDecl) {
  Script s = MustParse(
      "TYPE infrontrel = RELATION OF RECORD front, back: STRING END;");
  ASSERT_EQ(s.stmts.size(), 1u);
  const auto& decl = std::get<TypeDeclStmt>(s.stmts[0]);
  EXPECT_TRUE(decl.is_relation);
  EXPECT_EQ(decl.schema.arity(), 2);
  EXPECT_EQ(decl.schema.field(0).name, "front");
  EXPECT_EQ(decl.schema.field(1).type, ValueType::kString);
  EXPECT_TRUE(decl.schema.declared_key().empty());
}

TEST(Parser, RelationTypeWithKey) {
  Script s = MustParse(
      "TYPE objectrel = RELATION KEY <part> OF RECORD part: STRING; "
      "weight: INTEGER END;");
  const auto& decl = std::get<TypeDeclStmt>(s.stmts[0]);
  EXPECT_EQ(decl.schema.declared_key(), (std::vector<int>{0}));
}

TEST(Parser, ScalarAlias) {
  Script s = MustParse("TYPE parttype = STRING; TYPE partid = CARDINAL;");
  EXPECT_EQ(std::get<TypeDeclStmt>(s.stmts[0]).scalar, ValueType::kString);
  EXPECT_EQ(std::get<TypeDeclStmt>(s.stmts[1]).scalar, ValueType::kInt);
}

TEST(Parser, AliasUsableInLaterDecl) {
  Script s = MustParse(
      "TYPE parttype = STRING;"
      "TYPE infrontrel = RELATION OF RECORD front, back: parttype END;");
  const auto& decl = std::get<TypeDeclStmt>(s.stmts[1]);
  EXPECT_EQ(decl.schema.field(0).type, ValueType::kString);
}

TEST(Parser, VarDecl) {
  Script s = MustParse(
      "TYPE t = RELATION OF RECORD x: INTEGER END; VAR R: t;");
  const auto& decl = std::get<VarDeclStmt>(s.stmts[1]);
  EXPECT_EQ(decl.name, "R");
  EXPECT_EQ(decl.type_name, "t");
}

TEST(Parser, SelectorDecl) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;\n"
      "BEGIN EACH r IN Rel: r.front = Obj END hidden_by;",
      &seed);
  const auto& decl = *std::get<SelectorStmt>(s.stmts[0]).decl;
  EXPECT_EQ(decl.name(), "hidden_by");
  EXPECT_EQ(decl.base().name, "Rel");
  EXPECT_EQ(decl.base().type_name, "infrontrel");
  ASSERT_EQ(decl.params().size(), 1u);
  EXPECT_EQ(decl.params()[0].name, "Obj");
  EXPECT_EQ(decl.params()[0].type, ValueType::kString);
  EXPECT_EQ(ToString(*decl.pred()), "r.front = Obj");
}

TEST(Parser, SelectorEndNameMustMatch) {
  SymbolSeed seed = CadSeed();
  EXPECT_EQ(ParseScript("SELECTOR s FOR Rel: infrontrel;\n"
                        "BEGIN EACH r IN Rel: TRUE END wrong;",
                        &seed)
                .status()
                .code(),
            StatusCode::kParseError);
}

TEST(Parser, ConstructorAheadVerbatim) {
  // Section 3.1's simple `ahead`, almost verbatim.
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.front, b.tail> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {ahead}: f.back = b.head\n"
      "END ahead;",
      &seed);
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[0]).decl;
  EXPECT_EQ(decl.name(), "ahead");
  EXPECT_EQ(decl.result_type_name(), "aheadrel");
  ASSERT_EQ(decl.body()->branches().size(), 2u);
  EXPECT_FALSE(decl.body()->branches()[0]->targets().has_value());
  EXPECT_EQ(ToString(*decl.body()->branches()[1]),
            "<f.front, b.tail> OF EACH f IN Rel, EACH b IN Rel {ahead}: "
            "f.back = b.head");
}

TEST(Parser, MutuallyRecursiveConstructorsWithParams) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "CONSTRUCTOR above FOR Rel: ontoprel (Infront_p: infrontrel): aboverel;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "  <r.top, ab.low> OF EACH r IN Rel,\n"
      "    EACH ab IN Rel {above(Infront_p)}: r.base = ab.high,\n"
      "  <r.top, ah.tail> OF EACH r IN Rel,\n"
      "    EACH ah IN Infront_p {ahead(Rel)}: r.base = ah.head\n"
      "END above;",
      &seed);
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[0]).decl;
  ASSERT_EQ(decl.rel_params().size(), 1u);
  EXPECT_EQ(decl.rel_params()[0].name, "Infront_p");
  const Branch& third = *decl.body()->branches()[2];
  EXPECT_EQ(ToString(*third.bindings()[1].range), "Infront_p {ahead(Rel)}");
}

TEST(Parser, ConstructorScalarParam) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "CONSTRUCTOR near FOR Rel: infrontrel (Obj: parttype): aheadrel;\n"
      "BEGIN EACH r IN Rel: r.front = Obj END near;",
      &seed);
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[0]).decl;
  EXPECT_TRUE(decl.rel_params().empty());
  ASSERT_EQ(decl.scalar_params().size(), 1u);
  EXPECT_EQ(decl.scalar_params()[0].type, ValueType::kString);
}

TEST(Parser, NonsenseConstructorParses) {
  // Section 3.3's `nonsense` — syntactically fine, semantically rejected
  // later by the positivity check.
  SymbolSeed seed;
  seed.relation_types = {"anytype", "anyothertype"};
  Script s = MustParse(
      "CONSTRUCTOR nonsense FOR Rel: anytype (): anyothertype;\n"
      "BEGIN EACH r IN Rel: NOT (<r.x> IN Rel {nonsense}) END nonsense;",
      &seed);
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[0]).decl;
  EXPECT_EQ(ToString(*decl.body()->branches()[0]->pred()),
            "NOT (<r.x> IN Rel {nonsense})");
}

TEST(Parser, StrangeConstructorParses) {
  // Section 3.3's `strange`, with arithmetic in the quantifier body.
  SymbolSeed seed;
  seed.relation_types = {"cardrel"};
  Script s = MustParse(
      "CONSTRUCTOR strange FOR Baserel: cardrel (): cardrel;\n"
      "BEGIN EACH r IN Baserel:\n"
      "  NOT SOME s IN Baserel {strange} (r.number = s.number + 1)\n"
      "END strange;",
      &seed);
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[0]).decl;
  EXPECT_EQ(ToString(*decl.body()->branches()[0]->pred()),
            "NOT (SOME s IN Baserel {strange} (r.number = (s.number + 1)))");
}

TEST(Parser, InsertStatement) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "INSERT INTO Infront <\"vase\", \"table\">, <\"table\", \"chair\">;",
      &seed);
  const auto& stmt = std::get<InsertStmt>(s.stmts[0]);
  EXPECT_EQ(stmt.relation, "Infront");
  ASSERT_EQ(stmt.tuples.size(), 2u);
  EXPECT_EQ(stmt.tuples[0].value(0), Value::String("vase"));
}

TEST(Parser, InsertNegativeInteger) {
  SymbolSeed seed;
  seed.relation_names = {"N"};
  Script s = MustParse("INSERT INTO N <-5, 3>;", &seed);
  EXPECT_EQ(std::get<InsertStmt>(s.stmts[0]).tuples[0].value(0),
            Value::Int(-5));
}

TEST(Parser, QueryRange) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse("QUERY Infront [hidden_by(\"table\")] {ahead};", &seed);
  const auto& stmt = std::get<QueryStmt>(s.stmts[0]);
  ASSERT_NE(stmt.value.range, nullptr);
  EXPECT_EQ(ToString(*stmt.value.range),
            "Infront [hidden_by(\"table\")] {ahead}");
}

TEST(Parser, QueryCalcExpr) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "QUERY {EACH r IN Infront: TRUE, <f.front, b.back> OF "
      "EACH f IN Infront, EACH b IN Infront: f.back = b.front};",
      &seed);
  const auto& stmt = std::get<QueryStmt>(s.stmts[0]);
  ASSERT_NE(stmt.value.expr, nullptr);
  EXPECT_EQ(stmt.value.expr->branches().size(), 2u);
}

TEST(Parser, AssignStatement) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse("Ontop := Infront {ahead};", &seed);
  const auto& stmt = std::get<AssignStmt>(s.stmts[0]);
  EXPECT_EQ(stmt.relation, "Ontop");
  EXPECT_FALSE(stmt.selector.has_value());
}

TEST(Parser, AssignThroughSelector) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse("Infront [hidden_by(\"x\")] := Infront;", &seed);
  const auto& stmt = std::get<AssignStmt>(s.stmts[0]);
  ASSERT_TRUE(stmt.selector.has_value());
  EXPECT_EQ(*stmt.selector, "hidden_by");
  ASSERT_EQ(stmt.selector_args.size(), 1u);
  EXPECT_EQ(stmt.selector_args[0], Value::String("x"));
}

TEST(Parser, ExplainStatement) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse("EXPLAIN Infront {ahead};", &seed);
  const auto& stmt = std::get<ExplainStmt>(s.stmts[0]);
  EXPECT_EQ(ToString(*stmt.range), "Infront {ahead}");
  EXPECT_FALSE(stmt.analyze);
}

TEST(Parser, ExplainAnalyzeStatement) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse("EXPLAIN ANALYZE Infront {ahead};", &seed);
  const auto& stmt = std::get<ExplainStmt>(s.stmts[0]);
  EXPECT_EQ(ToString(*stmt.range), "Infront {ahead}");
  EXPECT_TRUE(stmt.analyze);
}

TEST(Parser, PragmaAcceptsIntegerAndOnOff) {
  Script s = MustParse(
      "PRAGMA THREADS = 4; PRAGMA PROFILE = ON; PRAGMA PROFILE = OFF;");
  ASSERT_EQ(s.stmts.size(), 3u);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[0]).name, "THREADS");
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[0]).value, 4);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[1]).name, "PROFILE");
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[1]).value, 1);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[2]).value, 0);
}

TEST(Parser, PragmaRejectsOtherValues) {
  EXPECT_EQ(ParseScript("PRAGMA PROFILE = maybe;").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseScript("PRAGMA PROFILE = \"ON\";").status().code(),
            StatusCode::kParseError);
}

TEST(Parser, QuantifierPredicates) {
  SymbolSeed seed = CadSeed();
  Script s = MustParse(
      "QUERY {EACH r IN Infront: SOME o IN Ontop (r.front = o.top) AND "
      "NOT ALL o2 IN Ontop (o2.base # r.back)};",
      &seed);
  const Branch& b = *std::get<QueryStmt>(s.stmts[0]).value.expr->branches()[0];
  EXPECT_EQ(ToString(*b.pred()),
            "SOME o IN Ontop (r.front = o.top) AND NOT (ALL o2 IN Ontop "
            "(o2.base # r.back))");
}

TEST(Parser, ParenthesizedPredicatesAndTerms) {
  SymbolSeed seed;
  seed.relation_names = {"N"};
  Script s = MustParse(
      "QUERY {EACH r IN N: (r.x = 1 OR r.x = 2) AND (r.y + 1) * 2 = 6};",
      &seed);
  const Branch& b = *std::get<QueryStmt>(s.stmts[0]).value.expr->branches()[0];
  EXPECT_EQ(ToString(*b.pred()),
            "(r.x = 1 OR r.x = 2) AND ((r.y + 1) * 2) = 6");
}

TEST(Parser, OperatorPrecedence) {
  SymbolSeed seed;
  seed.relation_names = {"N"};
  Script s = MustParse("QUERY {EACH r IN N: r.x + 2 * 3 = 7};", &seed);
  const Branch& b = *std::get<QueryStmt>(s.stmts[0]).value.expr->branches()[0];
  EXPECT_EQ(ToString(*b.pred()), "(r.x + (2 * 3)) = 7");
}

TEST(Parser, ErrorsCarryPosition) {
  Status s = ParseScript("TYPE = RELATION;").status();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(Parser, MissingSemicolonFails) {
  EXPECT_EQ(ParseScript("TYPE t = STRING").status().code(),
            StatusCode::kParseError);
}

TEST(Parser, UnknownStatementFails) {
  EXPECT_EQ(ParseScript("FROBNICATE x;").status().code(),
            StatusCode::kParseError);
}

TEST(Parser, CheckStatements) {
  Script s = MustParse("CHECK ahead;\nCHECK SCRIPT;");
  ASSERT_EQ(s.stmts.size(), 2u);
  const auto& named = std::get<CheckStmt>(s.stmts[0]);
  ASSERT_TRUE(named.name.has_value());
  EXPECT_EQ(*named.name, "ahead");
  EXPECT_EQ(named.loc, (SourceLoc{1, 1}));
  const auto& whole = std::get<CheckStmt>(s.stmts[1]);
  EXPECT_FALSE(whole.name.has_value());
  EXPECT_EQ(whole.loc, (SourceLoc{2, 1}));
}

TEST(Parser, CheckWithoutNameFails) {
  EXPECT_EQ(ParseScript("CHECK ;").status().code(), StatusCode::kParseError);
}

TEST(Parser, PragmaLintAcceptsOnOff) {
  Script s = MustParse("PRAGMA LINT = ON;\nPRAGMA LINT = OFF;");
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[0]).value, 1);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[1]).value, 0);
}

TEST(Parser, PragmaTraceAndSlowQueryMs) {
  Script s = MustParse(
      "PRAGMA TRACE = ON; PRAGMA TRACE = OFF; PRAGMA SLOW_QUERY_MS = 250;");
  ASSERT_EQ(s.stmts.size(), 3u);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[0]).name, "TRACE");
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[0]).value, 1);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[1]).value, 0);
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[2]).name, "SLOW_QUERY_MS");
  EXPECT_EQ(std::get<PragmaStmt>(s.stmts[2]).value, 250);
}

TEST(Parser, ShowMetricsAndSlowlog) {
  Script s = MustParse("SHOW METRICS;\nSHOW SLOWLOG;");
  ASSERT_EQ(s.stmts.size(), 2u);
  EXPECT_EQ(std::get<ShowStmt>(s.stmts[0]).what, ShowStmt::What::kMetrics);
  EXPECT_EQ(std::get<ShowStmt>(s.stmts[1]).what, ShowStmt::What::kSlowLog);
}

TEST(Parser, ShowRejectsUnknownSubject) {
  EXPECT_EQ(ParseScript("SHOW TABLES;").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ParseScript("SHOW;").status().code(), StatusCode::kParseError);
}

TEST(Parser, StatementLocsPointAtLeadingToken) {
  Script s = MustParse(
      "TYPE t = RELATION OF RECORD a, b: INTEGER END;\n"
      "VAR E: t;\n"
      "INSERT INTO E <1, 2>;\n"
      "QUERY E;\n");
  EXPECT_EQ(std::get<InsertStmt>(s.stmts[2]).loc, (SourceLoc{3, 1}));
  EXPECT_EQ(std::get<QueryStmt>(s.stmts[3]).loc, (SourceLoc{4, 1}));
}

TEST(Parser, BranchAndBindingLocs) {
  Script s = MustParse(
      "TYPE t = RELATION OF RECORD a, b: INTEGER END;\n"
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {c}: f.b = b.a\n"
      "END c;\n");
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[1]).decl;
  EXPECT_EQ(decl.loc(), (SourceLoc{2, 1}));
  const Branch& first = *decl.body()->branches()[0];
  EXPECT_EQ(first.loc(), (SourceLoc{3, 7}));
  EXPECT_EQ(first.bindings()[0].loc, (SourceLoc{3, 7}));
  const Branch& second = *decl.body()->branches()[1];
  EXPECT_EQ(second.loc(), (SourceLoc{4, 7}));
  EXPECT_EQ(second.bindings()[0].loc, (SourceLoc{4, 21}));
  EXPECT_EQ(second.bindings()[1].loc, (SourceLoc{5, 7}));
}

TEST(Parser, SymbolsAccumulateWithinOneSource) {
  // The relation variable declared mid-script is visible to the later
  // constructor argument classification.
  Script s = MustParse(
      "TYPE t = RELATION OF RECORD a, b: INTEGER END;"
      "VAR R: t;"
      "CONSTRUCTOR c FOR Rel: t (P: t): t;"
      "BEGIN EACH r IN Rel: TRUE, EACH x IN P {c(R)}: TRUE END c;");
  const auto& decl = *std::get<ConstructorStmt>(s.stmts[2]).decl;
  const Branch& second = *decl.body()->branches()[1];
  ASSERT_EQ(second.bindings()[0].range->apps().size(), 1u);
  EXPECT_EQ(second.bindings()[0].range->apps()[0].range_args.size(), 1u);
}

}  // namespace
}  // namespace datacon
