#include "prolog/translate.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

class TranslateTest : public ::testing::Test {
 protected:
  HornProgram Translate(Database* db, const RangePtr& range) {
    ApplicationGraph graph(&db->catalog());
    Result<int> root = graph.AddRootRange(*range);
    EXPECT_TRUE(root.ok()) << root.status().ToString();
    Result<HornProgram> program =
        TranslateApplicationGraph(graph, db->catalog());
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program.ok() ? std::move(program).value() : HornProgram{};
  }
};

TEST_F(TranslateTest, ClosureBecomesTwoClauses) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(3)).ok());
  HornProgram program = Translate(&db, Constructed(Rel("g_E"), "g_tc"));
  ASSERT_EQ(program.clauses.size(), 2u);
  // Base clause: tc(X, Y) :- E(X, Y).
  const Clause& base = program.clauses[0];
  EXPECT_EQ(base.head.predicate, "g_E {g_tc}");
  ASSERT_EQ(base.body.size(), 1u);
  EXPECT_EQ(base.body[0].predicate, "g_E");
  // The head variables are exactly the body variables.
  EXPECT_EQ(base.head.args[0].var, base.body[0].args[0].var);
  // Step clause: tc(X, Z) :- E(X, Y), tc(Y, Z) — the join equality was
  // compiled into a shared variable.
  const Clause& step = program.clauses[1];
  ASSERT_EQ(step.body.size(), 2u);
  EXPECT_EQ(step.body[0].predicate, "g_E");
  EXPECT_EQ(step.body[1].predicate, "g_E {g_tc}");
  EXPECT_EQ(step.body[0].args[1].var, step.body[1].args[0].var);
  EXPECT_TRUE(step.builtins.empty());
}

TEST_F(TranslateTest, LiteralEqualityBecomesConstant) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"), Eq(FieldRef("r", "src"), Int(7)))});
  ASSERT_TRUE(db.DefineConstructor(std::make_shared<ConstructorDecl>(
                     "sel7", FormalRelation{"Rel", "edge"},
                     std::vector<FormalRelation>{},
                     std::vector<FormalScalar>{}, "edge", body))
                  .ok());
  HornProgram program = Translate(&db, Constructed(Rel("E"), "sel7"));
  ASSERT_EQ(program.clauses.size(), 1u);
  const Clause& clause = program.clauses[0];
  EXPECT_EQ(clause.body[0].args[0].kind, PrologTerm::Kind::kConst);
  EXPECT_EQ(clause.body[0].args[0].constant, Value::Int(7));
  EXPECT_EQ(clause.head.args[0].kind, PrologTerm::Kind::kConst);
}

TEST_F(TranslateTest, NonEqualityBecomesBuiltin) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"), Lt(FieldRef("r", "src"), FieldRef("r", "dst")))});
  ASSERT_TRUE(db.DefineConstructor(std::make_shared<ConstructorDecl>(
                     "up", FormalRelation{"Rel", "edge"},
                     std::vector<FormalRelation>{},
                     std::vector<FormalScalar>{}, "edge", body))
                  .ok());
  HornProgram program = Translate(&db, Constructed(Rel("E"), "up"));
  ASSERT_EQ(program.clauses.size(), 1u);
  ASSERT_EQ(program.clauses[0].builtins.size(), 1u);
  EXPECT_EQ(program.clauses[0].builtins[0].op, CompareOp::kLt);
}

TEST_F(TranslateTest, ExistentialBecomesBodyAtom) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      Some("s", Rel("Rel"), Eq(FieldRef("r", "dst"), FieldRef("s", "src"))))});
  ASSERT_TRUE(db.DefineConstructor(std::make_shared<ConstructorDecl>(
                     "haslink", FormalRelation{"Rel", "edge"},
                     std::vector<FormalRelation>{},
                     std::vector<FormalScalar>{}, "edge", body))
                  .ok());
  HornProgram program = Translate(&db, Constructed(Rel("E"), "haslink"));
  ASSERT_EQ(program.clauses.size(), 1u);
  EXPECT_EQ(program.clauses[0].body.size(), 2u);
}

TEST_F(TranslateTest, ContradictoryConstantsDropClause) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  auto body = Union(
      {IdentityBranch("r", Rel("Rel"),
                      And({Eq(FieldRef("r", "src"), Int(1)),
                           Eq(FieldRef("r", "src"), Int(2))})),
       IdentityBranch("q", Rel("Rel"), True())});
  ASSERT_TRUE(db.DefineConstructor(std::make_shared<ConstructorDecl>(
                     "contradict", FormalRelation{"Rel", "edge"},
                     std::vector<FormalRelation>{},
                     std::vector<FormalScalar>{}, "edge", body))
                  .ok());
  HornProgram program = Translate(&db, Constructed(Rel("E"), "contradict"));
  // The unsatisfiable branch vanishes; only the identity clause remains.
  EXPECT_EQ(program.clauses.size(), 1u);
}

TEST_F(TranslateTest, NegationIsOutsideTheFragment) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"), Not(Eq(FieldRef("r", "src"), Int(1))))});
  ASSERT_TRUE(db.DefineConstructor(std::make_shared<ConstructorDecl>(
                     "neg", FormalRelation{"Rel", "edge"},
                     std::vector<FormalRelation>{},
                     std::vector<FormalScalar>{}, "edge", body))
                  .ok());
  ApplicationGraph graph(&db.catalog());
  ASSERT_TRUE(graph.AddRootRange(*Constructed(Rel("E"), "neg")).ok());
  EXPECT_EQ(TranslateApplicationGraph(graph, db.catalog()).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(TranslateTest, MutualRecursionTranslates) {
  Database db;
  ASSERT_TRUE(workload::SetupCadScene(&db, 4, 3, 3, 11).ok());
  ApplicationGraph graph(&db.catalog());
  ASSERT_TRUE(graph.AddRootRange(
                       *Constructed(Rel("Infront"), "ahead", {Rel("Ontop")}))
                  .ok());
  Result<HornProgram> program =
      TranslateApplicationGraph(graph, db.catalog());
  ASSERT_TRUE(program.ok());
  // Two nodes, three branches each.
  EXPECT_EQ(program->clauses.size(), 6u);
}

TEST(HornPrinting, ClauseToString) {
  Clause c;
  c.head.predicate = "tc";
  c.head.args = {PrologTerm::MakeVar("X"), PrologTerm::MakeVar("Z")};
  Atom e1{"edge", {PrologTerm::MakeVar("X"), PrologTerm::MakeVar("Y")}};
  Atom e2{"tc", {PrologTerm::MakeVar("Y"), PrologTerm::MakeVar("Z")}};
  c.body = {e1, e2};
  EXPECT_EQ(c.ToString(), "tc(X, Z) :- edge(X, Y), tc(Y, Z).");

  Clause fact;
  fact.head.predicate = "edge";
  fact.head.args = {PrologTerm::MakeConst(Value::Int(1)),
                    PrologTerm::MakeConst(Value::Int(2))};
  EXPECT_EQ(fact.ToString(), "edge(1, 2).");

  Clause guarded = c;
  guarded.builtins = {
      BuiltinComparison{CompareOp::kLt, PrologTerm::MakeVar("X"),
                        PrologTerm::MakeConst(Value::Int(9))}};
  EXPECT_EQ(guarded.ToString(),
            "tc(X, Z) :- edge(X, Y), tc(Y, Z), X < 9.");
}

}  // namespace
}  // namespace datacon
