#include "prolog/sld.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "testutil.h"
#include "workload/generators.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests
using testing::ReferenceClosure;
using testing::ToPairSet;

SldOptions Tabled() {
  SldOptions o;
  o.tabling = true;
  return o;
}

SldOptions Pure(size_t max_depth = 64) {
  SldOptions o;
  o.tabling = false;
  o.max_depth = max_depth;
  return o;
}

TEST(Sld, ClosureOfChainTabled) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(6)).ok());
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Tabled());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 15u);
}

TEST(Sld, ClosureOfAcyclicGraphPureSld) {
  // On acyclic data, pure depth-first SLD terminates and is complete.
  Database db;
  workload::EdgeList g = workload::KaryTree(3, 2);
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  Result<Relation> pure = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Pure());
  ASSERT_TRUE(pure.ok()) << pure.status().ToString();
  EXPECT_EQ(ToPairSet(*pure), ReferenceClosure(g));
}

TEST(Sld, PureSldDivergesOnCyclicData) {
  // The paper's point about proof-oriented methods: the same query that
  // the fixpoint engine answers in milliseconds sends depth-first SLD into
  // an infinite left-recursive descent on a cycle.
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Cycle(4)).ok());
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Pure(128));
  EXPECT_EQ(r.status().code(), StatusCode::kDivergence);
}

TEST(Sld, TablingTerminatesOnCyclicData) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Cycle(4)).ok());
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Tabled());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 16u);
}

TEST(Sld, StepBudgetYieldsDivergence) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(32)).ok());
  SldOptions o = Tabled();
  o.max_steps = 3;
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), o);
  EXPECT_EQ(r.status().code(), StatusCode::kDivergence);
}

TEST(Sld, SingleSourceQueryBindsFirstArgument) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(10)).ok());
  SldStats stats;
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Tabled(),
      {Value::Int(7)}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->size(), 2u);  // (7,8), (7,9)
  for (const Tuple& t : r->tuples()) {
    EXPECT_EQ(t.value(0).AsInt(), 7);
  }
  EXPECT_GT(stats.resolution_steps, 0u);
}

TEST(Sld, EmptyBase) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::EdgeList{}).ok());
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Tabled());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

TEST(Sld, MutualRecursionAgreesWithFixpoint) {
  Database db;
  ASSERT_TRUE(workload::SetupCadScene(&db, 6, 8, 8, 3).ok());
  RangePtr range = Constructed(Rel("Infront"), "ahead", {Rel("Ontop")});
  Result<Relation> bottom_up = db.EvalRange(range);
  ASSERT_TRUE(bottom_up.ok());
  Result<Relation> top_down =
      EvaluateRangeTopDown(db.catalog(), range, Tabled());
  ASSERT_TRUE(top_down.ok()) << top_down.status().ToString();
  EXPECT_TRUE(bottom_up->SameTuples(*top_down));
}

TEST(Sld, BuiltinComparisonFilters) {
  Database db;
  ASSERT_TRUE(db.DefineRelationType(
                    "edge", Schema({{"src", ValueType::kInt},
                                    {"dst", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(db.CreateRelation("E", "edge").ok());
  ASSERT_TRUE(workload::LoadEdges(&db, "E",
                                  workload::RandomDigraph(6, 12, 5))
                  .ok());
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"), Lt(FieldRef("r", "src"), FieldRef("r", "dst")))});
  ASSERT_TRUE(db.DefineConstructor(std::make_shared<ConstructorDecl>(
                     "up", FormalRelation{"Rel", "edge"},
                     std::vector<FormalRelation>{},
                     std::vector<FormalScalar>{}, "edge", body))
                  .ok());
  Result<Relation> r = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("E"), "up"), Tabled());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  Result<Relation> expected = db.EvalRange(Constructed(Rel("E"), "up"));
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(r->SameTuples(*expected));
}

/// Property: tabled top-down == bottom-up semi-naive on random graphs —
/// the section 3.4 lemma exercised in both directions.
class SldEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SldEquivalenceTest, MatchesFixpointOnRandomGraphs) {
  workload::EdgeList g =
      workload::RandomDigraph(10, 20, static_cast<uint64_t>(GetParam()));
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", g).ok());
  Result<Relation> top_down = EvaluateRangeTopDown(
      db.catalog(), Constructed(Rel("g_E"), "g_tc"), Tabled());
  ASSERT_TRUE(top_down.ok()) << top_down.status().ToString();
  EXPECT_EQ(ToPairSet(*top_down), ReferenceClosure(g));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SldEquivalenceTest, ::testing::Range(0, 10));

TEST(Sld, PlainRangeRejected) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(3)).ok());
  EXPECT_EQ(
      EvaluateRangeTopDown(db.catalog(), Rel("g_E"), Tabled()).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(Sld, ScanWorkCountsFacts) {
  Database db;
  ASSERT_TRUE(workload::SetupClosure(&db, "g", workload::Chain(8)).ok());
  SldStats stats;
  ASSERT_TRUE(EvaluateRangeTopDown(db.catalog(),
                                   Constructed(Rel("g_E"), "g_tc"), Tabled(),
                                   {}, &stats)
                  .ok());
  // Tuple-at-a-time scanning: many more fact visits than there are facts.
  EXPECT_GT(stats.facts_scanned, 7u);
  EXPECT_GT(stats.passes, 1u);
}

}  // namespace
}  // namespace datacon
