#include "workload/generators.h"

#include <gtest/gtest.h>

#include <set>

namespace datacon::workload {
namespace {

TEST(Generators, Chain) {
  EdgeList g = Chain(5);
  EXPECT_EQ(g.node_count, 5);
  ASSERT_EQ(g.edges.size(), 4u);
  EXPECT_EQ(g.edges[0], std::make_pair(0, 1));
  EXPECT_EQ(g.edges[3], std::make_pair(3, 4));
  EXPECT_TRUE(Chain(1).edges.empty());
  EXPECT_TRUE(Chain(0).edges.empty());
}

TEST(Generators, Cycle) {
  EdgeList g = Cycle(4);
  ASSERT_EQ(g.edges.size(), 4u);
  EXPECT_EQ(g.edges.back(), std::make_pair(3, 0));
  EXPECT_TRUE(Cycle(1).edges.empty());
}

TEST(Generators, KaryTree) {
  EdgeList g = KaryTree(2, 2);  // 1 + 2 + 4 = 7 nodes, 6 edges
  EXPECT_EQ(g.node_count, 7);
  EXPECT_EQ(g.edges.size(), 6u);
  // Every non-root node has exactly one parent.
  std::set<int> children;
  for (const auto& [p, c] : g.edges) {
    (void)p;
    EXPECT_TRUE(children.insert(c).second);
  }
  EXPECT_EQ(children.size(), 6u);
}

TEST(Generators, RandomDigraphDeterministicInSeed) {
  EdgeList a = RandomDigraph(20, 40, 7);
  EdgeList b = RandomDigraph(20, 40, 7);
  EdgeList c = RandomDigraph(20, 40, 8);
  EXPECT_EQ(a.edges, b.edges);
  EXPECT_NE(a.edges, c.edges);
  EXPECT_EQ(a.edges.size(), 40u);
  for (const auto& [x, y] : a.edges) {
    EXPECT_NE(x, y);
    EXPECT_GE(x, 0);
    EXPECT_LT(x, 20);
  }
}

TEST(Generators, Grid) {
  EdgeList g = Grid(3, 2);
  EXPECT_EQ(g.node_count, 6);
  // 2 rows: 2*2 right edges + 3 down edges = 7.
  EXPECT_EQ(g.edges.size(), 7u);
}

TEST(Generators, LayeredDag) {
  EdgeList g = LayeredDag(3, 4, 2, 9);
  EXPECT_EQ(g.node_count, 12);
  for (const auto& [a, b] : g.edges) {
    EXPECT_EQ(b / 4, a / 4 + 1);  // edges only cross into the next layer
  }
}

TEST(Generators, SetupClosureCreatesEverything) {
  Database db;
  ASSERT_TRUE(SetupClosure(&db, "x", Chain(3)).ok());
  EXPECT_TRUE(db.catalog().LookupRelationType("x_edgerel").ok());
  EXPECT_TRUE(db.catalog().LookupConstructor("x_tc").ok());
  EXPECT_EQ(db.GetRelation("x_E").value()->size(), 2u);
}

TEST(Generators, SetupCadSceneDeterministic) {
  Database a, b;
  ASSERT_TRUE(SetupCadScene(&a, 10, 12, 12, 5).ok());
  ASSERT_TRUE(SetupCadScene(&b, 10, 12, 12, 5).ok());
  EXPECT_TRUE(a.GetRelation("Infront").value()->SameTuples(
      *b.GetRelation("Infront").value()));
  EXPECT_EQ(a.GetRelation("Infront").value()->size(), 12u);
  EXPECT_EQ(a.GetRelation("Ontop").value()->size(), 12u);
  EXPECT_TRUE(a.catalog().LookupConstructor("ahead").ok());
  EXPECT_TRUE(a.catalog().LookupConstructor("above").ok());
}

}  // namespace
}  // namespace datacon::workload
