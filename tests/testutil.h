#ifndef DATACON_TESTS_TESTUTIL_H_
#define DATACON_TESTS_TESTUTIL_H_

#include <set>
#include <utility>
#include <vector>

#include "storage/relation.h"
#include "types/value.h"
#include "workload/generators.h"

namespace datacon::testing {

/// Reference transitive closure by Floyd-Warshall over the edge list — an
/// independent oracle for every closure-computing code path.
inline std::set<std::pair<int, int>> ReferenceClosure(
    const workload::EdgeList& g) {
  std::vector<std::vector<bool>> reach(
      static_cast<size_t>(g.node_count),
      std::vector<bool>(static_cast<size_t>(g.node_count), false));
  for (const auto& [a, b] : g.edges) {
    reach[static_cast<size_t>(a)][static_cast<size_t>(b)] = true;
  }
  for (int k = 0; k < g.node_count; ++k) {
    for (int i = 0; i < g.node_count; ++i) {
      if (!reach[static_cast<size_t>(i)][static_cast<size_t>(k)]) continue;
      for (int j = 0; j < g.node_count; ++j) {
        if (reach[static_cast<size_t>(k)][static_cast<size_t>(j)]) {
          reach[static_cast<size_t>(i)][static_cast<size_t>(j)] = true;
        }
      }
    }
  }
  std::set<std::pair<int, int>> out;
  for (int i = 0; i < g.node_count; ++i) {
    for (int j = 0; j < g.node_count; ++j) {
      if (reach[static_cast<size_t>(i)][static_cast<size_t>(j)]) {
        out.emplace(i, j);
      }
    }
  }
  return out;
}

/// Converts a binary integer relation into a pair set for comparison.
inline std::set<std::pair<int, int>> ToPairSet(const Relation& rel) {
  std::set<std::pair<int, int>> out;
  for (const Tuple& t : rel.tuples()) {
    out.emplace(static_cast<int>(t.value(0).AsInt()),
                static_cast<int>(t.value(1).AsInt()));
  }
  return out;
}

}  // namespace datacon::testing

#endif  // DATACON_TESTS_TESTUTIL_H_
