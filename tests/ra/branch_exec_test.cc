#include "ra/branch_exec.h"

#include <gtest/gtest.h>

#include <random>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

Schema EdgeSchema() {
  return Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}});
}

Relation Edges(std::initializer_list<std::pair<int, int>> pairs) {
  Relation r(EdgeSchema());
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(r.Insert(Tuple({Value::Int(a), Value::Int(b)})).ok());
  }
  return r;
}

Status RunBranch(const BranchPtr& branch,
           const std::vector<ResolvedBinding>& bindings, Relation* out,
           BranchExecStats* stats = nullptr) {
  Evaluator eval(nullptr);
  Environment env;
  return ExecuteBranch(*branch, bindings, eval, env, out, stats);
}

TEST(BranchExec, IdentityCopiesAllTuples) {
  Relation e = Edges({{1, 2}, {2, 3}});
  Relation out(EdgeSchema());
  BranchPtr branch = IdentityBranch("r", Rel("E"), True());
  ASSERT_TRUE(RunBranch(branch, {{"r", &e}}, &out).ok());
  EXPECT_TRUE(out.SameTuples(e));
}

TEST(BranchExec, FilterSelects) {
  Relation e = Edges({{1, 2}, {2, 3}, {1, 5}});
  Relation out(EdgeSchema());
  BranchPtr branch =
      IdentityBranch("r", Rel("E"), Eq(FieldRef("r", "src"), Int(1)));
  ASSERT_TRUE(RunBranch(branch, {{"r", &e}}, &out).ok());
  EXPECT_EQ(out.size(), 2u);
}

TEST(BranchExec, ProjectionTargets) {
  Relation e = Edges({{1, 2}});
  Relation out(EdgeSchema());
  BranchPtr branch = MakeBranch({FieldRef("r", "dst"), FieldRef("r", "src")},
                                {Each("r", Rel("E"))}, True());
  ASSERT_TRUE(RunBranch(branch, {{"r", &e}}, &out).ok());
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(2), Value::Int(1)})));
}

TEST(BranchExec, ComputedTargets) {
  Relation e = Edges({{1, 2}});
  Relation out(EdgeSchema());
  BranchPtr branch = MakeBranch(
      {Add(FieldRef("r", "src"), Int(10)), FieldRef("r", "dst")},
      {Each("r", Rel("E"))}, True());
  ASSERT_TRUE(RunBranch(branch, {{"r", &e}}, &out).ok());
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(11), Value::Int(2)})));
}

TEST(BranchExec, EquiJoin) {
  // The paper's ahead_2 join: <f.src, b.dst> where f.dst = b.src.
  Relation e = Edges({{1, 2}, {2, 3}, {3, 4}, {7, 8}});
  Relation out(EdgeSchema());
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  ASSERT_TRUE(RunBranch(branch, {{"f", &e}, {"b", &e}}, &out).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(1), Value::Int(3)})));
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(2), Value::Int(4)})));
}

TEST(BranchExec, HashJoinProbesInsteadOfScanning) {
  // With n tuples on each side joined on equality, the inner side must be
  // probed, not scanned: env_count stays linear, not quadratic.
  Relation left(EdgeSchema());
  Relation right(EdgeSchema());
  const int n = 64;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(left.Insert(Tuple({Value::Int(i), Value::Int(i + 1)})).ok());
    ASSERT_TRUE(
        right.Insert(Tuple({Value::Int(i + 1), Value::Int(i + 2)})).ok());
  }
  Relation out(EdgeSchema());
  BranchExecStats stats;
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("L")), Each("b", Rel("R"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  ASSERT_TRUE(RunBranch(branch, {{"f", &left}, {"b", &right}}, &out, &stats).ok());
  EXPECT_EQ(out.size(), static_cast<size_t>(n));
  EXPECT_EQ(stats.env_count, static_cast<size_t>(n));
  EXPECT_EQ(stats.inserted, static_cast<size_t>(n));
}

TEST(BranchExec, ThreeWayJoin) {
  Relation e = Edges({{1, 2}, {2, 3}, {3, 4}});
  Relation out(EdgeSchema());
  BranchPtr branch = MakeBranch(
      {FieldRef("a", "src"), FieldRef("c", "dst")},
      {Each("a", Rel("E")), Each("b", Rel("E")), Each("c", Rel("E"))},
      And({Eq(FieldRef("a", "dst"), FieldRef("b", "src")),
           Eq(FieldRef("b", "dst"), FieldRef("c", "src"))}));
  ASSERT_TRUE(RunBranch(branch, {{"a", &e}, {"b", &e}, {"c", &e}}, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(1), Value::Int(4)})));
}

TEST(BranchExec, CrossProductWhenNoJoinPredicate) {
  Relation a = Edges({{1, 1}, {2, 2}});
  Relation b = Edges({{3, 3}, {4, 4}, {5, 5}});
  Relation out(EdgeSchema());
  BranchPtr branch = MakeBranch({FieldRef("x", "src"), FieldRef("y", "src")},
                                {Each("x", Rel("A")), Each("y", Rel("B"))},
                                True());
  ASSERT_TRUE(RunBranch(branch, {{"x", &a}, {"y", &b}}, &out).ok());
  EXPECT_EQ(out.size(), 6u);
}

TEST(BranchExec, SelfJoinOnSameRelationInstance) {
  Relation e = Edges({{1, 2}, {2, 1}});
  Relation out(EdgeSchema());
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  ASSERT_TRUE(RunBranch(branch, {{"f", &e}, {"b", &e}}, &out).ok());
  // (1,2)+(2,1)->(1,1); (2,1)+(1,2)->(2,2).
  EXPECT_EQ(out.size(), 2u);
}

TEST(BranchExec, ResidualNonEquiPredicate) {
  Relation e = Edges({{1, 2}, {5, 3}});
  Relation out(EdgeSchema());
  BranchPtr branch = IdentityBranch(
      "r", Rel("E"), Lt(FieldRef("r", "src"), FieldRef("r", "dst")));
  ASSERT_TRUE(RunBranch(branch, {{"r", &e}}, &out).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_TRUE(out.Contains(Tuple({Value::Int(1), Value::Int(2)})));
}

TEST(BranchExec, KeyViolationSurfacesFromOutput) {
  Relation e = Edges({{1, 2}, {1, 3}});
  // Output declares src as key: both tuples map to key 1 with different
  // payloads.
  Relation out(Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}},
                      {0}));
  BranchPtr branch = IdentityBranch("r", Rel("E"), True());
  EXPECT_EQ(RunBranch(branch, {{"r", &e}}, &out).code(),
            StatusCode::kKeyViolation);
}

TEST(BranchExec, MissingTargetsRequireSingleBinding) {
  Relation e = Edges({{1, 2}});
  Relation out(EdgeSchema());
  BranchPtr branch = std::make_shared<Branch>(
      std::vector<Binding>{Each("a", Rel("E")), Each("b", Rel("E"))}, True(),
      std::nullopt);
  EXPECT_EQ(RunBranch(branch, {{"a", &e}, {"b", &e}}, &out).code(),
            StatusCode::kTypeError);
}

/// Property: the hash-join path computes exactly the same result as a
/// brute-force nested loop with the same predicate.
class JoinEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(JoinEquivalenceTest, MatchesNestedLoopReference) {
  std::mt19937_64 rng(static_cast<uint64_t>(GetParam()));
  std::uniform_int_distribution<int> pick(0, 9);
  Relation left(EdgeSchema());
  Relation right(EdgeSchema());
  for (int i = 0; i < 30; ++i) {
    (void)left.Insert(Tuple({Value::Int(pick(rng)), Value::Int(pick(rng))}));
    (void)right.Insert(Tuple({Value::Int(pick(rng)), Value::Int(pick(rng))}));
  }

  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("L")), Each("b", Rel("R"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  Relation out(EdgeSchema());
  ASSERT_TRUE(RunBranch(branch, {{"f", &left}, {"b", &right}}, &out).ok());

  Relation reference(EdgeSchema());
  for (const Tuple& f : left.tuples()) {
    for (const Tuple& b : right.tuples()) {
      if (f.value(1) == b.value(0)) {
        ASSERT_TRUE(
            reference.Insert(Tuple({f.value(0), b.value(1)})).ok());
      }
    }
  }
  EXPECT_TRUE(out.SameTuples(reference));
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinEquivalenceTest, ::testing::Range(0, 10));

TEST(BranchExec, NestedLoopAblationMatchesHashJoin) {
  // With hash joins disabled every equality runs as a filter; the result
  // must be identical (only slower).
  Relation e = Edges({{1, 2}, {2, 3}, {3, 4}, {2, 5}, {5, 3}});
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  Evaluator eval(nullptr);
  Environment env;
  Relation with_hash(EdgeSchema());
  ASSERT_TRUE(ExecuteBranch(*branch, {{"f", &e}, {"b", &e}}, eval, env,
                            &with_hash)
                  .ok());
  Relation without_hash(EdgeSchema());
  BranchExecOptions options;
  options.use_hash_joins = false;
  BranchExecStats stats;
  ASSERT_TRUE(ExecuteBranch(*branch, {{"f", &e}, {"b", &e}}, eval, env,
                            &without_hash, &stats, options)
                  .ok());
  EXPECT_TRUE(with_hash.SameTuples(without_hash));
  // Nested loop considers the full cross product.
  EXPECT_EQ(stats.env_count, with_hash.size());
}

TEST(BranchExec, OutputAliasingBindingRejected) {
  // Inserting into a relation that is also being scanned/probed would
  // invalidate the scan and bypass the hash index; the executor must
  // refuse outright instead of miscomputing.
  Relation e = Edges({{1, 2}, {2, 3}});
  BranchPtr branch = IdentityBranch("r", Rel("E"), True());
  Status s = RunBranch(branch, {{"r", &e}}, &e);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("aliases binding"), std::string::npos);
}

TEST(BranchExec, StatsCountScansBuildsAndProbes) {
  Relation left = Edges({{1, 2}, {2, 3}, {3, 4}});
  Relation right = Edges({{2, 5}, {3, 6}, {9, 9}});
  Relation out(EdgeSchema());
  BranchExecStats stats;
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("L")), Each("b", Rel("R"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  ASSERT_TRUE(
      RunBranch(branch, {{"f", &left}, {"b", &right}}, &out, &stats).ok());
  EXPECT_EQ(stats.outer_tuples, 3u);   // every left tuple scanned
  EXPECT_EQ(stats.index_builds, 1u);   // one index over the inner side
  EXPECT_EQ(stats.index_probes, 3u);   // one probe per outer tuple
  EXPECT_EQ(stats.env_count, 2u);      // dst 2 and 3 match
  EXPECT_EQ(stats.inserted, 2u);
  EXPECT_EQ(stats.snapshots, 0u);      // serial path takes no snapshot
  EXPECT_EQ(stats.chunks, 0u);
}

TEST(BranchExec, DeterministicCountersAcrossThreadCounts) {
  Relation e(EdgeSchema());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(
        e.Insert(Tuple({Value::Int(i % 50), Value::Int(i)})).ok());
  }
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  Evaluator eval(nullptr);
  Environment env;

  BranchExecStats serial_stats;
  Relation serial_out(EdgeSchema());
  ASSERT_TRUE(ExecuteBranch(*branch, {{"f", &e}, {"b", &e}}, eval, env,
                            &serial_out, &serial_stats)
                  .ok());

  BranchExecOptions parallel;
  parallel.num_threads = 8;
  BranchExecStats parallel_stats;
  Relation parallel_out(EdgeSchema());
  ASSERT_TRUE(ExecuteBranch(*branch, {{"f", &e}, {"b", &e}}, eval, env,
                            &parallel_out, &parallel_stats, parallel)
                  .ok());

  EXPECT_EQ(serial_out.SortedTuples(), parallel_out.SortedTuples());
  EXPECT_EQ(serial_stats.env_count, parallel_stats.env_count);
  EXPECT_EQ(serial_stats.inserted, parallel_stats.inserted);
  EXPECT_EQ(serial_stats.outer_tuples, parallel_stats.outer_tuples);
  EXPECT_EQ(serial_stats.index_builds, parallel_stats.index_builds);
  EXPECT_EQ(serial_stats.index_probes, parallel_stats.index_probes);
  // Scheduling detail is allowed to differ — and does.
  EXPECT_EQ(serial_stats.snapshots, 0u);
  EXPECT_EQ(parallel_stats.snapshots, 1u);
  EXPECT_GT(parallel_stats.chunks, 0u);
}

TEST(BranchExec, ParallelErrorMatchesSerialFirstByTupleOrder) {
  // Two different runtime errors are planted on two different outer
  // tuples: 100 DIV (src - 10) explodes at src = 10, 100 MOD (src - 50)
  // at src = 50. Whichever comes first in tuple order defines THE error
  // of this branch; the parallel path must report exactly that one, not
  // whichever chunk's worker happened to fail first.
  Relation e(EdgeSchema());
  for (int i = 0; i < 64; ++i) {
    ASSERT_TRUE(e.Insert(Tuple({Value::Int(i), Value::Int(i)})).ok());
  }
  BranchPtr branch = MakeBranch(
      {Arith(ArithOp::kDiv, Int(100), Sub(FieldRef("r", "src"), Int(10))),
       Arith(ArithOp::kMod, Int(100), Sub(FieldRef("r", "src"), Int(50)))},
      {Each("r", Rel("E"))}, True());
  Evaluator eval(nullptr);
  Environment env;

  Relation serial_out(EdgeSchema());
  Status serial =
      ExecuteBranch(*branch, {{"r", &e}}, eval, env, &serial_out);
  ASSERT_EQ(serial.code(), StatusCode::kInvalidArgument)
      << serial.ToString();

  // The parallel abort flag makes chunk completion order racy; repeat a
  // few times so a lucky schedule cannot hide a wrong-error bug.
  BranchExecOptions parallel;
  parallel.num_threads = 8;
  for (int attempt = 0; attempt < 5; ++attempt) {
    Relation parallel_out(EdgeSchema());
    Status s = ExecuteBranch(*branch, {{"r", &e}}, eval, env, &parallel_out,
                             nullptr, parallel);
    EXPECT_EQ(s.ToString(), serial.ToString()) << "attempt " << attempt;
  }
}

}  // namespace
}  // namespace datacon
