#include "ra/eval.h"

#include <gtest/gtest.h>

#include <map>

#include "ast/builder.h"
#include "ast/printer.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

/// Resolver over a fixed set of named relations (plain bases only).
class MapResolver : public RelationResolver {
 public:
  void Add(std::string name, Relation rel) {
    relations_.emplace(std::move(name), std::move(rel));
  }
  Result<const Relation*> Resolve(const Range& range) const override {
    auto it = relations_.find(range.relation());
    if (it == relations_.end()) {
      return Status::NotFound("relation '" + range.relation() + "'");
    }
    return &it->second;
  }

 private:
  std::map<std::string, Relation> relations_;
};

class EvalTest : public ::testing::Test {
 protected:
  EvalTest() : schema_({{"front", ValueType::kString},
                        {"back", ValueType::kString}}) {
    tuple_ = Tuple({Value::String("vase"), Value::String("table")});
    env_.Bind("r", &tuple_, &schema_);
    env_.BindParam("Obj", Value::String("vase"));
  }

  Value Eval(const TermPtr& term) {
    Evaluator eval(&resolver_);
    Result<Value> v = eval.EvalTerm(*term, env_);
    EXPECT_TRUE(v.ok()) << v.status().ToString();
    return v.ok() ? v.value() : Value();
  }

  bool Holds(const PredPtr& pred) {
    Evaluator eval(&resolver_);
    Result<bool> v = eval.EvalPred(*pred, env_);
    EXPECT_TRUE(v.ok()) << v.status().ToString() << " in " << ToString(*pred);
    return v.ok() && v.value();
  }

  Schema schema_;
  Tuple tuple_;
  Environment env_;
  MapResolver resolver_;
};

TEST_F(EvalTest, Literals) {
  EXPECT_EQ(Eval(Int(3)), Value::Int(3));
  EXPECT_EQ(Eval(Str("x")), Value::String("x"));
  EXPECT_EQ(Eval(BoolLit(false)), Value::Bool(false));
}

TEST_F(EvalTest, FieldRef) {
  EXPECT_EQ(Eval(FieldRef("r", "front")), Value::String("vase"));
  EXPECT_EQ(Eval(FieldRef("r", "back")), Value::String("table"));
}

TEST_F(EvalTest, ParamRef) {
  EXPECT_EQ(Eval(Param("Obj")), Value::String("vase"));
}

TEST_F(EvalTest, UnboundVariableFails) {
  Evaluator eval(&resolver_);
  EXPECT_EQ(eval.EvalTerm(*FieldRef("zz", "a"), env_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(eval.EvalTerm(*Param("zz"), env_).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(eval.EvalTerm(*FieldRef("r", "no_field"), env_).status().code(),
            StatusCode::kNotFound);
}

TEST_F(EvalTest, Arithmetic) {
  EXPECT_EQ(Eval(Add(Int(2), Int(3))), Value::Int(5));
  EXPECT_EQ(Eval(Sub(Int(2), Int(3))), Value::Int(-1));
  EXPECT_EQ(Eval(Arith(ArithOp::kMul, Int(4), Int(5))), Value::Int(20));
  EXPECT_EQ(Eval(Arith(ArithOp::kDiv, Int(17), Int(5))), Value::Int(3));
  EXPECT_EQ(Eval(Arith(ArithOp::kMod, Int(17), Int(5))), Value::Int(2));
}

TEST_F(EvalTest, DivisionByZeroFails) {
  Evaluator eval(&resolver_);
  EXPECT_FALSE(
      eval.EvalTerm(*Arith(ArithOp::kDiv, Int(1), Int(0)), env_).ok());
  EXPECT_FALSE(
      eval.EvalTerm(*Arith(ArithOp::kMod, Int(1), Int(0)), env_).ok());
}

TEST_F(EvalTest, ArithmeticOverStringsFails) {
  Evaluator eval(&resolver_);
  EXPECT_EQ(eval.EvalTerm(*Add(Str("a"), Int(1)), env_).status().code(),
            StatusCode::kTypeError);
}

TEST_F(EvalTest, Comparisons) {
  EXPECT_TRUE(Holds(Eq(FieldRef("r", "front"), Str("vase"))));
  EXPECT_FALSE(Holds(Eq(FieldRef("r", "front"), Str("table"))));
  EXPECT_TRUE(Holds(Ne(FieldRef("r", "front"), FieldRef("r", "back"))));
  EXPECT_TRUE(Holds(Lt(Int(1), Int(2))));
  EXPECT_TRUE(Holds(Le(Int(2), Int(2))));
  EXPECT_TRUE(Holds(Cmp(CompareOp::kGt, Int(3), Int(2))));
  EXPECT_TRUE(Holds(Cmp(CompareOp::kGe, Str("b"), Str("a"))));
}

TEST_F(EvalTest, ComparisonAcrossTypesFails) {
  Evaluator eval(&resolver_);
  EXPECT_EQ(eval.EvalPred(*Eq(Int(1), Str("1")), env_).status().code(),
            StatusCode::kTypeError);
}

TEST_F(EvalTest, BooleanConnectives) {
  EXPECT_TRUE(Holds(True()));
  EXPECT_FALSE(Holds(False()));
  EXPECT_TRUE(Holds(And({True(), True()})));
  EXPECT_FALSE(Holds(And({True(), False()})));
  EXPECT_TRUE(Holds(And({})));  // empty conjunction
  EXPECT_TRUE(Holds(Or({False(), True()})));
  EXPECT_FALSE(Holds(Or({})));  // empty disjunction
  EXPECT_TRUE(Holds(Not(False())));
  EXPECT_FALSE(Holds(Not(True())));
}

TEST_F(EvalTest, ShortCircuitSkipsErrors) {
  // AND stops at the first false operand; the ill-typed second operand is
  // never evaluated.
  EXPECT_FALSE(Holds(And({False(), Eq(Int(1), Str("1"))})));
  EXPECT_TRUE(Holds(Or({True(), Eq(Int(1), Str("1"))})));
}

class QuantifierTest : public EvalTest {
 protected:
  QuantifierTest() {
    Relation numbers(Schema({{"v", ValueType::kInt}}));
    for (int i : {1, 2, 3}) {
      EXPECT_TRUE(numbers.Insert(Tuple({Value::Int(i)})).ok());
    }
    resolver_.Add("Numbers", std::move(numbers));
    resolver_.Add("Empty", Relation(Schema({{"v", ValueType::kInt}})));
  }
};

TEST_F(QuantifierTest, Some) {
  EXPECT_TRUE(Holds(Some("n", Rel("Numbers"), Eq(FieldRef("n", "v"), Int(2)))));
  EXPECT_FALSE(Holds(Some("n", Rel("Numbers"), Eq(FieldRef("n", "v"), Int(9)))));
  EXPECT_FALSE(Holds(Some("n", Rel("Empty"), True())));
}

TEST_F(QuantifierTest, All) {
  EXPECT_TRUE(Holds(All("n", Rel("Numbers"), Lt(FieldRef("n", "v"), Int(10)))));
  EXPECT_FALSE(Holds(All("n", Rel("Numbers"), Lt(FieldRef("n", "v"), Int(3)))));
  // Vacuously true on the empty range.
  EXPECT_TRUE(Holds(All("n", Rel("Empty"), False())));
}

TEST_F(QuantifierTest, NestedQuantifiers) {
  // SOME n (ALL m (n.v >= m.v)) — there is a maximum.
  EXPECT_TRUE(Holds(Some(
      "n", Rel("Numbers"),
      All("m", Rel("Numbers"),
          Cmp(CompareOp::kGe, FieldRef("n", "v"), FieldRef("m", "v"))))));
  // ALL n (SOME m (m.v > n.v)) — false: 3 has no strict successor.
  EXPECT_FALSE(Holds(All(
      "n", Rel("Numbers"),
      Some("m", Rel("Numbers"),
           Cmp(CompareOp::kGt, FieldRef("m", "v"), FieldRef("n", "v"))))));
}

TEST_F(QuantifierTest, QuantifierSeesOuterBindings) {
  // r.front = "vase" is in scope inside the quantifier body.
  EXPECT_TRUE(Holds(Some("n", Rel("Numbers"),
                         Eq(FieldRef("r", "front"), Str("vase")))));
}

TEST_F(QuantifierTest, Membership) {
  EXPECT_TRUE(Holds(In({Int(2)}, Rel("Numbers"))));
  EXPECT_FALSE(Holds(In({Int(9)}, Rel("Numbers"))));
  EXPECT_FALSE(Holds(In({Int(1)}, Rel("Empty"))));
}

TEST_F(QuantifierTest, MissingResolverIsInternalError) {
  Evaluator eval(nullptr);
  EXPECT_EQ(eval.EvalPred(*Some("n", Rel("Numbers"), True()), env_)
                .status()
                .code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace datacon
