#include "ra/branch_plan.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

Schema EdgeSchema() {
  return Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}});
}

TEST(BranchPlan, EquiJoinBecomesProbe) {
  Schema schema = EdgeSchema();
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  Result<std::vector<BranchLevelPlan>> plan =
      PlanBranchLevels(*branch, {{"f", &schema}, {"b", &schema}});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value()[0].keys.empty());
  EXPECT_TRUE(plan.value()[0].filters.empty());
  ASSERT_EQ(plan.value()[1].keys.size(), 1u);
  EXPECT_EQ(plan.value()[1].keys[0].inner_field_index, 0);  // b.src
  EXPECT_TRUE(plan.value()[1].filters.empty());
}

TEST(BranchPlan, HashJoinsDisabledBecomeFilters) {
  Schema schema = EdgeSchema();
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("f", "dst"), FieldRef("b", "src")));
  BranchExecOptions options;
  options.use_hash_joins = false;
  Result<std::vector<BranchLevelPlan>> plan =
      PlanBranchLevels(*branch, {{"f", &schema}, {"b", &schema}}, options);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value()[1].keys.empty());
  EXPECT_EQ(plan.value()[1].filters.size(), 1u);
}

TEST(BranchPlan, LevelZeroEqualityIsAFilter) {
  Schema schema = EdgeSchema();
  BranchPtr branch =
      IdentityBranch("r", Rel("E"), Eq(FieldRef("r", "src"), Int(3)));
  Result<std::vector<BranchLevelPlan>> plan =
      PlanBranchLevels(*branch, {{"r", &schema}});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value()[0].keys.empty());
  EXPECT_EQ(plan.value()[0].filters.size(), 1u);
}

TEST(BranchPlan, SameVariableEqualityIsAFilterNotAKey) {
  Schema schema = EdgeSchema();
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Rel("E"))},
      Eq(FieldRef("b", "src"), FieldRef("b", "dst")));
  Result<std::vector<BranchLevelPlan>> plan =
      PlanBranchLevels(*branch, {{"f", &schema}, {"b", &schema}});
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan.value()[1].keys.empty());
  EXPECT_EQ(plan.value()[1].filters.size(), 1u);
}

TEST(BranchPlan, ConjunctAssignedToEarliestReadyLevel) {
  Schema schema = EdgeSchema();
  BranchPtr branch = MakeBranch(
      {FieldRef("a", "src"), FieldRef("c", "dst")},
      {Each("a", Rel("E")), Each("b", Rel("E")), Each("c", Rel("E"))},
      And({Eq(FieldRef("a", "src"), Int(1)),                      // level 0
           Eq(FieldRef("a", "dst"), FieldRef("b", "src")),        // key at 1
           Lt(FieldRef("b", "dst"), FieldRef("c", "src"))}));     // filter at 2
  Result<std::vector<BranchLevelPlan>> plan = PlanBranchLevels(
      *branch, {{"a", &schema}, {"b", &schema}, {"c", &schema}});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value()[0].filters.size(), 1u);
  EXPECT_EQ(plan.value()[1].keys.size(), 1u);
  EXPECT_EQ(plan.value()[2].filters.size(), 1u);
}

TEST(BranchPlan, UnboundVariableIsInternalError) {
  Schema schema = EdgeSchema();
  BranchPtr branch = IdentityBranch(
      "r", Rel("E"), Eq(FieldRef("zz", "src"), Int(1)));
  EXPECT_EQ(PlanBranchLevels(*branch, {{"r", &schema}}).status().code(),
            StatusCode::kInternal);
}

TEST(BranchPlan, ExplainRendersPipeline) {
  Schema schema = EdgeSchema();
  BranchPtr branch = MakeBranch(
      {FieldRef("f", "src"), FieldRef("b", "dst")},
      {Each("f", Rel("E")), Each("b", Constructed(Rel("E"), "tc"))},
      And({Eq(FieldRef("f", "dst"), FieldRef("b", "src")),
           Ne(FieldRef("f", "src"), FieldRef("b", "dst"))}));
  Result<std::string> text =
      ExplainBranchPlan(*branch, {{"f", &schema}, {"b", &schema}});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text,
            "scan(f IN E) -> probe(b IN E {tc} on src = f.dst) -> "
            "filter(f.src # b.dst) -> project<f.src, b.dst>");
}

TEST(BranchPlan, ExplainIdentityBranch) {
  Schema schema = EdgeSchema();
  BranchPtr branch = IdentityBranch("r", Rel("E"), True());
  Result<std::string> text = ExplainBranchPlan(*branch, {{"r", &schema}});
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "scan(r IN E) -> project<r>");
}

}  // namespace
}  // namespace datacon
