#include "ra/analysis.h"

#include <gtest/gtest.h>

#include "ast/builder.h"
#include "ast/printer.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

TEST(FreeVars, Terms) {
  std::set<std::string> vars;
  CollectFreeVars(*Add(FieldRef("a", "x"), FieldRef("b", "y")), &vars);
  EXPECT_EQ(vars, (std::set<std::string>{"a", "b"}));
  vars.clear();
  CollectFreeVars(*Int(1), &vars);
  EXPECT_TRUE(vars.empty());
  CollectFreeVars(*Param("p"), &vars);
  EXPECT_TRUE(vars.empty());
}

TEST(FreeVars, Compare) {
  EXPECT_EQ(FreeVars(*Eq(FieldRef("f", "back"), FieldRef("b", "head"))),
            (std::set<std::string>{"f", "b"}));
}

TEST(FreeVars, Connectives) {
  PredPtr p = And({Eq(FieldRef("a", "x"), Int(1)),
                   Or({Not(Eq(FieldRef("b", "y"), Int(2))),
                       Eq(FieldRef("c", "z"), Int(3))})});
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"a", "b", "c"}));
}

TEST(FreeVars, QuantifierBindsItsVariable) {
  PredPtr p = Some("n", Rel("Numbers"),
                   Eq(FieldRef("n", "v"), FieldRef("outer", "x")));
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"outer"}));
}

TEST(FreeVars, QuantifierRangeArgumentsCount) {
  // Selector arguments inside a quantifier's range reference outer vars.
  PredPtr p = Some("n", Selected(Rel("R"), "sel", {FieldRef("o", "k")}), True());
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"o"}));
}

TEST(FreeVars, Membership) {
  PredPtr p = In({FieldRef("r", "a"), FieldRef("s", "b")}, Rel("R"));
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"r", "s"}));
}

TEST(FreeVars, NestedShadowing) {
  // Inner quantifier reuses an outer quantifier's variable name in its own
  // body; both are bound.
  PredPtr p =
      Some("n", Rel("A"), Some("m", Rel("B"),
                               Eq(FieldRef("n", "x"), FieldRef("m", "y"))));
  EXPECT_TRUE(FreeVars(*p).empty());
}

TEST(FlattenConjuncts, SingleNonAnd) {
  std::vector<PredPtr> cs = FlattenConjuncts(Eq(Int(1), Int(1)));
  ASSERT_EQ(cs.size(), 1u);
}

TEST(FlattenConjuncts, TrueVanishes) {
  EXPECT_TRUE(FlattenConjuncts(True()).empty());
  EXPECT_TRUE(FlattenConjuncts(And({True(), True()})).empty());
}

TEST(FlattenConjuncts, NestedAndsFlatten) {
  PredPtr p = And({Eq(Int(1), Int(1)),
                   And({Eq(Int(2), Int(2)), Eq(Int(3), Int(3))}), True()});
  EXPECT_EQ(FlattenConjuncts(p).size(), 3u);
}

TEST(FlattenConjuncts, OrStaysWhole) {
  PredPtr p = And({Or({Eq(Int(1), Int(1)), Eq(Int(2), Int(2))}),
                   Eq(Int(3), Int(3))});
  std::vector<PredPtr> cs = FlattenConjuncts(p);
  ASSERT_EQ(cs.size(), 2u);
  EXPECT_EQ(cs[0]->kind(), Pred::Kind::kOr);
}

TEST(ConjunctsToPred, RoundTrip) {
  EXPECT_EQ(ToString(*ConjunctsToPred({})), "TRUE");
  PredPtr single = Eq(Int(1), Int(2));
  EXPECT_EQ(ConjunctsToPred({single}), single);
  PredPtr rebuilt = ConjunctsToPred({Eq(Int(1), Int(1)), Eq(Int(2), Int(2))});
  EXPECT_EQ(rebuilt->kind(), Pred::Kind::kAnd);
  EXPECT_EQ(FlattenConjuncts(rebuilt).size(), 2u);
}

TEST(FlattenConjuncts, ThreeLevelNestingPreservesOrder) {
  PredPtr p =
      And({And({Eq(FieldRef("a", "x"), Int(1)),
                And({Eq(FieldRef("b", "x"), Int(2)), True()})}),
           Eq(FieldRef("c", "x"), Int(3))});
  std::vector<PredPtr> cs = FlattenConjuncts(p);
  ASSERT_EQ(cs.size(), 3u);
  EXPECT_EQ(FreeVars(*cs[0]), (std::set<std::string>{"a"}));
  EXPECT_EQ(FreeVars(*cs[1]), (std::set<std::string>{"b"}));
  EXPECT_EQ(FreeVars(*cs[2]), (std::set<std::string>{"c"}));
}

TEST(FlattenConjuncts, RoundTripPrintsIdentically) {
  PredPtr p = And({Eq(FieldRef("r", "a"), Int(1)),
                   And({Lt(FieldRef("r", "b"), Int(9)),
                        Ne(FieldRef("r", "a"), FieldRef("r", "b"))})});
  PredPtr rebuilt = ConjunctsToPred(FlattenConjuncts(p));
  // Flattening canonicalises the nesting but keeps the conjunct order, so
  // the printed form of the flat AND lists the same conjuncts in order.
  EXPECT_EQ(ToString(*rebuilt),
            ToString(*And({Eq(FieldRef("r", "a"), Int(1)),
                           Lt(FieldRef("r", "b"), Int(9)),
                           Ne(FieldRef("r", "a"), FieldRef("r", "b"))})));
}

TEST(FreeVars, ShadowReleasedOutsideQuantifier) {
  // `n` is bound inside the quantifier body but free in the other conjunct.
  PredPtr p = And({Some("n", Rel("A"), Eq(FieldRef("n", "x"), Int(1))),
                   Eq(FieldRef("n", "y"), Int(2))});
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"n"}));
}

TEST(FreeVars, MembershipRangeArgumentsCount) {
  // Constructor scalar arguments inside a membership range reference outer
  // tuple variables.
  PredPtr p = In({FieldRef("r", "a")},
                 Constructed(Rel("R"), "c", {}, {FieldRef("o", "k")}));
  EXPECT_EQ(FreeVars(*p), (std::set<std::string>{"r", "o"}));
}

}  // namespace
}  // namespace datacon
