#include <gtest/gtest.h>

#include "core/database.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

constexpr const char* kCadSetup = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
VAR Infront: infrontrel;

SELECTOR hidden_by (Obj: parttype) FOR Rel: infrontrel;
BEGIN EACH r IN Rel: r.front = Obj END hidden_by;

CONSTRUCTOR ahead FOR Rel: infrontrel (): infrontrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.back> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.front
END ahead;
)";

TEST(DatabaseLint, CleanCatalogProducesNoDiagnostics) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  LintReport report = db.Lint();
  EXPECT_TRUE(report.empty()) << report.ToText();
}

TEST(DatabaseLint, NamedSelectorLint) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  Result<LintReport> report = db.Lint("hidden_by");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().empty()) << report.value().ToText();
}

TEST(DatabaseLint, NamedConstructorLint) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  Result<LintReport> report = db.Lint("ahead");
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report.value().empty()) << report.value().ToText();
}

TEST(DatabaseLint, UnknownNameIsNotFound) {
  Database db;
  Result<LintReport> report = db.Lint("nope");
  EXPECT_EQ(report.status().code(), StatusCode::kNotFound);
}

TEST(DatabaseLint, CatalogLintSurfacesFindings) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kCadSetup).ok());
  // An unused scalar parameter: legal, so the define succeeds, but W202.
  ASSERT_TRUE(interp
                  .Execute("SELECTOR shady (P: parttype) FOR Rel: infrontrel;\n"
                           "BEGIN EACH r IN Rel: r.front = r.front "
                           "END shady;\n")
                  .ok());
  LintReport report = db.Lint();
  bool has_w202 = false;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == kDiagUnusedParameter) has_w202 = true;
  }
  EXPECT_TRUE(has_w202) << report.ToText();

  Result<LintReport> named = db.Lint("shady");
  ASSERT_TRUE(named.ok());
  EXPECT_FALSE(named.value().empty());
}

}  // namespace
}  // namespace datacon
