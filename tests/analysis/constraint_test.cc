#include "analysis/constraint.h"

#include <gtest/gtest.h>

#include <string>
#include <variant>

#include "analysis/script_lint.h"
#include "ast/builder.h"
#include "ast/printer.h"
#include "lang/parser.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction in tests

/// Populates a catalog with Edge(src, dst) and Mark(node). (Catalog is
/// neither copyable nor movable, so the caller owns the object.)
void FillGraphCatalog(Catalog& catalog) {
  EXPECT_TRUE(catalog
                  .DefineRelationType("edgerel",
                                      Schema({{"src", ValueType::kInt},
                                              {"dst", ValueType::kInt}}))
                  .ok());
  EXPECT_TRUE(catalog
                  .DefineRelationType("markrel",
                                      Schema({{"node", ValueType::kInt}}))
                  .ok());
  EXPECT_TRUE(catalog.CreateRelation("Edge", "edgerel").ok());
  EXPECT_TRUE(catalog.CreateRelation("Mark", "markrel").ok());
}

/// Parses a script and returns its first constraint declaration.
ConstraintDeclPtr ParseConstraint(const std::string& source) {
  Result<Script> script = ParseScript(source);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return nullptr;
  for (const ScriptStmt& stmt : script.value().stmts) {
    if (const auto* c = std::get_if<ConstraintStmt>(&stmt)) return c->decl;
  }
  ADD_FAILURE() << "no constraint statement in source";
  return nullptr;
}

const ConstraintEvent* FindEvent(const ConstraintAnalysis& analysis,
                                 const std::string& relation) {
  for (const ConstraintEvent& event : analysis.events) {
    if (event.relation == relation) return &event;
  }
  return nullptr;
}

size_t CountCode(const std::vector<Diagnostic>& diagnostics,
                 std::string_view code) {
  size_t n = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

// --- Desugaring ------------------------------------------------------------

TEST(DesugarConstraint, KeyBecomesAgreementDenial) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl =
      ParseConstraint("CONSTRAINT k KEY <src> ON Edge;");
  ASSERT_NE(decl, nullptr);
  Result<ConstraintBody> body = DesugarConstraint(*decl, catalog);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  ASSERT_EQ(body.value().bindings.size(), 2u);
  EXPECT_EQ(body.value().bindings[0].range->relation(), "Edge");
  EXPECT_EQ(body.value().bindings[1].range->relation(), "Edge");
  // The predicate mentions the key agreement and the non-key disagreement.
  std::string pred = ToString(*body.value().pred);
  EXPECT_NE(pred.find("src"), std::string::npos);
  EXPECT_NE(pred.find("dst"), std::string::npos);
}

TEST(DesugarConstraint, ForeignBecomesUnmatchedDenial) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl = ParseConstraint(
      "CONSTRAINT f FOREIGN node OF Mark REFERENCES src OF Edge;");
  ASSERT_NE(decl, nullptr);
  Result<ConstraintBody> body = DesugarConstraint(*decl, catalog);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  ASSERT_EQ(body.value().bindings.size(), 1u);
  EXPECT_EQ(body.value().bindings[0].range->relation(), "Mark");
  std::string pred = ToString(*body.value().pred);
  EXPECT_NE(pred.find("NOT"), std::string::npos);
  EXPECT_NE(pred.find("SOME"), std::string::npos);
}

TEST(DesugarConstraint, KeyUnknownFieldIsTypeError) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl =
      ParseConstraint("CONSTRAINT k KEY <nope> ON Edge;");
  ASSERT_NE(decl, nullptr);
  EXPECT_EQ(DesugarConstraint(*decl, catalog).status().code(),
            StatusCode::kTypeError);
}

// --- Define-time diagnostics -----------------------------------------------

TEST(LintConstraint, UnknownRelationIsE121) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl =
      ParseConstraint("CONSTRAINT c DENY EACH p IN Nope: p.src = p.dst;");
  ASSERT_NE(decl, nullptr);
  std::vector<Diagnostic> diagnostics = LintConstraint(*decl, catalog);
  EXPECT_EQ(CountCode(diagnostics, kDiagConstraintUnknownRelation), 1u);
}

TEST(LintConstraint, UnsafePredicateIsE120) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  // `q` is never bound — the denial is unsafe.
  ConstraintDeclPtr decl = ParseConstraint(
      "CONSTRAINT c DENY EACH p IN Edge: p.src = q.dst;");
  ASSERT_NE(decl, nullptr);
  std::vector<Diagnostic> diagnostics = LintConstraint(*decl, catalog);
  EXPECT_GE(CountCode(diagnostics, kDiagUnsafeConstraint), 1u);
}

TEST(LintConstraint, TriviallySatisfiedIsW230) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  // A key over every field: the disagreement disjunct is empty, the
  // denial folds to FALSE and can never be violated.
  ConstraintDeclPtr decl =
      ParseConstraint("CONSTRAINT k KEY <src, dst> ON Edge;");
  ASSERT_NE(decl, nullptr);
  std::vector<Diagnostic> diagnostics = LintConstraint(*decl, catalog);
  EXPECT_EQ(CountCode(diagnostics, kDiagConstraintTrivial), 1u);
}

TEST(LintConstraint, CleanConstraintHasNoDiagnostics) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl = ParseConstraint(
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;");
  ASSERT_NE(decl, nullptr);
  EXPECT_TRUE(LintConstraint(*decl, catalog).empty());
}

// --- Event classification --------------------------------------------------

TEST(AnalyzeConstraint, DirectBindingsAreSimplified) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl =
      ParseConstraint("CONSTRAINT k KEY <src> ON Edge;");
  ASSERT_NE(decl, nullptr);
  ConstraintAnalysis analysis = AnalyzeConstraint(*decl, catalog);
  ASSERT_FALSE(analysis.HasErrors());
  const ConstraintEvent* event = FindEvent(analysis, "Edge");
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->insert_mode, ConstraintCheckMode::kSimplified);
  // One residue per side of the two-variable agreement denial.
  EXPECT_EQ(event->residue_bindings.size(), 2u);
}

TEST(AnalyzeConstraint, ReferencedSideOfForeignKeyIsSkip) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl = ParseConstraint(
      "CONSTRAINT f FOREIGN node OF Mark REFERENCES src OF Edge;");
  ASSERT_NE(decl, nullptr);
  ConstraintAnalysis analysis = AnalyzeConstraint(*decl, catalog);
  ASSERT_FALSE(analysis.HasErrors());
  // Inserting a referenced tuple can only *satisfy* the FK — no check.
  const ConstraintEvent* referenced = FindEvent(analysis, "Edge");
  ASSERT_NE(referenced, nullptr);
  EXPECT_EQ(referenced->insert_mode, ConstraintCheckMode::kSkip);
  // The referencing side must find a match — simplified residue.
  const ConstraintEvent* referencing = FindEvent(analysis, "Mark");
  ASSERT_NE(referencing, nullptr);
  EXPECT_EQ(referencing->insert_mode, ConstraintCheckMode::kSimplified);
}

TEST(AnalyzeConstraint, QuantifiedEvenOccurrenceForcesFull) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  // Edge occurs inside an even-parity SOME in addition to the direct
  // binding of Mark: a new Edge tuple can create a witness without binding
  // any denial variable, so Edge inserts need a full recheck.
  ConstraintDeclPtr decl = ParseConstraint(
      "CONSTRAINT c DENY EACH m IN Mark: "
      "SOME e IN Edge (e.src = m.node AND e.dst = m.node);");
  ASSERT_NE(decl, nullptr);
  ConstraintAnalysis analysis = AnalyzeConstraint(*decl, catalog);
  ASSERT_FALSE(analysis.HasErrors());
  const ConstraintEvent* edge = FindEvent(analysis, "Edge");
  ASSERT_NE(edge, nullptr);
  EXPECT_EQ(edge->insert_mode, ConstraintCheckMode::kFull);
}

TEST(BuildResidue, SubstitutesDeltaBindingIntoParams) {
  Catalog catalog;
  FillGraphCatalog(catalog);
  ConstraintDeclPtr decl =
      ParseConstraint("CONSTRAINT k KEY <src> ON Edge;");
  ASSERT_NE(decl, nullptr);
  Result<ConstraintBody> body = DesugarConstraint(*decl, catalog);
  ASSERT_TRUE(body.ok());
  Result<ConstraintResidue> residue = BuildResidue(body.value(), 0, catalog);
  ASSERT_TRUE(residue.ok()) << residue.status().ToString();
  // One parameter per attribute of the delta tuple, schema order.
  ASSERT_EQ(residue.value().param_fields.size(), 2u);
  EXPECT_EQ(residue.value().param_fields[0], "delta_src");
  EXPECT_EQ(residue.value().param_fields[1], "delta_dst");
  // The delta binding is gone; the surviving binding joins on parameters
  // (the printer renders a parameter reference by its bare name).
  std::string printed = ToString(*residue.value().expr);
  EXPECT_NE(printed.find("delta_src"), std::string::npos);
}

// --- Surface round-trips ---------------------------------------------------

TEST(ConstraintParser, RoundTripsAllThreeForms) {
  for (const std::string source : {
           "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst",
           "CONSTRAINT k KEY <src> ON Edge",
           "CONSTRAINT f FOREIGN node OF Mark REFERENCES src OF Edge",
       }) {
    ConstraintDeclPtr decl = ParseConstraint(source + ";");
    ASSERT_NE(decl, nullptr) << source;
    EXPECT_EQ(ToString(*decl), source);
    // Printing must re-parse to the same rendering.
    ConstraintDeclPtr again = ParseConstraint(ToString(*decl) + ";");
    ASSERT_NE(again, nullptr) << source;
    EXPECT_EQ(ToString(*again), source);
  }
}

// --- Script-level data-flow audit (W231 / W232) ----------------------------

constexpr char kScriptPrelude[] =
    "TYPE edgerel = RELATION OF RECORD src, dst: INTEGER END;\n"
    "VAR Edge: edgerel;\n";

LintReport LintWithConstraints(const std::string& source) {
  Result<Script> script = ParseScript(source);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return {};
  LintOptions options;
  options.constraints = true;
  return LintScript(script.value(), options);
}

size_t CountReport(const LintReport& report, std::string_view code) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

TEST(LintScriptConstraints, RefutedByScriptFactsIsW231) {
  LintReport report = LintWithConstraints(
      std::string(kScriptPrelude) +
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;\n"
      "INSERT INTO Edge <1, 1>;\n");
  EXPECT_EQ(CountReport(report, kDiagConstraintRefuted), 1u);
}

TEST(LintScriptConstraints, SatisfiedFactsProduceNoW231) {
  LintReport report = LintWithConstraints(
      std::string(kScriptPrelude) +
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;\n"
      "INSERT INTO Edge <1, 2>;\n");
  EXPECT_EQ(CountReport(report, kDiagConstraintRefuted), 0u);
  EXPECT_EQ(CountReport(report, kDiagConstraintUnreachable), 0u);
}

TEST(LintScriptConstraints, UntouchedInputsAreW232) {
  // The script never inserts into or assigns Edge — the constraint can
  // never fire after definition time.
  LintReport report = LintWithConstraints(
      std::string(kScriptPrelude) +
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;\n"
      "QUERY Edge;\n");
  EXPECT_EQ(CountReport(report, kDiagConstraintUnreachable), 1u);
}

TEST(LintScriptConstraints, OffByDefault) {
  Result<Script> script = ParseScript(
      std::string(kScriptPrelude) +
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;\n"
      "INSERT INTO Edge <1, 1>;\n");
  ASSERT_TRUE(script.ok());
  LintReport report = LintScript(script.value());  // default options
  EXPECT_EQ(CountReport(report, kDiagConstraintRefuted), 0u);
  EXPECT_EQ(CountReport(report, kDiagConstraintUnreachable), 0u);
}

TEST(LintScriptConstraints, DuplicateNameIsReported) {
  LintReport report = LintWithConstraints(
      std::string(kScriptPrelude) +
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;\n"
      "CONSTRAINT c DENY EACH p IN Edge: p.src = p.dst;\n"
      "INSERT INTO Edge <1, 2>;\n");
  EXPECT_EQ(CountReport(report, kDiagRedefinition), 1u);
}

}  // namespace
}  // namespace datacon
