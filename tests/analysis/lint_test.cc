#include "analysis/lint.h"

#include <gtest/gtest.h>

#include <string>

#include "analysis/script_lint.h"
#include "lang/parser.h"

namespace datacon {
namespace {

/// Two lines of shared declarations; test sources start at line 3.
constexpr char kPrelude[] =
    "TYPE t = RELATION OF RECORD a, b: INTEGER END;\n"
    "VAR E: t;\n";

LintReport LintSource(const std::string& body, const LintOptions& options = {}) {
  std::string source = std::string(kPrelude) + body;
  Result<Script> script = ParseScript(source);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return {};
  return LintScript(script.value(), options);
}

testing::AssertionResult HasDiag(const LintReport& report,
                                 std::string_view code, int line, int column) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code && d.loc.line == line && d.loc.column == column) {
      return testing::AssertionSuccess();
    }
  }
  return testing::AssertionFailure()
         << "no " << code << " at " << line << ":" << column << " in:\n"
         << report.ToText();
}

size_t CountDiag(const LintReport& report, std::string_view code) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

// --- Clean programs ---------------------------------------------------------

TEST(Lint, CleanFig2ProgramIsSilent) {
  // The paper's running example: the hidden_by selector (Fig. 1) and the
  // recursive ahead constructor (Fig. 2).
  LintReport report = LintSource(
      "SELECTOR hidden_by (Obj: STRING) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: r.a = 1 AND Obj = \"x\" END hidden_by;\n"
      "CONSTRUCTOR ahead FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {ahead}: f.b = b.a\n"
      "END ahead;\n"
      "QUERY E {ahead};\n"
      "QUERY E [hidden_by(7)] {ahead};\n");
  EXPECT_TRUE(report.empty()) << report.ToText();
}

TEST(Lint, CleanMutualRecursionIsSilent) {
  LintReport report = LintSource(
      "CONSTRUCTOR up FOR Rel: t (Other: t): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Other {down(Rel)}: f.b = b.a\n"
      "END up;\n"
      "CONSTRUCTOR down FOR Rel: t (Other: t): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Other {up(Rel)}: f.b = b.a\n"
      "END down;\n"
      "QUERY E {up(E)};\n");
  EXPECT_TRUE(report.empty()) << report.ToText();
}

// --- E101: unknown names ----------------------------------------------------

TEST(Lint, E101UnknownNamesInQueryRanges) {
  LintReport report = LintSource(
      "QUERY E {tc};\n"     // line 3: unknown constructor
      "QUERY Nope;\n"       // line 4: unknown relation
      "QUERY E [sel(1)];\n"  // line 5: unknown selector
  );
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 3, 1));
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 4, 1));
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 5, 1));
  EXPECT_EQ(CountDiag(report, kDiagUnknownName), 3u);
}

TEST(Lint, E101AbsentForDeclaredNames) {
  LintReport report = LintSource("QUERY E;\n");
  EXPECT_EQ(CountDiag(report, kDiagUnknownName), 0u);
}

// --- E103 / W212: positivity and stratification -----------------------------

TEST(Lint, E103RecursionThroughOwnNegation) {
  LintReport report = LintSource(
      "CONSTRUCTOR bad FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: NOT SOME s IN Rel {bad} (s.a = r.a)\n"
      "END bad;\n");
  EXPECT_TRUE(HasDiag(report, kDiagNonStratifiable, 4, 7));
  // The recursive reference also sits inside the predicate, so the branch
  // is flagged non-differentiable too.
  EXPECT_TRUE(HasDiag(report, kDiagNonDifferentiable, 4, 7));
  EXPECT_EQ(CountDiag(report, kDiagStratifiedNegation), 0u);
}

TEST(Lint, E103LowerStratumNegationWithoutOptIn) {
  LintReport report = LintSource(
      "CONSTRUCTOR base FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE\n"
      "END base;\n"
      "CONSTRUCTOR top FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: NOT SOME s IN Rel {base} (s.a = r.a)\n"
      "END top;\n");
  EXPECT_TRUE(HasDiag(report, kDiagNonStratifiable, 7, 7));
  EXPECT_EQ(CountDiag(report, kDiagStratifiedNegation), 0u);
}

TEST(Lint, W212LowerStratumNegationWithOptIn) {
  LintOptions options;
  options.allow_stratified_negation = true;
  LintReport report = LintSource(
      "CONSTRUCTOR base FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE\n"
      "END base;\n"
      "CONSTRUCTOR top FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: NOT SOME s IN Rel {base} (s.a = r.a)\n"
      "END top;\n",
      options);
  EXPECT_TRUE(HasDiag(report, kDiagStratifiedNegation, 7, 7));
  EXPECT_EQ(CountDiag(report, kDiagNonStratifiable), 0u);
}

TEST(Lint, W212NeverDowngradesOwnComponentNegation) {
  // Opting in to stratified negation must not legalise recursion through
  // the constructor's own negation.
  LintOptions options;
  options.allow_stratified_negation = true;
  LintReport report = LintSource(
      "CONSTRUCTOR bad FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: NOT SOME s IN Rel {bad} (s.a = r.a)\n"
      "END bad;\n",
      options);
  EXPECT_TRUE(HasDiag(report, kDiagNonStratifiable, 4, 7));
  EXPECT_EQ(CountDiag(report, kDiagStratifiedNegation), 0u);
}

// --- E104: redefinition -----------------------------------------------------

TEST(Lint, E104DuplicateSelector) {
  LintReport report = LintSource(
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: r.a = P END s;\n"
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: r.b = P END s;\n");
  EXPECT_TRUE(HasDiag(report, kDiagRedefinition, 5, 1));
  EXPECT_EQ(CountDiag(report, kDiagRedefinition), 1u);
}

TEST(Lint, E104DuplicateConstructorWithinGroup) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE\n"
      "END c;\n"
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: r.a = 1\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagRedefinition, 6, 1));
  EXPECT_EQ(CountDiag(report, kDiagRedefinition), 1u);
}

// --- E110: unsafe variables -------------------------------------------------

TEST(Lint, E110UnboundVariableInSelectorPredicate) {
  LintReport report = LintSource(
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: q.a = P END s;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnsafeVariable, 3, 1));
}

TEST(Lint, E110UnboundVariableInTargetList) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN <r.a, z.b> OF EACH r IN Rel: TRUE\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnsafeVariable, 4, 7));
  EXPECT_EQ(CountDiag(report, kDiagUnsafeVariable), 1u);
}

TEST(Lint, E110AbsentWhenAllVariablesBound) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN <r.a, r.b> OF EACH r IN Rel: r.a = 1\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagUnsafeVariable), 0u);
}

// --- W201: unused bindings --------------------------------------------------

TEST(Lint, W201UnusedBindingWithTargets) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN <f.a, f.b> OF EACH f IN Rel,\n"
      "      EACH g IN Rel: f.a = 1\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnusedBinding, 5, 7));
  // The disconnected binding also makes the branch a cross product.
  EXPECT_TRUE(HasDiag(report, kDiagCrossProduct, 4, 7));
}

TEST(Lint, W201AbsentForIdentityBranch) {
  // An identity branch's single binding is the implicit target.
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagUnusedBinding), 0u);
  EXPECT_TRUE(report.empty()) << report.ToText();
}

// --- W202: unused parameters ------------------------------------------------

TEST(Lint, W202UnusedScalarParameter) {
  LintReport report = LintSource(
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: r.a = 1 END s;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnusedParameter, 3, 1));
}

TEST(Lint, W202UnusedRelationParameter) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (Other: t): t;\n"
      "BEGIN EACH r IN Rel: r.a = 1\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnusedParameter, 3, 1));
}

TEST(Lint, W202UnusedBaseRelation) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (Other: t): t;\n"
      "BEGIN EACH r IN Other: TRUE\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnusedParameter, 3, 1));
  EXPECT_EQ(CountDiag(report, kDiagUnusedParameter), 1u);
}

TEST(Lint, W202AbsentWhenParametersUsed) {
  LintReport report = LintSource(
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: r.a = P END s;\n");
  EXPECT_EQ(CountDiag(report, kDiagUnusedParameter), 0u);
}

// --- W203: shadowing --------------------------------------------------------

TEST(Lint, W203BindingShadowsScalarParameter) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (n: INTEGER): t;\n"
      "BEGIN EACH n IN Rel: n.a = 1\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagShadowedName, 4, 7));
}

TEST(Lint, W203QuantifierShadowsEnclosingVariable) {
  LintReport report = LintSource(
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel:\n"
      "SOME r IN Rel (r.a = P) END s;\n");
  EXPECT_TRUE(HasDiag(report, kDiagShadowedName, 5, 1));
}

TEST(Lint, W203AbsentForDistinctNames) {
  LintReport report = LintSource(
      "SELECTOR s (P: INTEGER) FOR Rel: t;\n"
      "BEGIN EACH r IN Rel:\n"
      "SOME q IN Rel (q.a = P AND q.b = r.b) END s;\n");
  EXPECT_EQ(CountDiag(report, kDiagShadowedName), 0u);
}

// --- W204: cross products ---------------------------------------------------

TEST(Lint, W204DisconnectedBindings) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN <f.a, g.b> OF EACH f IN Rel,\n"
      "      EACH g IN Rel: TRUE\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagCrossProduct, 4, 7));
}

TEST(Lint, W204AbsentWhenConjunctLinksBindings) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN <f.a, g.b> OF EACH f IN Rel,\n"
      "      EACH g IN Rel: f.b = g.a\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagCrossProduct), 0u);
}

// --- W205 / W206: dead branches and constant conjuncts ----------------------

TEST(Lint, W205AlwaysFalseBranch) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      EACH s IN Rel: 1 = 2\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagAlwaysFalseBranch, 5, 7));
}

TEST(Lint, W205AlwaysFalseSelector) {
  LintReport report = LintSource(
      "SELECTOR s FOR Rel: t;\n"
      "BEGIN EACH r IN Rel: FALSE END s;\n");
  EXPECT_TRUE(HasDiag(report, kDiagAlwaysFalseBranch, 3, 1));
}

TEST(Lint, W205AbsentForSatisfiablePredicate) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: r.a = 2\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagAlwaysFalseBranch), 0u);
}

TEST(Lint, W206ConstantConjunct) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: r.a = r.a AND r.b = 1\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagConstantConjunct, 4, 7));
}

TEST(Lint, W206WholePredicateFoldsTrue) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: r.a = r.a\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagConstantConjunct, 4, 7));
}

TEST(Lint, W206AbsentForLiteralTrueCopyBranch) {
  // `EACH r IN Rel: TRUE` is the idiomatic copy branch, not an accident.
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagConstantConjunct), 0u);
}

// --- W207: duplicate branches -----------------------------------------------

TEST(Lint, W207DuplicateBranch) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: r.a = 1,\n"
      "      EACH r IN Rel: r.a = 1\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagDuplicateBranch, 5, 7));
}

TEST(Lint, W207AbsentForDistinctBranches) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: r.a = 1,\n"
      "      EACH r IN Rel: r.a = 2\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagDuplicateBranch), 0u);
}

// --- W210 / W211: recursion classification ----------------------------------

TEST(Lint, W210NonDifferentiableRecursion) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      EACH f IN Rel: SOME s IN Rel {c} (s.a = f.b)\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagNonDifferentiable, 5, 7));
  // The reference sits under an even number of NOTs/ALLs, so the program
  // is still stratifiable.
  EXPECT_EQ(CountDiag(report, kDiagNonStratifiable), 0u);
}

TEST(Lint, W211NonLinearRecursion) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, g.b> OF EACH f IN Rel {c},\n"
      "      EACH g IN Rel {c}: f.b = g.a\n"
      "END c;\n");
  EXPECT_TRUE(HasDiag(report, kDiagNonLinearRecursion, 5, 7));
}

TEST(Lint, W210W211AbsentForLinearBindingRecursion) {
  LintReport report = LintSource(
      "CONSTRUCTOR c FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {c}: f.b = b.a\n"
      "END c;\n");
  EXPECT_EQ(CountDiag(report, kDiagNonDifferentiable), 0u);
  EXPECT_EQ(CountDiag(report, kDiagNonLinearRecursion), 0u);
}

// --- Query expressions ------------------------------------------------------

TEST(Lint, QueryCalcExprBranchesAreLinted) {
  LintReport report = LintSource("QUERY {EACH r IN E: q.a = 1};\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnsafeVariable, 3, 8));
}

}  // namespace
}  // namespace datacon
