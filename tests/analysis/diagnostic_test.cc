#include "analysis/diagnostic.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iterator>

#include "common/status.h"
#include "lang/parser.h"

namespace datacon {
namespace {

TEST(Diagnostic, SeverityDerivedFromCode) {
  Diagnostic e = MakeDiagnostic(kDiagUnknownName, "boom");
  EXPECT_EQ(e.severity, Severity::kError);
  Diagnostic w = MakeDiagnostic(kDiagUnusedBinding, "meh");
  EXPECT_EQ(w.severity, Severity::kWarning);
}

TEST(Diagnostic, ToStringIncludesSpanWhenValid) {
  Diagnostic d = MakeDiagnostic(kDiagUnsafeVariable, "variable 'x' unbound",
                                SourceLoc{4, 7});
  EXPECT_EQ(d.ToString(), "4:7: error E110: variable 'x' unbound");
  Diagnostic no_span = MakeDiagnostic(kDiagUnusedParameter, "p unused");
  EXPECT_EQ(no_span.ToString(), "warning W202: p unused");
}

TEST(Diagnostic, ToJsonEscapesAndOrdersKeys) {
  Diagnostic d = MakeDiagnostic(kDiagTypeError, "bad \"name\"\n",
                                SourceLoc{2, 3});
  EXPECT_EQ(d.ToJson(),
            "{\"code\":\"E102\",\"severity\":\"error\",\"line\":2,"
            "\"column\":3,\"message\":\"bad \\\"name\\\"\\n\"}");
}

TEST(Diagnostic, CodeTableIsCompleteAndOrdered) {
  std::vector<std::string_view> codes = AllDiagnosticCodes();
  ASSERT_GE(codes.size(), 8u);
  EXPECT_EQ(codes.front(), kDiagParseError);
  for (std::string_view code : codes) {
    EXPECT_FALSE(DiagnosticCodeMeaning(code).empty()) << code;
  }
  // Errors precede warnings, numerically within each block.
  for (size_t i = 1; i < codes.size(); ++i) {
    EXPECT_LT(std::string(codes[i - 1]), std::string(codes[i]));
  }
  EXPECT_TRUE(DiagnosticCodeMeaning("E999").empty());
}

TEST(Diagnostic, EveryRegisteredConstantIsEnumerated) {
  // `datacon-lint --codes` prints exactly AllDiagnosticCodes(); a constant
  // missing here would silently vanish from the listing. Every kDiag*
  // constant declared in diagnostic.h must appear, with a meaning — the
  // W22x adornment family and the E12x/W23x constraint family included.
  const std::string_view all_constants[] = {
      kDiagParseError,       kDiagUnknownName,
      kDiagTypeError,        kDiagNonStratifiable,
      kDiagRedefinition,     kDiagUnsafeVariable,
      kDiagUnsafeConstraint, kDiagConstraintUnknownRelation,
      kDiagTypeConflict,     kDiagIllTypedOperation,
      kDiagCaptureNonBinary, kDiagUnusedBinding,
      kDiagUnusedParameter,
      kDiagShadowedName,     kDiagCrossProduct,
      kDiagAlwaysFalseBranch, kDiagConstantConjunct,
      kDiagDuplicateBranch,  kDiagNonDifferentiable,
      kDiagNonLinearRecursion, kDiagStratifiedNegation,
      kDiagAdornmentNonLinear, kDiagAdornmentFreeJoin,
      kDiagAdornmentNegation, kDiagConstraintTrivial,
      kDiagConstraintRefuted, kDiagConstraintUnreachable,
      kDiagDisjointComparison, kDiagUnconstrainedAttribute,
      kDiagUnionNameMismatch,
  };
  std::vector<std::string_view> codes = AllDiagnosticCodes();
  EXPECT_EQ(codes.size(), std::size(all_constants));
  for (std::string_view constant : all_constants) {
    EXPECT_NE(std::find(codes.begin(), codes.end(), constant), codes.end())
        << constant;
    EXPECT_FALSE(DiagnosticCodeMeaning(constant).empty()) << constant;
  }
}

TEST(Diagnostic, FromStatusMapsCodes) {
  EXPECT_EQ(DiagnosticFromStatus(Status::NotFound("x")).code, kDiagUnknownName);
  EXPECT_EQ(DiagnosticFromStatus(Status::AlreadyExists("x")).code,
            kDiagRedefinition);
  EXPECT_EQ(DiagnosticFromStatus(Status::PositivityViolation("x")).code,
            kDiagNonStratifiable);
  EXPECT_EQ(DiagnosticFromStatus(Status::TypeError("x")).code, kDiagTypeError);
  EXPECT_EQ(DiagnosticFromStatus(Status::ParseError("x")).code,
            kDiagParseError);
}

TEST(Diagnostic, FromParseFailureRecoversSpan) {
  Result<Script> script = ParseScript("TYPE t = RELATION OF RECORD a: "
                                      "INTEGER END;\nQUERY ;\n");
  ASSERT_FALSE(script.ok());
  Diagnostic d = DiagnosticFromStatus(script.status());
  EXPECT_EQ(d.code, kDiagParseError);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_EQ(d.loc.line, 2);
  EXPECT_GT(d.loc.column, 0);
}

TEST(LintReport, CountsAndRender) {
  LintReport report;
  report.Append(MakeDiagnostic(kDiagUnusedBinding, "b", SourceLoc{5, 1}));
  report.Append(MakeDiagnostic(kDiagUnknownName, "a", SourceLoc{2, 3}));
  report.Append(MakeDiagnostic(kDiagCrossProduct, "c"));
  EXPECT_EQ(report.error_count(), 1u);
  EXPECT_EQ(report.warning_count(), 2u);
  EXPECT_TRUE(report.HasErrors());

  report.SortBySpan();
  EXPECT_EQ(report.diagnostics[0].code, kDiagUnknownName);
  EXPECT_EQ(report.diagnostics[1].code, kDiagUnusedBinding);
  // Unknown spans sort last.
  EXPECT_EQ(report.diagnostics[2].code, kDiagCrossProduct);

  std::string text = report.ToText();
  EXPECT_NE(text.find("2:3: error E101: a"), std::string::npos);
  EXPECT_NE(text.find("1 error(s), 2 warning(s)"), std::string::npos);

  std::string json = report.ToJson();
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
  EXPECT_NE(json.find("\"warnings\":2"), std::string::npos);
}

TEST(LintReport, SpanOrderingIsStableOnSharedLine) {
  // Diagnostics landing on the same source position must keep their
  // pipeline emission order (SortBySpan is a stable sort): pass order is
  // meaningful when several analyses flag one spot.
  LintReport report;
  report.Append(MakeDiagnostic(kDiagUnusedBinding, "first", SourceLoc{3, 5}));
  report.Append(MakeDiagnostic(kDiagUnusedBinding, "second", SourceLoc{3, 5}));
  report.Append(MakeDiagnostic(kDiagUnusedBinding, "third", SourceLoc{3, 5}));
  // Same line, differing column: column wins over emission order.
  report.Append(MakeDiagnostic(kDiagUnusedBinding, "early", SourceLoc{3, 1}));

  report.SortBySpan();
  ASSERT_EQ(report.diagnostics.size(), 4u);
  EXPECT_EQ(report.diagnostics[0].message, "early");
  EXPECT_EQ(report.diagnostics[1].message, "first");
  EXPECT_EQ(report.diagnostics[2].message, "second");
  EXPECT_EQ(report.diagnostics[3].message, "third");

  // Sorting again must not reshuffle the shared-position block.
  report.SortBySpan();
  EXPECT_EQ(report.diagnostics[1].message, "first");
  EXPECT_EQ(report.diagnostics[2].message, "second");
  EXPECT_EQ(report.diagnostics[3].message, "third");
}

TEST(LintReport, SharedLineOrdersByCodeBeforeEmission) {
  // On identical spans the code is the final sort key — an error code
  // numerically below a warning code precedes it regardless of when the
  // passes emitted them.
  LintReport report;
  report.Append(MakeDiagnostic(kDiagUnusedBinding, "warn", SourceLoc{7, 2}));
  report.Append(MakeDiagnostic(kDiagUnknownName, "err", SourceLoc{7, 2}));
  report.SortBySpan();
  EXPECT_EQ(report.diagnostics[0].code, kDiagUnknownName);
  EXPECT_EQ(report.diagnostics[1].code, kDiagUnusedBinding);
}

TEST(LintReport, EmptyReportRendersEmpty) {
  LintReport report;
  EXPECT_TRUE(report.empty());
  EXPECT_FALSE(report.HasErrors());
  EXPECT_EQ(report.ToText(), "");
  EXPECT_EQ(report.ToJson(), "{\"diagnostics\":[],\"errors\":0,\"warnings\":0}");
}

}  // namespace
}  // namespace datacon
