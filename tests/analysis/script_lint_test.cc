#include "analysis/script_lint.h"

#include <gtest/gtest.h>

#include <string>

#include "lang/parser.h"

namespace datacon {
namespace {

LintReport LintSource(const std::string& source) {
  Result<Script> script = ParseScript(source);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  if (!script.ok()) return {};
  return LintScript(script.value());
}

testing::AssertionResult HasDiag(const LintReport& report,
                                 std::string_view code, int line, int column) {
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code && d.loc.line == line && d.loc.column == column) {
      return testing::AssertionSuccess();
    }
  }
  return testing::AssertionFailure()
         << "no " << code << " at " << line << ":" << column << " in:\n"
         << report.ToText();
}

size_t CountDiag(const LintReport& report, std::string_view code) {
  size_t n = 0;
  for (const Diagnostic& d : report.diagnostics) {
    if (d.code == code) ++n;
  }
  return n;
}

constexpr char kPrelude[] =
    "TYPE t = RELATION OF RECORD a, b: INTEGER END;\n"  // line 1
    "VAR E: t;\n";                                      // line 2

TEST(LintScript, AdjacentConstructorsFormOneGroup) {
  // Mutually recursive constructors defined back to back resolve each
  // other's names, exactly as the interpreter's definition grouping does.
  LintReport report = LintSource(
      std::string(kPrelude) +
      "CONSTRUCTOR up FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {down}: f.b = b.a\n"
      "END up;\n"
      "CONSTRUCTOR down FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {up}: f.b = b.a\n"
      "END down;\n");
  EXPECT_TRUE(report.empty()) << report.ToText();
}

TEST(LintScript, InterveningStatementSplitsTheGroup) {
  // A non-constructor statement between the two definitions ends the
  // group, so the forward reference is an unknown name.
  LintReport report = LintSource(
      std::string(kPrelude) +
      "CONSTRUCTOR up FOR Rel: t (): t;\n"  // line 3
      "BEGIN EACH r IN Rel: TRUE,\n"        // line 4
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {down}: f.b = b.a\n"  // line 6
      "END up;\n"
      "INSERT INTO E <1, 2>;\n"
      "CONSTRUCTOR down FOR Rel: t (): t;\n"
      "BEGIN EACH r IN Rel: TRUE,\n"
      "      <f.a, b.b> OF EACH f IN Rel,\n"
      "      EACH b IN Rel {up}: f.b = b.a\n"
      "END down;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 6, 7));
  EXPECT_EQ(CountDiag(report, kDiagUnknownName), 1u);
}

TEST(LintScript, InsertIntoUnknownRelation) {
  LintReport report =
      LintSource(std::string(kPrelude) + "INSERT INTO Nope <1, 2>;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 3, 1));
}

TEST(LintScript, AssignThroughUnknownSelector) {
  LintReport report =
      LintSource(std::string(kPrelude) + "E [nosel] := E;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 3, 1));
}

TEST(LintScript, AssignToUnknownRelation) {
  LintReport report = LintSource(std::string(kPrelude) + "Nope := E;\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 3, 1));
}

TEST(LintScript, DuplicateVarIsRedefinition) {
  LintReport report = LintSource(std::string(kPrelude) + "VAR E: t;\n");
  EXPECT_EQ(CountDiag(report, kDiagRedefinition), 1u);
}

TEST(LintScript, ExplainRangeIsLinted) {
  LintReport report =
      LintSource(std::string(kPrelude) + "EXPLAIN E {tc};\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 3, 1));
}

TEST(LintScript, SpanlessRangeDiagnosticsInheritStatementLoc) {
  // Ranges carry no source positions of their own; the enclosing QUERY's
  // location is stamped onto their findings.
  LintReport report =
      LintSource(std::string(kPrelude) + "\n\nQUERY E {tc};\n");
  EXPECT_TRUE(HasDiag(report, kDiagUnknownName, 5, 1));
}

TEST(LintScript, CheckAndPragmaStatementsAreIgnored) {
  LintReport report = LintSource(std::string(kPrelude) +
                                 "PRAGMA LINT = ON;\n"
                                 "CHECK SCRIPT;\n");
  EXPECT_TRUE(report.empty()) << report.ToText();
}

TEST(LintScript, ReportIsSortedBySpan) {
  LintReport report = LintSource(std::string(kPrelude) +
                                 "QUERY E {tc};\n"
                                 "QUERY Nope;\n");
  ASSERT_EQ(report.diagnostics.size(), 2u);
  EXPECT_EQ(report.diagnostics[0].loc.line, 3);
  EXPECT_EQ(report.diagnostics[1].loc.line, 4);
}

}  // namespace
}  // namespace datacon
