#include "analysis/adorn.h"

#include <gtest/gtest.h>

#include <string>

#include "ast/builder.h"
#include "core/database.h"
#include "core/instantiate.h"
#include "lang/interpreter.h"

namespace datacon {
namespace {

constexpr const char* kSetup = R"(
TYPE parttype = STRING;
TYPE infrontrel = RELATION OF RECORD front, back: parttype END;
TYPE aheadrel = RELATION OF RECORD head, tail: parttype END;
VAR Infront: infrontrel;

CONSTRUCTOR ahead FOR Rel: infrontrel (): aheadrel;
BEGIN EACH r IN Rel: TRUE,
      <f.front, b.tail> OF EACH f IN Rel,
      EACH b IN Rel {ahead}: f.back = b.head
END ahead;
)";

/// Instantiates `expr` against `db` and runs the adornment analysis.
AdornmentAnalysis Analyze(const Database& db, const CalcExprPtr& expr) {
  ApplicationGraph graph(&db.catalog());
  Status added = graph.AddRoots(*expr);
  EXPECT_TRUE(added.ok()) << added.ToString();
  Result<AdornmentAnalysis> analysis =
      AnalyzeAdornment(*expr, graph, db.catalog());
  EXPECT_TRUE(analysis.ok()) << analysis.status().ToString();
  return std::move(analysis).value();
}

/// `{ EACH v IN Infront {ahead}: <pred> }` over the given constructor name.
CalcExprPtr BoundQuery(const std::string& ctor, PredPtr pred) {
  return build::Union({build::IdentityBranch(
      "v", build::Constructed(build::Rel("Infront"), ctor),
      std::move(pred))});
}

TEST(Adorn, LiteralEqualityAdornsAndSpecializes) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());

  CalcExprPtr expr = BoundQuery(
      "ahead",
      build::Eq(build::FieldRef("v", "head"), build::Str("vase")));
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  const AdornNode& node = analysis.nodes[0];
  EXPECT_EQ(node.AdornmentString(), "bf");
  EXPECT_EQ(node.bound_attr, 0);
  EXPECT_TRUE(node.specializable);
  EXPECT_TRUE(analysis.any_specializable);
  EXPECT_TRUE(analysis.diagnostics.empty());

  // Branch 0 (the identity seed) pushes the restriction straight into its
  // base range; branch 1 propagates it across the equi-join hop.
  ASSERT_EQ(node.branches.size(), 2u);
  EXPECT_EQ(node.branches[0].kind, AdornBranch::Kind::kPushable);
  EXPECT_EQ(node.branches[1].kind, AdornBranch::Kind::kPropagating);
  EXPECT_FALSE(node.branches[1].transfers.empty());

  // The query-site literal seeds the relevant-value closure.
  ASSERT_EQ(node.seeds.size(), 1u);
  ASSERT_TRUE(node.seeds[0].literal.has_value());
  EXPECT_EQ(*node.seeds[0].literal, Value::String("vase"));
}

TEST(Adorn, UnconstrainedQueryStaysFree) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());

  CalcExprPtr expr = BoundQuery("ahead", build::True());
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_EQ(analysis.nodes[0].AdornmentString(), "ff");
  EXPECT_FALSE(analysis.nodes[0].specializable);
  EXPECT_FALSE(analysis.any_specializable);
  // Nothing was requested, so nothing is reported.
  EXPECT_TRUE(analysis.diagnostics.empty());
}

TEST(Adorn, TrailingSelectorConstantBindsAttribute) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());
  ASSERT_TRUE(interp
                  .Execute("SELECTOR from_head (Obj: parttype) FOR Rel: "
                           "aheadrel;\n"
                           "BEGIN EACH r IN Rel: r.head = Obj END from_head;")
                  .ok());

  // `Infront {ahead} [from_head("vase")]` — the constraint lives in the
  // trailing selector application, not in a query conjunct.
  RangePtr range = build::Selected(
      build::Constructed(build::Rel("Infront"), "ahead"), "from_head",
      {build::Str("vase")});
  CalcExprPtr expr =
      build::Union({build::IdentityBranch("v", range, build::True())});
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_EQ(analysis.nodes[0].AdornmentString(), "bf");
  EXPECT_TRUE(analysis.nodes[0].specializable);
}

TEST(Adorn, MixedUseSitesIntersectToFree) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());

  // One branch constrains head, the other leaves the application open: the
  // must-intersection over use sites drops the adornment (restricting the
  // node would starve the open site), and the dropped restriction is
  // reported because it *was* requested somewhere.
  CalcExprPtr expr = build::Union(
      {build::IdentityBranch(
           "v", build::Constructed(build::Rel("Infront"), "ahead"),
           build::Eq(build::FieldRef("v", "head"), build::Str("vase"))),
       build::IdentityBranch(
           "w", build::Constructed(build::Rel("Infront"), "ahead"),
           build::True())});
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_EQ(analysis.nodes[0].AdornmentString(), "ff");
  EXPECT_FALSE(analysis.any_specializable);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].code, kDiagAdornmentFreeJoin);
}

TEST(Adorn, NonLinearBranchReportsW220) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());
  // Both recursive bindings stay constrained through the constructor-free
  // binding f, so the adornment survives — but the branch joins *two*
  // recursive occurrences, which the magic-seed step cannot restrict.
  ASSERT_TRUE(interp
                  .Execute("CONSTRUCTOR dup FOR Rel: infrontrel (): "
                           "aheadrel;\n"
                           "BEGIN EACH r IN Rel: TRUE,\n"
                           "      <f.front, b.tail> OF EACH f IN Rel,\n"
                           "      EACH a IN Rel {dup},\n"
                           "      EACH b IN Rel {dup}: f.back = a.head "
                           "AND f.back = b.head\n"
                           "END dup;")
                  .ok());

  CalcExprPtr expr = BoundQuery(
      "dup", build::Eq(build::FieldRef("v", "head"), build::Str("vase")));
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_FALSE(analysis.nodes[0].specializable);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].code, kDiagAdornmentNonLinear);
}

TEST(Adorn, MisalignedJoinReportsW221) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());
  // The join reaches the recursive binding through its *tail*, so a bound
  // head cannot be carried into the recursion.
  ASSERT_TRUE(interp
                  .Execute("CONSTRUCTOR weird FOR Rel: infrontrel (): "
                           "aheadrel;\n"
                           "BEGIN EACH r IN Rel: TRUE,\n"
                           "      <f.front, b.tail> OF EACH f IN Rel,\n"
                           "      EACH b IN Rel {weird}: f.front = b.tail\n"
                           "END weird;")
                  .ok());

  CalcExprPtr expr = BoundQuery(
      "weird", build::Eq(build::FieldRef("v", "head"), build::Str("vase")));
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_FALSE(analysis.nodes[0].specializable);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].code, kDiagAdornmentFreeJoin);
}

TEST(Adorn, QuantifierUseSiteBlocksSpecialization) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());
  // The recursive reference sits inside a (positive) quantifier, an
  // unconstrained use site — the must-intersection empties and the dropped
  // request is reported.
  ASSERT_TRUE(interp
                  .Execute("CONSTRUCTOR guarded FOR Rel: infrontrel (): "
                           "aheadrel;\n"
                           "BEGIN EACH r IN Rel: TRUE,\n"
                           "      <f.front, f.back> OF EACH f IN Rel:\n"
                           "        SOME b IN Rel {guarded} "
                           "(f.back = b.head)\n"
                           "END guarded;")
                  .ok());

  CalcExprPtr expr = BoundQuery(
      "guarded",
      build::Eq(build::FieldRef("v", "head"), build::Str("vase")));
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_FALSE(analysis.nodes[0].specializable);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].code, kDiagAdornmentFreeJoin);
}

TEST(Adorn, NegatedUseSiteReportsW222) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());

  // The query both binds the head and re-ranges over the closure under NOT
  // — an odd-parity use site, so relevance cannot be propagated.
  CalcExprPtr expr = BoundQuery(
      "ahead",
      build::And(
          {build::Eq(build::FieldRef("v", "head"), build::Str("vase")),
           build::Not(build::Some(
               "b", build::Constructed(build::Rel("Infront"), "ahead"),
               build::Eq(build::FieldRef("v", "tail"),
                         build::FieldRef("b", "head"))))}));
  AdornmentAnalysis analysis = Analyze(db, expr);

  ASSERT_EQ(analysis.nodes.size(), 1u);
  EXPECT_FALSE(analysis.nodes[0].specializable);
  ASSERT_EQ(analysis.diagnostics.size(), 1u);
  EXPECT_EQ(analysis.diagnostics[0].code, kDiagAdornmentNegation);
}

TEST(Adorn, ToTextRendersAdornmentTable) {
  Database db;
  Interpreter interp(&db);
  ASSERT_TRUE(interp.Execute(kSetup).ok());

  CalcExprPtr expr = BoundQuery(
      "ahead",
      build::Eq(build::FieldRef("v", "head"), build::Str("vase")));
  ApplicationGraph graph(&db.catalog());
  ASSERT_TRUE(graph.AddRoots(*expr).ok());
  Result<AdornmentAnalysis> analysis =
      AnalyzeAdornment(*expr, graph, db.catalog());
  ASSERT_TRUE(analysis.ok());

  std::string text = analysis->ToText(graph);
  EXPECT_NE(text.find("adornment: bf"), std::string::npos) << text;
  EXPECT_NE(text.find("magic-seed"), std::string::npos) << text;
}

}  // namespace
}  // namespace datacon
