#include "analysis/fold.h"

#include <gtest/gtest.h>

#include "ast/builder.h"

namespace datacon {
namespace {

using build::Add;
using build::All;
using build::And;
using build::Arith;
using build::BoolLit;
using build::Cmp;
using build::Eq;
using build::False;
using build::FieldRef;
using build::In;
using build::Int;
using build::Le;
using build::Lt;
using build::Ne;
using build::Not;
using build::Or;
using build::Param;
using build::Rel;
using build::Some;
using build::Str;
using build::Sub;
using build::True;

// --- FoldTerm ---

TEST(FoldTerm, LiteralsFoldToThemselves) {
  auto v = FoldTerm(*Int(42));
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->AsInt(), 42);

  auto s = FoldTerm(*Str("hi"));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->AsString(), "hi");
}

TEST(FoldTerm, ReferencesDoNotFold) {
  EXPECT_FALSE(FoldTerm(*FieldRef("r", "a")).has_value());
  EXPECT_FALSE(FoldTerm(*Param("P")).has_value());
}

TEST(FoldTerm, IntegerArithmeticFolds) {
  auto sum = FoldTerm(*Add(Int(2), Int(3)));
  ASSERT_TRUE(sum.has_value());
  EXPECT_EQ(sum->AsInt(), 5);

  auto nested = FoldTerm(*Sub(Add(Int(10), Int(5)), Int(7)));
  ASSERT_TRUE(nested.has_value());
  EXPECT_EQ(nested->AsInt(), 8);

  auto product = FoldTerm(*Arith(ArithOp::kMul, Int(6), Int(7)));
  ASSERT_TRUE(product.has_value());
  EXPECT_EQ(product->AsInt(), 42);

  auto quotient = FoldTerm(*Arith(ArithOp::kDiv, Int(7), Int(2)));
  ASSERT_TRUE(quotient.has_value());
  EXPECT_EQ(quotient->AsInt(), 3);

  auto remainder = FoldTerm(*Arith(ArithOp::kMod, Int(7), Int(2)));
  ASSERT_TRUE(remainder.has_value());
  EXPECT_EQ(remainder->AsInt(), 1);
}

TEST(FoldTerm, DivisionByZeroStaysUnfoldable) {
  EXPECT_FALSE(FoldTerm(*Arith(ArithOp::kDiv, Int(1), Int(0))).has_value());
  EXPECT_FALSE(FoldTerm(*Arith(ArithOp::kMod, Int(1), Int(0))).has_value());
}

TEST(FoldTerm, ArithmeticOnNonIntegersStaysUnfoldable) {
  EXPECT_FALSE(FoldTerm(*Add(Str("a"), Str("b"))).has_value());
  EXPECT_FALSE(FoldTerm(*Add(Int(1), Str("b"))).has_value());
  EXPECT_FALSE(FoldTerm(*Add(Int(1), FieldRef("r", "a"))).has_value());
}

// --- FoldPred ---

TEST(FoldPred, BooleanLiterals) {
  EXPECT_EQ(FoldPred(*True()), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*False()), FoldOutcome::kFalse);
}

TEST(FoldPred, ConstantComparisons) {
  EXPECT_EQ(FoldPred(*Eq(Int(1), Int(1))), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Eq(Int(1), Int(2))), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*Ne(Int(1), Int(2))), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Lt(Int(1), Int(2))), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Le(Int(2), Int(1))), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*Cmp(CompareOp::kGt, Str("b"), Str("a"))),
            FoldOutcome::kTrue);
  // Folded arithmetic feeds into the comparison.
  EXPECT_EQ(FoldPred(*Eq(Add(Int(2), Int(2)), Int(4))), FoldOutcome::kTrue);
}

TEST(FoldPred, MixedTypeComparisonStaysUnknown) {
  // Value::Compare aborts on cross-type operands; the folder must guard.
  EXPECT_EQ(FoldPred(*Eq(Int(1), Str("1"))), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*Lt(BoolLit(true), Int(1))), FoldOutcome::kUnknown);
}

TEST(FoldPred, NonConstantComparisonStaysUnknown) {
  EXPECT_EQ(FoldPred(*Eq(FieldRef("r", "a"), Int(1))), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*Eq(Param("P"), Param("Q"))), FoldOutcome::kUnknown);
}

TEST(FoldPred, ReflexiveComparisonsFoldSyntactically) {
  EXPECT_EQ(FoldPred(*Eq(FieldRef("r", "a"), FieldRef("r", "a"))),
            FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Le(FieldRef("r", "a"), FieldRef("r", "a"))),
            FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Cmp(CompareOp::kGe, Param("P"), Param("P"))),
            FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Ne(FieldRef("r", "a"), FieldRef("r", "a"))),
            FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*Lt(FieldRef("r", "a"), FieldRef("r", "a"))),
            FoldOutcome::kFalse);
  // Different field of the same variable: genuinely unknown.
  EXPECT_EQ(FoldPred(*Eq(FieldRef("r", "a"), FieldRef("r", "b"))),
            FoldOutcome::kUnknown);
}

TEST(FoldPred, ThreeValuedAnd) {
  PredPtr unknown = Eq(FieldRef("r", "a"), Int(1));
  EXPECT_EQ(FoldPred(*And({True(), True()})), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*And({True(), False()})), FoldOutcome::kFalse);
  // One FALSE conjunct decides the AND even next to unknowns.
  EXPECT_EQ(FoldPred(*And({unknown, False()})), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*And({unknown, True()})), FoldOutcome::kUnknown);
}

TEST(FoldPred, ThreeValuedOr) {
  PredPtr unknown = Eq(FieldRef("r", "a"), Int(1));
  EXPECT_EQ(FoldPred(*Or({False(), False()})), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*Or({unknown, True()})), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Or({unknown, False()})), FoldOutcome::kUnknown);
}

TEST(FoldPred, MixedUnknownAndErrorOperands) {
  // Two flavours of undecidable operand: a data-dependent comparison and a
  // comparison whose term *errors* at fold time (division by zero). The
  // three-valued connectives must treat both as unknown — an absorbing
  // operand still decides the result, everything else stays kUnknown.
  PredPtr unknown = Eq(FieldRef("r", "a"), Int(1));
  PredPtr error = Eq(Arith(ArithOp::kDiv, Int(1), Int(0)), Int(1));
  PredPtr mod_error = Ne(Arith(ArithOp::kMod, Int(7), Int(0)), Int(0));
  EXPECT_EQ(FoldPred(*error), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*mod_error), FoldOutcome::kUnknown);

  EXPECT_EQ(FoldPred(*And({error, False()})), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*And({error, unknown})), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*And({error, True()})), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*And({error, mod_error})), FoldOutcome::kUnknown);

  EXPECT_EQ(FoldPred(*Or({error, True()})), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Or({error, unknown})), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*Or({error, False()})), FoldOutcome::kUnknown);

  EXPECT_EQ(FoldPred(*Not(error)), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*Not(Not(error))), FoldOutcome::kUnknown);
}

TEST(FoldPred, MixedOperandsNestDecidably) {
  PredPtr unknown = Eq(FieldRef("r", "a"), Int(1));
  PredPtr error = Eq(Arith(ArithOp::kDiv, Int(1), Int(0)), Int(1));
  // Absorption cuts through nested mixtures of unknown and error operands.
  EXPECT_EQ(FoldPred(*And({Or({error, unknown}), False()})),
            FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*Or({And({error, unknown}), True()})),
            FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Not(And({error, False()}))), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Not(Or({unknown, True()}))), FoldOutcome::kFalse);
  // ...but without an absorbing operand the mixture stays undecided.
  EXPECT_EQ(FoldPred(*And({Or({error, False()}), True()})),
            FoldOutcome::kUnknown);
}

TEST(FoldPred, NotInverts) {
  EXPECT_EQ(FoldPred(*Not(True())), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*Not(False())), FoldOutcome::kTrue);
  EXPECT_EQ(FoldPred(*Not(Eq(FieldRef("r", "a"), Int(1)))),
            FoldOutcome::kUnknown);
}

TEST(FoldPred, QuantifierRules) {
  // SOME over a FALSE body is vacuously FALSE; ALL over a TRUE body is
  // vacuously TRUE — both independent of the range's contents.
  EXPECT_EQ(FoldPred(*Some("t", Rel("R"), False())), FoldOutcome::kFalse);
  EXPECT_EQ(FoldPred(*All("t", Rel("R"), True())), FoldOutcome::kTrue);
  // The converse directions depend on whether the range is empty.
  EXPECT_EQ(FoldPred(*Some("t", Rel("R"), True())), FoldOutcome::kUnknown);
  EXPECT_EQ(FoldPred(*All("t", Rel("R"), False())), FoldOutcome::kUnknown);
}

TEST(FoldPred, MembershipStaysUnknown) {
  std::vector<TermPtr> tuple;
  tuple.push_back(Int(1));
  EXPECT_EQ(FoldPred(*In(std::move(tuple), Rel("R"))), FoldOutcome::kUnknown);
}

}  // namespace
}  // namespace datacon
