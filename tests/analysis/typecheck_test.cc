// Unit tests for the whole-program type inference (analysis/typecheck.h):
// the lattice fixpoint through constructor recursion, the inferred-schema
// surface, and every new diagnostic (E130/E131/E132, W240/W241/W242). The
// declarations are built programmatically, so level-1's own checks never
// interfere — each finding here comes from the inference pass alone.

#include "analysis/typecheck.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "ast/builder.h"
#include "core/catalog.h"

namespace datacon {
namespace {

using namespace build;  // NOLINT: terse AST construction

std::vector<std::string> Codes(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) out.push_back(d.code);
  return out;
}

bool HasCode(const std::vector<Diagnostic>& diags, std::string_view code) {
  return std::any_of(diags.begin(), diags.end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& FindCode(const std::vector<Diagnostic>& diags,
                           std::string_view code) {
  for (const Diagnostic& d : diags) {
    if (d.code == code) return d;
  }
  static Diagnostic missing;
  ADD_FAILURE() << "no diagnostic with code " << code;
  return missing;
}

ConstructorDeclPtr MakeCtor(std::string name, std::string base_type,
                            std::string result_type, CalcExprPtr body) {
  return std::make_shared<ConstructorDecl>(
      std::move(name), FormalRelation{"Rel", std::move(base_type)},
      std::vector<FormalRelation>{}, std::vector<FormalScalar>{},
      std::move(result_type), std::move(body));
}

class TypecheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .DefineRelationType(
                        "edgerel", Schema({{"src", ValueType::kInt},
                                           {"dst", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .DefineRelationType(
                        "pathrel", Schema({{"src", ValueType::kInt},
                                           {"dst", ValueType::kInt},
                                           {"len", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(catalog_
                    .DefineRelationType(
                        "itemrel", Schema({{"name", ValueType::kString},
                                           {"qty", ValueType::kInt}}))
                    .ok());
    ASSERT_TRUE(catalog_.CreateRelation("E", "edgerel").ok());
    ASSERT_TRUE(catalog_.CreateRelation("Item", "itemrel").ok());
  }

  Catalog catalog_;
};

// --- Inference through recursion ---------------------------------------

TEST_F(TypecheckTest, BoundedPathClosureInfersDeclaredSchema) {
  // The arithmetic len column forces inference *through* the recursion: the
  // recursive f.len contribution is only known once the base branch has
  // seeded it.
  auto body = Union(
      {MakeBranch({FieldRef("r", "src"), FieldRef("r", "dst"), Int(1)},
                  {Each("r", Rel("Rel"))}, True()),
       MakeBranch({FieldRef("f", "src"), FieldRef("b", "dst"),
                   Add(FieldRef("f", "len"), Int(1))},
                  {Each("f", Constructed(Rel("Rel"), "paths")),
                   Each("b", Rel("Rel"))},
                  And({Eq(FieldRef("f", "dst"), FieldRef("b", "src")),
                       Lt(FieldRef("f", "len"), Int(9))}))});
  ASSERT_TRUE(
      catalog_.DefineConstructor(MakeCtor("paths", "edgerel", "pathrel", body))
          .ok());

  TypeInference inference = InferCatalogTypes(catalog_);
  EXPECT_TRUE(inference.diagnostics.empty()) << Codes(inference.diagnostics)[0];
  ASSERT_EQ(inference.constructors.count("paths"), 1u);
  EXPECT_EQ(inference.constructors["paths"].ToString(),
            "RECORD src: INTEGER; dst: INTEGER; len: INTEGER END");
}

TEST_F(TypecheckTest, MutualRecursionInfersBothMembers) {
  // even/odd-style mutual recursion: each member's cells depend on the
  // other's, so the group fixpoint must iterate the SCC to completion.
  auto even_body = Union(
      {IdentityBranch("r", Rel("Rel"), True()),
       MakeBranch({FieldRef("a", "src"), FieldRef("o", "dst")},
                  {Each("a", Rel("Rel")),
                   Each("o", Constructed(Rel("Rel"), "odd"))},
                  Eq(FieldRef("a", "dst"), FieldRef("o", "src")))});
  auto odd_body = Union(
      {MakeBranch({FieldRef("a", "src"), FieldRef("e", "dst")},
                  {Each("a", Rel("Rel")),
                   Each("e", Constructed(Rel("Rel"), "even"))},
                  Eq(FieldRef("a", "dst"), FieldRef("e", "src")))});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("even", "edgerel", "edgerel", even_body),
      MakeCtor("odd", "edgerel", "edgerel", odd_body)};

  EXPECT_TRUE(TypecheckConstructorGroup(group, catalog_).empty());
}

// --- E130: conflicts and declared mismatches ---------------------------

TEST_F(TypecheckTest, DeclaredMismatchIsE130) {
  // An INTEGER flows into the declared STRING attribute `name`.
  auto body = Union({MakeBranch({FieldRef("r", "qty"), FieldRef("r", "qty")},
                                {Each("r", Rel("Rel"))}, True())});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("mislabeled", "itemrel", "itemrel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagTypeConflict)) << diags.size();
  const Diagnostic& d = FindCode(diags, kDiagTypeConflict);
  EXPECT_EQ(d.severity, Severity::kError);
  EXPECT_NE(d.message.find("declared STRING"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("'r.qty'"), std::string::npos) << d.message;
}

TEST_F(TypecheckTest, CrossBranchConflictIsE130WithBothOrigins) {
  // Branch one sends a STRING into position 1, branch two an INTEGER; the
  // conflict message must name both contributions.
  auto body = Union(
      {MakeBranch({FieldRef("r", "name"), FieldRef("r", "name")},
                  {Each("r", Rel("Rel"))}, True()),
       MakeBranch({FieldRef("r", "name"), FieldRef("r", "qty")},
                  {Each("r", Rel("Rel"))}, True())});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("mixed", "itemrel", "itemrel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagTypeConflict));
  const Diagnostic& d = FindCode(diags, kDiagTypeConflict);
  EXPECT_NE(d.message.find("conflicts with"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("'r.name'"), std::string::npos) << d.message;
  EXPECT_NE(d.message.find("'r.qty'"), std::string::npos) << d.message;
}

// --- E131 / W240: predicate and term walks -----------------------------

TEST_F(TypecheckTest, ArithmeticOverStringsIsE131) {
  auto body = Union(
      {MakeBranch({FieldRef("r", "name"),
                   Add(FieldRef("r", "name"), Int(1))},
                  {Each("r", Rel("Rel"))}, True())});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("sums", "itemrel", "itemrel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagIllTypedOperation));
  EXPECT_EQ(FindCode(diags, kDiagIllTypedOperation).severity,
            Severity::kError);
}

TEST_F(TypecheckTest, DisjointEqualityIsW240AndStaticallyFalse) {
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"), Eq(FieldRef("r", "name"), FieldRef("r", "qty")))});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("never", "itemrel", "itemrel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagDisjointComparison));
  const Diagnostic& d = FindCode(diags, kDiagDisjointComparison);
  EXPECT_EQ(d.severity, Severity::kWarning);
  EXPECT_NE(d.message.find("statically always FALSE"), std::string::npos)
      << d.message;
}

TEST_F(TypecheckTest, OrderedComparisonAcrossTypesIsE131) {
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"), Lt(FieldRef("r", "name"), FieldRef("r", "qty")))});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("ordered", "itemrel", "itemrel", body)};

  EXPECT_TRUE(HasCode(TypecheckConstructorGroup(group, catalog_),
                      kDiagIllTypedOperation));
}

TEST_F(TypecheckTest, QuantifierBodyIsChecked) {
  // The disjoint comparison hides inside a SOME body; the walk must bind
  // the quantified variable's row to see it.
  auto body = Union({IdentityBranch(
      "r", Rel("Rel"),
      Some("s", Rel("Item"), Eq(FieldRef("s", "name"), FieldRef("r", "qty"))))});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("quant", "itemrel", "itemrel", body)};

  EXPECT_TRUE(HasCode(TypecheckConstructorGroup(group, catalog_),
                      kDiagDisjointComparison));
}

// --- W241: unconstrained attributes ------------------------------------

TEST_F(TypecheckTest, UnconstrainedAttributesAreW241) {
  // No base case: the recursion never seeds the cells, so every attribute
  // stays unknown.
  auto body = Union({IdentityBranch(
      "p", Constructed(Rel("Rel"), "loop"), True())});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("loop", "edgerel", "edgerel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  std::vector<std::string> codes = Codes(diags);
  EXPECT_EQ(std::count(codes.begin(), codes.end(),
                       std::string(kDiagUnconstrainedAttribute)),
            2);
}

// --- E132: the promoted capture-shape arity error ----------------------

TEST_F(TypecheckTest, NonBinaryCaptureShapeIsE132AtDefineTime) {
  // The transitive-closure capture shape over a ternary base (the base
  // branch projects two of three columns) used to fail only at evaluation
  // time, inside capture.cc. The inference pass reports it statically.
  ASSERT_TRUE(catalog_
                  .DefineRelationType(
                      "widerel", Schema({{"a", ValueType::kInt},
                                         {"b", ValueType::kInt},
                                         {"c", ValueType::kInt}}))
                  .ok());
  auto body = Union(
      {MakeBranch({FieldRef("r", "a"), FieldRef("r", "b")},
                  {Each("r", Rel("Rel"))}, True()),
       MakeBranch({FieldRef("f", "a"), FieldRef("t", "dst")},
                  {Each("f", Rel("Rel")),
                   Each("t", Constructed(Rel("Rel"), "tc3"))},
                  Eq(FieldRef("f", "b"), FieldRef("t", "src")))});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("tc3", "widerel", "edgerel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagCaptureNonBinary));
  EXPECT_EQ(FindCode(diags, kDiagCaptureNonBinary).severity, Severity::kError);
}

// --- Queries and selectors ---------------------------------------------

TEST_F(TypecheckTest, UnionNameDisagreementIsW242) {
  ASSERT_TRUE(catalog_
                  .DefineRelationType(
                      "pairrel", Schema({{"head", ValueType::kInt},
                                         {"tail", ValueType::kInt}}))
                  .ok());
  ASSERT_TRUE(catalog_.CreateRelation("P", "pairrel").ok());
  auto expr = Union({IdentityBranch("e", Rel("E"), True()),
                     IdentityBranch("p", Rel("P"), True())});

  std::vector<Diagnostic> diags = TypecheckQueryExpr(*expr, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagUnionNameMismatch));
  EXPECT_NE(FindCode(diags, kDiagUnionNameMismatch)
                .message.find("positional name"),
            std::string::npos);
}

TEST_F(TypecheckTest, CrossBranchQueryConflictIsE130) {
  auto expr = Union(
      {MakeBranch({FieldRef("r", "qty")}, {Each("r", Rel("Item"))}, True()),
       MakeBranch({FieldRef("r", "name")}, {Each("r", Rel("Item"))}, True())});

  EXPECT_TRUE(HasCode(TypecheckQueryExpr(*expr, catalog_), kDiagTypeConflict));
}

TEST_F(TypecheckTest, PlaceholderTypesFlowIntoQueryChecks) {
  auto expr = Union({IdentityBranch(
      "r", Rel("Item"), Eq(FieldRef("r", "qty"), Param("needle")))});

  EXPECT_TRUE(TypecheckQueryExpr(*expr, catalog_,
                                 {{"needle", ValueType::kInt}})
                  .empty());
  EXPECT_TRUE(HasCode(TypecheckQueryExpr(*expr, catalog_,
                                         {{"needle", ValueType::kString}}),
                      kDiagDisjointComparison));
}

TEST_F(TypecheckTest, SelectorBodyIsChecked) {
  auto decl = SelectorDecl(
      "bogus", FormalRelation{"Rel", "itemrel"}, {}, "r",
      Eq(FieldRef("r", "name"), Int(7)));

  EXPECT_TRUE(HasCode(TypecheckSelector(decl, catalog_),
                      kDiagDisjointComparison));
}

TEST_F(TypecheckTest, SelectorParameterSubstitutionChecksArgumentTypes) {
  // A STRING literal flows into the selector's INTEGER formal.
  auto sel = std::make_shared<SelectorDecl>(
      "by_qty", FormalRelation{"Rel", "itemrel"},
      std::vector<FormalScalar>{{"Q", ValueType::kInt}}, "r",
      Eq(FieldRef("r", "qty"), Param("Q")));
  ASSERT_TRUE(catalog_.DefineSelector(sel).ok());

  auto body = Union({IdentityBranch(
      "r", Selected(Rel("Rel"), "by_qty", {Str("three")}), True())});
  std::vector<ConstructorDeclPtr> group = {
      MakeCtor("picky", "itemrel", "itemrel", body)};

  std::vector<Diagnostic> diags = TypecheckConstructorGroup(group, catalog_);
  ASSERT_TRUE(HasCode(diags, kDiagTypeConflict));
  EXPECT_NE(FindCode(diags, kDiagTypeConflict).message.find("selector"),
            std::string::npos);
}

}  // namespace
}  // namespace datacon
