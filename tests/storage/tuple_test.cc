#include "storage/tuple.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace datacon {
namespace {

TEST(Tuple, Basics) {
  Tuple t({Value::String("vase"), Value::String("table")});
  EXPECT_EQ(t.arity(), 2);
  EXPECT_EQ(t.value(0), Value::String("vase"));
  EXPECT_EQ(t.value(1), Value::String("table"));
  EXPECT_EQ(Tuple().arity(), 0);
}

TEST(Tuple, Equality) {
  Tuple a({Value::Int(1), Value::Int(2)});
  Tuple b({Value::Int(1), Value::Int(2)});
  Tuple c({Value::Int(2), Value::Int(1)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Tuple({Value::Int(1)}));
}

TEST(Tuple, Project) {
  Tuple t({Value::Int(10), Value::Int(20), Value::Int(30)});
  EXPECT_EQ(t.Project({2, 0}), Tuple({Value::Int(30), Value::Int(10)}));
  EXPECT_EQ(t.Project({}), Tuple());
  EXPECT_EQ(t.Project({1, 1}), Tuple({Value::Int(20), Value::Int(20)}));
}

TEST(Tuple, Concat) {
  Tuple a({Value::Int(1)});
  Tuple b({Value::String("x"), Value::Bool(true)});
  Tuple ab = a.Concat(b);
  EXPECT_EQ(ab.arity(), 3);
  EXPECT_EQ(ab.value(0), Value::Int(1));
  EXPECT_EQ(ab.value(2), Value::Bool(true));
  EXPECT_EQ(Tuple().Concat(a), a);
}

TEST(Tuple, LexicographicOrder) {
  Tuple a({Value::Int(1), Value::Int(9)});
  Tuple b({Value::Int(2), Value::Int(0)});
  EXPECT_LT(a, b);
  EXPECT_FALSE(b < a);
  EXPECT_LT(Tuple({Value::Int(1)}), Tuple({Value::Int(1), Value::Int(0)}));
}

TEST(Tuple, HashingInUnorderedSet) {
  std::unordered_set<Tuple, TupleHash> set;
  set.insert(Tuple({Value::Int(1), Value::Int(2)}));
  set.insert(Tuple({Value::Int(1), Value::Int(2)}));
  set.insert(Tuple({Value::Int(2), Value::Int(1)}));
  EXPECT_EQ(set.size(), 2u);
}

TEST(Tuple, ToString) {
  Tuple t({Value::String("a"), Value::Int(3)});
  EXPECT_EQ(t.ToString(), "<\"a\", 3>");
  EXPECT_EQ(Tuple().ToString(), "<>");
}

}  // namespace
}  // namespace datacon
