#include "storage/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace datacon {
namespace {

Schema MixedSchema() {
  return Schema({{"name", ValueType::kString},
                 {"count", ValueType::kInt},
                 {"flag", ValueType::kBool}});
}

Relation SampleRelation() {
  Relation r(MixedSchema());
  EXPECT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(3),
                              Value::Bool(true)}))
                  .ok());
  EXPECT_TRUE(r.Insert(Tuple({Value::String("ta,ble"), Value::Int(-7),
                              Value::Bool(false)}))
                  .ok());
  EXPECT_TRUE(r.Insert(Tuple({Value::String("say \"hi\""), Value::Int(0),
                              Value::Bool(true)}))
                  .ok());
  return r;
}

TEST(Csv, WriteProducesHeaderAndSortedRows) {
  Relation r = SampleRelation();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, &out).ok());
  std::string text = out.str();
  EXPECT_EQ(text.substr(0, text.find('\n')), "name,count,flag");
  EXPECT_NE(text.find("\"ta,ble\",-7,FALSE"), std::string::npos);
  EXPECT_NE(text.find("\"say \"\"hi\"\"\",0,TRUE"), std::string::npos);
}

TEST(Csv, RoundTrip) {
  Relation r = SampleRelation();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, &out).ok());
  std::istringstream in(out.str());
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->SameTuples(r));
}

TEST(Csv, EmptyRelationRoundTrip) {
  Relation r(MixedSchema());
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, &out).ok());
  std::istringstream in(out.str());
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded->empty());
}

TEST(Csv, HeaderMismatchRejected) {
  std::istringstream in("wrong,count,flag\n");
  EXPECT_EQ(ReadCsv(&in, MixedSchema()).status().code(),
            StatusCode::kParseError);
  std::istringstream short_header("name,count\n");
  EXPECT_EQ(ReadCsv(&short_header, MixedSchema()).status().code(),
            StatusCode::kParseError);
}

TEST(Csv, MalformedCellsRejected) {
  std::istringstream bad_int("name,count,flag\n\"x\",abc,TRUE\n");
  EXPECT_EQ(ReadCsv(&bad_int, MixedSchema()).status().code(),
            StatusCode::kParseError);
  std::istringstream bad_bool("name,count,flag\n\"x\",1,MAYBE\n");
  EXPECT_EQ(ReadCsv(&bad_bool, MixedSchema()).status().code(),
            StatusCode::kParseError);
  std::istringstream bad_arity("name,count,flag\n\"x\",1\n");
  EXPECT_EQ(ReadCsv(&bad_arity, MixedSchema()).status().code(),
            StatusCode::kParseError);
  std::istringstream bad_quote("name,count,flag\n\"x,1,TRUE\n");
  EXPECT_EQ(ReadCsv(&bad_quote, MixedSchema()).status().code(),
            StatusCode::kParseError);
}

TEST(Csv, MissingHeaderRejected) {
  std::istringstream in("");
  EXPECT_EQ(ReadCsv(&in, MixedSchema()).status().code(),
            StatusCode::kParseError);
}

TEST(Csv, KeyConstraintAppliesOnLoad) {
  Schema keyed({{"name", ValueType::kString}, {"count", ValueType::kInt}},
               {0});
  std::istringstream in("name,count\n\"a\",1\n\"a\",2\n");
  EXPECT_EQ(ReadCsv(&in, keyed).status().code(), StatusCode::kKeyViolation);
}

TEST(Csv, BlankLinesSkipped) {
  std::istringstream in("name,count,flag\n\n\"a\",1,TRUE\n\n");
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(Csv, CrlfLineEndingsAccepted) {
  // Files written on Windows terminate lines with \r\n; getline leaves the
  // \r on the line and the reader must strip it — including on the header
  // and on a blank \r\n line.
  std::istringstream in(
      "name,count,flag\r\n\"a\",1,TRUE\r\n\r\n\"b\",-2,FALSE\r\n");
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);
  EXPECT_TRUE(loaded->Contains(
      Tuple({Value::String("b"), Value::Int(-2), Value::Bool(false)})));
}

TEST(Csv, CarriageReturnInsideQuotedFieldSurvives) {
  // Only the line terminator's \r may be stripped; a literal \r embedded
  // in a quoted string field is data.
  std::istringstream in("name,count,flag\n\"a\rb\",1,TRUE\n");
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Contains(
      Tuple({Value::String("a\rb"), Value::Int(1), Value::Bool(true)})));
}

TEST(Csv, Utf8BomStripped) {
  std::istringstream in("\xEF\xBB\xBFname,count,flag\n\"a\",1,TRUE\n");
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(Csv, BomOnlyStrippedFromHeader) {
  // A BOM-looking byte sequence in a data cell is content, not an
  // encoding marker.
  std::istringstream in("name,count,flag\n\"\xEF\xBB\xBFx\",1,TRUE\n");
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->Contains(Tuple(
      {Value::String("\xEF\xBB\xBFx"), Value::Int(1), Value::Bool(true)})));
}

TEST(Csv, CrlfRoundTrip) {
  Relation r = SampleRelation();
  std::ostringstream out;
  ASSERT_TRUE(WriteCsv(r, &out).ok());
  // Simulate a Windows transfer: rewrite every \n as \r\n, then re-read.
  std::string text = out.str();
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += "\r\n";
    else crlf.push_back(c);
  }
  std::istringstream in(crlf);
  Result<Relation> loaded = ReadCsv(&in, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->SameTuples(r));
}

TEST(Csv, FileRoundTrip) {
  Relation r = SampleRelation();
  const std::string path = ::testing::TempDir() + "/datacon_csv_test.csv";
  ASSERT_TRUE(SaveCsvFile(r, path).ok());
  Result<Relation> loaded = LoadCsvFile(path, MixedSchema());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_TRUE(loaded->SameTuples(r));
  EXPECT_EQ(LoadCsvFile("/nonexistent/path.csv", MixedSchema())
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace datacon
