#include "storage/relation.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

Schema SetSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
}

Schema KeyedSchema() {
  // `RELATION part OF objecttype` — the key identifies the element.
  return Schema({{"part", ValueType::kString}, {"weight", ValueType::kInt}},
                {0});
}

TEST(Relation, InsertAndContains) {
  Relation r(SetSchema());
  EXPECT_TRUE(r.empty());
  Result<bool> grew = r.Insert(Tuple({Value::Int(1), Value::Int(2)}));
  ASSERT_TRUE(grew.ok());
  EXPECT_TRUE(grew.value());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_FALSE(r.Contains(Tuple({Value::Int(2), Value::Int(1)})));
}

TEST(Relation, DuplicateInsertIsNoOp) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  Result<bool> again = r.Insert(Tuple({Value::Int(1), Value::Int(2)}));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, InsertRejectsArityMismatch) {
  Relation r(SetSchema());
  EXPECT_EQ(r.Insert(Tuple({Value::Int(1)})).status().code(),
            StatusCode::kTypeError);
}

TEST(Relation, InsertRejectsTypeMismatch) {
  Relation r(SetSchema());
  EXPECT_EQ(r.Insert(Tuple({Value::Int(1), Value::String("x")}))
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST(Relation, KeyConstraintEnforced) {
  // Section 2.2: two tuples agreeing on the key but differing elsewhere
  // violate the annotated set-type definition.
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(3)})).ok());
  Result<bool> conflict =
      r.Insert(Tuple({Value::String("vase"), Value::Int(4)}));
  EXPECT_EQ(conflict.status().code(), StatusCode::kKeyViolation);
  EXPECT_EQ(r.size(), 1u);
  // Re-inserting the identical tuple stays a no-op.
  Result<bool> same = r.Insert(Tuple({Value::String("vase"), Value::Int(3)}));
  ASSERT_TRUE(same.ok());
  EXPECT_FALSE(same.value());
}

TEST(Relation, KeyFreedByErase) {
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(3)})).ok());
  EXPECT_TRUE(r.Erase(Tuple({Value::String("vase"), Value::Int(3)})));
  EXPECT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(4)})).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, EraseMissingReturnsFalse) {
  Relation r(SetSchema());
  EXPECT_FALSE(r.Erase(Tuple({Value::Int(1), Value::Int(2)})));
}

TEST(Relation, InsertAllChecksCompatibility) {
  Relation r(SetSchema());
  Relation strings(
      Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}));
  ASSERT_TRUE(
      strings.Insert(Tuple({Value::String("a"), Value::String("b")})).ok());
  EXPECT_EQ(r.InsertAll(strings).code(), StatusCode::kTypeError);

  Relation ints(SetSchema());
  ASSERT_TRUE(ints.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  ASSERT_TRUE(ints.Insert(Tuple({Value::Int(3), Value::Int(4)})).ok());
  EXPECT_TRUE(r.InsertAll(ints).ok());
  EXPECT_EQ(r.size(), 2u);
}

TEST(Relation, ClearKeepsSchema) {
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("a"), Value::Int(1)})).ok());
  r.Clear();
  EXPECT_TRUE(r.empty());
  // The key constraint still applies after Clear.
  ASSERT_TRUE(r.Insert(Tuple({Value::String("a"), Value::Int(2)})).ok());
  EXPECT_EQ(r.Insert(Tuple({Value::String("a"), Value::Int(3)}))
                .status()
                .code(),
            StatusCode::kKeyViolation);
}

TEST(Relation, SameTuples) {
  Relation a(SetSchema());
  Relation b(SetSchema());
  EXPECT_TRUE(a.SameTuples(b));
  ASSERT_TRUE(a.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_FALSE(a.SameTuples(b));
  ASSERT_TRUE(b.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_TRUE(a.SameTuples(b));
  ASSERT_TRUE(b.Insert(Tuple({Value::Int(5), Value::Int(6)})).ok());
  EXPECT_FALSE(a.SameTuples(b));
}

TEST(Relation, SortedTuplesIsDeterministic) {
  Relation r(SetSchema());
  for (int i : {5, 3, 9, 1}) {
    ASSERT_TRUE(r.Insert(Tuple({Value::Int(i), Value::Int(0)})).ok());
  }
  std::vector<Tuple> sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].value(0).AsInt(), 1);
  EXPECT_EQ(sorted[3].value(0).AsInt(), 9);
}

TEST(Relation, ToStringSortedForm) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(2), Value::Int(0)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(0)})).ok());
  EXPECT_EQ(r.ToString(), "{<1, 0>, <2, 0>}");
}

TEST(Relation, CopySemantics) {
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("a"), Value::Int(1)})).ok());
  Relation copy = r;
  ASSERT_TRUE(copy.Insert(Tuple({Value::String("b"), Value::Int(2)})).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  // The copy's key index is independent too.
  EXPECT_EQ(copy.Insert(Tuple({Value::String("b"), Value::Int(9)}))
                .status()
                .code(),
            StatusCode::kKeyViolation);
}

}  // namespace
}  // namespace datacon
