#include "storage/relation.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

Schema SetSchema() {
  return Schema({{"a", ValueType::kInt}, {"b", ValueType::kInt}});
}

Schema KeyedSchema() {
  // `RELATION part OF objecttype` — the key identifies the element.
  return Schema({{"part", ValueType::kString}, {"weight", ValueType::kInt}},
                {0});
}

TEST(Relation, InsertAndContains) {
  Relation r(SetSchema());
  EXPECT_TRUE(r.empty());
  Result<bool> grew = r.Insert(Tuple({Value::Int(1), Value::Int(2)}));
  ASSERT_TRUE(grew.ok());
  EXPECT_TRUE(grew.value());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_TRUE(r.Contains(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_FALSE(r.Contains(Tuple({Value::Int(2), Value::Int(1)})));
}

TEST(Relation, DuplicateInsertIsNoOp) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  Result<bool> again = r.Insert(Tuple({Value::Int(1), Value::Int(2)}));
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again.value());
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, InsertRejectsArityMismatch) {
  Relation r(SetSchema());
  EXPECT_EQ(r.Insert(Tuple({Value::Int(1)})).status().code(),
            StatusCode::kTypeError);
}

TEST(Relation, InsertRejectsTypeMismatch) {
  Relation r(SetSchema());
  EXPECT_EQ(r.Insert(Tuple({Value::Int(1), Value::String("x")}))
                .status()
                .code(),
            StatusCode::kTypeError);
}

TEST(Relation, KeyConstraintEnforced) {
  // Section 2.2: two tuples agreeing on the key but differing elsewhere
  // violate the annotated set-type definition.
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(3)})).ok());
  Result<bool> conflict =
      r.Insert(Tuple({Value::String("vase"), Value::Int(4)}));
  EXPECT_EQ(conflict.status().code(), StatusCode::kKeyViolation);
  EXPECT_EQ(r.size(), 1u);
  // Re-inserting the identical tuple stays a no-op.
  Result<bool> same = r.Insert(Tuple({Value::String("vase"), Value::Int(3)}));
  ASSERT_TRUE(same.ok());
  EXPECT_FALSE(same.value());
}

TEST(Relation, KeyFreedByErase) {
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(3)})).ok());
  EXPECT_TRUE(r.Erase(Tuple({Value::String("vase"), Value::Int(3)})));
  EXPECT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(4)})).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(Relation, EraseMissingReturnsFalse) {
  Relation r(SetSchema());
  EXPECT_FALSE(r.Erase(Tuple({Value::Int(1), Value::Int(2)})));
}

TEST(Relation, InsertAllChecksCompatibility) {
  Relation r(SetSchema());
  Relation strings(
      Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}));
  ASSERT_TRUE(
      strings.Insert(Tuple({Value::String("a"), Value::String("b")})).ok());
  EXPECT_EQ(r.InsertAll(strings).code(), StatusCode::kTypeError);

  Relation ints(SetSchema());
  ASSERT_TRUE(ints.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  ASSERT_TRUE(ints.Insert(Tuple({Value::Int(3), Value::Int(4)})).ok());
  EXPECT_TRUE(r.InsertAll(ints).ok());
  EXPECT_EQ(r.size(), 2u);
}

TEST(Relation, ClearKeepsSchema) {
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("a"), Value::Int(1)})).ok());
  r.Clear();
  EXPECT_TRUE(r.empty());
  // The key constraint still applies after Clear.
  ASSERT_TRUE(r.Insert(Tuple({Value::String("a"), Value::Int(2)})).ok());
  EXPECT_EQ(r.Insert(Tuple({Value::String("a"), Value::Int(3)}))
                .status()
                .code(),
            StatusCode::kKeyViolation);
}

TEST(Relation, SameTuples) {
  Relation a(SetSchema());
  Relation b(SetSchema());
  EXPECT_TRUE(a.SameTuples(b));
  ASSERT_TRUE(a.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_FALSE(a.SameTuples(b));
  ASSERT_TRUE(b.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_TRUE(a.SameTuples(b));
  ASSERT_TRUE(b.Insert(Tuple({Value::Int(5), Value::Int(6)})).ok());
  EXPECT_FALSE(a.SameTuples(b));
}

TEST(Relation, SortedTuplesIsDeterministic) {
  Relation r(SetSchema());
  for (int i : {5, 3, 9, 1}) {
    ASSERT_TRUE(r.Insert(Tuple({Value::Int(i), Value::Int(0)})).ok());
  }
  std::vector<Tuple> sorted = r.SortedTuples();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].value(0).AsInt(), 1);
  EXPECT_EQ(sorted[3].value(0).AsInt(), 9);
}

TEST(Relation, ToStringSortedForm) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(2), Value::Int(0)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(0)})).ok());
  EXPECT_EQ(r.ToString(), "{<1, 0>, <2, 0>}");
}

TEST(Relation, InsertAllIsAtomicOnKeyViolation) {
  // Regression: InsertAll used to apply tuples one by one and return on the
  // first key violation, leaving the earlier tuples of the batch behind.
  // The whole batch is now validated first — on failure nothing changes.
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("vase"), Value::Int(3)})).ok());
  const uint64_t generation = r.generation();

  Relation batch(Schema({{"part", ValueType::kString},
                         {"weight", ValueType::kInt}}));
  ASSERT_TRUE(batch.Insert(Tuple({Value::String("cup"), Value::Int(1)})).ok());
  ASSERT_TRUE(
      batch.Insert(Tuple({Value::String("vase"), Value::Int(9)})).ok());

  EXPECT_EQ(r.InsertAll(batch).code(), StatusCode::kKeyViolation);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Contains(Tuple({Value::String("cup"), Value::Int(1)})));
  EXPECT_EQ(r.generation(), generation);
}

TEST(Relation, InsertAllIsAtomicOnWithinBatchConflict) {
  // Two fresh tuples agreeing on the key but differing elsewhere conflict
  // with each other even though neither conflicts with the stored state.
  Relation r(KeyedSchema());
  Relation batch(Schema({{"part", ValueType::kString},
                         {"weight", ValueType::kInt}}));
  ASSERT_TRUE(batch.Insert(Tuple({Value::String("cup"), Value::Int(1)})).ok());
  ASSERT_TRUE(batch.Insert(Tuple({Value::String("cup"), Value::Int(2)})).ok());
  EXPECT_EQ(r.InsertAll(batch).code(), StatusCode::kKeyViolation);
  EXPECT_TRUE(r.empty());
}

TEST(Relation, InsertAllIsAtomicOnTypeError) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  const uint64_t generation = r.generation();
  Relation strings(
      Schema({{"x", ValueType::kString}, {"y", ValueType::kString}}));
  ASSERT_TRUE(
      strings.Insert(Tuple({Value::String("a"), Value::String("b")})).ok());
  EXPECT_EQ(r.InsertAll(strings).code(), StatusCode::kTypeError);
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(r.generation(), generation);
}

TEST(Relation, GenerationCountsStructuralChanges) {
  Relation r(SetSchema());
  EXPECT_EQ(r.generation(), 0u);
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_EQ(r.generation(), 1u);
  // A duplicate insert and a missing erase change nothing.
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_FALSE(r.Erase(Tuple({Value::Int(9), Value::Int(9)})));
  EXPECT_EQ(r.generation(), 1u);
  ASSERT_TRUE(r.Erase(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_EQ(r.generation(), 2u);
  // Clearing an already-empty relation is a no-op.
  r.Clear();
  EXPECT_EQ(r.generation(), 2u);
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(3), Value::Int(4)})).ok());
  r.Clear();
  EXPECT_EQ(r.generation(), 4u);
}

TEST(Relation, InsertedSinceReplaysInsertOnlyChurn) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  const uint64_t mark = r.generation();
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(3), Value::Int(4)})).ok());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(5), Value::Int(6)})).ok());

  std::optional<std::vector<Tuple>> delta = r.InsertedSince(mark);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->size(), 2u);
  EXPECT_EQ((*delta)[0].value(0).AsInt(), 3);
  EXPECT_EQ((*delta)[1].value(0).AsInt(), 5);

  std::optional<std::vector<Tuple>> none = r.InsertedSince(r.generation());
  ASSERT_TRUE(none.has_value());
  EXPECT_TRUE(none->empty());

  // A future generation is unanswerable.
  EXPECT_FALSE(r.InsertedSince(r.generation() + 1).has_value());
}

TEST(Relation, InsertedSinceUnavailableAfterErase) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  const uint64_t mark = r.generation();
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(3), Value::Int(4)})).ok());
  ASSERT_TRUE(r.Erase(Tuple({Value::Int(1), Value::Int(2)})));
  // The erase makes the interval non-reconstructible as inserts only.
  EXPECT_FALSE(r.InsertedSince(mark).has_value());
  // But from the current generation on, the answer is exact again.
  std::optional<std::vector<Tuple>> now = r.InsertedSince(r.generation());
  ASSERT_TRUE(now.has_value());
  EXPECT_TRUE(now->empty());
}

TEST(Relation, AssignmentKeepsGenerationMonotonic) {
  // Database::Assign replaces a relation's contents via operator=. The
  // target keeps its identity, so its generation must keep counting up —
  // a cache that pinned the old generation may never see it again.
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  const uint64_t before = r.generation();

  Relation fresh(SetSchema());
  ASSERT_TRUE(fresh.Insert(Tuple({Value::Int(9), Value::Int(9)})).ok());
  r = std::move(fresh);
  EXPECT_GT(r.generation(), before);
  EXPECT_FALSE(r.InsertedSince(before).has_value());

  Relation other(SetSchema());
  const uint64_t mid = r.generation();
  r = other;  // copy assignment, same contract
  EXPECT_GT(r.generation(), mid);
}

TEST(Relation, InsertLogOverflowDegradesGracefully) {
  Relation r(SetSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(-1), Value::Int(0)})).ok());
  const uint64_t mark = r.generation();
  const int n = static_cast<int>(Relation::kMaxInsertLog) + 1;
  for (int i = 0; i < n; ++i) {
    ASSERT_TRUE(r.Insert(Tuple({Value::Int(i), Value::Int(i)})).ok());
  }
  // The bounded log overflowed, so the old mark is unanswerable...
  EXPECT_FALSE(r.InsertedSince(mark).has_value());
  // ...but marks after the overflow work again.
  const uint64_t late = r.generation();
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(-2), Value::Int(0)})).ok());
  std::optional<std::vector<Tuple>> delta = r.InsertedSince(late);
  ASSERT_TRUE(delta.has_value());
  EXPECT_EQ(delta->size(), 1u);
}

TEST(Relation, CopySemantics) {
  Relation r(KeyedSchema());
  ASSERT_TRUE(r.Insert(Tuple({Value::String("a"), Value::Int(1)})).ok());
  Relation copy = r;
  ASSERT_TRUE(copy.Insert(Tuple({Value::String("b"), Value::Int(2)})).ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_EQ(copy.size(), 2u);
  // The copy's key index is independent too.
  EXPECT_EQ(copy.Insert(Tuple({Value::String("b"), Value::Int(9)}))
                .status()
                .code(),
            StatusCode::kKeyViolation);
}

}  // namespace
}  // namespace datacon
