#include "storage/index.h"

#include <gtest/gtest.h>

namespace datacon {
namespace {

Relation EdgeRelation(std::initializer_list<std::pair<int, int>> edges) {
  Relation r(Schema({{"src", ValueType::kInt}, {"dst", ValueType::kInt}}));
  for (const auto& [a, b] : edges) {
    EXPECT_TRUE(r.Insert(Tuple({Value::Int(a), Value::Int(b)})).ok());
  }
  return r;
}

TEST(HashIndex, ProbeSingleColumn) {
  Relation r = EdgeRelation({{1, 2}, {1, 3}, {2, 3}});
  HashIndex index(r, {0});
  EXPECT_EQ(index.key_count(), 2u);
  EXPECT_EQ(index.Probe(Tuple({Value::Int(1)})).size(), 2u);
  EXPECT_EQ(index.Probe(Tuple({Value::Int(2)})).size(), 1u);
  EXPECT_TRUE(index.Probe(Tuple({Value::Int(9)})).empty());
}

TEST(HashIndex, ProbeSecondColumn) {
  Relation r = EdgeRelation({{1, 2}, {3, 2}, {4, 5}});
  HashIndex index(r, {1});
  EXPECT_EQ(index.Probe(Tuple({Value::Int(2)})).size(), 2u);
  EXPECT_EQ(index.Probe(Tuple({Value::Int(5)})).size(), 1u);
}

TEST(HashIndex, CompositeKey) {
  Relation r = EdgeRelation({{1, 2}, {1, 3}});
  HashIndex index(r, {0, 1});
  EXPECT_EQ(index.key_count(), 2u);
  EXPECT_EQ(index.Probe(Tuple({Value::Int(1), Value::Int(2)})).size(), 1u);
  EXPECT_TRUE(index.Probe(Tuple({Value::Int(1), Value::Int(4)})).empty());
}

TEST(HashIndex, PointersReferenceStoredTuples) {
  Relation r = EdgeRelation({{7, 8}});
  HashIndex index(r, {0});
  const std::vector<const Tuple*>& hits = index.Probe(Tuple({Value::Int(7)}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0]->value(1).AsInt(), 8);
  EXPECT_TRUE(r.Contains(*hits[0]));
}

TEST(HashIndex, EmptyRelation) {
  Relation r = EdgeRelation({});
  HashIndex index(r, {0});
  EXPECT_EQ(index.key_count(), 0u);
  EXPECT_TRUE(index.Probe(Tuple({Value::Int(0)})).empty());
}

TEST(HashIndex, ColumnsAccessor) {
  Relation r = EdgeRelation({{1, 2}});
  HashIndex index(r, {1, 0});
  EXPECT_EQ(index.columns(), (std::vector<int>{1, 0}));
}

TEST(HashIndex, InSyncTracksRelationSize) {
  Relation r = EdgeRelation({{1, 2}, {2, 3}});
  HashIndex index(r, {0});
  EXPECT_EQ(index.size_at_build(), 2u);
  EXPECT_TRUE(index.InSync());

  // Growing the relation after the build makes the index stale: a probe
  // silently misses the new tuple, which is exactly the bug the InSync
  // guard exists to catch.
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(9)})).ok());
  EXPECT_FALSE(index.InSync());
  EXPECT_EQ(index.Probe(Tuple({Value::Int(1)})).size(), 1u);
}

TEST(HashIndex, InSyncAfterDuplicateInsert) {
  // Set semantics: re-inserting an existing tuple does not grow the
  // relation, so the index stays in sync.
  Relation r = EdgeRelation({{1, 2}});
  HashIndex index(r, {0});
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(1), Value::Int(2)})).ok());
  EXPECT_TRUE(index.InSync());
}

TEST(HashIndex, EqualSizeChurnIsOutOfSync) {
  // Regression: the old InSync() compared sizes only, so an erase paired
  // with an insert left a stale index looking "in sync" — probes on the
  // erased tuple returned a dangling hit and the new tuple was invisible.
  // Generations catch the churn even though the size is back to 2.
  Relation r = EdgeRelation({{1, 2}, {2, 3}});
  HashIndex index(r, {0});
  ASSERT_TRUE(r.Erase(Tuple({Value::Int(2), Value::Int(3)})));
  ASSERT_TRUE(r.Insert(Tuple({Value::Int(5), Value::Int(6)})).ok());
  ASSERT_EQ(r.size(), index.size_at_build());
  EXPECT_FALSE(index.InSync());
}

TEST(HashIndex, EraseAloneIsOutOfSync) {
  Relation r = EdgeRelation({{1, 2}, {2, 3}});
  HashIndex index(r, {0});
  ASSERT_TRUE(r.Erase(Tuple({Value::Int(1), Value::Int(2)})));
  EXPECT_FALSE(index.InSync());
}

TEST(HashIndex, ClearIsOutOfSync) {
  Relation r = EdgeRelation({{1, 2}});
  HashIndex index(r, {0});
  r.Clear();
  EXPECT_FALSE(index.InSync());
}

}  // namespace
}  // namespace datacon
