// Unit tests of the bounded structured event log: the disabled fast path,
// ring/wrap semantics with drop accounting, JSONL and text rendering, and
// concurrent emission (this binary is in the TSan list of check.sh).

#include "common/eventlog.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace datacon {
namespace {

TEST(EventLog, DisabledByDefaultAndEmitIsANoOp) {
  EventLog log;
  EXPECT_FALSE(log.enabled());
  log.Emit("query.start", {EventField::Int("eval_index", 1)});
  EXPECT_TRUE(log.Events().empty());
  EXPECT_EQ(log.dropped(), 0u);
  EXPECT_EQ(log.ToText(), "(no events recorded)\n");
  EXPECT_EQ(log.ToJsonl(), "");
}

TEST(EventLog, RecordsSequencedEventsOldestFirst) {
  EventLog log;
  log.set_enabled(true);
  log.Emit("query.start", {EventField::Int("eval_index", 1),
                           EventField::Str("query", "E {tc}")});
  log.Emit("query.finish", {EventField::Int("eval_index", 1),
                            EventField::Int("ok", 1)});
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].seq, 0u);
  EXPECT_EQ(events[0].type, "query.start");
  EXPECT_EQ(events[1].seq, 1u);
  EXPECT_EQ(events[1].type, "query.finish");
  // Sequence order and steady-timestamp order agree (stamped under the
  // ring lock) — the monotonicity the JSONL validator checks.
  EXPECT_LE(events[0].steady_ns, events[1].steady_ns);
  EXPECT_GT(events[0].wall_us, 0);
}

TEST(EventLog, RingWrapsKeepingTheNewestAndCountsDrops) {
  EventLog log(4);
  log.set_enabled(true);
  for (int i = 0; i < 10; ++i) {
    log.Emit("e", {EventField::Int("i", i)});
  }
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(log.dropped(), 6u);
  // The newest four survive, oldest first.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 6 + i);
    ASSERT_EQ(events[i].fields.size(), 1u);
    EXPECT_EQ(events[i].fields[0].int_value, static_cast<int64_t>(6 + i));
  }
  EXPECT_NE(log.ToText().find("6 older event(s) dropped"), std::string::npos);
}

TEST(EventLog, ClearDropsEventsButKeepsSequencing) {
  EventLog log;
  log.set_enabled(true);
  log.Emit("a", {});
  log.Emit("b", {});
  log.Clear();
  EXPECT_TRUE(log.Events().empty());
  log.Emit("c", {});
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 2u);  // sequence numbers keep counting
}

TEST(EventLog, JsonlFlattensFieldsAndEscapesStrings) {
  EventLog log;
  log.set_enabled(true);
  log.Emit("cache.hit", {EventField::Str("key", "a\"b\nc"),
                         EventField::Int("n", 7)});
  std::string jsonl = log.ToJsonl();
  // One line, terminated by exactly one newline.
  ASSERT_FALSE(jsonl.empty());
  EXPECT_EQ(jsonl.back(), '\n');
  EXPECT_EQ(jsonl.find('\n'), jsonl.size() - 1);
  EXPECT_NE(jsonl.find("\"seq\":0"), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"steady_ns\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"wall_us\":"), std::string::npos);
  EXPECT_NE(jsonl.find("\"type\":\"cache.hit\""), std::string::npos);
  EXPECT_NE(jsonl.find("\"key\":\"a\\\"b\\nc\""), std::string::npos) << jsonl;
  EXPECT_NE(jsonl.find("\"n\":7"), std::string::npos);
}

TEST(EventLog, ConcurrentEmittersLoseNothingBelowCapacity) {
  EventLog log(1024);
  log.set_enabled(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.Emit("e", {EventField::Int("thread", t)});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(log.dropped(), 0u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i);
    if (i > 0) {
      EXPECT_LE(events[i - 1].steady_ns, events[i].steady_ns);
    }
  }
}

TEST(EventLog, TogglingMidStreamSkipsDisabledSpans) {
  EventLog log;
  log.set_enabled(true);
  log.Emit("kept.1", {});
  log.set_enabled(false);
  log.Emit("skipped", {});
  log.set_enabled(true);
  log.Emit("kept.2", {});
  std::vector<Event> events = log.Events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, "kept.1");
  EXPECT_EQ(events[1].type, "kept.2");
}

}  // namespace
}  // namespace datacon
