#include "common/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <string>
#include <thread>
#include <vector>

namespace datacon {
namespace {

/// Minimal recursive-descent JSON syntax checker, enough to assert the
/// Chrome export is well-formed (what chrome://tracing's loader requires).
/// Accepts objects, arrays, strings with escapes, numbers, true/false/null.
class JsonChecker {
 public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool Valid() {
    SkipSpace();
    if (!Value()) return false;
    SkipSpace();
    return pos_ == text_.size();
  }

 private:
  bool Value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object();
      case '[':
        return Array();
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }

  bool Object() {
    ++pos_;  // '{'
    SkipSpace();
    if (Peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!String()) return false;
      SkipSpace();
      if (Peek() != ':') return false;
      ++pos_;
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool Array() {
    ++pos_;  // '['
    SkipSpace();
    if (Peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      SkipSpace();
      if (!Value()) return false;
      SkipSpace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool String() {
    if (Peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char e = text_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= text_.size() || !std::isxdigit(static_cast<unsigned char>(text_[pos_]))) {
              return false;
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' &&
                   e != 'f' && e != 'n' && e != 'r' && e != 't') {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }

  bool Number() {
    size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

/// Shared-recorder hygiene: every test starts from a clean, disabled
/// recorder and leaves it that way (the recorder is process-global).
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceRecorder::Global().Enable(false);
    TraceRecorder::Global().Clear();
  }
  void TearDown() override {
    TraceRecorder::Global().Enable(false);
    TraceRecorder::Global().Clear();
  }
};

TEST_F(TraceTest, DisabledRecordsNothing) {
  {
    TraceSpan span("should not appear");
    span.AddArg("k", int64_t{1});
    EXPECT_FALSE(span.active());
  }
  TraceInstant("also not");
  EXPECT_EQ(TraceRecorder::Global().EventCount(), 0u);
}

TEST_F(TraceTest, SpanRecordsCompleteEventWithArgs) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  {
    TraceSpan span("round");
    EXPECT_TRUE(span.active());
    span.AddArg("delta", int64_t{42});
    span.AddArg("strategy", std::string("semi-naive"));
  }
  rec.Enable(false);
  TraceRecorder::SnapshotResult snap = rec.Snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  const TraceEvent& event = snap.events[0];
  EXPECT_EQ(event.phase, TraceEvent::Phase::kComplete);
  EXPECT_EQ(event.name, "round");
  EXPECT_GE(event.dur_ns, 0);
  ASSERT_EQ(event.args.size(), 2u);
  EXPECT_EQ(event.args[0].key, "delta");
  EXPECT_EQ(event.args[0].int_value, 42);
  EXPECT_EQ(event.args[1].key, "strategy");
  EXPECT_EQ(event.args[1].str_value, "semi-naive");
}

TEST_F(TraceTest, InstantEventsRecord) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  TraceInstant("marker", {TraceArg::Int("n", 7)});
  rec.Enable(false);
  TraceRecorder::SnapshotResult snap = rec.Snapshot();
  ASSERT_EQ(snap.events.size(), 1u);
  EXPECT_EQ(snap.events[0].phase, TraceEvent::Phase::kInstant);
  EXPECT_EQ(snap.events[0].name, "marker");
}

TEST_F(TraceTest, ClearDropsEvents) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  { TraceSpan span("x"); }
  EXPECT_GE(rec.EventCount(), 1u);
  rec.Clear();
  EXPECT_EQ(rec.EventCount(), 0u);
}

TEST_F(TraceTest, ConcurrentThreadsGetDistinctNamedTracks) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  constexpr int kThreads = 4;
  constexpr int kSpansPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, t] {
      rec.SetCurrentThreadName("track-" + std::to_string(t));
      for (int i = 0; i < kSpansPerThread; ++i) {
        TraceSpan span("work");
        span.AddArg("i", int64_t{i});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  rec.Enable(false);
  TraceRecorder::SnapshotResult snap = rec.Snapshot();
  EXPECT_EQ(snap.events.size(),
            static_cast<size_t>(kThreads) * kSpansPerThread);
  // Each thread must land on its own tid, and its chosen name must survive
  // buffer retirement at thread exit.
  std::vector<std::string> names;
  for (const auto& [tid, name] : snap.threads) names.push_back(name);
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_NE(std::find(names.begin(), names.end(),
                        "track-" + std::to_string(t)),
              names.end());
  }
  for (const auto& [tid_a, name_a] : snap.threads) {
    for (const auto& [tid_b, name_b] : snap.threads) {
      if (name_a != name_b) {
        EXPECT_NE(tid_a, tid_b);
      }
    }
  }
}

TEST_F(TraceTest, ChromeJsonIsWellFormed) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  rec.SetCurrentThreadName("main");
  {
    TraceSpan outer("evaluate");
    outer.AddArg("plan", std::string("line1\nline2 \"quoted\""));
    TraceSpan inner("round");
    inner.AddArg("round", int64_t{1});
  }
  TraceInstant("note");
  rec.Enable(false);
  std::string json = rec.ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"M\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"round\""), std::string::npos);
  // The newline in the plan arg must be escaped, never raw.
  EXPECT_NE(json.find("line1\\nline2"), std::string::npos);
  EXPECT_EQ(json.find("line1\nline2"), std::string::npos);
}

TEST_F(TraceTest, EmptyTraceIsStillValidJson) {
  std::string json = TraceRecorder::Global().ToChromeJson();
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST_F(TraceTest, ToTextRecoversNesting) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  {
    TraceSpan outer("evaluate");
    {
      TraceSpan inner("round");
      inner.AddArg("round", int64_t{1});
    }
  }
  rec.Enable(false);
  std::string text = rec.ToText();
  // The outer span indents one level under the thread header, the inner
  // span one level below it.
  EXPECT_NE(text.find("\n  evaluate"), std::string::npos);
  EXPECT_NE(text.find("\n    round  round=1"), std::string::npos);
}

TEST_F(TraceTest, MidSpanDisableDropsTheEventSafely) {
  TraceRecorder& rec = TraceRecorder::Global();
  rec.Enable(true);
  {
    TraceSpan span("dropped");
    rec.Enable(false);
  }
  EXPECT_EQ(rec.EventCount(), 0u);
}

}  // namespace
}  // namespace datacon
