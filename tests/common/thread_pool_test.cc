#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace datacon {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitWithNoTasksReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  pool.Wait();
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 5; ++batch) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), (batch + 1) * 20);
  }
}

TEST(ThreadPool, TasksSeeDisjointSlots) {
  // The executor's usage pattern: each task writes its own slot of a
  // pre-sized vector; no synchronization beyond Submit/Wait is needed.
  ThreadPool pool(4);
  std::vector<int> slots(64, 0);
  for (size_t i = 0; i < slots.size(); ++i) {
    pool.Submit([&slots, i] { slots[i] = static_cast<int>(i) + 1; });
  }
  pool.Wait();
  for (size_t i = 0; i < slots.size(); ++i) {
    EXPECT_EQ(slots[i], static_cast<int>(i) + 1);
  }
}

TEST(ThreadPool, DestructorDrainsOutstandingTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // No Wait: the destructor must still run everything before joining.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1u);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7u);
  // 0 = hardware concurrency, which is at least one thread.
  EXPECT_GE(ThreadPool::ResolveThreadCount(0), 1u);
}

}  // namespace
}  // namespace datacon
