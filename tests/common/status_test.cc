#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace datacon {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, NamedConstructorsCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::NotFound("x"), StatusCode::kNotFound},
      {Status::AlreadyExists("x"), StatusCode::kAlreadyExists},
      {Status::TypeError("x"), StatusCode::kTypeError},
      {Status::PositivityViolation("x"), StatusCode::kPositivityViolation},
      {Status::KeyViolation("x"), StatusCode::kKeyViolation},
      {Status::Divergence("x"), StatusCode::kDivergence},
      {Status::ParseError("x"), StatusCode::kParseError},
      {Status::Unsupported("x"), StatusCode::kUnsupported},
      {Status::InvalidArgument("x"), StatusCode::kInvalidArgument},
      {Status::Internal("x"), StatusCode::kInternal},
  };
  for (const Case& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_EQ(c.status.message(), "x");
  }
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::TypeError("bad").ToString(), "TYPE_ERROR: bad");
  EXPECT_EQ(Status::PositivityViolation("odd").ToString(),
            "POSITIVITY_VIOLATION: odd");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::TypeError("a"));
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kKeyViolation), "KEY_VIOLATION");
  EXPECT_EQ(StatusCodeName(StatusCode::kDivergence), "DIVERGENCE");
}

Status FailsWhenNegative(int x) {
  DATACON_RETURN_IF_ERROR(x < 0 ? Status::InvalidArgument("negative")
                                : Status::OK());
  return Status::OK();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(FailsWhenNegative(1).ok());
  EXPECT_EQ(FailsWhenNegative(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  DATACON_ASSIGN_OR_RETURN(int half, HalfOf(x));
  return HalfOf(half);
}

TEST(Result, HoldsValue) {
  Result<int> r = HalfOf(4);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 2);
  EXPECT_EQ(*r, 2);
}

TEST(Result, HoldsStatus) {
  Result<int> r = HalfOf(3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, AssignOrReturnChains) {
  ASSERT_TRUE(QuarterOf(8).ok());
  EXPECT_EQ(QuarterOf(8).value(), 2);
  EXPECT_FALSE(QuarterOf(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(QuarterOf(5).ok());
}

TEST(Result, MoveOnlyValues) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(7);
  };
  Result<std::unique_ptr<int>> r = make();
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

}  // namespace
}  // namespace datacon
